//! Cross-crate integration tests: the full stack (datatypes → mpi → pfs →
//! core → benchmarks) exercised through the public facade.

use listless_io::prelude::*;
use std::sync::Arc;

#[test]
fn noncontig_benchmark_verifies_all_modes() {
    use listless_io::noncontig::{run, Access, Config, Pattern};
    for engine in [Engine::ListBased, Engine::Listless] {
        for access in [Access::Independent, Access::Collective] {
            let mut cfg = Config::new(3, 16, 8);
            cfg.engine = engine;
            cfg.access = access;
            cfg.pattern = Pattern::NcNc;
            cfg.bytes_per_proc = 16 * 8 * 3;
            cfg.verify = true;
            let r = run(&cfg);
            assert!(r.write_bpp > 0.0 && r.read_bpp > 0.0);
        }
    }
}

#[test]
fn btio_end_to_end_verifies() {
    use listless_io::btio::{run_on, verify_file, Class, Config};
    let shared = SharedFile::new(MemFile::new());
    let mut cfg = Config::new(Class::S, 4);
    cfg.nsteps = 2;
    cfg.compute_sweeps = 0;
    run_on(&cfg, shared.clone());
    verify_file(&shared, Class::S, 2);
}

/// The headline claim, measured as communication volume: for a collective
/// write of small blocks, the list-based engine ships ol-lists whose size
/// rivals the data, while listless ships (almost) only data.
#[test]
fn listless_moves_less_metadata() {
    use listless_io::noncontig::figure4_filetype;

    let mut volumes = Vec::new();
    for hints in [Hints::list_based(), Hints::listless()] {
        let shared = SharedFile::new(MemFile::new());
        let bytes = World::run(4, |comm| {
            let me = comm.rank() as u64;
            // 512 blocks of 8 bytes per rank
            let ft = figure4_filetype(me, 4, 512, 8);
            let mut f = File::open(comm, shared.clone(), hints).unwrap();
            f.set_view(0, Datatype::byte(), ft).unwrap();
            let data = vec![me as u8; 512 * 8];
            f.write_at_all(0, &data, 512 * 8, &Datatype::byte())
                .unwrap();
            comm.barrier();
            comm.world_stats().bytes_sent
        })[0];
        volumes.push(bytes);
    }
    let (list, listless) = (volumes[0], volumes[1]);
    // per 8-byte element the list-based engine sends a 16-byte tuple on
    // top of the data (paper Section 2.3): expect ≥ 2x the traffic
    assert!(
        list as f64 > listless as f64 * 2.0,
        "list-based sent {list} bytes, listless {listless}"
    );
}

/// Fileview caching pays once per set_view, not per access: across many
/// collective accesses the listless metadata volume is constant.
#[test]
fn fileview_caching_amortizes() {
    use listless_io::noncontig::figure4_filetype;

    let volume_for_steps = |steps: u64| -> (u64, u64) {
        let mut out = (0, 0);
        for (i, hints) in [Hints::list_based(), Hints::listless()]
            .into_iter()
            .enumerate()
        {
            let shared = SharedFile::new(MemFile::new());
            let bytes = World::run(2, |comm| {
                let me = comm.rank() as u64;
                let ft = figure4_filetype(me, 2, 128, 8);
                let mut f = File::open(comm, shared.clone(), hints).unwrap();
                f.set_view(0, Datatype::byte(), ft).unwrap();
                let data = vec![me as u8; 128 * 8];
                for s in 0..steps {
                    f.write_at_all(s * 128 * 8, &data, 128 * 8, &Datatype::byte())
                        .unwrap();
                }
                comm.barrier();
                comm.world_stats().bytes_sent
            })[0];
            if i == 0 {
                out.0 = bytes;
            } else {
                out.1 = bytes;
            }
        }
        out
    };
    let (l1, f1) = volume_for_steps(1);
    let (l8, f8) = volume_for_steps(8);
    // list-based metadata grows with every access...
    let list_growth = (l8 - l1) as f64 / 7.0;
    // ...and per-step listless growth is data plus small headers only
    let listless_growth = (f8 - f1) as f64 / 7.0;
    assert!(
        list_growth > listless_growth * 1.5,
        "per-access traffic: list {list_growth}, listless {listless_growth}"
    );
}

/// Data sieving turns thousands of small accesses into a few large ones;
/// direct mode does the opposite. CountingFile sees the difference.
#[test]
fn sieving_reduces_file_accesses() {
    use listless_io::pfs::CountingFile;

    let run_with = |mode: SievingMode| -> (u64, u64) {
        let counting = Arc::new(CountingFile::new(MemFile::new()));
        let shared = SharedFile::from_arc(counting.clone() as Arc<dyn StorageFile>);
        World::run(1, |comm| {
            let hints = Hints::listless().sieving_mode(mode).ind_buffer(1 << 20);
            let mut f = File::open(comm, shared.clone(), hints).unwrap();
            let ft = Datatype::vector(1024, 1, 2, &Datatype::double()).unwrap();
            f.set_view(0, Datatype::double(), ft).unwrap();
            let data = vec![3u8; 1024 * 8];
            f.write_at(0, &data, 1024 * 8, &Datatype::byte()).unwrap();
        });
        let s = counting.stats();
        (s.reads + s.writes, s.bytes_read + s.bytes_written)
    };

    let (sieve_ops, sieve_bytes) = run_with(SievingMode::Sieve);
    let (direct_ops, direct_bytes) = run_with(SievingMode::Direct);
    // sieving: few accesses, more bytes (reads gaps); direct: one access
    // per block, exact bytes
    assert!(sieve_ops < 10, "sieving used {sieve_ops} accesses");
    assert_eq!(direct_ops, 1024);
    assert!(sieve_bytes > direct_bytes);
    assert_eq!(direct_bytes, 1024 * 8);
}

/// The stack works unchanged over a throttled (bandwidth-modelled) file.
#[test]
fn throttled_storage_end_to_end() {
    let throttled = ThrottledFile::new(
        MemFile::new(),
        Throttle {
            read_bw: 5.0e9,
            write_bw: 5.0e9,
            latency: std::time::Duration::from_micros(1),
        },
    );
    let shared = SharedFile::new(throttled);
    World::run(2, |comm| {
        let me = comm.rank() as u64;
        let ft = Datatype::vector(32, 1, 2, &Datatype::double()).unwrap();
        let mut f = File::open(comm, shared.clone(), Hints::listless()).unwrap();
        f.set_view(me * 8, Datatype::double(), ft).unwrap();
        let data = vec![me as u8 + 1; 32 * 8];
        f.write_at_all(0, &data, 32 * 8, &Datatype::byte()).unwrap();
        let mut back = vec![0u8; 32 * 8];
        f.read_at_all(0, &mut back, 32 * 8, &Datatype::byte())
            .unwrap();
        assert_eq!(back, data);
    });
    assert_eq!(shared.len(), 2 * 32 * 8);
}

/// Short transfers and transient errors injected by a FaultyFile are
/// absorbed by the retry/resume layer: reads and writes complete with
/// correct data under an aggressive survivable plan.
#[test]
fn survives_short_transfers() {
    use listless_io::pfs::{FaultPlan, FaultyFile};

    let mem = Arc::new(MemFile::with_data(vec![7u8; 256]));
    let faulty = FaultyFile::new(
        Arc::clone(&mem),
        FaultPlan {
            short_per_256: 200, // most accesses truncated
            transient_per_256: 64,
            ..FaultPlan::seeded(0xE2E)
        },
    );
    let shared = SharedFile::new(faulty);
    World::run(1, |comm| {
        let f = File::open(comm, shared.clone(), Hints::listless()).unwrap();
        let mut buf = vec![0u8; 256];
        f.read_bytes_at(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7), "short reads corrupted data");
        f.write_bytes_at(64, &[9u8; 128]).unwrap();
        f.sync().unwrap(); // first flushes fail transiently, then recover
    });
    let snap = mem.snapshot();
    assert_eq!(&snap[..64], &[7u8; 64][..]);
    assert_eq!(&snap[64..192], &[9u8; 128][..]);
    assert_eq!(&snap[192..], &[7u8; 64][..]);
}

/// Injected hard errors propagate as `IoError::Storage`, not panics —
/// a torn write is permanent, so the bounded retry gives up on it.
#[test]
fn storage_errors_propagate() {
    use listless_io::core::IoError;
    use listless_io::pfs::{FaultPlan, FaultyFile};

    let file = FaultyFile::new(
        MemFile::new(),
        FaultPlan {
            torn_after: Some(0), // every write fails permanently
            ..FaultPlan::disabled()
        },
    );
    let shared = SharedFile::new(file);
    World::run(1, |comm| {
        let f = File::open(comm, shared.clone(), Hints::listless()).unwrap();
        let err = f.write_bytes_at(0, &[1, 2, 3]).unwrap_err();
        assert!(matches!(err, IoError::Storage(_)));
    });
}

/// The facade's prelude exposes a workable API surface.
#[test]
fn prelude_covers_the_basics() {
    let shared = SharedFile::new(MemFile::new());
    World::run(2, |comm: &Comm| {
        let mut f = File::open(comm, shared.clone(), Hints::default()).unwrap();
        let sub = Datatype::subarray(
            &[4, 4],
            &[4, 2],
            &[0, 2 * comm.rank() as u64],
            Order::C,
            &Datatype::double(),
        )
        .unwrap();
        f.set_view(0, Datatype::double(), sub).unwrap();
        let data = vec![comm.rank() as u8 + 1; 4 * 2 * 8];
        f.write_at_all(0, &data, 4 * 2 * 8, &Datatype::byte())
            .unwrap();
    });
    assert_eq!(shared.len(), 4 * 4 * 8);
}
