//! Quickstart: non-contiguous parallel file access in a few lines.
//!
//! Four ranks share one file. Each rank's fileview exposes every fourth
//! 8-byte slot, offset by its rank — the interleaved pattern of the
//! paper's Figure 4 — so a single collective write with identical
//! arguments on every rank produces a perfectly interleaved file.
//!
//! Run with: `cargo run --example quickstart`

use listless_io::prelude::*;

fn main() {
    const RANKS: u64 = 4;
    const SLOTS: u64 = 8; // 8-byte slots per rank

    let shared = SharedFile::new(MemFile::new());

    World::run(RANKS as usize, |comm| {
        let me = comm.rank() as u64;

        // Open the file with the listless engine (the paper's technique).
        let mut file = File::open(comm, shared.clone(), Hints::listless()).unwrap();

        // Fileview: every RANKS-th double, starting at slot `me`.
        let filetype = Datatype::vector(SLOTS, 1, RANKS as i64, &Datatype::double()).unwrap();
        file.set_view(me * 8, Datatype::double(), filetype).unwrap();

        // Each rank writes its own doubles — collectively, with the same
        // call on every rank.
        let mine: Vec<f64> = (0..SLOTS).map(|i| (me * 100 + i) as f64).collect();
        let bytes: Vec<u8> = mine.iter().flat_map(|v| v.to_le_bytes()).collect();
        file.write_at_all(0, &bytes, bytes.len() as u64, &Datatype::byte())
            .unwrap();

        // Read our slice back through the same view.
        let mut back = vec![0u8; bytes.len()];
        file.read_at_all(0, &mut back, bytes.len() as u64, &Datatype::byte())
            .unwrap();
        assert_eq!(back, bytes);

        if me == 0 {
            println!("rank 0 wrote {:?}...", &mine[..4.min(mine.len())]);
        }
    });

    // Inspect the interleaving from outside the world.
    let mut out = vec![0u8; shared.len() as usize];
    shared.storage().read_at(0, &mut out).unwrap();
    println!("file holds {} bytes:", out.len());
    for slot in 0..RANKS * SLOTS {
        let o = (slot * 8) as usize;
        let v = f64::from_le_bytes(out[o..o + 8].try_into().unwrap());
        let owner = slot % RANKS;
        assert_eq!(v, (owner * 100 + slot / RANKS) as f64);
        if slot < 8 {
            println!("  slot {slot:2} = {v:6.1}   (rank {owner})");
        }
    }
    println!("interleaving verified: every rank's data in its stripes");
}
