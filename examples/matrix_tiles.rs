//! Distributed matrix checkpoint: each rank owns a 2D tile of a global
//! matrix and writes it to a single file in canonical row-major order
//! with one collective call — the classic subarray-fileview workload the
//! paper's introduction motivates.
//!
//! The file is written to disk (`/tmp`), re-opened, and a different
//! process grid reads it back with *different* tiles, demonstrating that
//! the file layout is decoupled from the in-memory decomposition.
//!
//! Run with: `cargo run --example matrix_tiles`

use listless_io::prelude::*;

const ROWS: u64 = 64;
const COLS: u64 = 64;
const ESZ: u64 = 8; // f64

/// The subarray fileview of a `tr`×`tc` tile grid position `(ti, tj)`.
fn tile_view(tr: u64, tc: u64, ti: u64, tj: u64) -> (Datatype, u64, u64) {
    let th = ROWS / tr;
    let tw = COLS / tc;
    let view = Datatype::subarray(
        &[ROWS, COLS],
        &[th, tw],
        &[ti * th, tj * tw],
        Order::C,
        &Datatype::double(),
    )
    .unwrap();
    (view, th, tw)
}

fn main() {
    let path = std::env::temp_dir().join("listless_io_matrix.bin");
    let shared = SharedFile::new(UnixFile::create(&path).unwrap());

    // --- phase 1: a 2x2 process grid writes the matrix -----------------
    World::run(4, |comm| {
        let me = comm.rank() as u64;
        let (ti, tj) = (me / 2, me % 2);
        let (view, th, tw) = tile_view(2, 2, ti, tj);

        let mut f = File::open(comm, shared.clone(), Hints::listless()).unwrap();
        f.set_view(0, Datatype::double(), view).unwrap();

        // tile content: the global element value i*1000 + j
        let mut tile = Vec::with_capacity((th * tw * ESZ) as usize);
        for i in 0..th {
            for j in 0..tw {
                let gi = ti * th + i;
                let gj = tj * tw + j;
                tile.extend_from_slice(&((gi * 1000 + gj) as f64).to_le_bytes());
            }
        }
        f.write_at_all(0, &tile, tile.len() as u64, &Datatype::byte())
            .unwrap();
        f.sync().unwrap();
    });
    println!(
        "wrote {}x{} matrix ({} KiB) as 2x2 tiles -> {}",
        ROWS,
        COLS,
        ROWS * COLS * ESZ / 1024,
        path.display()
    );

    // --- phase 2: a 1x4 process grid reads it back ----------------------
    let reopened = SharedFile::new(UnixFile::open(&path).unwrap());
    World::run(4, |comm| {
        let me = comm.rank() as u64;
        let (view, th, tw) = tile_view(1, 4, 0, me);

        let mut f = File::open(comm, reopened.clone(), Hints::listless()).unwrap();
        f.set_view(0, Datatype::double(), view).unwrap();

        let mut tile = vec![0u8; (th * tw * ESZ) as usize];
        let tlen = tile.len() as u64;
        f.read_at_all(0, &mut tile, tlen, &Datatype::byte())
            .unwrap();

        // verify: every element carries its global coordinates
        for i in 0..th {
            for j in 0..tw {
                let o = ((i * tw + j) * ESZ) as usize;
                let v = f64::from_le_bytes(tile[o..o + 8].try_into().unwrap());
                let gj = me * tw + j;
                assert_eq!(v, (i * 1000 + gj) as f64, "column strip {me} at ({i},{j})");
            }
        }
    });
    println!(
        "re-read as 1x4 column strips: all {} elements verified",
        ROWS * COLS
    );

    // --- phase 3: a serial reader grabs one row through a view ---------
    World::run(1, |comm| {
        let row = 17u64;
        let view = Datatype::subarray(
            &[ROWS, COLS],
            &[1, COLS],
            &[row, 0],
            Order::C,
            &Datatype::double(),
        )
        .unwrap();
        let mut f = File::open(comm, reopened.clone(), Hints::listless()).unwrap();
        f.set_view(0, Datatype::double(), view).unwrap();
        let mut buf = vec![0u8; (COLS * ESZ) as usize];
        let blen = buf.len() as u64;
        f.read_at(0, &mut buf, blen, &Datatype::byte()).unwrap();
        let first = f64::from_le_bytes(buf[0..8].try_into().unwrap());
        let last = f64::from_le_bytes(buf[buf.len() - 8..].try_into().unwrap());
        println!("row {row}: first = {first}, last = {last}");
        assert_eq!(first, (row * 1000) as f64);
        assert_eq!(last, (row * 1000 + COLS - 1) as f64);
    });

    std::fs::remove_file(&path).ok();
}
