//! Particle checkpoint: a struct-of-arrays simulation state is written to
//! a single array-of-structs checkpoint file, collectively, using derived
//! datatypes on *both* sides of the transfer:
//!
//! * the **memtype** gathers each particle's position (from one array)
//!   and velocity (from another) — a non-contiguous memory layout;
//! * the **filetype** interleaves the ranks' particle records by block —
//!   a non-contiguous file layout (the `nc-nc` case of Figure 1).
//!
//! The checkpoint is then restarted: read back through the same views and
//! compared. Both engines are exercised and must produce identical files.
//!
//! Run with: `cargo run --example particle_checkpoint`

use listless_io::prelude::*;

const PARTICLES_PER_RANK: u64 = 1000;
const RANKS: u64 = 4;
/// One record on file: 3 position + 3 velocity doubles.
const REC: u64 = 6 * 8;

/// Per-rank struct-of-arrays state.
struct State {
    pos: Vec<f64>, // 3 per particle
    vel: Vec<f64>, // 3 per particle
}

impl State {
    fn init(rank: u64) -> State {
        let n = PARTICLES_PER_RANK as usize;
        State {
            pos: (0..3 * n).map(|i| rank as f64 * 1e6 + i as f64).collect(),
            vel: (0..3 * n)
                .map(|i| -(rank as f64 * 1e6 + i as f64))
                .collect(),
        }
    }

    /// One buffer holding [pos..., vel...] so a single memtype can
    /// describe the interleave-gather.
    fn buffer(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity((self.pos.len() + self.vel.len()) * 8);
        for v in self.pos.iter().chain(&self.vel) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }
}

/// The memtype: for each particle, 3 doubles from the pos array and 3
/// from the vel array (vel is offset by the whole pos array).
fn particle_memtype() -> Datatype {
    let three = Datatype::contiguous(3, &Datatype::double()).unwrap();
    let vel_base = (PARTICLES_PER_RANK * 3 * 8) as i64;
    let record = Datatype::struct_type(vec![
        Field {
            disp: 0,
            count: 1,
            child: three.clone(),
        },
        Field {
            disp: vel_base,
            count: 1,
            child: three,
        },
    ])
    .unwrap();
    // per-particle advance: 24 bytes in each array
    let record = Datatype::resized(&record, 0, 24).unwrap();
    Datatype::contiguous(PARTICLES_PER_RANK, &record).unwrap()
}

/// The filetype: rank `p` owns every RANKS-th record block of 10.
fn checkpoint_filetype(p: u64) -> (u64, Datatype) {
    let block = Datatype::basic((REC * 10) as u32); // 10 records per block
    let v = Datatype::vector(PARTICLES_PER_RANK / 10, 1, RANKS as i64, &block).unwrap();
    (p * REC * 10, v)
}

fn checkpoint(engine: Engine, shared: &SharedFile) {
    World::run(RANKS as usize, |comm| {
        let me = comm.rank() as u64;
        let state = State::init(me);
        let buf = state.buffer();
        let mt = particle_memtype();
        let (disp, ft) = checkpoint_filetype(me);

        let mut f = File::open(comm, shared.clone(), Hints::with_engine(engine)).unwrap();
        f.set_view(disp, Datatype::double(), ft).unwrap();
        f.write_at_all(0, &buf, 1, &mt).unwrap();
    });
}

fn restart(engine: Engine, shared: &SharedFile) {
    World::run(RANKS as usize, |comm| {
        let me = comm.rank() as u64;
        let want = State::init(me);
        let mt = particle_memtype();
        let (disp, ft) = checkpoint_filetype(me);

        let mut f = File::open(comm, shared.clone(), Hints::with_engine(engine)).unwrap();
        f.set_view(disp, Datatype::double(), ft).unwrap();
        let mut buf = vec![0u8; (PARTICLES_PER_RANK * 6 * 8) as usize];
        f.read_at_all(0, &mut buf, 1, &mt).unwrap();

        // the restarted state must equal the original
        let n = want.pos.len();
        for (i, w) in want.pos.iter().chain(&want.vel).enumerate() {
            let o = i * 8;
            let got = f64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
            assert_eq!(got, *w, "rank {me} value {i} (of {n} pos + vel)");
        }
    });
}

fn main() {
    let mut images = Vec::new();
    for engine in [Engine::Listless, Engine::ListBased] {
        let shared = SharedFile::new(MemFile::new());
        checkpoint(engine, &shared);
        restart(engine, &shared);
        let mut snap = vec![0u8; shared.len() as usize];
        shared.storage().read_at(0, &mut snap).unwrap();
        println!(
            "{engine:?}: checkpointed {} particles x {} ranks = {} KiB, restart verified",
            PARTICLES_PER_RANK,
            RANKS,
            snap.len() / 1024
        );
        images.push(snap);
    }
    assert_eq!(
        images[0], images[1],
        "engines must write identical checkpoints"
    );
    println!("both engines produced bit-identical checkpoint files");

    // spot-check the record interleaving: record block b belongs to rank b % RANKS
    let img = &images[0];
    let rec0 = f64::from_le_bytes(img[0..8].try_into().unwrap());
    assert_eq!(rec0, 0.0); // rank 0, pos[0]
    let blk1 = (REC * 10) as usize;
    let rec1 = f64::from_le_bytes(img[blk1..blk1 + 8].try_into().unwrap());
    assert_eq!(rec1, 1e6); // rank 1, pos[0]
    println!("record blocks interleave by rank as designed");
}
