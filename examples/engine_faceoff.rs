//! Engine face-off: measure list-based vs listless I/O on your machine,
//! across the paper's four access patterns (Figure 1), and print a small
//! report — a self-contained miniature of the paper's Section 4.1.
//!
//! Run with: `cargo run --release --example engine_faceoff`

use lio_noncontig::{run, Access, Config, Engine, Pattern};

fn measure(pattern: Pattern, access: Access, engine: Engine) -> (f64, f64) {
    let cfg = Config {
        nprocs: 4,
        nblock: 2048,
        sblock: 8,
        pattern,
        access,
        engine,
        bytes_per_proc: 1 << 20,
        verify: false,
        cb_buffer: None,
        ind_buffer: None,
        reps: 3,
    };
    // warmup + measurement
    run(&cfg);
    let r = run(&cfg);
    (r.write_bpp, r.read_bpp)
}

fn main() {
    println!("engine face-off: 4 ranks, Nblock=2048, Sblock=8 B, 1 MiB/rank");
    println!("(bandwidth per process, MB/s; higher is better)\n");
    for access in [Access::Independent, Access::Collective] {
        println!("== {access:?} ==");
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12} {:>8}",
            "pattern", "list wr", "listless wr", "list rd", "listless rd", "speedup"
        );
        for pattern in Pattern::all() {
            let (lw, lr) = measure(pattern, access, Engine::ListBased);
            let (fw, fr) = measure(pattern, access, Engine::Listless);
            let speedup = ((fw / lw) + (fr / lr)) / 2.0;
            println!(
                "{:<8} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>7.2}x",
                pattern.label(),
                lw,
                fw,
                lr,
                fr,
                speedup
            );
        }
        println!();
    }
    println!("note: the contiguous c-c row is the control — both engines");
    println!("take the same direct path there, so its speedup should be ~1.");
}
