//! Block-cyclic distributed matrix I/O with `darray` fileviews.
//!
//! A ScaLAPACK-style block-cyclic distribution: a global matrix is dealt
//! out to a 2×2 process grid in 2×2 element blocks, round-robin in both
//! dimensions. Each rank writes its share to the canonical (row-major)
//! matrix file with one collective call — the fileview does all the
//! scatter arithmetic — and reads it back.
//!
//! Run with: `cargo run --example cyclic_matrix`

use listless_io::datatype::{darray, Distrib};
use listless_io::prelude::*;

const N: u64 = 16; // matrix is N x N doubles
const GRID: [u64; 2] = [2, 2];
const BLOCK: u64 = 2;

fn main() {
    let shared = SharedFile::new(MemFile::new());

    World::run(4, |comm| {
        let me = comm.rank() as u64;
        let ft = darray(
            4,
            me,
            &[N, N],
            &[Distrib::Cyclic(BLOCK), Distrib::Cyclic(BLOCK)],
            &GRID,
            Order::C,
            &Datatype::double(),
        )
        .unwrap();
        let my_elems = ft.size() / 8;

        let mut f = File::open(comm, shared.clone(), Hints::listless()).unwrap();
        f.set_view(0, Datatype::double(), ft).unwrap();

        // each rank writes its rank id (as f64) into all its elements
        let mut buf = Vec::with_capacity((my_elems * 8) as usize);
        for _ in 0..my_elems {
            buf.extend_from_slice(&(me as f64).to_le_bytes());
        }
        f.write_at_all(0, &buf, buf.len() as u64, &Datatype::byte())
            .unwrap();

        // and reads them back
        let mut back = vec![0u8; buf.len()];
        let blen = back.len() as u64;
        f.read_at_all(0, &mut back, blen, &Datatype::byte())
            .unwrap();
        assert_eq!(back, buf);
    });

    // print the ownership map encoded in the file
    let mut snap = vec![0u8; shared.len() as usize];
    shared.storage().read_at(0, &mut snap).unwrap();
    assert_eq!(snap.len() as u64, N * N * 8);
    println!("block-cyclic ownership map ({N}x{N}, {BLOCK}x{BLOCK} blocks, 2x2 grid):");
    for i in 0..N {
        let mut row = String::new();
        for j in 0..N {
            let o = ((i * N + j) * 8) as usize;
            let v = f64::from_le_bytes(snap[o..o + 8].try_into().unwrap());
            row.push(char::from_digit(v as u32, 10).unwrap());
            // verify against the analytic owner
            let want = ((i / BLOCK) % GRID[0]) * GRID[1] + (j / BLOCK) % GRID[1];
            assert_eq!(v as u64, want, "element ({i},{j})");
        }
        println!("  {row}");
    }
    println!("every element owned by the analytically correct rank");
}
