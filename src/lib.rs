//! # listless-io
//!
//! A comprehensive Rust reproduction of *Fast Parallel Non-Contiguous
//! File Access* (Worringen, Träff, Ritzdorf; SC'03) — the **listless
//! I/O** technique for MPI-IO-style non-contiguous file access, together
//! with the list-based baseline it replaces, the substrates both need
//! (derived datatypes, an in-process message-passing world, a storage
//! layer), and the paper's two benchmarks.
//!
//! This facade crate re-exports the workspace members under friendly
//! names; see each crate for details:
//!
//! * [`datatype`] — derived datatypes; ol-list flattening vs
//!   flattening-on-the-fly,
//! * [`obs`] — cross-layer metrics: counters, histograms, span timers,
//!   JSON snapshots (`LIO_OBS=1` or the `lio_obs` hint to enable),
//! * [`pfs`] — storage substrate (mem/disk/throttled/counting files),
//! * [`mpi`] — threads-as-ranks message passing,
//! * [`core`] — fileviews, data sieving, two-phase collective I/O,
//! * [`noncontig`] — the synthetic benchmark of the paper's Section 4.1,
//! * [`btio`] — the BTIO application kernel of Section 4.2.
//!
//! ```
//! use listless_io::prelude::*;
//!
//! let shared = SharedFile::new(MemFile::new());
//! World::run(2, |comm| {
//!     let mut f = File::open(comm, shared.clone(), Hints::listless()).unwrap();
//!     let ft = Datatype::vector(8, 1, 2, &Datatype::double()).unwrap();
//!     f.set_view(comm.rank() as u64 * 8, Datatype::double(), ft).unwrap();
//!     let mine = vec![comm.rank() as u8; 64];
//!     f.write_at_all(0, &mine, 64, &Datatype::byte()).unwrap();
//! });
//! assert_eq!(shared.len(), 128);
//! ```

pub use lio_btio as btio;
pub use lio_core as core;
pub use lio_datatype as datatype;
pub use lio_mpi as mpi;
pub use lio_noncontig as noncontig;
pub use lio_obs as obs;
pub use lio_pfs as pfs;

/// The most common imports in one place.
pub mod prelude {
    pub use lio_core::{Engine, File, FileView, Hints, SharedFile, SievingMode};
    pub use lio_datatype::{Datatype, Field, Order};
    pub use lio_mpi::{Comm, World};
    pub use lio_pfs::{MemFile, StorageFile, Throttle, ThrottledFile, UnixFile};
}
