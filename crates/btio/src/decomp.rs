//! The BT diagonal multipartition decomposition.
//!
//! BT runs on `P = q²` processes. The `N³` grid is divided into `q³`
//! cells; process `p = j·q + i` owns the `q` cells
//! `{ ((i+c) mod q, (j−c) mod q, c) : c = 0..q }` — one per z-layer,
//! shifted diagonally, so that every line of cells in every axis touches
//! every process (the property BT's ADI sweeps need). This is the same
//! assignment as NPB BT's `make_set`.
//!
//! When `q` does not divide `N`, the first `N mod q` cell rows/columns are
//! one point larger, exactly as in NPB — which is how class B at P = 16
//! ends up with the fractional average `Sblock = 1020` bytes of the
//! paper's Table 2.

/// One cell: start coordinates and sizes per dimension, ordered
/// `[z, y, x]` (z slowest, matching the file layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// First grid point per dimension, `[z, y, x]`.
    pub start: [u64; 3],
    /// Points per dimension, `[z, y, x]`.
    pub size: [u64; 3],
}

impl Cell {
    /// Points in the cell.
    pub fn points(&self) -> u64 {
        self.size.iter().product()
    }
}

/// The decomposition of an `N³` grid over `P = q²` processes.
#[derive(Debug, Clone, Copy)]
pub struct Decomp {
    /// Grid points per dimension.
    pub n: u64,
    /// Cells per dimension (`√P`).
    pub q: u64,
}

impl Decomp {
    /// Build the decomposition; `nprocs` must be a perfect square.
    pub fn new(n: u64, nprocs: usize) -> Option<Decomp> {
        let q = (nprocs as f64).sqrt().round() as u64;
        if q * q != nprocs as u64 || q == 0 || n < q {
            return None;
        }
        Some(Decomp { n, q })
    }

    /// The start and length of cell-coordinate `c` along one axis.
    pub fn dim_range(&self, c: u64) -> (u64, u64) {
        let base = self.n / self.q;
        let excess = self.n % self.q;
        let start = c * base + c.min(excess);
        let len = base + u64::from(c < excess);
        (start, len)
    }

    /// The cell-grid coordinates `(xc, yc, zc)` of cell `c` of process `p`.
    pub fn cell_coords(&self, p: usize, c: u64) -> (u64, u64, u64) {
        let q = self.q;
        let i = p as u64 % q;
        let j = p as u64 / q;
        ((i + c) % q, (j + q - c % q) % q, c)
    }

    /// The `q` cells owned by process `p`, in z-layer order.
    pub fn cells_of(&self, p: usize) -> Vec<Cell> {
        (0..self.q)
            .map(|c| {
                let (xc, yc, zc) = self.cell_coords(p, c);
                let (xs, xl) = self.dim_range(xc);
                let (ys, yl) = self.dim_range(yc);
                let (zs, zl) = self.dim_range(zc);
                Cell {
                    start: [zs, ys, xs],
                    size: [zl, yl, xl],
                }
            })
            .collect()
    }

    /// Number of processes.
    pub fn nprocs(&self) -> usize {
        (self.q * self.q) as usize
    }

    /// Total grid points.
    pub fn points(&self) -> u64 {
        self.n * self.n * self.n
    }

    /// The I/O pattern characterization of the paper's Table 2 for one
    /// process: `(Nblock, mean Sblock in bytes)` with 5 doubles per point.
    /// A contiguous block is one x-row of one cell.
    pub fn access_pattern(&self, p: usize) -> (u64, f64) {
        let cells = self.cells_of(p);
        let nblock: u64 = cells.iter().map(|c| c.size[0] * c.size[1]).sum();
        let bytes: u64 = cells.iter().map(|c| c.points() * 40).sum();
        (nblock, bytes as f64 / nblock as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rejects_non_square() {
        assert!(Decomp::new(64, 3).is_none());
        assert!(Decomp::new(64, 8).is_none());
        assert!(Decomp::new(64, 4).is_some());
        assert!(Decomp::new(64, 1).is_some());
    }

    #[test]
    fn dim_ranges_partition_axis() {
        for (n, q) in [(102u64, 4u64), (162, 5), (12, 2), (7, 3)] {
            let d = Decomp { n, q };
            let mut covered = 0;
            for c in 0..q {
                let (s, l) = d.dim_range(c);
                assert_eq!(s, covered);
                covered += l;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn cells_partition_grid() {
        for (n, p) in [(12u64, 4usize), (102, 9), (13, 4), (27, 9)] {
            let d = Decomp::new(n, p).unwrap();
            let mut seen: HashSet<(u64, u64, u64)> = HashSet::new();
            let mut total = 0;
            for rank in 0..p {
                for cell in d.cells_of(rank) {
                    total += cell.points();
                    for z in cell.start[0]..cell.start[0] + cell.size[0] {
                        for y in cell.start[1]..cell.start[1] + cell.size[1] {
                            for x in cell.start[2]..cell.start[2] + cell.size[2] {
                                assert!(seen.insert((z, y, x)), "point ({z},{y},{x}) owned twice");
                            }
                        }
                    }
                }
            }
            assert_eq!(total, d.points());
            assert_eq!(seen.len() as u64, d.points());
        }
    }

    #[test]
    fn one_cell_per_z_layer() {
        let d = Decomp::new(102, 9).unwrap();
        for p in 0..9 {
            let cells = d.cells_of(p);
            let zs: Vec<u64> = cells.iter().map(|c| c.start[0]).collect();
            // z-starts strictly increase: cells ordered by layer
            assert!(zs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn every_z_layer_touches_every_process() {
        // the multipartition property along z
        let d = Decomp::new(12, 9).unwrap();
        for c in 0..3u64 {
            let mut owners = HashSet::new();
            for p in 0..9 {
                let (_, _, zc) = d.cell_coords(p, c);
                assert_eq!(zc, c);
                owners.insert(d.cell_coords(p, c));
            }
            assert_eq!(owners.len(), 9, "layer {c} cells not distinct");
        }
    }

    #[test]
    fn table2_class_b() {
        // Paper Table 2, class B (N=102)
        let cases = [
            (4usize, 5202u64, 2040.0f64),
            (9, 3468, 1360.0),
            (16, 2601, 1020.0),
            (25, 2080, 816.0),
        ];
        // The paper reports the rounded average N²/√P; with uneven cells
        // a given rank can differ by up to ±√P rows.
        for (p, nblock, sblock) in cases {
            let d = Decomp::new(102, p).unwrap();
            let (nb, sb) = d.access_pattern(0);
            let q = (p as f64).sqrt() as i64;
            assert!(
                (nb as i64 - nblock as i64).abs() <= q,
                "P={p} Nblock: got {nb}, want ~{nblock}"
            );
            assert!(
                (sb - sblock).abs() / sblock < 0.02,
                "P={p} Sblock: got {sb}, want ~{sblock}"
            );
        }
    }

    #[test]
    fn table2_class_c() {
        // Paper Table 2, class C (N=162)
        let cases = [
            (4usize, 13122u64, 3240.0f64),
            (9, 8748, 2160.0),
            (16, 6561, 1620.0),
            (25, 5248, 1296.0),
        ];
        for (p, nblock, sblock) in cases {
            let d = Decomp::new(162, p).unwrap();
            let (nb, sb) = d.access_pattern(0);
            let q = (p as f64).sqrt() as i64;
            assert!(
                (nb as i64 - nblock as i64).abs() <= q,
                "P={p} Nblock: got {nb}, want ~{nblock}"
            );
            assert!(
                (sb - sblock).abs() / sblock < 0.02,
                "P={p} Sblock: got {sb}, want ~{sblock}"
            );
        }
    }
}
