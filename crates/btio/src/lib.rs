//! # lio-btio — the BTIO application kernel
//!
//! A reimplementation of the I/O behaviour of NASPB's BTIO benchmark
//! (Section 4.2 of the paper): the solution array of a BT-style solver,
//! decomposed by diagonal multipartition over `P = q²` processes, is
//! appended to a shared file after every time step with a single
//! collective write built on subarray datatypes.
//!
//! The BT ADI solver itself is replaced by a calibrated stencil
//! relaxation ([`grid::Grid::relax`]); the I/O pattern — the paper's
//! Tables 1 and 2 — is reproduced exactly by the same decomposition
//! arithmetic as NPB BT.

pub mod decomp;
pub mod grid;
pub mod io;

use std::time::Instant;

use lio_core::{File, Hints, SharedFile};
use lio_datatype::Datatype;
use lio_mpi::World;
use lio_pfs::MemFile;

pub use decomp::{Cell, Decomp};
pub use grid::{expected_value, Grid, NVARS};
pub use lio_core::Engine;

/// BTIO problem classes and their grid sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// 12³ (sample class, for tests).
    S,
    /// 64³.
    A,
    /// 102³.
    B,
    /// 162³.
    C,
    /// 408³.
    D,
}

impl Class {
    /// Grid points per dimension.
    pub fn n(&self) -> u64 {
        match self {
            Class::S => 12,
            Class::A => 64,
            Class::B => 102,
            Class::C => 162,
            Class::D => 408,
        }
    }

    /// The class letter.
    pub fn name(&self) -> &'static str {
        match self {
            Class::S => "S",
            Class::A => "A",
            Class::B => "B",
            Class::C => "C",
            Class::D => "D",
        }
    }

    /// Parse a class letter.
    pub fn parse(s: &str) -> Option<Class> {
        match s {
            "S" | "s" => Some(Class::S),
            "A" | "a" => Some(Class::A),
            "B" | "b" => Some(Class::B),
            "C" | "c" => Some(Class::C),
            "D" | "d" => Some(Class::D),
            _ => None,
        }
    }
}

/// BTIO configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Problem class (grid size).
    pub class: Class,
    /// Process count; must be a perfect square.
    pub nprocs: usize,
    /// Time steps (BTIO default: 40).
    pub nsteps: usize,
    /// Engine for the I/O path.
    pub engine: Engine,
    /// Whether I/O is performed at all (off = the plain BT run, the
    /// paper's `t_no-io`).
    pub io_enabled: bool,
    /// Relaxation sweeps per step (the compute stand-in's weight).
    pub compute_sweeps: usize,
    /// Collective buffer override.
    pub cb_buffer: Option<usize>,
    /// After the run, collectively read the final step back and compare
    /// with the in-memory state (BTIO's verification phase).
    pub verify_read: bool,
}

impl Config {
    /// A BTIO run of `class` on `nprocs` processes with defaults.
    pub fn new(class: Class, nprocs: usize) -> Config {
        Config {
            class,
            nprocs,
            nsteps: 40,
            engine: Engine::Listless,
            io_enabled: true,
            compute_sweeps: 1,
            cb_buffer: None,
            verify_read: false,
        }
    }
}

/// Data-volume characterization (the paper's Table 1).
#[derive(Debug, Clone, Copy)]
pub struct VolumeStats {
    /// Bytes written per time step (all processes).
    pub dstep: u64,
    /// Bytes written over the whole run.
    pub drun: u64,
}

/// Compute Table 1's `Dstep`/`Drun` for a class.
pub fn volume_stats(class: Class, nsteps: u64) -> VolumeStats {
    let n = class.n();
    let dstep = n * n * n * (NVARS as u64) * 8;
    VolumeStats {
        dstep,
        drun: dstep * nsteps,
    }
}

/// Result of one BTIO run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Total wall-clock seconds (slowest rank).
    pub total_secs: f64,
    /// Seconds spent inside collective writes (slowest rank's sum).
    pub io_secs: f64,
    /// Seconds spent in the read-back verification phase (0 when
    /// `verify_read` is off).
    pub read_secs: f64,
    /// Bytes written to the file over the run (all ranks).
    pub bytes_written: u64,
    /// Effective I/O bandwidth in MB/s (`bytes_written / io_secs`).
    pub io_bandwidth_mbs: f64,
    /// Solver checksum (prevents dead-code elimination; equal across
    /// configurations with the same class/steps/sweeps).
    pub checksum: f64,
}

/// Run BTIO. Returns timing and bandwidth.
///
/// With `io_enabled = false` this is the plain BT-style run (`t_no-io`);
/// the paper's `Δt_io` is the difference in `total_secs` between the two,
/// which closely tracks `io_secs`.
pub fn run(cfg: &Config) -> RunResult {
    run_on(cfg, SharedFile::new(MemFile::new()))
}

/// Run BTIO against a caller-supplied file (examples use a `UnixFile`).
pub fn run_on(cfg: &Config, shared: SharedFile) -> RunResult {
    let d = Decomp::new(cfg.class.n(), cfg.nprocs)
        .expect("BTIO requires a square process count that divides the grid");
    let mut hints = Hints::with_engine(cfg.engine);
    if let Some(cb) = cfg.cb_buffer {
        hints = hints.cb_buffer(cb);
    }
    if cfg.io_enabled {
        // pre-fault the output file so engine comparisons are not skewed
        // by first-touch page faults
        shared
            .storage()
            .set_len(volume_stats(cfg.class, cfg.nsteps as u64).drun)
            .expect("prefault file");
    }
    let cfg2 = cfg.clone();
    let results = World::run(cfg.nprocs, move |comm| {
        let me = comm.rank();
        let mut grid = Grid::new(&d, me);
        grid.initialize();
        let ft = io::filetype(&d, me);
        let mt = io::memtype(&grid);
        let step_etypes = grid.points() * NVARS as u64; // doubles per step

        let mut f = File::open(comm, shared.clone(), hints).expect("open");
        if cfg2.io_enabled {
            f.set_view(0, Datatype::double(), ft).expect("set_view");
        }

        let mut checksum = 0.0f64;
        let mut io_secs = 0.0f64;
        comm.barrier();
        let t0 = Instant::now();
        for step in 0..cfg2.nsteps {
            checksum += grid.relax(cfg2.compute_sweeps);
            if cfg2.io_enabled {
                let t_io = Instant::now();
                f.write_at_all(step as u64 * step_etypes, grid.bytes(), 1, &mt)
                    .expect("write_at_all");
                io_secs += t_io.elapsed().as_secs_f64();
            }
        }
        comm.barrier();
        let total = comm.allmax_f64(t0.elapsed().as_secs_f64());

        // BTIO's verification phase: read the final step back through the
        // same view and compare against the in-memory interior.
        let mut read_secs = 0.0f64;
        if cfg2.io_enabled && cfg2.verify_read && cfg2.nsteps > 0 {
            let mut scratch = vec![0u8; grid.bytes().len()];
            comm.barrier();
            let t_rd = Instant::now();
            let last = (cfg2.nsteps as u64 - 1) * step_etypes;
            f.read_at_all(last, &mut scratch, 1, &mt)
                .expect("read_at_all");
            read_secs = comm.allmax_f64(t_rd.elapsed().as_secs_f64());
            // compare at the memtype's data positions only
            let mine = grid.bytes();
            for run in lio_datatype::typemap::expand(&mt, 1) {
                let o = run.disp as usize;
                assert_eq!(
                    &scratch[o..o + run.len as usize],
                    &mine[o..o + run.len as usize],
                    "read-back mismatch at run {run:?}"
                );
            }
        }
        let io = comm.allmax_f64(io_secs);
        (total, io, read_secs, checksum)
    });

    let (total_secs, io_secs, read_secs, checksum) = results[0];
    let bytes_written = if cfg.io_enabled {
        volume_stats(cfg.class, cfg.nsteps as u64).drun
    } else {
        0
    };
    RunResult {
        total_secs,
        io_secs,
        read_secs,
        bytes_written,
        io_bandwidth_mbs: if io_secs > 0.0 {
            bytes_written as f64 / io_secs / 1.0e6
        } else {
            0.0
        },
        checksum,
    }
}

/// Verify a BTIO output file written with `compute_sweeps = 0` (so every
/// step carries the initial values): each step's image must hold
/// [`expected_value`] at every point of the sampled planes. Returns the
/// number of doubles checked.
pub fn verify_file(shared: &SharedFile, class: Class, nsteps: usize) -> u64 {
    let n = class.n();
    let step_bytes = n * n * n * (NVARS as u64) * 8;
    assert_eq!(
        shared.len(),
        step_bytes * nsteps as u64,
        "file size mismatch"
    );
    let row_bytes = (n * (NVARS as u64) * 8) as usize;
    let mut buf = vec![0u8; row_bytes];
    let mut checked = 0u64;
    for step in 0..nsteps as u64 {
        // check two z-planes per step (first and last) to bound cost
        for z in [0, n - 1] {
            for y in 0..n {
                let off = step * step_bytes + ((z * n + y) * n) * (NVARS as u64) * 8;
                shared.storage().read_at(off, &mut buf).expect("read row");
                for x in 0..n {
                    for v in 0..NVARS {
                        let o = (x * NVARS as u64 + v as u64) as usize * 8;
                        let got = f64::from_le_bytes(buf[o..o + 8].try_into().expect("f64"));
                        let want = expected_value(z, y, x, v);
                        assert_eq!(got, want, "step {step} point ({z},{y},{x})[{v}]");
                        checked += 1;
                    }
                }
            }
        }
    }
    checked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_sizes() {
        assert_eq!(Class::B.n(), 102);
        assert_eq!(Class::C.n(), 162);
        assert_eq!(Class::parse("b"), Some(Class::B));
        assert_eq!(Class::parse("x"), None);
    }

    #[test]
    fn table1_volumes() {
        // Table 1: class B Dstep = 42 MB, Drun = 1.7 GB; class C 170 MB / 6.8 GB
        let b = volume_stats(Class::B, 40);
        assert_eq!(b.dstep, 102 * 102 * 102 * 40);
        assert!((b.dstep as f64 / 1e6 - 42.4).abs() < 0.5);
        assert!((b.drun as f64 / 1e9 - 1.7).abs() < 0.05);
        let c = volume_stats(Class::C, 40);
        assert!((c.dstep as f64 / 1e6 - 170.0).abs() < 1.0);
        assert!((c.drun as f64 / 1e9 - 6.8).abs() < 0.1);
    }

    #[test]
    fn class_s_roundtrip_both_engines() {
        for engine in [Engine::ListBased, Engine::Listless] {
            let shared = SharedFile::new(MemFile::new());
            let mut cfg = Config::new(Class::S, 4);
            cfg.nsteps = 3;
            cfg.compute_sweeps = 0; // keep initial values for verification
            cfg.engine = engine;
            let r = run_on(&cfg, shared.clone());
            assert_eq!(r.bytes_written, volume_stats(Class::S, 3).drun);
            assert!(r.total_secs > 0.0);
            let checked = verify_file(&shared, Class::S, 3);
            assert!(checked > 0);
        }
    }

    #[test]
    fn both_engines_write_identical_files() {
        let mut snaps = Vec::new();
        for engine in [Engine::ListBased, Engine::Listless] {
            let shared = SharedFile::new(MemFile::new());
            let mut cfg = Config::new(Class::S, 4);
            cfg.nsteps = 2;
            cfg.compute_sweeps = 1; // relaxed values, still deterministic
            cfg.engine = engine;
            run_on(&cfg, shared.clone());
            let mut snap = vec![0u8; shared.len() as usize];
            shared.storage().read_at(0, &mut snap).unwrap();
            snaps.push(snap);
        }
        assert_eq!(snaps[0], snaps[1]);
    }

    #[test]
    fn single_process_btio() {
        let shared = SharedFile::new(MemFile::new());
        let mut cfg = Config::new(Class::S, 1);
        cfg.nsteps = 2;
        cfg.compute_sweeps = 0;
        run_on(&cfg, shared.clone());
        verify_file(&shared, Class::S, 2);
    }

    #[test]
    fn nine_processes_btio() {
        let shared = SharedFile::new(MemFile::new());
        let mut cfg = Config::new(Class::S, 9);
        cfg.nsteps = 1;
        cfg.compute_sweeps = 0;
        run_on(&cfg, shared.clone());
        verify_file(&shared, Class::S, 1);
    }

    #[test]
    fn io_disabled_writes_nothing() {
        let shared = SharedFile::new(MemFile::new());
        let mut cfg = Config::new(Class::S, 4);
        cfg.nsteps = 2;
        cfg.io_enabled = false;
        let r = run_on(&cfg, shared.clone());
        assert_eq!(shared.len(), 0);
        assert_eq!(r.bytes_written, 0);
        assert_eq!(r.io_secs, 0.0);
    }

    #[test]
    fn read_back_verification_passes() {
        for engine in [Engine::ListBased, Engine::Listless] {
            let mut cfg = Config::new(Class::S, 4);
            cfg.nsteps = 3;
            cfg.compute_sweeps = 2;
            cfg.engine = engine;
            cfg.verify_read = true;
            let r = run(&cfg);
            assert!(r.read_secs > 0.0, "read phase must have been timed");
        }
    }

    #[test]
    fn checksum_independent_of_engine_and_io() {
        let mut cfg = Config::new(Class::S, 4);
        cfg.nsteps = 2;
        cfg.compute_sweeps = 2;
        let a = run(&cfg);
        cfg.engine = Engine::ListBased;
        let b = run(&cfg);
        cfg.io_enabled = false;
        let c = run(&cfg);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(b.checksum, c.checksum);
    }
}
