//! BTIO's datatypes: the file and memory subarray types.
//!
//! BTIO describes each process's share of the solution file with one
//! derived datatype (built from `MPI_Type_create_subarray`) and its
//! in-memory layout with another, then writes each time step with a
//! single collective call — "a good example of the advantage of assigning
//! as much of an I/O task as possible to the MPI library" (Section 4.2).

use lio_datatype::{Datatype, Field, Order};

use crate::decomp::Decomp;
use crate::grid::{padded, Grid, GHOST, NVARS};

/// One grid point on file: 5 doubles.
pub fn point_type() -> Datatype {
    Datatype::basic((NVARS * 8) as u32)
}

/// The filetype of rank `p`: the overlay of its `q` cell subarrays within
/// the global `N³` array of points.
pub fn filetype(d: &Decomp, p: usize) -> Datatype {
    let n = d.n;
    let elem = point_type();
    let fields: Vec<Field> = d
        .cells_of(p)
        .iter()
        .map(|cell| Field {
            disp: 0,
            count: 1,
            child: Datatype::subarray(&[n, n, n], &cell.size, &cell.start, Order::C, &elem)
                .expect("cell subarray"),
        })
        .collect();
    let merged = Datatype::struct_type(fields).expect("filetype struct");
    // all subarrays carry the full-array extent; keep it explicit
    Datatype::resized(&merged, 0, n * n * n * (NVARS as u64 * 8)).expect("filetype extent")
}

/// The memtype of rank `p`: the interiors of its cells within their
/// ghost-padded storage.
pub fn memtype(grid: &Grid) -> Datatype {
    let elem = point_type();
    let fields: Vec<Field> = grid
        .cells
        .iter()
        .zip(&grid.cell_base)
        .map(|(cell, &base)| {
            let pd = padded(cell);
            Field {
                disp: base as i64 * 8,
                count: 1,
                child: Datatype::subarray(&pd, &cell.size, &[GHOST, GHOST, GHOST], Order::C, &elem)
                    .expect("cell interior subarray"),
            }
        })
        .collect();
    Datatype::struct_type(fields).expect("memtype struct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lio_datatype::OlList;

    #[test]
    fn filetype_covers_owned_points() {
        let d = Decomp::new(12, 4).unwrap();
        for p in 0..4 {
            let ft = filetype(&d, p);
            assert_eq!(ft.size(), d.points() / 4 * 40);
            assert_eq!(ft.extent(), d.points() * 40);
            assert!(ft.is_monotone(), "rank {p} filetype not monotone");
            assert!(ft.valid_as_filetype().is_ok());
        }
    }

    #[test]
    fn filetypes_of_all_ranks_tile_the_file() {
        let d = Decomp::new(8, 4).unwrap();
        let mut covered = vec![false; (d.points() * 40) as usize];
        for p in 0..4 {
            let ft = filetype(&d, p);
            for seg in &OlList::flatten(&ft, 1).segs {
                for b in seg.offset..seg.offset + seg.len as i64 {
                    assert!(!covered[b as usize], "byte {b} covered twice");
                    covered[b as usize] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "file not fully covered");
    }

    #[test]
    fn filetype_block_structure_matches_table2() {
        let d = Decomp::new(102, 4).unwrap();
        let ft = filetype(&d, 0);
        let list = OlList::flatten(&ft, 1);
        let (nblock, sblock) = d.access_pattern(0);
        assert_eq!(list.num_blocks() as u64, nblock); // 5202
        assert_eq!(list.segs[0].len as f64, sblock); // 2040
    }

    #[test]
    fn memtype_skips_ghosts() {
        let d = Decomp::new(8, 4).unwrap();
        let g = Grid::new(&d, 2);
        let mt = memtype(&g);
        assert_eq!(mt.size(), g.points() * 40);
        // extent fits in the storage
        assert!(mt.data_ub() as usize <= g.data.len() * 8);
        assert!(!mt.is_contiguous());
    }

    #[test]
    fn memtype_first_run_is_an_x_row() {
        let d = Decomp::new(8, 4).unwrap();
        let g = Grid::new(&d, 0);
        let mt = memtype(&g);
        let list = OlList::flatten(&mt, 1);
        // first run: one x-row of the first cell interior
        assert_eq!(list.segs[0].len, g.cells[0].size[2] * 40);
        // it starts after one ghost plane + one ghost row + one ghost point
        let pd = padded(&g.cells[0]);
        let want = ((pd[1] + 1) * pd[2] + 1) as i64 * 40;
        assert_eq!(list.segs[0].offset, want);
    }
}
