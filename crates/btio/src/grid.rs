//! Per-process grid storage and the stand-in compute phase.
//!
//! Each process stores its `q` cells consecutively. A cell holds
//! `(cz+2)·(cy+2)·(cx+2)` points of 5 doubles — one layer of ghost points
//! per side, as in BT — so the *interior* the process writes to the file
//! is non-contiguous in memory and BTIO's subarray memtype is genuinely
//! exercised.
//!
//! The compute phase is a 7-point stencil relaxation over the 5-vector,
//! standing in for BT's ADI solver (see DESIGN.md for the substitution
//! argument): it touches the same working set with a comparable memory
//! access pattern, and its per-step cost is calibrated by `sweeps`.

use crate::decomp::{Cell, Decomp};

/// Ghost layers per side.
pub const GHOST: u64 = 1;
/// Solution components per grid point.
pub const NVARS: usize = 5;

/// One process's share of the solution array.
pub struct Grid {
    /// The owning rank's cells (interior shapes).
    pub cells: Vec<Cell>,
    /// Byte offset of each cell's storage within `data`.
    pub cell_base: Vec<usize>,
    /// All cells' storage, ghost points included, `f64` values.
    pub data: Vec<f64>,
}

/// Storage dimensions of a cell including ghosts, `[z, y, x]`.
pub fn padded(cell: &Cell) -> [u64; 3] {
    [
        cell.size[0] + 2 * GHOST,
        cell.size[1] + 2 * GHOST,
        cell.size[2] + 2 * GHOST,
    ]
}

impl Grid {
    /// Allocate the grid for rank `p` of decomposition `d`.
    pub fn new(d: &Decomp, p: usize) -> Grid {
        let cells = d.cells_of(p);
        let mut cell_base = Vec::with_capacity(cells.len());
        let mut total = 0usize;
        for c in &cells {
            cell_base.push(total);
            let pd = padded(c);
            total += (pd[0] * pd[1] * pd[2]) as usize * NVARS;
        }
        Grid {
            cells,
            cell_base,
            data: vec![0.0; total],
        }
    }

    /// Initialize every interior point to a deterministic function of its
    /// global coordinates (BT's `initialize` analogue; also the basis for
    /// output verification).
    pub fn initialize(&mut self) {
        for ci in 0..self.cells.len() {
            let cell = self.cells[ci];
            let base = self.cell_base[ci];
            let pd = padded(&cell);
            for z in 0..cell.size[0] {
                for y in 0..cell.size[1] {
                    for x in 0..cell.size[2] {
                        let gz = cell.start[0] + z;
                        let gy = cell.start[1] + y;
                        let gx = cell.start[2] + x;
                        let idx = point_index(base, pd, z + GHOST, y + GHOST, x + GHOST);
                        for v in 0..NVARS {
                            self.data[idx + v] = expected_value(gz, gy, gx, v);
                        }
                    }
                }
            }
        }
    }

    /// One compute step: `sweeps` relaxation sweeps over every cell.
    /// Returns a residual-like checksum so the work cannot be optimized
    /// away.
    pub fn relax(&mut self, sweeps: usize) -> f64 {
        let mut acc = 0.0f64;
        for _ in 0..sweeps {
            for ci in 0..self.cells.len() {
                let cell = self.cells[ci];
                let base = self.cell_base[ci];
                let pd = padded(&cell);
                for z in GHOST..cell.size[0] + GHOST {
                    for y in GHOST..cell.size[1] + GHOST {
                        for x in GHOST..cell.size[2] + GHOST {
                            let i = point_index(base, pd, z, y, x);
                            let xs = (pd[2] as usize) * NVARS;
                            let ys = (pd[1] * pd[2]) as usize * NVARS;
                            for v in 0..NVARS {
                                let c = self.data[i + v];
                                let n = self.data[i + v - xs]
                                    + self.data[i + v + xs]
                                    + self.data[i + v - ys]
                                    + self.data[i + v + ys]
                                    + self.data[i + v - NVARS]
                                    + self.data[i + v + NVARS];
                                let updated = 0.4 * c + 0.1 * n;
                                self.data[i + v] = updated;
                                acc += updated;
                            }
                        }
                    }
                }
            }
        }
        acc
    }

    /// Interior points owned by this rank.
    pub fn points(&self) -> u64 {
        self.cells.iter().map(|c| c.points()).sum()
    }

    /// The raw storage as bytes (for use as the I/O user buffer).
    pub fn bytes(&self) -> &[u8] {
        let ptr = self.data.as_ptr().cast::<u8>();
        // SAFETY: f64 has no padding or invalid bit patterns as bytes; the
        // slice covers exactly the Vec's initialized storage.
        unsafe { std::slice::from_raw_parts(ptr, self.data.len() * 8) }
    }

    /// The raw storage as mutable bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        let ptr = self.data.as_mut_ptr().cast::<u8>();
        // SAFETY: every byte pattern is a valid f64 byte; exclusive borrow.
        unsafe { std::slice::from_raw_parts_mut(ptr, self.data.len() * 8) }
    }
}

/// Flat index of component 0 of point `(z, y, x)` (padded-local
/// coordinates) in a cell based at `base` with padded dims `pd`.
#[inline]
pub fn point_index(base: usize, pd: [u64; 3], z: u64, y: u64, x: u64) -> usize {
    base + ((z * pd[1] + y) * pd[2] + x) as usize * NVARS
}

/// The deterministic initial value of component `v` at global point
/// `(z, y, x)` — the verification oracle.
#[inline]
pub fn expected_value(z: u64, y: u64, x: u64, v: usize) -> f64 {
    (z as f64) * 1.0e6 + (y as f64) * 1.0e3 + (x as f64) + (v as f64) * 0.125
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_allocates_all_cells() {
        let d = Decomp::new(12, 4).unwrap();
        let g = Grid::new(&d, 0);
        assert_eq!(g.cells.len(), 2);
        assert_eq!(g.points(), 12 * 12 * 12 / 4);
        let padded_total: usize = g
            .cells
            .iter()
            .map(|c| {
                let pd = padded(c);
                (pd[0] * pd[1] * pd[2]) as usize * NVARS
            })
            .sum();
        assert_eq!(g.data.len(), padded_total);
    }

    #[test]
    fn initialize_sets_interior_only() {
        let d = Decomp::new(8, 4).unwrap();
        let mut g = Grid::new(&d, 1);
        g.initialize();
        // ghost corners stay zero
        assert_eq!(g.data[0], 0.0);
        // an interior point holds the oracle value
        let cell = g.cells[0];
        let pd = padded(&cell);
        let idx = point_index(g.cell_base[0], pd, GHOST, GHOST, GHOST);
        assert_eq!(
            g.data[idx],
            expected_value(cell.start[0], cell.start[1], cell.start[2], 0)
        );
        assert_eq!(
            g.data[idx + 3],
            expected_value(cell.start[0], cell.start[1], cell.start[2], 3)
        );
    }

    #[test]
    fn relax_changes_data_and_returns_checksum() {
        let d = Decomp::new(8, 1).unwrap();
        let mut g = Grid::new(&d, 0);
        g.initialize();
        let before = g.data.clone();
        let r1 = g.relax(1);
        assert_ne!(g.data, before);
        assert!(r1.is_finite());
        let r2 = g.relax(1);
        assert_ne!(r1, r2);
    }

    #[test]
    fn bytes_roundtrip() {
        let d = Decomp::new(8, 1).unwrap();
        let mut g = Grid::new(&d, 0);
        g.initialize();
        let copy = g.bytes().to_vec();
        g.bytes_mut().copy_from_slice(&copy);
        let idx = point_index(g.cell_base[0], padded(&g.cells[0]), GHOST, GHOST, GHOST);
        assert_eq!(g.data[idx], expected_value(0, 0, 0, 0));
    }
}
