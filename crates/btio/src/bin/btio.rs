//! CLI for the BTIO kernel.
//!
//! ```text
//! btio --class B --procs 4 --steps 40 --engine listless --sweeps 1
//! btio --class B --procs 4 --no-io          # the t_no-io baseline
//! ```

use lio_btio::{run, volume_stats, Class, Config, Engine};

fn usage() -> ! {
    eprintln!(
        "usage: btio [--class S|A|B|C|D] [--procs N(square)] [--steps N] \
         [--engine list-based|listless] [--sweeps N] [--no-io]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = Config::new(Class::S, 4);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = || -> String { args.next().unwrap_or_else(|| usage()) };
        match arg.as_str() {
            "--class" => cfg.class = Class::parse(&val()).unwrap_or_else(|| usage()),
            "--procs" => cfg.nprocs = val().parse().unwrap_or_else(|_| usage()),
            "--steps" => cfg.nsteps = val().parse().unwrap_or_else(|_| usage()),
            "--sweeps" => cfg.compute_sweeps = val().parse().unwrap_or_else(|_| usage()),
            "--engine" => {
                cfg.engine = match val().as_str() {
                    "list-based" => Engine::ListBased,
                    "listless" => Engine::Listless,
                    _ => usage(),
                }
            }
            "--no-io" => cfg.io_enabled = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let v = volume_stats(cfg.class, cfg.nsteps as u64);
    println!(
        "BTIO class {} on {} procs, {} steps, engine {:?}, io {}",
        cfg.class.name(),
        cfg.nprocs,
        cfg.nsteps,
        cfg.engine,
        cfg.io_enabled,
    );
    println!(
        "  Dstep = {:.1} MB, Drun = {:.2} GB",
        v.dstep as f64 / 1e6,
        v.drun as f64 / 1e9
    );
    let r = run(&cfg);
    println!(
        "  total = {:.3}s  io = {:.3}s  B_io = {:.0} MB/s  checksum = {:e}",
        r.total_secs, r.io_secs, r.io_bandwidth_mbs, r.checksum
    );
}
