//! # lio-testkit — deterministic fault-schedule corpus helpers
//!
//! The differential fault corpus (`crates/core/tests/faults.rs`) runs
//! every engine against seeded storage and communication fault plans and
//! pins the result byte-for-byte against the naive reference. This crate
//! owns the seed discipline so every test binary derives *the same*
//! schedule from *the same* seed:
//!
//! * [`env_seed`] reads `LIO_FAULT_SEED=<n>` — set it to replay exactly
//!   the schedule a CI failure printed;
//! * [`corpus_seeds`] yields the fixed corpus, or just the env seed when
//!   one is given;
//! * [`fault_plan`] / [`comm_fault_plan`] map a seed to the storage and
//!   per-rank communication plans;
//! * [`repro_hint`] renders the one-line repro command tests embed in
//!   their assertion messages.
//!
//! The RNG here is the same xorshift64* used by the injectors, so helper
//! code that needs auxiliary randomness (payload patterns, sizes) stays
//! deterministic per seed too.

use lio_mpi::CommFaultPlan;
use lio_pfs::decorate::FaultPlan;

/// Seeds every CI run exercises. Three is enough to cover the
/// short/transient/reorder interactions without dominating test time;
/// ci.sh adds a rotating fourth derived from the commit hash.
pub const FIXED_SEEDS: [u64; 3] = [7, 0xBAD5EED, 0x5C03_2003];

/// The `LIO_FAULT_SEED` environment override, if set and parseable.
///
/// Accepts decimal (`LIO_FAULT_SEED=12345`) or hex with an `0x` prefix.
pub fn env_seed() -> Option<u64> {
    let v = std::env::var("LIO_FAULT_SEED").ok()?;
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// The seeds a corpus run should iterate: just the env seed when
/// `LIO_FAULT_SEED` is set (exact replay), the fixed corpus otherwise.
pub fn corpus_seeds() -> Vec<u64> {
    match env_seed() {
        Some(s) => vec![s],
        None => FIXED_SEEDS.to_vec(),
    }
}

/// The storage fault plan for a corpus seed: short transfers, bounded
/// transient-error runs, no permanent faults (those get dedicated
/// crash-consistency tests, not differential ones).
pub fn fault_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
}

/// The communication fault plan for a corpus seed on one rank. Mixing
/// the rank in decorrelates the per-endpoint schedules while keeping
/// each a pure function of `(seed, rank)`.
pub fn comm_fault_plan(seed: u64, rank: usize) -> CommFaultPlan {
    CommFaultPlan::seeded(seed ^ (0x9E37_79B9_7F4A_7C15u64.rotate_left(rank as u32)))
}

/// One-line replay command for a failing seed; embed this in assertion
/// messages so a CI failure is reproducible from the log alone.
pub fn repro_hint(seed: u64) -> String {
    format!("replay with: LIO_FAULT_SEED={seed} cargo test -p lio-core --test faults")
}

/// Where a seeded stall wedges a rank. Only phases every rank passes
/// through on every collective (with `cb_nodes = 0`, all ranks are both
/// AP and IOP) are eligible, so the plan never targets a phase the
/// victim rank would skip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallPhase {
    /// Wedge on an exchange-side heartbeat (send/receive path).
    Exchange,
    /// Wedge on a storage-side heartbeat (window read/write path).
    Io,
}

/// A seeded hang: exactly one rank stops making progress in one phase of
/// one collective, for `hold_ms` (or until the watchdog flags it —
/// whichever comes first). Pure function of the seed, like the fault
/// plans, so a CI log's seed replays the exact hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallPlan {
    pub rank: u32,
    pub phase: StallPhase,
    pub hold_ms: u64,
}

/// The stall plan for a corpus seed and world size.
pub fn stall_plan(seed: u64, nprocs: usize) -> StallPlan {
    let mut rng = Rng::new(seed ^ 0x5741_4348_444F_4721); // "WATCHDOG!"
    StallPlan {
        rank: rng.below(nprocs as u64) as u32,
        phase: if rng.below(2) == 0 {
            StallPhase::Exchange
        } else {
            StallPhase::Io
        },
        // long enough that only the watchdog (not the hold expiry)
        // releases the wedge in hang-detection tests
        hold_ms: 2_000 + rng.below(2_000),
    }
}

/// The xorshift64* generator the fault injectors use, for test helpers
/// that need auxiliary per-seed randomness (patterns, lengths, rank
/// counts) without reaching for a global RNG.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded so that nearby seeds (0, 1, 2, ...) still produce
    /// decorrelated streams.
    pub fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_seed_parses_decimal_and_hex() {
        // Serialized env manipulation confined to one test.
        std::env::set_var("LIO_FAULT_SEED", "12345");
        assert_eq!(env_seed(), Some(12345));
        std::env::set_var("LIO_FAULT_SEED", "0xBEEF");
        assert_eq!(env_seed(), Some(0xBEEF));
        std::env::set_var("LIO_FAULT_SEED", "not a seed");
        assert_eq!(env_seed(), None);
        std::env::remove_var("LIO_FAULT_SEED");
        assert_eq!(env_seed(), None);
        assert_eq!(corpus_seeds(), FIXED_SEEDS.to_vec());
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        assert_eq!(fault_plan(42), fault_plan(42));
        assert_eq!(comm_fault_plan(42, 3), comm_fault_plan(42, 3));
        assert_ne!(
            comm_fault_plan(42, 0).seed,
            comm_fault_plan(42, 1).seed,
            "ranks must not share a communication schedule"
        );
        assert!(fault_plan(7).is_active());
    }

    #[test]
    fn rng_streams_decorrelate_nearby_seeds() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::new(1);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::new(2);
                move |_| r.next_u64()
            })
            .collect();
        assert_ne!(a, b);
        assert!(Rng::new(9).below(10) < 10);
    }

    #[test]
    fn repro_hint_names_the_seed() {
        assert!(repro_hint(99).contains("LIO_FAULT_SEED=99"));
    }

    #[test]
    fn stall_plans_are_deterministic_and_in_range() {
        for &seed in &FIXED_SEEDS {
            let p = stall_plan(seed, 4);
            assert_eq!(p, stall_plan(seed, 4), "same seed, same hang");
            assert!(p.rank < 4);
            assert!(p.hold_ms >= 2_000);
        }
        // different seeds should not all pick the same victim
        let ranks: Vec<u32> = (0..16).map(|s| stall_plan(s, 4).rank).collect();
        assert!(ranks.iter().any(|&r| r != ranks[0]));
    }
}
