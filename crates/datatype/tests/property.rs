//! Property-based differential tests: random datatype trees are checked
//! against the naive reference typemap expansion, and the listless
//! (flattening-on-the-fly) machinery is checked against the list-based
//! (ol-list) machinery. If these two ever disagree, one of the paper's two
//! I/O engines is wrong.

use lio_datatype::typemap::{expand, expand_merged, merge, reference_pack};
use lio_datatype::{
    bytes_below_tiled, ff_extent, ff_offset, ff_pack, ff_size, ff_unpack, serialize, Datatype,
    Field, FlatIter, OlList, Run,
};
use proptest::prelude::*;

/// Strategy for an arbitrary (possibly non-monotone) datatype tree with a
/// bounded number of leaf runs.
fn arb_type(depth: u32) -> BoxedStrategy<Datatype> {
    let leaf = (1u32..=16).prop_map(Datatype::basic);
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_type(depth - 1);
    prop_oneof![
        4 => leaf,
        2 => (1u64..=4, sub.clone()).prop_map(|(c, t)| Datatype::contiguous(c, &t).unwrap()),
        3 => (1u64..=4, 1u64..=3, 0i64..=6, sub.clone())
            .prop_map(|(c, b, s, t)| Datatype::vector(c, b, s, &t).unwrap()),
        2 => (proptest::collection::vec((1u64..=3, 0i64..=12), 1..4), sub.clone()).prop_map(
            |(blocks, t)| {
                let lens: Vec<u64> = blocks.iter().map(|b| b.0).collect();
                let disps: Vec<i64> = blocks.iter().map(|b| b.1).collect();
                Datatype::indexed(&lens, &disps, &t).unwrap()
            }
        ),
        2 => (proptest::collection::vec((0i64..=64, 1u64..=3), 1..4), sub.clone()).prop_map(
            |(fields, t)| {
                let fields = fields
                    .into_iter()
                    .map(|(disp, count)| Field {
                        disp,
                        count,
                        child: t.clone(),
                    })
                    .collect();
                Datatype::struct_type(fields).unwrap()
            }
        ),
        1 => (sub.clone(), 0u64..=16).prop_map(|(t, pad)| {
            let ext = (t.data_ub() - t.data_lb().min(0)).max(0) as u64 + pad;
            Datatype::resized(&t, 0, ext.max(1)).unwrap()
        }),
    ]
    .boxed()
}

/// A monotone filetype-like datatype: strictly forward-moving layout.
fn arb_monotone(depth: u32) -> BoxedStrategy<Datatype> {
    arb_type(depth)
        .prop_filter("monotone with data", |d| d.is_monotone() && d.size() > 0)
        .boxed()
}

/// Shift a type so that all its data displacements are non-negative, and
/// report a buffer size covering it for `count` instances.
fn buffer_span(d: &Datatype, count: u64) -> (i64, usize) {
    let ext = d.extent() as i64;
    let mut lo = i64::MAX;
    let mut hi = 0i64;
    for i in 0..count as i64 {
        lo = lo.min(i * ext + d.data_lb());
        hi = hi.max(i * ext + d.data_ub());
    }
    if lo == i64::MAX {
        (0, 0)
    } else {
        (lo.min(0), (hi - lo.min(0)).max(0) as usize)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// FlatIter (merged) must equal the reference typemap (merged).
    #[test]
    fn flatiter_matches_reference(d in arb_type(3), count in 1u64..4) {
        let got = merge(FlatIter::new(&d, count).collect());
        let want = expand_merged(&d, count);
        prop_assert_eq!(got, want);
    }

    /// OlList::flatten must equal the reference typemap (merged).
    #[test]
    fn flatten_matches_reference(d in arb_type(3), count in 1u64..4) {
        let l = OlList::flatten(&d, count);
        let want = expand_merged(&d, count);
        prop_assert_eq!(l.segs.len(), want.len());
        for (s, r) in l.segs.iter().zip(&want) {
            prop_assert_eq!(s.offset, r.disp);
            prop_assert_eq!(s.len, r.len);
        }
    }

    /// Seeking with FlatIter must drop exactly the first `skip` bytes.
    #[test]
    fn flatiter_skip_consistent(d in arb_type(3), count in 1u64..3, frac in 0.0f64..1.0) {
        let total = d.size() * count;
        prop_assume!(total > 0);
        let skip = ((total as f64) * frac) as u64;
        let mut want = Vec::new();
        let mut remaining = skip;
        for r in expand(&d, count) {
            if remaining >= r.len {
                remaining -= r.len;
            } else {
                want.push(Run { disp: r.disp + remaining as i64, len: r.len - remaining });
                remaining = 0;
            }
        }
        let got = merge(FlatIter::with_skip(&d, count, skip).collect());
        prop_assert_eq!(got, merge(want));
    }

    /// ff_pack must equal the reference pack for every skip/cap split, and
    /// the ol-list pack must agree with both.
    #[test]
    fn pack_engines_agree(d in arb_type(3), count in 1u64..3, frac in 0.0f64..1.0) {
        let (origin, span) = buffer_span(&d, count);
        prop_assume!(origin == 0); // negative displacements need windowed packing
        prop_assume!(span > 0 && span < 1 << 20);
        let src: Vec<u8> = (0..span).map(|i| (i % 251) as u8).collect();
        let want = reference_pack(&src, &d, count);
        let total = d.size() * count;
        let skip = ((total as f64) * frac) as u64;

        let mut ff = vec![0u8; (total - skip) as usize];
        let n = ff_pack(&src, count, &d, skip, &mut ff);
        prop_assert_eq!(n as u64, total - skip);
        prop_assert_eq!(&ff[..], &want[skip as usize..]);

        let ol = OlList::flatten(&d, count);
        let mut lb = vec![0u8; (total - skip) as usize];
        let m = ol.pack(&src, skip, &mut lb);
        prop_assert_eq!(m as u64, total - skip);
        prop_assert_eq!(lb, ff);
    }

    /// Unpacking what was packed restores the original data runs,
    /// through both engines.
    #[test]
    fn unpack_roundtrip_engines(d in arb_type(3), count in 1u64..3) {
        let (origin, span) = buffer_span(&d, count);
        prop_assume!(origin == 0);
        prop_assume!(span > 0 && span < 1 << 20);
        let src: Vec<u8> = (0..span).map(|i| (i % 241) as u8).collect();
        let packed = reference_pack(&src, &d, count);

        let mut ff_dst = vec![0u8; span];
        ff_unpack(&packed, &mut ff_dst, count, &d, 0);
        let ol = OlList::flatten(&d, count);
        let mut ol_dst = vec![0u8; span];
        ol.unpack(&packed, &mut ol_dst, 0);
        prop_assert_eq!(&ff_dst, &ol_dst);
        // data positions hold source data (non-overlapping types only:
        // merged reference runs must not overlap for this check)
        let runs = expand_merged(&d, count);
        let non_overlapping = runs.windows(2).all(|w| w[0].disp + w[0].len as i64 <= w[1].disp);
        if non_overlapping {
            for r in &runs {
                let o = r.disp as usize;
                prop_assert_eq!(&ff_dst[o..o + r.len as usize], &src[o..o + r.len as usize]);
            }
        }
    }

    /// ff navigation must agree with linear ol-list navigation on monotone
    /// types: offset_of, size_in_window.
    #[test]
    fn navigation_engines_agree(d in arb_monotone(3), frac in 0.0f64..1.0, extent in 0u64..256) {
        // ff navigation works on the unbounded tiled layout; flatten enough
        // instances to cover the probed window
        let insts = extent / d.extent().max(1) + 2;
        let ol = OlList::flatten(&d, insts);
        let total = d.size() * insts;
        let skip = ((total as f64) * frac) as u64;
        if skip < total {
            prop_assert_eq!(Some(ff_offset(&d, skip)), ol.offset_of(skip));
        }
        // window starting at the data start
        let lo = ff_offset(&d, 0);
        prop_assert_eq!(
            ff_size(&d, 0, extent),
            ol.size_in_window(lo, lo + extent as i64)
        );
    }

    /// bytes_below_tiled is the exact inverse of ff_offset.
    #[test]
    fn offset_inverse(d in arb_monotone(3), n in 0u64..512) {
        let p = ff_offset(&d, n);
        prop_assert_eq!(bytes_below_tiled(&d, p), n);
        prop_assert_eq!(bytes_below_tiled(&d, p + 1), n + 1);
    }

    /// ff_extent and ff_size compose exactly on monotone types.
    #[test]
    fn size_extent_compose(d in arb_monotone(3), skip in 0u64..128, size in 1u64..256) {
        let e = ff_extent(&d, skip, size);
        prop_assert_eq!(ff_size(&d, skip, e), size);
    }

    /// Serialization round-trips structurally.
    #[test]
    fn serialize_roundtrip(d in arb_type(4)) {
        let bytes = serialize::encode(&d);
        let back = serialize::decode(&bytes).unwrap();
        prop_assert!(d.structurally_equal(&back));
        prop_assert_eq!(d.size(), back.size());
        prop_assert_eq!(d.extent(), back.extent());
        prop_assert_eq!(d.lb(), back.lb());
        prop_assert_eq!(d.ub(), back.ub());
        prop_assert_eq!(d.leaf_runs(), back.leaf_runs());
    }

    /// Cached metadata is consistent with the reference expansion.
    #[test]
    fn metadata_consistent(d in arb_type(3)) {
        let runs = expand(&d, 1);
        let total: u64 = runs.iter().map(|r| r.len).sum();
        prop_assert_eq!(total, d.size());
        prop_assert_eq!(runs.len() as u64, d.leaf_runs());
        if !runs.is_empty() {
            let lo = runs.iter().map(|r| r.disp).min().unwrap();
            let hi = runs.iter().map(|r| r.disp + r.len as i64).max().unwrap();
            prop_assert_eq!(lo, d.data_lb());
            prop_assert_eq!(hi, d.data_ub());
        }
        // single_run claim must be accurate
        if let Some(s) = d.single_run() {
            let merged = expand_merged(&d, 1);
            prop_assert_eq!(merged.len(), 1);
            prop_assert_eq!(merged[0].disp, s);
            prop_assert_eq!(merged[0].len, d.size());
        }
        // monotone claim must never be a false positive
        if d.is_monotone() {
            let mut prev = i64::MIN;
            let mut sorted = true;
            for r in &runs {
                if r.disp < prev || r.disp < 0 {
                    sorted = false;
                    break;
                }
                prev = r.disp + r.len as i64;
            }
            prop_assert!(sorted, "monotone type with unsorted runs: {:?}", runs);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// darray types of all ranks partition the global array: every element
    /// owned exactly once, regardless of distribution mix.
    #[test]
    fn darray_partitions(
        g0 in 1u64..12, g1 in 1u64..12,
        p0 in 1u64..3, p1 in 1u64..3,
        d0 in 0usize..3, d1 in 0usize..3,
        b0 in 1u64..4, b1 in 1u64..4,
    ) {
        use lio_datatype::{darray, Distrib};
        use lio_datatype::Order;
        let pick = |d: usize, b: u64, p: u64| match d {
            0 if p == 1 => Distrib::None,
            0 => Distrib::Block,
            1 => Distrib::Block,
            _ => Distrib::Cyclic(b),
        };
        let distribs = [pick(d0, b0, p0), pick(d1, b1, p1)];
        let psizes = [p0, p1];
        let gsizes = [g0, g1];
        let nprocs = p0 * p1;
        let total = (g0 * g1) as usize;
        let mut covered = vec![false; total];
        for rank in 0..nprocs {
            let t = darray(nprocs, rank, &gsizes, &distribs, &psizes, Order::C, &Datatype::byte())
                .unwrap();
            prop_assert_eq!(t.extent() as usize, total);
            prop_assert!(t.is_monotone());
            for r in expand(&t, 1) {
                for k in 0..r.len as i64 {
                    let el = (r.disp + k) as usize;
                    prop_assert!(!covered[el], "element {} owned twice", el);
                    covered[el] = true;
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c), "array not fully covered");
    }

    /// as_strided, when present, describes exactly the same bytes as the
    /// reference typemap.
    #[test]
    fn strided_spec_matches_typemap(d in arb_type(3)) {
        if let Some(spec) = d.as_strided() {
            let mut from_spec: Vec<(i64, i64)> = Vec::new();
            for j in 0..spec.count as i64 {
                from_spec.push((spec.base + j * spec.stride, spec.block as i64));
            }
            let mut spec_bytes: Vec<i64> = from_spec
                .iter()
                .flat_map(|&(o, l)| o..o + l)
                .collect();
            spec_bytes.sort_unstable();
            let mut map_bytes: Vec<i64> = expand(&d, 1)
                .iter()
                .flat_map(|r| r.disp..r.disp + r.len as i64)
                .collect();
            map_bytes.sort_unstable();
            prop_assert_eq!(spec_bytes, map_bytes);
        }
    }
}
