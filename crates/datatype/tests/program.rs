//! Differential corpus for the compiled run programs and the sharded
//! pack/unpack: for random monotone datatype trees × random skips ×
//! shard counts {1, 2, 3, 8}, the compiled program, the naive tree
//! walk, and the sharded copy must produce byte-identical streams.
//!
//! Seeding follows the fault-corpus convention from `lio-testkit`:
//! `LIO_FAULT_SEED` replays one seed exactly, otherwise the fixed
//! corpus runs, and every assertion message carries a one-line replay
//! command so a CI failure is reproducible from the log alone.

use lio_datatype::{
    ff_offset, ff_pack, ff_pack_shards, ff_unpack, ff_unpack_shards, Datatype, Field, FlatIter,
};
use lio_testkit::{corpus_seeds, Rng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];
const CASES_PER_SEED: u64 = 48;

fn replay(seed: u64, case: u64) -> String {
    format!(
        "replay with: LIO_FAULT_SEED={seed} cargo test -p lio-datatype --test program (case {case})"
    )
}

/// A random monotone datatype with non-negative data displacements —
/// the shape sharding supports. Rejection-samples from a generator
/// biased toward nesting (the case the compiled program exists for).
fn arb_monotone(rng: &mut Rng, depth: u32) -> Datatype {
    loop {
        let d = gen_type(rng, depth);
        if d.is_monotone() && d.size() > 0 && d.data_lb() >= 0 {
            return d;
        }
    }
}

fn gen_type(rng: &mut Rng, depth: u32) -> Datatype {
    if depth == 0 {
        return Datatype::basic((1 + rng.below(16)) as u32);
    }
    match rng.below(12) {
        0..=2 => Datatype::basic((1 + rng.below(16)) as u32),
        3..=4 => {
            let t = gen_type(rng, depth - 1);
            Datatype::contiguous(1 + rng.below(4), &t).unwrap()
        }
        5..=7 => {
            let t = gen_type(rng, depth - 1);
            // stride ≥ blocklen keeps vectors monotone-friendly
            let blocklen = 1 + rng.below(3);
            let stride = blocklen + rng.below(4);
            Datatype::vector(1 + rng.below(4), blocklen, stride as i64, &t).unwrap()
        }
        8..=9 => {
            let t = gen_type(rng, depth - 1);
            let n = (1 + rng.below(3)) as usize;
            let mut disp = 0i64;
            let mut lens = Vec::with_capacity(n);
            let mut disps = Vec::with_capacity(n);
            for _ in 0..n {
                let len = 1 + rng.below(3);
                disps.push(disp);
                lens.push(len);
                // next block starts after this one, plus a random gap
                disp += (len * t.extent().max(1) + rng.below(9)) as i64;
            }
            Datatype::indexed(&lens, &disps, &t).unwrap()
        }
        10 => {
            let t = gen_type(rng, depth - 1);
            let n = (1 + rng.below(3)) as usize;
            let mut disp = 0i64;
            let fields = (0..n)
                .map(|_| {
                    let count = 1 + rng.below(3);
                    let f = Field {
                        disp,
                        count,
                        child: t.clone(),
                    };
                    disp += (count * t.extent().max(1) + rng.below(9)) as i64;
                    f
                })
                .collect();
            Datatype::struct_type(fields).unwrap()
        }
        _ => {
            let t = gen_type(rng, depth - 1);
            let ext = t.data_ub().max(1) as u64 + rng.below(17);
            Datatype::resized(&t, 0, ext).unwrap()
        }
    }
}

/// The tree-walk baseline: pack by iterating merged leaf runs.
fn treewalk_pack(src: &[u8], count: u64, d: &Datatype, skip: u64, out: &mut [u8]) -> usize {
    let mut cursor = 0;
    for run in FlatIter::with_skip(d, count, skip) {
        if cursor == out.len() {
            break;
        }
        let n = (run.len as usize).min(out.len() - cursor);
        let s = run.disp as usize;
        out[cursor..cursor + n].copy_from_slice(&src[s..s + n]);
        cursor += n;
    }
    cursor
}

/// Buffer size covering `count` instances of a non-negative-data type.
fn span_of(d: &Datatype, count: u64) -> usize {
    ((count as i64 - 1) * d.extent() as i64 + d.data_ub()).max(0) as usize
}

/// compiled ≡ tree walk ≡ sharded, byte-for-byte, on the pack side.
#[test]
fn pack_compiled_treewalk_sharded_agree() {
    for seed in corpus_seeds() {
        for case in 0..CASES_PER_SEED {
            let mut rng = Rng::new(seed.rotate_left(17) ^ (case.wrapping_mul(0xD1B5)));
            let d = arb_monotone(&mut rng, 1 + (case % 3) as u32);
            let count = 1 + rng.below(3);
            let total = d.size() * count;
            let span = span_of(&d, count);
            if span == 0 || span >= 1 << 22 {
                continue;
            }
            let src: Vec<u8> = (0..span).map(|i| (i % 251) as u8).collect();
            let skip = rng.below(total + 1);
            let want_len = (total - skip) as usize;

            // tree-walk baseline
            let mut walk = vec![0u8; want_len];
            let n = treewalk_pack(&src, count, &d, skip, &mut walk);
            assert_eq!(n, want_len, "tree walk short; {}", replay(seed, case));

            // compiled program, invoked directly so even strided-
            // reducible types exercise the program interpreter
            let mut prog = vec![0u8; want_len];
            let (n, _) = d.program().pack_into(&src, 0, count, skip, &mut prog);
            assert_eq!(n, want_len, "compiled short; {}", replay(seed, case));
            assert_eq!(
                prog,
                walk,
                "compiled ≠ tree walk for {d:?} skip {skip}; {}",
                replay(seed, case)
            );

            // the public entry (strided fast path or program)
            let mut public = vec![0u8; want_len];
            ff_pack(&src, count, &d, skip, &mut public);
            assert_eq!(
                public,
                walk,
                "ff_pack ≠ tree walk for {d:?} skip {skip}; {}",
                replay(seed, case)
            );

            // sharded, every shard count
            for &nsh in &SHARD_COUNTS {
                let mut sharded = vec![0u8; want_len];
                let n = ff_pack_shards(&src, count, &d, skip, &mut sharded, nsh);
                assert_eq!(n, want_len, "sharded short; {}", replay(seed, case));
                assert_eq!(
                    sharded,
                    walk,
                    "{nsh}-shard pack ≠ tree walk for {d:?} skip {skip}; {}",
                    replay(seed, case)
                );
            }
        }
    }
}

/// sharded unpack ≡ single-threaded unpack, byte-for-byte, for every
/// shard count — including the positions the type never touches.
#[test]
fn unpack_sharded_agrees_with_single() {
    for seed in corpus_seeds() {
        for case in 0..CASES_PER_SEED {
            let mut rng = Rng::new(seed.rotate_left(29) ^ (case.wrapping_mul(0xB5D1)));
            let d = arb_monotone(&mut rng, 1 + (case % 3) as u32);
            let count = 1 + rng.below(3);
            let total = d.size() * count;
            let span = span_of(&d, count);
            if span == 0 || span >= 1 << 22 {
                continue;
            }
            let skip = rng.below(total + 1);
            let stream: Vec<u8> = (0..(total - skip) as usize)
                .map(|i| (i % 239) as u8)
                .collect();

            let mut single = vec![0xAAu8; span];
            let n = ff_unpack(&stream, &mut single, count, &d, skip);
            assert_eq!(
                n,
                stream.len(),
                "single unpack short; {}",
                replay(seed, case)
            );

            for &nsh in &SHARD_COUNTS {
                let mut sharded = vec![0xAAu8; span];
                let n = ff_unpack_shards(&stream, &mut sharded, count, &d, skip, nsh);
                assert_eq!(n, stream.len(), "sharded short; {}", replay(seed, case));
                assert_eq!(
                    sharded,
                    single,
                    "{nsh}-shard unpack ≠ single for {d:?} skip {skip}; {}",
                    replay(seed, case)
                );
            }
        }
    }
}

/// Shard-boundary edge cases, pinned explicitly rather than left to the
/// random corpus: a skip landing exactly on an instance boundary, shard
/// boundaries landing inside a block, and zero-length shards when the
/// copy is smaller than the shard count.
#[test]
fn shard_boundary_edge_cases() {
    // 4 blocks of 6 bytes, stride 10 → size 24, extent 36
    let d = Datatype::vector(4, 6, 10, &Datatype::byte()).unwrap();
    let count = 5u64;
    let span = span_of(&d, count);
    let src: Vec<u8> = (0..span).map(|i| (i % 251) as u8).collect();
    let total = d.size() * count;

    // skip exactly on an instance boundary: shard 0 starts at instance 2
    let skip = 2 * d.size();
    let mut want = vec![0u8; (total - skip) as usize];
    ff_pack(&src, count, &d, skip, &mut want);
    for nsh in [2usize, 3, 8] {
        let mut got = vec![0u8; want.len()];
        assert_eq!(
            ff_pack_shards(&src, count, &d, skip, &mut got, nsh),
            want.len()
        );
        assert_eq!(got, want, "{nsh} shards, skip on instance boundary");
    }

    // 72 data bytes across 5 shards: boundaries at 14.4-byte intervals,
    // i.e. inside 6-byte blocks, never aligned
    let mut want = vec![0u8; total as usize];
    ff_pack(&src, count, &d, 0, &mut want);
    let mut got = vec![0u8; total as usize];
    assert_eq!(ff_pack_shards(&src, count, &d, 0, &mut got, 5), want.len());
    assert_eq!(got, want, "shard boundaries inside blocks");

    // len < shards: zero-length shards must spawn no worker and copy
    // everything exactly once
    let tiny = Datatype::vector(3, 1, 4, &Datatype::byte()).unwrap();
    let tsrc: Vec<u8> = (0..tiny.extent() as usize).map(|i| i as u8).collect();
    let mut want = vec![0u8; 3];
    ff_pack(&tsrc, 1, &tiny, 0, &mut want);
    let mut got = vec![0u8; 3];
    assert_eq!(ff_pack_shards(&tsrc, 1, &tiny, 0, &mut got, 8), 3);
    assert_eq!(got, want, "3-byte copy across 8 shards");
    let mut dst = vec![0u8; tiny.extent() as usize];
    assert_eq!(ff_unpack_shards(&want, &mut dst, 1, &tiny, 0, 8), 3);
    let mut dst_single = vec![0u8; tiny.extent() as usize];
    ff_unpack(&want, &mut dst_single, 1, &tiny, 0);
    assert_eq!(dst, dst_single, "tiny sharded unpack");

    // unpack shard destinations are carved at ff_offset boundaries:
    // verify the carve math on a skip that is not block-aligned
    let skip = 7u64;
    let stream: Vec<u8> = (0..(total - skip) as usize).map(|i| i as u8).collect();
    let mut single = vec![0u8; span];
    ff_unpack(&stream, &mut single, count, &d, skip);
    for nsh in [2usize, 3, 8] {
        let mut sharded = vec![0u8; span];
        assert_eq!(
            ff_unpack_shards(&stream, &mut sharded, count, &d, skip, nsh),
            stream.len()
        );
        assert_eq!(sharded, single, "{nsh}-shard unpack, unaligned skip");
        // spot-check a boundary position really belongs to the right shard
        let lo = stream.len() as u64 / nsh as u64;
        if lo > 0 && lo < stream.len() as u64 {
            let p = ff_offset(&d, skip + lo) as usize;
            assert_eq!(
                sharded[p], stream[lo as usize],
                "boundary byte, {nsh} shards"
            );
        }
    }
}
