//! Differential corpus for the compiled run programs and the sharded
//! pack/unpack: for random monotone datatype trees × random skips ×
//! shard counts {1, 2, 3, 8}, the compiled program, the naive tree
//! walk, and the sharded copy must produce byte-identical streams.
//!
//! Seeding follows the fault-corpus convention from `lio-testkit`:
//! `LIO_FAULT_SEED` replays one seed exactly, otherwise the fixed
//! corpus runs, and every assertion message carries a one-line replay
//! command so a CI failure is reproducible from the log alone.

use lio_datatype::kernels::{self, Mode};
use lio_datatype::{
    ff_offset, ff_pack, ff_pack_shards, ff_unpack, ff_unpack_shards, Datatype, Field, FlatIter,
    RunProgram,
};
use lio_testkit::{corpus_seeds, Rng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];
const CASES_PER_SEED: u64 = 48;

fn replay(seed: u64, case: u64) -> String {
    format!(
        "replay with: LIO_FAULT_SEED={seed} cargo test -p lio-datatype --test program (case {case})"
    )
}

/// A random monotone datatype with non-negative data displacements —
/// the shape sharding supports. Rejection-samples from a generator
/// biased toward nesting (the case the compiled program exists for).
fn arb_monotone(rng: &mut Rng, depth: u32) -> Datatype {
    loop {
        let d = gen_type(rng, depth);
        if d.is_monotone() && d.size() > 0 && d.data_lb() >= 0 {
            return d;
        }
    }
}

fn gen_type(rng: &mut Rng, depth: u32) -> Datatype {
    if depth == 0 {
        return Datatype::basic((1 + rng.below(16)) as u32);
    }
    match rng.below(12) {
        0..=2 => Datatype::basic((1 + rng.below(16)) as u32),
        3..=4 => {
            let t = gen_type(rng, depth - 1);
            Datatype::contiguous(1 + rng.below(4), &t).unwrap()
        }
        5..=7 => {
            let t = gen_type(rng, depth - 1);
            // stride ≥ blocklen keeps vectors monotone-friendly
            let blocklen = 1 + rng.below(3);
            let stride = blocklen + rng.below(4);
            Datatype::vector(1 + rng.below(4), blocklen, stride as i64, &t).unwrap()
        }
        8..=9 => {
            let t = gen_type(rng, depth - 1);
            let n = (1 + rng.below(3)) as usize;
            let mut disp = 0i64;
            let mut lens = Vec::with_capacity(n);
            let mut disps = Vec::with_capacity(n);
            for _ in 0..n {
                let len = 1 + rng.below(3);
                disps.push(disp);
                lens.push(len);
                // next block starts after this one, plus a random gap
                disp += (len * t.extent().max(1) + rng.below(9)) as i64;
            }
            Datatype::indexed(&lens, &disps, &t).unwrap()
        }
        10 => {
            let t = gen_type(rng, depth - 1);
            let n = (1 + rng.below(3)) as usize;
            let mut disp = 0i64;
            let fields = (0..n)
                .map(|_| {
                    let count = 1 + rng.below(3);
                    let f = Field {
                        disp,
                        count,
                        child: t.clone(),
                    };
                    disp += (count * t.extent().max(1) + rng.below(9)) as i64;
                    f
                })
                .collect();
            Datatype::struct_type(fields).unwrap()
        }
        _ => {
            let t = gen_type(rng, depth - 1);
            let ext = t.data_ub().max(1) as u64 + rng.below(17);
            Datatype::resized(&t, 0, ext).unwrap()
        }
    }
}

/// The tree-walk baseline: pack by iterating merged leaf runs.
fn treewalk_pack(src: &[u8], count: u64, d: &Datatype, skip: u64, out: &mut [u8]) -> usize {
    let mut cursor = 0;
    for run in FlatIter::with_skip(d, count, skip) {
        if cursor == out.len() {
            break;
        }
        let n = (run.len as usize).min(out.len() - cursor);
        let s = run.disp as usize;
        out[cursor..cursor + n].copy_from_slice(&src[s..s + n]);
        cursor += n;
    }
    cursor
}

/// Buffer size covering `count` instances of a non-negative-data type.
fn span_of(d: &Datatype, count: u64) -> usize {
    ((count as i64 - 1) * d.extent() as i64 + d.data_ub()).max(0) as usize
}

/// compiled ≡ tree walk ≡ sharded, byte-for-byte, on the pack side.
#[test]
fn pack_compiled_treewalk_sharded_agree() {
    for seed in corpus_seeds() {
        for case in 0..CASES_PER_SEED {
            let mut rng = Rng::new(seed.rotate_left(17) ^ (case.wrapping_mul(0xD1B5)));
            let d = arb_monotone(&mut rng, 1 + (case % 3) as u32);
            let count = 1 + rng.below(3);
            let total = d.size() * count;
            let span = span_of(&d, count);
            if span == 0 || span >= 1 << 22 {
                continue;
            }
            let src: Vec<u8> = (0..span).map(|i| (i % 251) as u8).collect();
            let skip = rng.below(total + 1);
            let want_len = (total - skip) as usize;

            // tree-walk baseline
            let mut walk = vec![0u8; want_len];
            let n = treewalk_pack(&src, count, &d, skip, &mut walk);
            assert_eq!(n, want_len, "tree walk short; {}", replay(seed, case));

            // compiled program, invoked directly so even strided-
            // reducible types exercise the program interpreter
            let mut prog = vec![0u8; want_len];
            let (n, _) = d.program().pack_into(&src, 0, count, skip, &mut prog);
            assert_eq!(n, want_len, "compiled short; {}", replay(seed, case));
            assert_eq!(
                prog,
                walk,
                "compiled ≠ tree walk for {d:?} skip {skip}; {}",
                replay(seed, case)
            );

            // the public entry (strided fast path or program)
            let mut public = vec![0u8; want_len];
            ff_pack(&src, count, &d, skip, &mut public);
            assert_eq!(
                public,
                walk,
                "ff_pack ≠ tree walk for {d:?} skip {skip}; {}",
                replay(seed, case)
            );

            // sharded, every shard count
            for &nsh in &SHARD_COUNTS {
                let mut sharded = vec![0u8; want_len];
                let n = ff_pack_shards(&src, count, &d, skip, &mut sharded, nsh);
                assert_eq!(n, want_len, "sharded short; {}", replay(seed, case));
                assert_eq!(
                    sharded,
                    walk,
                    "{nsh}-shard pack ≠ tree walk for {d:?} skip {skip}; {}",
                    replay(seed, case)
                );
            }
        }
    }
}

/// sharded unpack ≡ single-threaded unpack, byte-for-byte, for every
/// shard count — including the positions the type never touches.
#[test]
fn unpack_sharded_agrees_with_single() {
    for seed in corpus_seeds() {
        for case in 0..CASES_PER_SEED {
            let mut rng = Rng::new(seed.rotate_left(29) ^ (case.wrapping_mul(0xB5D1)));
            let d = arb_monotone(&mut rng, 1 + (case % 3) as u32);
            let count = 1 + rng.below(3);
            let total = d.size() * count;
            let span = span_of(&d, count);
            if span == 0 || span >= 1 << 22 {
                continue;
            }
            let skip = rng.below(total + 1);
            let stream: Vec<u8> = (0..(total - skip) as usize)
                .map(|i| (i % 239) as u8)
                .collect();

            let mut single = vec![0xAAu8; span];
            let n = ff_unpack(&stream, &mut single, count, &d, skip);
            assert_eq!(
                n,
                stream.len(),
                "single unpack short; {}",
                replay(seed, case)
            );

            for &nsh in &SHARD_COUNTS {
                let mut sharded = vec![0xAAu8; span];
                let n = ff_unpack_shards(&stream, &mut sharded, count, &d, skip, nsh);
                assert_eq!(n, stream.len(), "sharded short; {}", replay(seed, case));
                assert_eq!(
                    sharded,
                    single,
                    "{nsh}-shard unpack ≠ single for {d:?} skip {skip}; {}",
                    replay(seed, case)
                );
            }
        }
    }
}

/// Every forced kernel family must produce byte-for-byte the stream the
/// tree walk produces, across random monotone trees × skips 0..16. The
/// kernel mode is process-global and the guarantee is bit-identity, so
/// flipping it here cannot perturb the concurrently running tests.
#[test]
fn forced_kernels_bit_identical() {
    for seed in corpus_seeds() {
        for case in 0..12u64 {
            let mut rng = Rng::new(seed.rotate_left(43) ^ (case.wrapping_mul(0x9E37)));
            let d = arb_monotone(&mut rng, 1 + (case % 3) as u32);
            let count = 1 + rng.below(3);
            let total = d.size() * count;
            let span = span_of(&d, count);
            if span == 0 || span >= 1 << 22 {
                continue;
            }
            let src: Vec<u8> = (0..span).map(|i| (i % 251) as u8).collect();
            let prog = d.program();
            for skip in (0..16u64).filter(|s| *s < total) {
                let want_len = (total - skip) as usize;
                let mut walk = vec![0u8; want_len];
                treewalk_pack(&src, count, &d, skip, &mut walk);

                // scalar unpack is the scatter reference for the families
                kernels::force(Mode::Scalar);
                let mut scalar_dst = vec![0xAAu8; span];
                prog.unpack_into(&walk, &mut scalar_dst, 0, count, skip);

                for &m in Mode::ALL.iter() {
                    kernels::force(m);
                    let mut packed = vec![0u8; want_len];
                    let (n, _) = prog.pack_into(&src, 0, count, skip, &mut packed);
                    assert_eq!(
                        n,
                        want_len,
                        "{} pack short for {d:?} skip {skip}; {}",
                        m.name(),
                        replay(seed, case)
                    );
                    assert_eq!(
                        packed,
                        walk,
                        "{} pack ≠ tree walk for {d:?} skip {skip}; {}",
                        m.name(),
                        replay(seed, case)
                    );
                    let mut dst = vec![0xAAu8; span];
                    let (n, _) = prog.unpack_into(&walk, &mut dst, 0, count, skip);
                    assert_eq!(
                        n,
                        want_len,
                        "{} unpack short for {d:?} skip {skip}; {}",
                        m.name(),
                        replay(seed, case)
                    );
                    assert_eq!(
                        dst,
                        scalar_dst,
                        "{} unpack ≠ scalar for {d:?} skip {skip}; {}",
                        m.name(),
                        replay(seed, case)
                    );
                }
                kernels::force(Mode::Auto);
            }
        }
    }
}

/// The normalization pass, pinned to exact frame shapes via
/// [`RunProgram::describe`]. Each case is a layout the raw compiler
/// cannot reduce (`as_strided` gives up on the irregularity) but the
/// pass rewrites into canonical strided form.
#[test]
fn normalization_pinned_shapes() {
    // exact-shape pin + correctness: the normalized program must still
    // pack exactly what the tree walk packs
    let check = |name: &str, d: &Datatype, want: &str, min_rw: u32| {
        let p = RunProgram::compile(d);
        assert_eq!(p.describe(), want, "{name}: frame shape");
        assert!(
            p.rewrites() >= min_rw,
            "{name}: expected ≥{min_rw} rewrites, got {}",
            p.rewrites()
        );
        let span = span_of(d, 1);
        let src: Vec<u8> = (0..span).map(|i| (i % 251) as u8).collect();
        let mut walk = vec![0u8; d.size() as usize];
        treewalk_pack(&src, 1, d, 0, &mut walk);
        let mut prog = vec![0u8; d.size() as usize];
        p.pack_into(&src, 0, 1, 0, &mut prog);
        assert_eq!(prog, walk, "{name}: normalized program corrupts data");
    };

    // ragged tail split: three identical strided rows at a regular step
    // fold into one maximal Blocks prefix, the short trailing field
    // stays as the literal tail
    let row = Datatype::vector(4, 1, 2, &Datatype::basic(8)).unwrap();
    let ragged = Datatype::struct_type(vec![
        Field {
            disp: 0,
            count: 1,
            child: row.clone(),
        },
        Field {
            disp: 64,
            count: 1,
            child: row.clone(),
        },
        Field {
            disp: 128,
            count: 1,
            child: row.clone(),
        },
        Field {
            disp: 200,
            count: 1,
            child: Datatype::basic(8),
        },
    ])
    .unwrap();
    check(
        "ragged_tail",
        &ragged,
        "T[@0 B(0,16,8,12); @200 B(0,8,8,1)]",
        2,
    );

    // adjacent-block merge: two touching 8-byte blocks become one
    // 16-byte block; the outlier at 32 keeps the tail alive
    let touching = Datatype::hindexed(&[1, 1, 1], &[0, 8, 32], &Datatype::basic(8)).unwrap();
    check(
        "adjacent_merge",
        &touching,
        "T[@0 B(0,16,16,1); @32 B(0,8,8,1)]",
        1,
    );

    // stride == block collapse: a dense run of four 8-byte blocks
    // merges into a single 32-byte block
    let dense_run =
        Datatype::hindexed(&[1, 1, 1, 1, 1], &[0, 8, 16, 24, 100], &Datatype::basic(8)).unwrap();
    check(
        "dense_run_collapse",
        &dense_run,
        "T[@0 B(0,32,32,1); @100 B(0,8,8,1)]",
        3,
    );

    // equal-displacement struct fields: four identical strided fields at
    // a 32-byte step refold into a Loop over one Blocks frame
    let elem = Datatype::vector(2, 1, 3, &Datatype::basic(4)).unwrap();
    let fields = Datatype::struct_type(
        (0..4)
            .map(|i| Field {
                disp: i * 32,
                count: 1,
                child: elem.clone(),
            })
            .collect(),
    )
    .unwrap();
    check("equal_disp_struct", &fields, "L(0,4,32,8)[B(0,12,4,2)]", 2);

    // vector-of-vector built raggedly (hindexed rows at a step that
    // breaks cross-row stride regularity): the pass folds the 8 equal
    // parts into Loop{Blocks} — the shape BENCH_pack's kernels eat
    let lens = [1u64; 8];
    let disps: Vec<i64> = (0..8).map(|i| i * 100).collect();
    let vv = Datatype::hindexed(&lens, &disps, &row).unwrap();
    check("vv_ragged", &vv, "L(0,8,100,32)[B(0,16,8,4)]", 2);

    // BTIO-style tile as a struct of explicit planes: plane = 4 rows of
    // 16 B at 64-byte pitch, planes 512 B apart
    let plane_lens = [1u64; 4];
    let plane_disps: Vec<i64> = (0..4).map(|i| i * 64).collect();
    let plane = Datatype::hindexed(&plane_lens, &plane_disps, &Datatype::basic(16)).unwrap();
    let tile = Datatype::struct_type(vec![
        Field {
            disp: 0,
            count: 1,
            child: plane.clone(),
        },
        Field {
            disp: 512,
            count: 1,
            child: plane,
        },
    ])
    .unwrap();
    check("btio_struct_tile", &tile, "L(0,2,512,64)[B(0,64,16,4)]", 2);

    // already-canonical shapes pass through untouched
    let v = Datatype::vector(4, 2, 2, &Datatype::basic(8)).unwrap();
    let p = RunProgram::compile(&v);
    assert_eq!(p.describe(), "B(0,64,64,1)");
    assert_eq!(p.rewrites(), 0, "dense vector is canonical at compile");
}

/// Shard-boundary edge cases, pinned explicitly rather than left to the
/// random corpus: a skip landing exactly on an instance boundary, shard
/// boundaries landing inside a block, and zero-length shards when the
/// copy is smaller than the shard count.
#[test]
fn shard_boundary_edge_cases() {
    // 4 blocks of 6 bytes, stride 10 → size 24, extent 36
    let d = Datatype::vector(4, 6, 10, &Datatype::byte()).unwrap();
    let count = 5u64;
    let span = span_of(&d, count);
    let src: Vec<u8> = (0..span).map(|i| (i % 251) as u8).collect();
    let total = d.size() * count;

    // skip exactly on an instance boundary: shard 0 starts at instance 2
    let skip = 2 * d.size();
    let mut want = vec![0u8; (total - skip) as usize];
    ff_pack(&src, count, &d, skip, &mut want);
    for nsh in [2usize, 3, 8] {
        let mut got = vec![0u8; want.len()];
        assert_eq!(
            ff_pack_shards(&src, count, &d, skip, &mut got, nsh),
            want.len()
        );
        assert_eq!(got, want, "{nsh} shards, skip on instance boundary");
    }

    // 72 data bytes across 5 shards: boundaries at 14.4-byte intervals,
    // i.e. inside 6-byte blocks, never aligned
    let mut want = vec![0u8; total as usize];
    ff_pack(&src, count, &d, 0, &mut want);
    let mut got = vec![0u8; total as usize];
    assert_eq!(ff_pack_shards(&src, count, &d, 0, &mut got, 5), want.len());
    assert_eq!(got, want, "shard boundaries inside blocks");

    // len < shards: zero-length shards must spawn no worker and copy
    // everything exactly once
    let tiny = Datatype::vector(3, 1, 4, &Datatype::byte()).unwrap();
    let tsrc: Vec<u8> = (0..tiny.extent() as usize).map(|i| i as u8).collect();
    let mut want = vec![0u8; 3];
    ff_pack(&tsrc, 1, &tiny, 0, &mut want);
    let mut got = vec![0u8; 3];
    assert_eq!(ff_pack_shards(&tsrc, 1, &tiny, 0, &mut got, 8), 3);
    assert_eq!(got, want, "3-byte copy across 8 shards");
    let mut dst = vec![0u8; tiny.extent() as usize];
    assert_eq!(ff_unpack_shards(&want, &mut dst, 1, &tiny, 0, 8), 3);
    let mut dst_single = vec![0u8; tiny.extent() as usize];
    ff_unpack(&want, &mut dst_single, 1, &tiny, 0);
    assert_eq!(dst, dst_single, "tiny sharded unpack");

    // unpack shard destinations are carved at ff_offset boundaries:
    // verify the carve math on a skip that is not block-aligned
    let skip = 7u64;
    let stream: Vec<u8> = (0..(total - skip) as usize).map(|i| i as u8).collect();
    let mut single = vec![0u8; span];
    ff_unpack(&stream, &mut single, count, &d, skip);
    for nsh in [2usize, 3, 8] {
        let mut sharded = vec![0u8; span];
        assert_eq!(
            ff_unpack_shards(&stream, &mut sharded, count, &d, skip, nsh),
            stream.len()
        );
        assert_eq!(sharded, single, "{nsh}-shard unpack, unaligned skip");
        // spot-check a boundary position really belongs to the right shard
        let lo = stream.len() as u64 / nsh as u64;
        if lo > 0 && lo < stream.len() as u64 {
            let p = ff_offset(&d, skip + lo) as usize;
            assert_eq!(
                sharded[p], stream[lo as usize],
                "boundary byte, {nsh} shards"
            );
        }
    }
}
