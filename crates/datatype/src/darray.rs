//! `MPI_Type_create_darray`: distributed-array filetypes.
//!
//! Builds the datatype describing one process's share of an
//! `ndims`-dimensional global array distributed over a process grid with
//! per-dimension block, cyclic(b), or replicated (none) distributions —
//! the constructor HPC applications (and the paper's "more complex
//! filetypes" outlook) use to derive fileviews for distributed arrays.
//!
//! The construction is compositional: the type for dimension `i` is built
//! over the type for dimension `i+1` (C order), with `MPI_LB`/`MPI_UB`
//! markers pinning each level's extent to the full dimension span so that
//! tiling works exactly as MPI specifies. Process-grid ordering is
//! row-major, as the MPI standard mandates for both array orders.

use crate::types::{Datatype, Field, Order, TypeError};

/// Per-dimension distribution, mirroring `MPI_DISTRIBUTE_*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distrib {
    /// `MPI_DISTRIBUTE_NONE`: the dimension is not distributed (the
    /// process grid must have size 1 there).
    None,
    /// `MPI_DISTRIBUTE_BLOCK` with `MPI_DISTRIBUTE_DFLT_DARG`:
    /// contiguous blocks of `⌈gsize/psize⌉`.
    Block,
    /// `MPI_DISTRIBUTE_BLOCK` with an explicit block size.
    BlockSized(u64),
    /// `MPI_DISTRIBUTE_CYCLIC` with block size `b` (use 1 for classic
    /// round-robin).
    Cyclic(u64),
}

/// Build the darray type for process `rank` of a grid of `psizes`
/// processes over a global array of `gsizes` elements of type `elem`.
///
/// Returns a type whose extent is the full global array, suitable as a
/// fileview filetype.
///
/// # Example
///
/// ```
/// use lio_datatype::{darray, Datatype, Distrib, Order};
///
/// // an 8x8 matrix of doubles, block rows over 4 processes
/// let d = darray(
///     4, 1,
///     &[8, 8],
///     &[Distrib::Block, Distrib::None],
///     &[4, 1],
///     Order::C,
///     &Datatype::double(),
/// ).unwrap();
/// assert_eq!(d.size(), 2 * 8 * 8);      // two rows
/// assert_eq!(d.extent(), 8 * 8 * 8);    // full matrix
/// ```
pub fn darray(
    nprocs: u64,
    rank: u64,
    gsizes: &[u64],
    distribs: &[Distrib],
    psizes: &[u64],
    order: Order,
    elem: &Datatype,
) -> Result<Datatype, TypeError> {
    let nd = gsizes.len();
    if distribs.len() != nd || psizes.len() != nd {
        return Err(TypeError::LengthMismatch {
            left: nd,
            right: distribs.len().min(psizes.len()),
        });
    }
    if nd == 0 {
        return Err(TypeError::InvalidCount("zero dimensions".into()));
    }
    let grid: u64 = psizes.iter().product();
    if grid != nprocs {
        return Err(TypeError::InvalidCount(format!(
            "process grid {psizes:?} has {grid} slots for {nprocs} processes"
        )));
    }
    if rank >= nprocs {
        return Err(TypeError::InvalidCount(format!(
            "rank {rank} out of range for {nprocs} processes"
        )));
    }
    for (i, (&d, &p)) in distribs.iter().zip(psizes).enumerate() {
        if d == Distrib::None && p != 1 {
            return Err(TypeError::InvalidCount(format!(
                "dimension {i} is not distributed but has {p} processes"
            )));
        }
        if p == 0 || gsizes[i] == 0 {
            return Err(TypeError::InvalidCount(format!(
                "dimension {i} has zero size"
            )));
        }
    }

    // Process coordinates: row-major over the grid (MPI rule), in the
    // array's dimension order.
    let mut coords = vec![0u64; nd];
    let mut rem = rank;
    for i in (0..nd).rev() {
        coords[i] = rem % psizes[i];
        rem /= psizes[i];
    }

    // Process dimensions from fastest-varying to slowest.
    let idx: Vec<usize> = match order {
        Order::C => (0..nd).rev().collect(),
        Order::Fortran => (0..nd).collect(),
    };

    let mut t = elem.clone();
    for &i in &idx {
        t = dim_type(&t, gsizes[i], distribs[i], psizes[i], coords[i])?;
    }
    Ok(t)
}

/// Apply one dimension's distribution over `child` (one "slot" of this
/// dimension, extent = span of all faster dimensions). The result's
/// extent is `gsize · slot`.
fn dim_type(
    child: &Datatype,
    gsize: u64,
    distrib: Distrib,
    psize: u64,
    coord: u64,
) -> Result<Datatype, TypeError> {
    let slot = child.extent() as i64;
    let full = gsize as i64 * slot;
    let bounded = |fields: Vec<Field>| -> Result<Datatype, TypeError> {
        let mut all = vec![Field {
            disp: 0,
            count: 1,
            child: Datatype::lb_marker(),
        }];
        all.extend(fields);
        all.push(Field {
            disp: full,
            count: 1,
            child: Datatype::ub_marker(),
        });
        Datatype::struct_type(all)
    };

    match distrib {
        Distrib::None => {
            // whole dimension, extent already gsize*slot
            Datatype::contiguous(gsize, child)
        }
        Distrib::Block | Distrib::BlockSized(_) => {
            let bsize = match distrib {
                Distrib::BlockSized(b) => b,
                _ => gsize.div_ceil(psize),
            };
            if bsize * psize < gsize {
                return Err(TypeError::InvalidCount(format!(
                    "block size {bsize} too small for {gsize} over {psize}"
                )));
            }
            let start = (coord * bsize).min(gsize);
            let len = bsize.min(gsize - start);
            bounded(vec![Field {
                disp: start as i64 * slot,
                count: len,
                child: child.clone(),
            }])
        }
        Distrib::Cyclic(b) => {
            if b == 0 {
                return Err(TypeError::InvalidCount("cyclic block size 0".into()));
            }
            // blocks start at (coord + k·psize)·b for k = 0, 1, ...
            let first = coord * b;
            if first >= gsize {
                return bounded(Vec::new());
            }
            let stride = (psize * b) as i64 * slot;
            let span = gsize - first;
            // number of (possibly partial) blocks
            let nblocks = span.div_ceil(psize * b);
            let last_start = first + (nblocks - 1) * psize * b;
            let last_len = b.min(gsize - last_start);
            let mut fields = Vec::new();
            if nblocks > 1 {
                // all but the last block are complete
                let vec_part = Datatype::hvector(nblocks - 1, b, stride, child)?;
                fields.push(Field {
                    disp: first as i64 * slot,
                    count: 1,
                    child: vec_part,
                });
            }
            fields.push(Field {
                disp: last_start as i64 * slot,
                count: last_len,
                child: child.clone(),
            });
            bounded(fields)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typemap::expand;

    /// Brute-force owner of a global index under one distribution.
    fn owner(i: u64, gsize: u64, d: Distrib, psize: u64) -> u64 {
        match d {
            Distrib::None => 0,
            Distrib::Block => i / gsize.div_ceil(psize),
            Distrib::BlockSized(b) => i / b,
            Distrib::Cyclic(b) => (i / b) % psize,
        }
    }

    /// All ranks' darray types must partition the global array exactly.
    fn check_partition(gsizes: &[u64], distribs: &[Distrib], psizes: &[u64], order: Order) {
        let nprocs: u64 = psizes.iter().product();
        let total: u64 = gsizes.iter().product();
        let esize = 4u64;
        let elem = Datatype::basic(esize as u32);
        let mut covered = vec![u64::MAX; total as usize];
        for rank in 0..nprocs {
            let t = darray(nprocs, rank, gsizes, distribs, psizes, order, &elem).unwrap();
            assert_eq!(t.extent(), total * esize, "rank {rank} extent");
            assert!(t.is_monotone(), "rank {rank} not monotone");
            for run in expand(&t, 1) {
                assert_eq!(run.disp % esize as i64, 0);
                assert_eq!(run.len % esize, 0);
                for k in 0..run.len / esize {
                    let el = run.disp as u64 / esize + k;
                    assert_eq!(covered[el as usize], u64::MAX, "element {el} claimed twice");
                    covered[el as usize] = rank;
                }
            }
        }
        // fully covered, and each element by the analytically correct rank
        let nd = gsizes.len();
        for (el, &got) in covered.iter().enumerate() {
            assert_ne!(got, u64::MAX, "element {el} unowned");
            // decode the element's global coordinates (row-major for C,
            // column-major for Fortran)
            let mut coords = vec![0u64; nd];
            let mut rem = el as u64;
            match order {
                Order::C => {
                    for i in (0..nd).rev() {
                        coords[i] = rem % gsizes[i];
                        rem /= gsizes[i];
                    }
                }
                Order::Fortran => {
                    for i in 0..nd {
                        coords[i] = rem % gsizes[i];
                        rem /= gsizes[i];
                    }
                }
            }
            // expected owner: row-major rank of per-dim owners
            let mut want = 0u64;
            for i in 0..nd {
                let o = owner(coords[i], gsizes[i], distribs[i], psizes[i]);
                want = want * psizes[i] + o;
            }
            assert_eq!(got, want, "element {el} at {coords:?}");
        }
    }

    #[test]
    fn block_block_2d() {
        check_partition(
            &[8, 12],
            &[Distrib::Block, Distrib::Block],
            &[2, 3],
            Order::C,
        );
    }

    #[test]
    fn block_rows_matches_subarray() {
        let elem = Datatype::double();
        let da = darray(
            4,
            2,
            &[8, 6],
            &[Distrib::Block, Distrib::None],
            &[4, 1],
            Order::C,
            &elem,
        )
        .unwrap();
        let sa = Datatype::subarray(&[8, 6], &[2, 6], &[4, 0], Order::C, &elem).unwrap();
        assert_eq!(da.size(), sa.size());
        assert_eq!(da.extent(), sa.extent());
        assert_eq!(expand(&da, 1), expand(&sa, 1));
    }

    #[test]
    fn cyclic_1d_round_robin() {
        check_partition(&[10], &[Distrib::Cyclic(1)], &[3], Order::C);
    }

    #[test]
    fn cyclic_blocked_1d() {
        check_partition(&[23], &[Distrib::Cyclic(4)], &[3], Order::C);
    }

    #[test]
    fn cyclic_by_block_2d_mixed() {
        check_partition(
            &[9, 10],
            &[Distrib::Cyclic(2), Distrib::Block],
            &[2, 2],
            Order::C,
        );
    }

    #[test]
    fn uneven_block_last_rank_short() {
        // gsize 10 over 4: blocks of 3,3,3,1
        check_partition(&[10], &[Distrib::Block], &[4], Order::C);
    }

    #[test]
    fn rank_with_no_elements() {
        // gsize 3 over 4 with blocks of 1: rank 3 owns nothing
        let t = darray(
            4,
            3,
            &[3],
            &[Distrib::Block],
            &[4],
            Order::C,
            &Datatype::int(),
        )
        .unwrap();
        assert_eq!(t.size(), 0);
        assert_eq!(t.extent(), 12);
    }

    #[test]
    fn fortran_order_partition() {
        check_partition(
            &[6, 8],
            &[Distrib::Block, Distrib::Cyclic(1)],
            &[2, 2],
            Order::Fortran,
        );
    }

    #[test]
    fn three_dimensional() {
        check_partition(
            &[4, 6, 5],
            &[Distrib::Block, Distrib::Cyclic(2), Distrib::None],
            &[2, 2, 1],
            Order::C,
        );
    }

    #[test]
    fn explicit_block_size() {
        check_partition(&[16], &[Distrib::BlockSized(5)], &[4], Order::C);
    }

    #[test]
    fn rejects_bad_grids() {
        let e = Datatype::int();
        assert!(darray(4, 0, &[8], &[Distrib::Block], &[3], Order::C, &e).is_err());
        assert!(darray(4, 5, &[8], &[Distrib::Block], &[4], Order::C, &e).is_err());
        assert!(darray(2, 0, &[8], &[Distrib::None], &[2], Order::C, &e).is_err());
        assert!(darray(4, 0, &[16], &[Distrib::BlockSized(2)], &[4], Order::C, &e).is_err());
    }

    #[test]
    fn usable_as_filetype() {
        let t = darray(
            4,
            1,
            &[8, 8],
            &[Distrib::Cyclic(1), Distrib::Block],
            &[2, 2],
            Order::C,
            &Datatype::double(),
        )
        .unwrap();
        assert!(t.valid_as_filetype().is_ok());
    }
}
