//! Reference typemap expansion.
//!
//! This module materializes the full MPI typemap of a datatype — every leaf
//! run as a `(displacement, length)` pair in typemap order — by plain
//! recursion, with **no** merging and no cleverness. It is `O(Nblock)` in
//! time and memory by construction and serves as the ground truth that the
//! ol-list flattener ([`crate::flatten`]) and the flattening-on-the-fly
//! machinery ([`crate::ff`]) are differentially tested against.

use crate::types::{Datatype, TypeKind};

/// One leaf run of the typemap: `len` data bytes at byte `disp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// Byte displacement relative to the buffer origin.
    pub disp: i64,
    /// Length of the run in bytes.
    pub len: u64,
}

/// Expand the full typemap of `count` instances of `d`, in typemap order,
/// without merging adjacent runs.
pub fn expand(d: &Datatype, count: u64) -> Vec<Run> {
    let mut out = Vec::new();
    let ext = d.extent() as i64;
    for i in 0..count {
        walk(d, i as i64 * ext, &mut out);
    }
    out
}

/// Expand the typemap of `count` instances and merge adjacent runs — the
/// canonical maximal-run decomposition.
pub fn expand_merged(d: &Datatype, count: u64) -> Vec<Run> {
    merge(expand(d, count))
}

/// Merge adjacent runs of a typemap-ordered run list.
pub fn merge(runs: Vec<Run>) -> Vec<Run> {
    let mut out: Vec<Run> = Vec::with_capacity(runs.len());
    for r in runs {
        if r.len == 0 {
            continue;
        }
        if let Some(last) = out.last_mut() {
            if last.disp + last.len as i64 == r.disp {
                last.len += r.len;
                continue;
            }
        }
        out.push(r);
    }
    out
}

fn walk(d: &Datatype, base: i64, out: &mut Vec<Run>) {
    match d.kind() {
        TypeKind::Basic { size } => {
            if *size > 0 {
                out.push(Run {
                    disp: base,
                    len: *size as u64,
                });
            }
        }
        TypeKind::LbMark | TypeKind::UbMark => {}
        TypeKind::Contiguous { count, child } => {
            let ext = child.extent() as i64;
            for i in 0..*count {
                walk(child, base + i as i64 * ext, out);
            }
        }
        TypeKind::Hvector {
            count,
            blocklen,
            stride,
            child,
        } => {
            let ext = child.extent() as i64;
            for i in 0..*count {
                for j in 0..*blocklen {
                    walk(child, base + i as i64 * stride + j as i64 * ext, out);
                }
            }
        }
        TypeKind::Hindexed { blocks, child } => {
            let ext = child.extent() as i64;
            for b in blocks.iter() {
                for j in 0..b.blocklen {
                    walk(child, base + b.disp + j as i64 * ext, out);
                }
            }
        }
        TypeKind::Struct { fields } => {
            for f in fields.iter() {
                let ext = f.child.extent() as i64;
                for j in 0..f.count {
                    walk(&f.child, base + f.disp + j as i64 * ext, out);
                }
            }
        }
        TypeKind::Resized { child, .. } => walk(child, base, out),
    }
}

/// Copy data **out of** a typed buffer into a packed buffer using the
/// reference typemap — the naive pack used as test oracle.
///
/// Positions index directly into `src`; the caller must ensure all
/// displacements are in range (types with negative data displacements need
/// an offset applied by the caller).
pub fn reference_pack(src: &[u8], d: &Datatype, count: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity((d.size() * count) as usize);
    for r in expand(d, count) {
        let s = r.disp as usize;
        out.extend_from_slice(&src[s..s + r.len as usize]);
    }
    out
}

/// Copy packed data **into** a typed buffer using the reference typemap —
/// the naive unpack used as test oracle.
pub fn reference_unpack(packed: &[u8], dst: &mut [u8], d: &Datatype, count: u64) {
    let mut pos = 0usize;
    for r in expand(d, count) {
        let t = r.disp as usize;
        dst[t..t + r.len as usize].copy_from_slice(&packed[pos..pos + r.len as usize]);
        pos += r.len as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Field, Order};

    #[test]
    fn expand_basic() {
        let runs = expand(&Datatype::int(), 3);
        assert_eq!(
            runs,
            vec![
                Run { disp: 0, len: 4 },
                Run { disp: 4, len: 4 },
                Run { disp: 8, len: 4 }
            ]
        );
    }

    #[test]
    fn expand_vector() {
        let d = Datatype::vector(2, 2, 3, &Datatype::int()).unwrap();
        let runs = expand(&d, 1);
        assert_eq!(
            runs,
            vec![
                Run { disp: 0, len: 4 },
                Run { disp: 4, len: 4 },
                Run { disp: 12, len: 4 },
                Run { disp: 16, len: 4 },
            ]
        );
    }

    #[test]
    fn merged_vector_combines_blocks() {
        let d = Datatype::vector(2, 2, 3, &Datatype::int()).unwrap();
        let runs = expand_merged(&d, 1);
        assert_eq!(
            runs,
            vec![Run { disp: 0, len: 8 }, Run { disp: 12, len: 8 }]
        );
    }

    #[test]
    fn merged_count_matches_size() {
        let d = Datatype::vector(5, 3, 7, &Datatype::double()).unwrap();
        let runs = expand_merged(&d, 4);
        let total: u64 = runs.iter().map(|r| r.len).sum();
        assert_eq!(total, d.size() * 4);
    }

    #[test]
    fn expand_struct_in_field_order() {
        let d = Datatype::struct_type(vec![
            Field {
                disp: 8,
                count: 1,
                child: Datatype::int(),
            },
            Field {
                disp: 0,
                count: 1,
                child: Datatype::int(),
            },
        ])
        .unwrap();
        // typemap order is field order, even when displacements decrease
        let runs = expand(&d, 1);
        assert_eq!(runs[0].disp, 8);
        assert_eq!(runs[1].disp, 0);
    }

    #[test]
    fn expand_subarray_row_runs() {
        let d = Datatype::subarray(&[4, 6], &[2, 3], &[1, 2], Order::C, &Datatype::int()).unwrap();
        let runs = expand_merged(&d, 1);
        assert_eq!(
            runs,
            vec![Run { disp: 32, len: 12 }, Run { disp: 56, len: 12 }]
        );
    }

    #[test]
    fn reference_pack_roundtrip() {
        let d = Datatype::vector(3, 1, 2, &Datatype::int()).unwrap();
        let src: Vec<u8> = (0..24u8).collect();
        let packed = reference_pack(&src, &d, 1);
        assert_eq!(packed, vec![0, 1, 2, 3, 8, 9, 10, 11, 16, 17, 18, 19]);
        let mut dst = vec![0xFFu8; 24];
        reference_unpack(&packed, &mut dst, &d, 1);
        for r in expand(&d, 1) {
            let s = r.disp as usize;
            assert_eq!(&dst[s..s + 4], &src[s..s + 4]);
        }
    }
}
