//! `FlatIter`: a lazy, seekable iterator over the contiguous runs of a
//! typed buffer.
//!
//! This is the engine room of flattening-on-the-fly. Instead of
//! materializing an ol-list of `⟨offset, length⟩` tuples (the list-based
//! approach of Section 2 of the paper), `FlatIter` walks the datatype tree
//! with an explicit frame stack:
//!
//! * construction and [`FlatIter::with_skip`] seeking cost
//!   `O(depth · log k)` where `k` bounds the fan-out of indexed/struct
//!   nodes — **independent of the block count** `Nblock`;
//! * each [`FlatIter::next_run`] call emits one maximal-granularity run in
//!   amortized `O(1)`, consolidating whole sub-trees whose data is a single
//!   run (the stand-in for the SX gather/scatter batching);
//! * no allocation is performed after construction beyond the frame stack,
//!   whose size is the tree depth.

use crate::typemap::Run;
use crate::types::{Datatype, Node, TypeKind};

/// One stack frame: a position inside `node`'s instance based at `base`.
///
/// `idx`/`idx2` decode per kind:
/// * `Contiguous`: `idx` = next child instance;
/// * `Hvector`: `idx` = next flat element index in `0..count*blocklen`;
/// * `Hindexed`: `idx` = block, `idx2` = element within block;
/// * `Struct`: `idx` = field, `idx2` = element within field;
/// * `Resized`: `idx` = 0 before descending, 1 after.
struct Frame<'a> {
    node: &'a Node,
    base: i64,
    idx: u64,
    idx2: u64,
}

/// Lazy iterator over the contiguous runs of `count` instances of a
/// datatype, in typemap order.
///
/// # Example
///
/// ```
/// use lio_datatype::{Datatype, FlatIter};
///
/// let d = Datatype::vector(2, 2, 3, &Datatype::int()).unwrap();
/// let runs: Vec<_> = FlatIter::new(&d, 1).collect();
/// assert_eq!(runs.len(), 2); // blocks of 8 bytes at 0 and 12
/// assert_eq!(runs[0].disp, 0);
/// assert_eq!(runs[0].len, 8);
/// ```
pub struct FlatIter<'a> {
    root: &'a Node,
    root_ext: i64,
    count: u64,
    /// Next root instance to start.
    inst: u64,
    frames: Vec<Frame<'a>>,
    /// A partial run produced by seeking into the middle of a leaf.
    pending: Option<Run>,
}

impl<'a> FlatIter<'a> {
    /// Iterate over all runs of `count` instances of `d`.
    pub fn new(d: &'a Datatype, count: u64) -> Self {
        FlatIter {
            root: &d.0,
            root_ext: d.extent() as i64,
            count,
            inst: 0,
            frames: Vec::with_capacity(d.depth() as usize + 1),
            pending: None,
        }
    }

    /// Iterate starting after `skipbytes` bytes of data, in
    /// `O(depth · log k)` — the flattening-on-the-fly seek that replaces
    /// the list-based `O(Nblock)` traversal.
    pub fn with_skip(d: &'a Datatype, count: u64, skipbytes: u64) -> Self {
        let mut it = FlatIter::new(d, count);
        let tsize = d.size();
        if tsize == 0 || skipbytes >= tsize.saturating_mul(count) {
            it.inst = count; // exhausted (or empty type)
            return it;
        }
        let inst = skipbytes / tsize;
        let r = skipbytes % tsize;
        if r == 0 {
            it.inst = inst;
        } else {
            it.inst = inst + 1;
            let base = inst as i64 * it.root_ext;
            it.descend(it.root, base, r);
        }
        it
    }

    /// Build the frame stack for a position `r` data bytes into the
    /// instance of `node` based at `base`; `0 < r < node.size`.
    fn descend(&mut self, node: &'a Node, base: i64, r: u64) {
        debug_assert!(r > 0 && r < node.meta.size);
        match &node.kind {
            TypeKind::Basic { size } => {
                self.pending = Some(Run {
                    disp: base + r as i64,
                    len: *size as u64 - r,
                });
            }
            TypeKind::LbMark | TypeKind::UbMark => unreachable!("markers hold no data"),
            TypeKind::Contiguous { child, .. } => {
                let csize = child.size();
                let cext = child.extent() as i64;
                let i = r / csize;
                let rr = r % csize;
                self.frames.push(Frame {
                    node,
                    base,
                    idx: if rr == 0 { i } else { i + 1 },
                    idx2: 0,
                });
                if rr != 0 {
                    self.descend(&child.0, base + i as i64 * cext, rr);
                }
            }
            TypeKind::Hvector {
                blocklen,
                stride,
                child,
                ..
            } => {
                let csize = child.size();
                let cext = child.extent() as i64;
                let k = r / csize;
                let rr = r % csize;
                self.frames.push(Frame {
                    node,
                    base,
                    idx: if rr == 0 { k } else { k + 1 },
                    idx2: 0,
                });
                if rr != 0 {
                    let i = k / blocklen;
                    let j = k % blocklen;
                    self.descend(&child.0, base + i as i64 * stride + j as i64 * cext, rr);
                }
            }
            TypeKind::Hindexed { blocks, child } => {
                let prefix = node
                    .meta
                    .size_prefix
                    .as_ref()
                    .expect("hindexed nodes carry size prefix sums");
                // Last block whose prefix is <= r.
                let b = match prefix.binary_search(&r) {
                    Ok(mut i) => {
                        // skip empty blocks that share the prefix value
                        while i < blocks.len() && prefix[i + 1] == r {
                            i += 1;
                        }
                        i
                    }
                    Err(i) => i - 1,
                };
                let csize = child.size();
                let cext = child.extent() as i64;
                let rb = r - prefix[b];
                let j = rb / csize;
                let rr = rb % csize;
                self.frames.push(Frame {
                    node,
                    base,
                    idx: b as u64,
                    idx2: if rr == 0 { j } else { j + 1 },
                });
                if rr != 0 {
                    self.descend(&child.0, base + blocks[b].disp + j as i64 * cext, rr);
                }
            }
            TypeKind::Struct { fields } => {
                let mut cum = 0u64;
                for (fi, f) in fields.iter().enumerate() {
                    let fsize = f.child.size() * f.count;
                    if fsize == 0 {
                        continue;
                    }
                    if r < cum + fsize {
                        let rf = r - cum;
                        let csize = f.child.size();
                        let cext = f.child.extent() as i64;
                        let j = rf / csize;
                        let rr = rf % csize;
                        self.frames.push(Frame {
                            node,
                            base,
                            idx: fi as u64,
                            idx2: if rr == 0 { j } else { j + 1 },
                        });
                        if rr != 0 {
                            self.descend(&f.child.0, base + f.disp + j as i64 * cext, rr);
                        }
                        return;
                    }
                    cum += fsize;
                }
                unreachable!("r < node.size implies a containing field");
            }
            TypeKind::Resized { child, .. } => {
                self.frames.push(Frame {
                    node,
                    base,
                    idx: 1,
                    idx2: 0,
                });
                self.descend(&child.0, base, r);
            }
        }
    }

    /// Emit the child instance at `base` as a single run if its data is
    /// contiguous, otherwise push a frame to walk it.
    #[inline]
    fn emit_or_push(&mut self, child: &'a Datatype, base: i64) -> Option<Run> {
        let m = &child.0.meta;
        if m.size == 0 {
            return None;
        }
        if let Some(s) = m.single_run {
            return Some(Run {
                disp: base + s,
                len: m.size,
            });
        }
        self.frames.push(Frame {
            node: &child.0,
            base,
            idx: 0,
            idx2: 0,
        });
        None
    }

    /// Produce the next contiguous run, or `None` when exhausted.
    pub fn next_run(&mut self) -> Option<Run> {
        loop {
            if let Some(run) = self.pending.take() {
                return Some(run);
            }
            if self.frames.is_empty() {
                // Start the next root instance.
                if self.inst >= self.count || self.root.meta.size == 0 {
                    return None;
                }
                let base = self.inst as i64 * self.root_ext;
                self.inst += 1;
                if let Some(s) = self.root.meta.single_run {
                    return Some(Run {
                        disp: base + s,
                        len: self.root.meta.size,
                    });
                }
                self.frames.push(Frame {
                    node: self.root,
                    base,
                    idx: 0,
                    idx2: 0,
                });
                continue;
            }

            // Phase 1: advance the top frame, computing the next step while
            // holding the only mutable borrow.
            let step = {
                let top = self.frames.last_mut().expect("checked non-empty");
                let node: &'a Node = top.node;
                let base = top.base;
                match &node.kind {
                    TypeKind::Basic { size } => {
                        // Only reachable when a Basic node ends up on the
                        // stack without consolidation; emit once and pop.
                        if top.idx >= 1 || *size == 0 {
                            Step::Pop
                        } else {
                            top.idx = 1;
                            Step::Emit(Run {
                                disp: base,
                                len: *size as u64,
                            })
                        }
                    }
                    TypeKind::LbMark | TypeKind::UbMark => Step::Pop,
                    TypeKind::Contiguous { count, child } => {
                        if top.idx >= *count {
                            Step::Pop
                        } else {
                            let i = top.idx;
                            top.idx += 1;
                            Step::Visit(child, base + i as i64 * child.extent() as i64)
                        }
                    }
                    TypeKind::Hvector {
                        count,
                        blocklen,
                        stride,
                        child,
                    } => {
                        let total = *count * *blocklen;
                        if top.idx >= total {
                            Step::Pop
                        } else {
                            let k = top.idx;
                            let i = k / *blocklen;
                            let j = k % *blocklen;
                            let m = &child.0.meta;
                            let cext = child.extent() as i64;
                            let pos = base + i as i64 * *stride + j as i64 * cext;
                            // Dense child: the rest of this block is one run.
                            match m.single_run {
                                Some(s) if m.size == cext as u64 && cext > 0 => {
                                    let remaining = *blocklen - j;
                                    top.idx += remaining;
                                    Step::Emit(Run {
                                        disp: pos + s,
                                        len: remaining * m.size,
                                    })
                                }
                                _ => {
                                    top.idx += 1;
                                    Step::Visit(child, pos)
                                }
                            }
                        }
                    }
                    TypeKind::Hindexed { blocks, child } => {
                        if top.idx as usize >= blocks.len() {
                            Step::Pop
                        } else {
                            let b = blocks[top.idx as usize];
                            if top.idx2 >= b.blocklen {
                                top.idx += 1;
                                top.idx2 = 0;
                                Step::Retry
                            } else {
                                let j = top.idx2;
                                let m = &child.0.meta;
                                let cext = child.extent() as i64;
                                let pos = base + b.disp + j as i64 * cext;
                                match m.single_run {
                                    Some(s) if m.size == cext as u64 && cext > 0 => {
                                        let remaining = b.blocklen - j;
                                        top.idx += 1;
                                        top.idx2 = 0;
                                        Step::Emit(Run {
                                            disp: pos + s,
                                            len: remaining * m.size,
                                        })
                                    }
                                    _ => {
                                        top.idx2 += 1;
                                        Step::Visit(child, pos)
                                    }
                                }
                            }
                        }
                    }
                    TypeKind::Struct { fields } => {
                        if top.idx as usize >= fields.len() {
                            Step::Pop
                        } else {
                            let f = &fields[top.idx as usize];
                            if top.idx2 >= f.count {
                                top.idx += 1;
                                top.idx2 = 0;
                                Step::Retry
                            } else {
                                let j = top.idx2;
                                let m = &f.child.0.meta;
                                let cext = f.child.extent() as i64;
                                let pos = base + f.disp + j as i64 * cext;
                                match m.single_run {
                                    Some(s) if m.size == cext as u64 && cext > 0 => {
                                        let remaining = f.count - j;
                                        top.idx += 1;
                                        top.idx2 = 0;
                                        Step::Emit(Run {
                                            disp: pos + s,
                                            len: remaining * m.size,
                                        })
                                    }
                                    _ => {
                                        top.idx2 += 1;
                                        Step::Visit(&f.child, pos)
                                    }
                                }
                            }
                        }
                    }
                    TypeKind::Resized { child, .. } => {
                        if top.idx >= 1 {
                            Step::Pop
                        } else {
                            top.idx += 1;
                            Step::Visit(child, base)
                        }
                    }
                }
            };

            // Phase 2: act on the step without an outstanding frame borrow.
            match step {
                Step::Pop => {
                    self.frames.pop();
                }
                Step::Retry => {}
                Step::Emit(run) => return Some(run),
                Step::Visit(child, pos) => {
                    if let Some(run) = self.emit_or_push(child, pos) {
                        return Some(run);
                    }
                }
            }
        }
    }
}

/// The action computed while the top frame is mutably borrowed.
enum Step<'a> {
    /// The frame is exhausted; pop it.
    Pop,
    /// Internal bookkeeping advanced; look again.
    Retry,
    /// A consolidated run is ready.
    Emit(Run),
    /// Visit a child instance at the given base (emit it whole if its data
    /// is one run, otherwise push a frame).
    Visit(&'a Datatype, i64),
}

impl<'a> Iterator for FlatIter<'a> {
    type Item = Run;

    fn next(&mut self) -> Option<Run> {
        self.next_run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typemap::{expand, expand_merged, merge};
    use crate::types::{Field, Order};

    fn collect(d: &Datatype, count: u64) -> Vec<Run> {
        FlatIter::new(d, count).collect()
    }

    /// FlatIter output, merged, must equal the merged reference typemap.
    fn assert_matches_reference(d: &Datatype, count: u64) {
        let got = merge(collect(d, count));
        let want = expand_merged(d, count);
        assert_eq!(got, want, "type {:?} count {}", d, count);
    }

    #[test]
    fn basic_runs() {
        assert_matches_reference(&Datatype::int(), 5);
    }

    #[test]
    fn vector_runs() {
        let d = Datatype::vector(3, 2, 4, &Datatype::int()).unwrap();
        assert_matches_reference(&d, 1);
        assert_matches_reference(&d, 3);
    }

    #[test]
    fn vector_block_consolidation() {
        // dense double child: one run per block, not per element
        let d = Datatype::vector(4, 8, 10, &Datatype::double()).unwrap();
        let runs = collect(&d, 1);
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[0].len, 64);
    }

    #[test]
    fn nested_vector_runs() {
        let inner = Datatype::vector(2, 1, 2, &Datatype::int()).unwrap();
        let outer = Datatype::vector(3, 2, 5, &inner).unwrap();
        assert_matches_reference(&outer, 2);
    }

    #[test]
    fn indexed_runs() {
        let d = Datatype::indexed(&[2, 3, 1], &[0, 4, 9], &Datatype::int()).unwrap();
        assert_matches_reference(&d, 2);
    }

    #[test]
    fn struct_runs_with_markers() {
        let v = Datatype::vector(2, 1, 3, &Datatype::int()).unwrap();
        let d = Datatype::struct_type(vec![
            Field {
                disp: 0,
                count: 1,
                child: Datatype::lb_marker(),
            },
            Field {
                disp: 8,
                count: 2,
                child: v,
            },
            Field {
                disp: 64,
                count: 1,
                child: Datatype::ub_marker(),
            },
        ])
        .unwrap();
        assert_matches_reference(&d, 3);
    }

    #[test]
    fn subarray_runs() {
        let d =
            Datatype::subarray(&[5, 7], &[3, 4], &[1, 2], Order::C, &Datatype::double()).unwrap();
        assert_matches_reference(&d, 2);
    }

    #[test]
    fn resized_runs() {
        let r = Datatype::resized(&Datatype::int(), 0, 12).unwrap();
        assert_matches_reference(&r, 4);
    }

    #[test]
    fn skip_zero_equals_new() {
        let d = Datatype::vector(3, 2, 4, &Datatype::int()).unwrap();
        let a: Vec<Run> = FlatIter::new(&d, 2).collect();
        let b: Vec<Run> = FlatIter::with_skip(&d, 2, 0).collect();
        assert_eq!(a, b);
    }

    /// Seeking to `skip` must yield exactly the reference runs with the
    /// first `skip` data bytes removed.
    fn assert_skip_correct(d: &Datatype, count: u64, skip: u64) {
        let reference = expand(d, count);
        // drop the first `skip` bytes from the reference
        let mut want = Vec::new();
        let mut remaining = skip;
        for r in reference {
            if remaining >= r.len {
                remaining -= r.len;
            } else {
                want.push(Run {
                    disp: r.disp + remaining as i64,
                    len: r.len - remaining,
                });
                remaining = 0;
            }
        }
        let want = merge(want);
        let got = merge(FlatIter::with_skip(d, count, skip).collect());
        assert_eq!(got, want, "type {:?} count {} skip {}", d, count, skip);
    }

    #[test]
    fn skip_every_position_vector() {
        let d = Datatype::vector(3, 2, 4, &Datatype::int()).unwrap();
        let total = d.size() * 2;
        for skip in 0..=total {
            assert_skip_correct(&d, 2, skip);
        }
    }

    #[test]
    fn skip_every_position_indexed() {
        let d = Datatype::indexed(&[2, 1, 3], &[0, 5, 8], &Datatype::int()).unwrap();
        let total = d.size() * 2;
        for skip in 0..=total {
            assert_skip_correct(&d, 2, skip);
        }
    }

    #[test]
    fn skip_every_position_struct() {
        let d = Datatype::struct_type(vec![
            Field {
                disp: 2,
                count: 3,
                child: Datatype::basic(2),
            },
            Field {
                disp: 20,
                count: 1,
                child: Datatype::vector(2, 1, 2, &Datatype::int()).unwrap(),
            },
        ])
        .unwrap();
        let total = d.size() * 2;
        for skip in 0..=total {
            assert_skip_correct(&d, 2, skip);
        }
    }

    #[test]
    fn skip_every_position_nested() {
        let inner = Datatype::vector(2, 3, 4, &Datatype::basic(2)).unwrap();
        let outer = Datatype::indexed(&[1, 2], &[0, 2], &inner).unwrap();
        let total = outer.size() * 2;
        for skip in 0..=total {
            assert_skip_correct(&outer, 2, skip);
        }
    }

    #[test]
    fn skip_past_end_is_empty() {
        let d = Datatype::vector(2, 1, 2, &Datatype::int()).unwrap();
        let runs: Vec<Run> = FlatIter::with_skip(&d, 1, d.size()).collect();
        assert!(runs.is_empty());
        let runs: Vec<Run> = FlatIter::with_skip(&d, 1, d.size() + 100).collect();
        assert!(runs.is_empty());
    }

    #[test]
    fn empty_type_yields_nothing() {
        let d = Datatype::contiguous(0, &Datatype::int()).unwrap();
        assert!(collect(&d, 5).is_empty());
        let runs: Vec<Run> = FlatIter::with_skip(&d, 5, 0).collect();
        assert!(runs.is_empty());
    }

    #[test]
    fn zero_count_yields_nothing() {
        let d = Datatype::int();
        assert!(collect(&d, 0).is_empty());
    }

    #[test]
    fn total_bytes_always_match_size() {
        let cases: Vec<Datatype> = vec![
            Datatype::vector(7, 3, 5, &Datatype::double()).unwrap(),
            Datatype::indexed(&[1, 4, 2], &[3, 6, 20], &Datatype::basic(2)).unwrap(),
            Datatype::subarray(
                &[4, 4, 4],
                &[2, 2, 2],
                &[1, 1, 1],
                Order::C,
                &Datatype::int(),
            )
            .unwrap(),
        ];
        for d in &cases {
            let total: u64 = collect(d, 3).iter().map(|r| r.len).sum();
            assert_eq!(total, d.size() * 3);
        }
    }
}
