//! Canonical strided decomposition — the flattening-on-the-fly copy
//! batching.
//!
//! The defining trick of flattening-on-the-fly (paper Section 3.1) is to
//! "identify and copy large chunks of evenly spaced, non-contiguous data"
//! and perform the actual copying "in a non-recursive loop" *outside* the
//! datatype traversal. On the SX that feeds hardware gather/scatter; on a
//! scalar machine (the companion paper's setting) it becomes a tight
//! two-level loop with precomputed base/stride/blocklen — no per-run tree
//! walking, no per-run representation reads.
//!
//! [`StridedSpec`] is that canonical form: a datatype whose single
//! instance is `count` dense blocks of `block` bytes, block `j` starting
//! at byte `base + j·stride`. Most datatypes used for fileviews in
//! practice (vectors, subarray rows, the Figure 4 struct) reduce to it;
//! types that don't simply fall back to the general [`crate::FlatIter`].

use crate::types::{Datatype, TypeKind};

/// A datatype instance as evenly spaced dense blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StridedSpec {
    /// Byte offset of block 0 relative to the instance origin.
    pub base: i64,
    /// Byte distance between consecutive block starts.
    pub stride: i64,
    /// Bytes per block.
    pub block: u64,
    /// Number of blocks per instance.
    pub count: u64,
}

impl StridedSpec {
    /// Total data bytes per instance.
    #[inline]
    pub fn size(&self) -> u64 {
        self.block * self.count
    }

    /// Fold `n` repetitions of this spec placed `step` bytes apart into a
    /// single spec, when the placement keeps blocks evenly spaced.
    fn tile(self, n: u64, step: i64) -> Option<StridedSpec> {
        if n == 0 || self.count == 0 {
            return None;
        }
        if n == 1 {
            return Some(self);
        }
        if self.count == 1 {
            // single block per repetition: blocks land at base + i*step
            if step == self.block as i64 {
                // dense: merge into one big block
                return Some(StridedSpec {
                    base: self.base,
                    stride: self.block as i64 * n as i64,
                    block: self.block * n,
                    count: 1,
                });
            }
            return Some(StridedSpec {
                base: self.base,
                stride: step,
                block: self.block,
                count: n,
            });
        }
        // multi-block repetitions stay evenly spaced only if the next
        // repetition continues the same arithmetic progression
        if step == self.stride * self.count as i64 {
            return Some(StridedSpec {
                base: self.base,
                stride: self.stride,
                block: self.block,
                count: self.count * n,
            });
        }
        None
    }

    /// Shift the whole spec by `disp` bytes.
    fn shifted(self, disp: i64) -> StridedSpec {
        StridedSpec {
            base: self.base + disp,
            ..self
        }
    }
}

impl Datatype {
    /// The canonical strided decomposition of one instance's data, if the
    /// type reduces to evenly spaced dense blocks.
    pub fn as_strided(&self) -> Option<StridedSpec> {
        if self.size() == 0 {
            return None;
        }
        match self.kind() {
            TypeKind::Basic { size } => Some(StridedSpec {
                base: 0,
                stride: *size as i64,
                block: *size as u64,
                count: 1,
            }),
            TypeKind::LbMark | TypeKind::UbMark => None,
            TypeKind::Contiguous { count, child } => {
                child.as_strided()?.tile(*count, child.extent() as i64)
            }
            TypeKind::Hvector {
                count,
                blocklen,
                stride,
                child,
            } => {
                let inner = child.as_strided()?.tile(*blocklen, child.extent() as i64)?;
                inner.tile(*count, *stride)
            }
            TypeKind::Hindexed { blocks, child } => {
                // a single explicit block reduces directly; several blocks
                // reduce iff they are equal-length and evenly spaced (the
                // `indexed_block` shape with an arithmetic displacement
                // progression)
                let first = blocks.first()?;
                let inner = child
                    .as_strided()?
                    .tile(first.blocklen, child.extent() as i64)?
                    .shifted(first.disp);
                if blocks.len() == 1 {
                    return Some(inner);
                }
                let step = blocks.get(1)?.disp - first.disp;
                let even = blocks.iter().enumerate().all(|(i, b)| {
                    b.blocklen == first.blocklen && b.disp == first.disp + i as i64 * step
                });
                if !even {
                    return None;
                }
                inner.tile(blocks.len() as u64, step)
            }
            TypeKind::Struct { fields } => {
                // exactly one data-bearing field (markers are free)
                let mut data_field = None;
                for f in fields.iter() {
                    if f.child.size() > 0 && f.count > 0 {
                        if data_field.is_some() {
                            return None;
                        }
                        data_field = Some(f);
                    }
                }
                let f = data_field?;
                f.child
                    .as_strided()?
                    .tile(f.count, f.child.extent() as i64)
                    .map(|s| s.shifted(f.disp))
            }
            TypeKind::Resized { child, .. } => child.as_strided(),
        }
    }
}

/// Pack via the strided fast path: copy `packbuf.len().min(available)`
/// bytes of the tiled layout of `spec` (instance extent `extent`)
/// starting at data offset `skip`, reading the byte at layout position
/// `p` from `src[(p - buf_disp)]`. Returns bytes copied.
///
/// The caller guarantees the source buffer covers every touched position.
pub fn strided_pack(
    spec: &StridedSpec,
    extent: u64,
    src: &[u8],
    buf_disp: i64,
    limit_bytes: u64,
    skip: u64,
    packbuf: &mut [u8],
) -> usize {
    let mut out = 0usize;
    let todo = (packbuf.len() as u64).min(limit_bytes.saturating_sub(skip)) as usize;
    // global block index and offset within it
    let mut gblock = skip / spec.block;
    let mut within = skip % spec.block;
    while out < todo {
        let inst = gblock / spec.count;
        let j = gblock % spec.count;
        let pos = inst as i64 * extent as i64 + spec.base + j as i64 * spec.stride + within as i64;
        let s = (pos - buf_disp) as usize;
        if s >= src.len() {
            break; // source window exhausted
        }
        let run = (spec.block - within) as usize;
        let n = run.min(todo - out).min(src.len() - s);
        packbuf[out..out + n].copy_from_slice(&src[s..s + n]);
        out += n;
        if n < run && out < todo {
            break; // source window ended mid-run
        }
        gblock += 1;
        within = 0;
    }
    out
}

/// Unpack via the strided fast path (inverse of [`strided_pack`]).
pub fn strided_unpack(
    spec: &StridedSpec,
    extent: u64,
    dst: &mut [u8],
    buf_disp: i64,
    limit_bytes: u64,
    skip: u64,
    packbuf: &[u8],
) -> usize {
    let mut consumed = 0usize;
    let todo = (packbuf.len() as u64).min(limit_bytes.saturating_sub(skip)) as usize;
    let mut gblock = skip / spec.block;
    let mut within = skip % spec.block;
    while consumed < todo {
        let inst = gblock / spec.count;
        let j = gblock % spec.count;
        let pos = inst as i64 * extent as i64 + spec.base + j as i64 * spec.stride + within as i64;
        let t = (pos - buf_disp) as usize;
        if t >= dst.len() {
            break; // destination window exhausted
        }
        let run = (spec.block - within) as usize;
        let n = run.min(todo - consumed).min(dst.len() - t);
        dst[t..t + n].copy_from_slice(&packbuf[consumed..consumed + n]);
        consumed += n;
        if n < run && consumed < todo {
            break; // destination window ended mid-run
        }
        gblock += 1;
        within = 0;
    }
    consumed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Field, Order};

    #[test]
    fn basic_is_one_block() {
        let s = Datatype::double().as_strided().unwrap();
        assert_eq!(
            s,
            StridedSpec {
                base: 0,
                stride: 8,
                block: 8,
                count: 1
            }
        );
    }

    #[test]
    fn contiguous_merges() {
        let d = Datatype::contiguous(10, &Datatype::int()).unwrap();
        let s = d.as_strided().unwrap();
        assert_eq!(s.block, 40);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn vector_is_strided() {
        let d = Datatype::vector(8, 1, 2, &Datatype::double()).unwrap();
        let s = d.as_strided().unwrap();
        assert_eq!(
            s,
            StridedSpec {
                base: 0,
                stride: 16,
                block: 8,
                count: 8
            }
        );
    }

    #[test]
    fn vector_with_blocklen_merges_blocks() {
        let d = Datatype::vector(4, 3, 5, &Datatype::int()).unwrap();
        let s = d.as_strided().unwrap();
        assert_eq!(
            s,
            StridedSpec {
                base: 0,
                stride: 20,
                block: 12,
                count: 4
            }
        );
    }

    #[test]
    fn figure4_struct_is_strided() {
        // LB / vector / UB, as the noncontig benchmark builds it
        let v = Datatype::vector(16, 1, 4, &Datatype::basic(8)).unwrap();
        let d = Datatype::struct_type(vec![
            Field {
                disp: 0,
                count: 1,
                child: Datatype::lb_marker(),
            },
            Field {
                disp: 0,
                count: 1,
                child: v,
            },
            Field {
                disp: 512,
                count: 1,
                child: Datatype::ub_marker(),
            },
        ])
        .unwrap();
        let s = d.as_strided().unwrap();
        assert_eq!(
            s,
            StridedSpec {
                base: 0,
                stride: 32,
                block: 8,
                count: 16
            }
        );
    }

    #[test]
    fn subarray_2d_reduces_rows() {
        // a 2D subarray: rows of 3 ints, row stride 6 ints
        let d = Datatype::subarray(&[4, 6], &[2, 3], &[1, 2], Order::C, &Datatype::int()).unwrap();
        let s = d.as_strided().unwrap();
        assert_eq!(
            s,
            StridedSpec {
                base: 32,
                stride: 24,
                block: 12,
                count: 2
            }
        );
    }

    #[test]
    fn subarray_3d_does_not_reduce() {
        // two-level strides cannot be expressed
        let d = Datatype::subarray(
            &[4, 4, 4],
            &[2, 2, 2],
            &[0, 0, 0],
            Order::C,
            &Datatype::int(),
        )
        .unwrap();
        assert!(d.as_strided().is_none());
    }

    #[test]
    fn full_subarray_is_dense() {
        let d = Datatype::subarray(&[4, 4], &[4, 4], &[0, 0], Order::C, &Datatype::int()).unwrap();
        let s = d.as_strided().unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.block, 64);
    }

    #[test]
    fn indexed_strided_detection() {
        // evenly spaced equal blocks reduce (the indexed_block shape)
        let d = Datatype::indexed(&[2, 2, 2], &[0, 5, 10], &Datatype::int()).unwrap();
        let s = d.as_strided().unwrap();
        assert_eq!(
            s,
            StridedSpec {
                base: 0,
                stride: 20,
                block: 8,
                count: 3
            }
        );
        // unevenly spaced blocks do not
        let odd = Datatype::indexed(&[1, 1, 1], &[0, 3, 5], &Datatype::int()).unwrap();
        assert!(odd.as_strided().is_none());
        // unequal block lengths do not
        let ragged = Datatype::indexed(&[1, 2], &[0, 3], &Datatype::int()).unwrap();
        assert!(ragged.as_strided().is_none());
        // a single block always does
        let single = Datatype::indexed(&[3], &[2], &Datatype::int()).unwrap();
        let s = single.as_strided().unwrap();
        assert_eq!(s.base, 8);
        assert_eq!(s.block, 12);
    }

    #[test]
    fn multi_field_struct_does_not_reduce() {
        let d = Datatype::struct_type(vec![
            Field {
                disp: 0,
                count: 1,
                child: Datatype::int(),
            },
            Field {
                disp: 16,
                count: 1,
                child: Datatype::int(),
            },
        ])
        .unwrap();
        assert!(d.as_strided().is_none());
    }

    #[test]
    fn strided_matches_flatiter() {
        use crate::FlatIter;
        let cases = vec![
            Datatype::vector(8, 1, 2, &Datatype::double()).unwrap(),
            Datatype::vector(4, 3, 5, &Datatype::int()).unwrap(),
            Datatype::contiguous(7, &Datatype::basic(3)).unwrap(),
        ];
        for d in cases {
            let s = d.as_strided().unwrap();
            let runs: Vec<_> = FlatIter::new(&d, 2).collect();
            let mut expect = Vec::new();
            let ext = d.extent() as i64;
            for inst in 0..2i64 {
                for j in 0..s.count as i64 {
                    expect.push((inst * ext + s.base + j * s.stride, s.block));
                }
            }
            // FlatIter may merge adjacent blocks; compare total coverage
            let mut a: Vec<(i64, u64)> = runs.iter().map(|r| (r.disp, r.len)).collect();
            // normalize both to per-byte sets
            let bytes = |v: &[(i64, u64)]| {
                let mut out = Vec::new();
                for &(o, l) in v {
                    for k in 0..l as i64 {
                        out.push(o + k);
                    }
                }
                out
            };
            a.sort_unstable();
            expect.sort_unstable();
            assert_eq!(bytes(&a), bytes(&expect), "{d:?}");
        }
    }

    #[test]
    fn strided_pack_roundtrip() {
        let d = Datatype::vector(8, 1, 2, &Datatype::basic(4)).unwrap();
        let spec = d.as_strided().unwrap();
        let ext = d.extent();
        let src: Vec<u8> = (0..128).collect();
        for skip in [0u64, 1, 4, 17, 31] {
            let limit = d.size() * 2;
            let mut fast = vec![0u8; (limit - skip) as usize];
            let n = strided_pack(&spec, ext, &src, 0, limit, skip, &mut fast);
            assert_eq!(n as u64, limit - skip);
            let mut slow = vec![0u8; (limit - skip) as usize];
            let m = crate::ff::ff_pack(&src, 2, &d, skip, &mut slow);
            assert_eq!(m, n);
            assert_eq!(fast, slow, "skip {skip}");

            // unpack back
            let mut dst = vec![0u8; 128];
            let k = strided_unpack(&spec, ext, &mut dst, 0, limit, skip, &fast);
            assert_eq!(k, n);
        }
    }
}
