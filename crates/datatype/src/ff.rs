//! Flattening-on-the-fly: pack, unpack, and datatype navigation without
//! ol-lists.
//!
//! These functions mirror the internal MPI/SX interface described in
//! Sections 3.1–3.2 of the paper:
//!
//! * [`ff_pack`] / [`ff_unpack`] — `MPIR_ff_pack` / `MPIR_ff_unpack`:
//!   move data between a typed (possibly non-contiguous) buffer and a
//!   contiguous pack buffer, starting after `skipbytes` bytes of data and
//!   copying at most the pack buffer's length. Cost is proportional to the
//!   bytes moved plus `O(depth)` for the initial seek — independent of the
//!   datatype's block count and of `skipbytes`.
//! * [`ff_offset`], [`ff_size`], [`ff_extent`] — `MPIR_Type_ff_size` /
//!   `MPIR_Type_ff_extent` (Figure 2): convert between "bytes of data" and
//!   "extent spanned" in `O(depth · log k)`, replacing the list-based
//!   linear traversal for file-pointer positioning.
//!
//! Navigation functions treat the datatype as tiling an unbounded buffer
//! (instance `i` at displacement `i · extent`), which is exactly how a
//! fileview tiles a file. They require a *monotone* type
//! ([`Datatype::is_monotone`]), the MPI-IO restriction on etypes and
//! filetypes; this is debug-asserted.

use lio_obs::{LazyCounter, LazyHistogram};

use crate::strided::StridedSpec;
use crate::types::{Datatype, Node, TypeKind};

/// Copy-engine metrics. Blocks-copied and the contiguous-run-length
/// distribution quantify the paper's Section 2.1 copy overhead: small
/// runs mean the pack loop is bookkeeping-bound, large runs mean it runs
/// at memcpy speed.
static OBS_PACK_CALLS: LazyCounter = LazyCounter::new("dt.pack.calls");
static OBS_PACK_BLOCKS: LazyCounter = LazyCounter::new("dt.pack.blocks");
static OBS_PACK_BYTES: LazyCounter = LazyCounter::new("dt.pack.bytes");
static OBS_UNPACK_CALLS: LazyCounter = LazyCounter::new("dt.unpack.calls");
static OBS_UNPACK_BLOCKS: LazyCounter = LazyCounter::new("dt.unpack.blocks");
static OBS_UNPACK_BYTES: LazyCounter = LazyCounter::new("dt.unpack.bytes");
pub(crate) static OBS_RUN_LEN: LazyHistogram = LazyHistogram::new("dt.run.len");

/// Sharded-copy metrics: workers spawned, the per-shard byte
/// distribution, and copies that stayed single-threaded because they
/// were below the spawn threshold (or not shardable).
static OBS_SHARD_SHARDS: LazyCounter = LazyCounter::new("dt.pack.shard.shards");
static OBS_SHARD_BYTES: LazyHistogram = LazyHistogram::new("dt.pack.shard.bytes");
static OBS_SHARD_SKIPPED: LazyCounter = LazyCounter::new("dt.pack.shard.skipped");

/// Don't spawn shard workers for copies below this size: thread start-up
/// costs more than it hides.
pub const SHARD_MIN_TOTAL: u64 = 1 << 20;
/// Keep every shard at least this large; fewer workers otherwise.
pub const SHARD_MIN_BYTES: u64 = 256 * 1024;

/// Count (and, when `obs`, record) the contiguous runs of a strided copy
/// of `n` bytes starting at data byte `skipbytes`, without having walked
/// them individually.
fn strided_runs(spec: &StridedSpec, skipbytes: u64, n: u64, obs: bool) -> u64 {
    if n == 0 || spec.block == 0 {
        return 0;
    }
    let b = spec.block;
    let first = (b - skipbytes % b).min(n);
    let rest = n - first;
    let full = rest / b;
    let last = rest % b;
    if obs {
        OBS_RUN_LEN.record(first);
        OBS_RUN_LEN.record_n(b, full);
        if last > 0 {
            OBS_RUN_LEN.record(last);
        }
    }
    1 + full + u64::from(last > 0)
}

/// Byte position, within the tiled layout of `d`, where the data byte with
/// index `databytes` lives (0-based). `databytes` may be any multiple of or
/// position within instances; `databytes == k · size` returns the first
/// data byte of instance `k`.
///
/// This is the primitive from which `ff_size` and `ff_extent` are built;
/// cost is `O(depth · log k)`.
pub fn ff_offset(d: &Datatype, databytes: u64) -> i64 {
    debug_assert!(d.is_monotone(), "navigation requires a monotone type");
    let size = d.size();
    assert!(size > 0, "cannot navigate a zero-size type");
    let inst = databytes / size;
    let w = databytes % size;
    inst as i64 * d.extent() as i64 + pos_within(&d.0, w)
}

/// The number of data bytes contained in a window of `extent` bytes
/// starting at the position of data byte `skipbytes` — the paper's
/// `MPIR_Type_ff_size(dtype, skipbytes, extent)`.
pub fn ff_size(d: &Datatype, skipbytes: u64, extent: u64) -> u64 {
    debug_assert!(d.is_monotone(), "navigation requires a monotone type");
    let lo = ff_offset(d, skipbytes);
    bytes_below_tiled(d, lo + extent as i64) - skipbytes
}

/// The extent spanned when `size` bytes of data are unpacked after first
/// skipping `skipbytes` bytes — the paper's
/// `MPIR_Type_ff_extent(dtype, skipbytes, size)`.
///
/// The returned extent runs from the position of data byte `skipbytes` to
/// the position of data byte `skipbytes + size` (the start of the *next*
/// byte), which is the quantity needed for the virtual-file-buffer
/// adjustment of Section 3.2.2.
pub fn ff_extent(d: &Datatype, skipbytes: u64, size: u64) -> u64 {
    (ff_offset(d, skipbytes + size) - ff_offset(d, skipbytes)) as u64
}

/// Count the data bytes of the tiled layout of `d` with positions in
/// `[0, x)`. The inverse of [`ff_offset`].
///
/// Unlike [`ff_offset`], this does not require full monotonicity: it is
/// also correct for types whose *top-level* fields interleave (such as the
/// mergeview of Section 3.2.3, a struct overlaying the disjoint filetypes
/// of all ranks), as long as each instance's data fits within one extent
/// and data positions do not self-overlap.
pub fn bytes_below_tiled(d: &Datatype, x: i64) -> u64 {
    debug_assert!(
        d.data_ub() - d.data_lb() <= d.extent() as i64 && d.data_lb() >= 0,
        "tiled counting requires instance-confined, non-negative data"
    );
    let size = d.size();
    if size == 0 || x <= 0 {
        return 0;
    }
    let ext = d.extent() as i64;
    debug_assert!(ext > 0, "monotone type with data has positive extent");
    let m = &d.0.meta;
    // Number of instances whose data lies entirely below x; at most the
    // following instance can be cut by x (monotone tiling).
    let full = ((x - m.data_ub).div_euclid(ext) + 1).max(0);
    full as u64 * size + bytes_below(&d.0, x - full * ext)
}

/// Data bytes of **one instance** of `node` with displacement < `x`.
fn bytes_below(node: &Node, x: i64) -> u64 {
    let m = &node.meta;
    if m.size == 0 || x <= m.data_lb {
        return 0;
    }
    if x >= m.data_ub {
        return m.size;
    }
    match &node.kind {
        TypeKind::Basic { .. } => x.clamp(0, m.size as i64) as u64,
        TypeKind::LbMark | TypeKind::UbMark => 0,
        TypeKind::Contiguous { count, child } => {
            tiled_bytes_below(&child.0, *count, child.extent() as i64, x)
        }
        TypeKind::Hvector {
            count,
            blocklen,
            stride,
            child,
        } => {
            let cm = &child.0.meta;
            let cext = child.extent() as i64;
            let block_size = cm.size * blocklen;
            if block_size == 0 {
                return 0;
            }
            // One block = `blocklen` children tiled at the child extent.
            let block_data_ub = (*blocklen as i64 - 1) * cext + cm.data_ub;
            if *count <= 1 || *stride <= 0 {
                return tiled_bytes_below(&child.0, *blocklen, cext, x);
            }
            let full = ((x - block_data_ub).div_euclid(*stride) + 1).clamp(0, *count as i64);
            let partial = if (full as u64) < *count {
                tiled_bytes_below(&child.0, *blocklen, cext, x - full * stride)
            } else {
                0
            };
            full as u64 * block_size + partial
        }
        TypeKind::Hindexed { blocks, child } => {
            let cm = &child.0.meta;
            let cext = child.extent() as i64;
            let prefix = m
                .size_prefix
                .as_ref()
                .expect("hindexed nodes carry size prefix sums");
            // Blocks are disp-sorted with sorted ends (monotone, and
            // zero-length blocks are dropped at construction); count the
            // fully-below blocks.
            let nb = blocks
                .partition_point(|b| b.disp + (b.blocklen as i64 - 1) * cext + cm.data_ub <= x);
            let mut total = prefix[nb];
            if let Some(b) = blocks.get(nb) {
                total += tiled_bytes_below(&child.0, b.blocklen, cext, x - b.disp);
            }
            total
        }
        TypeKind::Struct { fields } => fields
            .iter()
            .map(|f| tiled_bytes_below(&f.child.0, f.count, f.child.extent() as i64, x - f.disp))
            .sum(),
        TypeKind::Resized { child, .. } => bytes_below(&child.0, x),
    }
}

/// Data bytes below `x` of `count` instances of `node` tiled at `ext`.
fn tiled_bytes_below(node: &Node, count: u64, ext: i64, x: i64) -> u64 {
    let m = &node.meta;
    if count == 0 || m.size == 0 {
        return 0;
    }
    if x <= m.data_lb {
        return 0;
    }
    if count == 1 || ext <= 0 {
        // ext == 0 with multiple data-bearing instances violates
        // monotonicity, so a single evaluation suffices.
        return bytes_below(node, x).min(m.size * count);
    }
    let full = ((x - m.data_ub).div_euclid(ext) + 1).clamp(0, count as i64);
    let partial = if (full as u64) < count {
        bytes_below(node, x - full * ext)
    } else {
        0
    };
    full as u64 * m.size + partial
}

/// Displacement of the `w`-th data byte within one instance of `node`;
/// `0 <= w < size`.
fn pos_within(node: &Node, w: u64) -> i64 {
    debug_assert!(w < node.meta.size || (w == 0 && node.meta.size == 0));
    match &node.kind {
        TypeKind::Basic { .. } => w as i64,
        TypeKind::LbMark | TypeKind::UbMark => unreachable!("markers hold no data"),
        TypeKind::Contiguous { child, .. } => {
            let csize = child.size();
            let i = w / csize;
            i as i64 * child.extent() as i64 + pos_within(&child.0, w % csize)
        }
        TypeKind::Hvector {
            blocklen,
            stride,
            child,
            ..
        } => {
            let csize = child.size();
            let k = w / csize;
            let i = k / blocklen;
            let j = k % blocklen;
            i as i64 * stride + j as i64 * child.extent() as i64 + pos_within(&child.0, w % csize)
        }
        TypeKind::Hindexed { blocks, child } => {
            let prefix = node
                .meta
                .size_prefix
                .as_ref()
                .expect("hindexed nodes carry size prefix sums");
            let b = find_block(prefix, blocks.len(), w);
            let csize = child.size();
            let rb = w - prefix[b];
            let j = rb / csize;
            blocks[b].disp + j as i64 * child.extent() as i64 + pos_within(&child.0, rb % csize)
        }
        TypeKind::Struct { fields } => {
            let mut cum = 0u64;
            for f in fields.iter() {
                let fsize = f.child.size() * f.count;
                if fsize == 0 {
                    continue;
                }
                if w < cum + fsize {
                    let rf = w - cum;
                    let csize = f.child.size();
                    let j = rf / csize;
                    return f.disp
                        + j as i64 * f.child.extent() as i64
                        + pos_within(&f.child.0, rf % csize);
                }
                cum += fsize;
            }
            unreachable!("w < size implies a containing field")
        }
        TypeKind::Resized { child, .. } => pos_within(&child.0, w),
    }
}

/// Find the block `b` with `prefix[b] <= r < prefix[b+1]`, skipping
/// zero-size blocks that share the boundary value.
fn find_block(prefix: &[u64], nblocks: usize, r: u64) -> usize {
    match prefix.binary_search(&r) {
        Ok(mut i) => {
            while i < nblocks && prefix[i + 1] == r {
                i += 1;
            }
            i
        }
        Err(i) => i - 1,
    }
}

/// Pack non-contiguous data from the typed buffer `src` into the
/// contiguous `packbuf`, skipping the first `skipbytes` data bytes of the
/// `count`-instance buffer. Copies at most `packbuf.len()` bytes and
/// returns the number of bytes copied — the paper's `MPIR_ff_pack`.
///
/// `src[i]` holds the byte at typemap displacement `i`; use [`ff_pack_at`]
/// when the slice is a window at a nonzero displacement.
pub fn ff_pack(src: &[u8], count: u64, d: &Datatype, skipbytes: u64, packbuf: &mut [u8]) -> usize {
    ff_pack_at(src, 0, count, d, skipbytes, packbuf)
}

/// Like [`ff_pack`], but `src[0]` corresponds to typemap displacement
/// `buf_disp` — the "virtual buffer" adjustment of Section 3.2.2 that lets
/// a small window buffer stand in for the full typed extent.
pub fn ff_pack_at(
    src: &[u8],
    buf_disp: i64,
    count: u64,
    d: &Datatype,
    skipbytes: u64,
    packbuf: &mut [u8],
) -> usize {
    let (n, runs) = pack_span(src, buf_disp, count, d, skipbytes, packbuf);
    if lio_obs::enabled() {
        OBS_PACK_CALLS.incr();
        OBS_PACK_BLOCKS.add(runs);
        OBS_PACK_BYTES.add(n as u64);
    }
    n
}

/// One single-threaded pack pass: the strided fast path when the whole
/// type reduces to one `{count, block, stride}` frame, the compiled run
/// program otherwise. Returns `(bytes, runs)`; call-level counters are
/// the callers' job (shard workers share one logical call).
fn pack_span(
    src: &[u8],
    buf_disp: i64,
    count: u64,
    d: &Datatype,
    skipbytes: u64,
    packbuf: &mut [u8],
) -> (usize, u64) {
    // strided fast path: the depth-1 special case of the run program
    if let Some(spec) = d.as_strided() {
        let n = crate::strided::strided_pack(
            &spec,
            d.extent(),
            src,
            buf_disp,
            d.size() * count,
            skipbytes,
            packbuf,
        );
        let runs = strided_runs(&spec, skipbytes, n as u64, lio_obs::enabled());
        return (n, runs);
    }
    d.program()
        .pack_into(src, buf_disp, count, skipbytes, packbuf)
}

/// Unpack contiguous data from `packbuf` into the typed buffer `dst`,
/// skipping the first `skipbytes` data bytes. Copies at most
/// `packbuf.len()` bytes and returns the number copied — the paper's
/// `MPIR_ff_unpack`.
pub fn ff_unpack(
    packbuf: &[u8],
    dst: &mut [u8],
    count: u64,
    d: &Datatype,
    skipbytes: u64,
) -> usize {
    ff_unpack_at(packbuf, dst, 0, count, d, skipbytes)
}

/// Like [`ff_unpack`], but `dst[0]` corresponds to typemap displacement
/// `buf_disp` (the virtual-buffer adjustment).
pub fn ff_unpack_at(
    packbuf: &[u8],
    dst: &mut [u8],
    buf_disp: i64,
    count: u64,
    d: &Datatype,
    skipbytes: u64,
) -> usize {
    let (n, runs) = unpack_span(packbuf, dst, buf_disp, count, d, skipbytes);
    if lio_obs::enabled() {
        OBS_UNPACK_CALLS.incr();
        OBS_UNPACK_BLOCKS.add(runs);
        OBS_UNPACK_BYTES.add(n as u64);
    }
    n
}

/// One single-threaded unpack pass (see [`pack_span`]).
fn unpack_span(
    packbuf: &[u8],
    dst: &mut [u8],
    buf_disp: i64,
    count: u64,
    d: &Datatype,
    skipbytes: u64,
) -> (usize, u64) {
    // strided fast path: the depth-1 special case of the run program
    if let Some(spec) = d.as_strided() {
        let n = crate::strided::strided_unpack(
            &spec,
            d.extent(),
            dst,
            buf_disp,
            d.size() * count,
            skipbytes,
            packbuf,
        );
        let runs = strided_runs(&spec, skipbytes, n as u64, lio_obs::enabled());
        return (n, runs);
    }
    d.program()
        .unpack_into(packbuf, dst, buf_disp, count, skipbytes)
}

// ---------------------------------------------------------------------
// Sharded (multi-threaded) pack/unpack
// ---------------------------------------------------------------------
//
// The paper's `O(depth)` seek is what makes the copy parallelizable:
// any worker can enter the datatype at an arbitrary data-byte position
// without scanning a list. We split the data-byte range `[skip,
// skip+len)` evenly, hand each worker a disjoint slice of the pack
// buffer (pack) or of the typed buffer (unpack, via `ff_offset` on the
// shard boundaries — monotonicity makes the position ranges disjoint),
// and run the compiled program in `std::thread::scope` workers with no
// locks and no shared cache lines on the boundaries.

/// Number of worker shards for a copy of `len` data bytes with up to
/// `threads` workers; 1 below the spawn threshold.
fn shard_count(len: u64, threads: usize) -> usize {
    if threads <= 1 || len < SHARD_MIN_TOTAL {
        return 1;
    }
    (threads as u64).min((len / SHARD_MIN_BYTES).max(1)) as usize
}

/// Like [`ff_pack`], but splitting the copy across up to `threads`
/// worker threads when it is large enough to pay for the spawns
/// (see [`SHARD_MIN_TOTAL`]) and the type is monotone. Falls back to
/// the single-threaded path otherwise — results are byte-identical
/// either way.
pub fn ff_pack_sharded(
    src: &[u8],
    count: u64,
    d: &Datatype,
    skipbytes: u64,
    packbuf: &mut [u8],
    threads: usize,
) -> usize {
    let total = d.size().saturating_mul(count);
    let len = (packbuf.len() as u64).min(total.saturating_sub(skipbytes));
    let nsh = shard_count(len, threads);
    if nsh <= 1 || !d.is_monotone() {
        if threads > 1 {
            OBS_SHARD_SKIPPED.incr();
        }
        return ff_pack(src, count, d, skipbytes, packbuf);
    }
    ff_pack_shards(src, count, d, skipbytes, packbuf, nsh)
}

/// Sharded pack with an explicit shard count, no threshold: the
/// engine behind [`ff_pack_sharded`], exposed for differential tests
/// and benchmarks. Shards may be zero-length when `len < nshards`;
/// those spawn no worker.
pub fn ff_pack_shards(
    src: &[u8],
    count: u64,
    d: &Datatype,
    skipbytes: u64,
    packbuf: &mut [u8],
    nshards: usize,
) -> usize {
    let total = d.size().saturating_mul(count);
    let len = (packbuf.len() as u64).min(total.saturating_sub(skipbytes));
    if len == 0 {
        return 0;
    }
    let obs = lio_obs::enabled();
    let nsh = nshards.max(1) as u64;
    // compile once up front rather than racing the cache from workers
    if d.as_strided().is_none() {
        let _ = d.program();
    }
    let (copied, runs) = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nsh as usize);
        let mut rest = &mut packbuf[..len as usize];
        let mut done = 0u64;
        for i in 0..nsh {
            let hi = len * (i + 1) / nsh;
            let take = (hi - done) as usize;
            let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(take);
            rest = tail;
            if take == 0 {
                continue; // zero-length shard: nothing to copy
            }
            let shard_skip = skipbytes + done;
            done = hi;
            if obs {
                OBS_SHARD_BYTES.record(take as u64);
            }
            let th = lio_obs::trace::thread_handle();
            handles.push(scope.spawn(move || {
                lio_obs::trace::adopt(th);
                let _sp = lio_obs::trace::span_ab("dt.pack.shard", take as u64, 0);
                pack_span(src, 0, count, d, shard_skip, chunk)
            }));
        }
        if obs {
            OBS_SHARD_SHARDS.add(handles.len() as u64);
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("pack shard worker panicked"))
            .fold((0usize, 0u64), |(b, r), (n, runs)| (b + n, r + runs))
    });
    debug_assert_eq!(copied as u64, len);
    if obs {
        OBS_PACK_CALLS.incr();
        OBS_PACK_BLOCKS.add(runs);
        OBS_PACK_BYTES.add(copied as u64);
    }
    copied
}

/// Like [`ff_unpack`], but splitting the copy across up to `threads`
/// worker threads (same gating as [`ff_pack_sharded`]). Requires a
/// monotone type to shard: the shard boundaries' typemap positions
/// (found with [`ff_offset`] in `O(depth)`) are then strictly
/// increasing, so the workers' destination slices are disjoint.
pub fn ff_unpack_sharded(
    packbuf: &[u8],
    dst: &mut [u8],
    count: u64,
    d: &Datatype,
    skipbytes: u64,
    threads: usize,
) -> usize {
    let total = d.size().saturating_mul(count);
    let len = (packbuf.len() as u64).min(total.saturating_sub(skipbytes));
    let nsh = shard_count(len, threads);
    if nsh <= 1 || !d.is_monotone() {
        if threads > 1 {
            OBS_SHARD_SKIPPED.incr();
        }
        return ff_unpack(packbuf, dst, count, d, skipbytes);
    }
    ff_unpack_shards(packbuf, dst, count, d, skipbytes, nsh)
}

/// Sharded unpack with an explicit shard count, no threshold (the
/// engine behind [`ff_unpack_sharded`], exposed for differential tests
/// and benchmarks). The type must be monotone, and `dst` must cover
/// every touched position, as in [`ff_unpack`].
pub fn ff_unpack_shards(
    packbuf: &[u8],
    dst: &mut [u8],
    count: u64,
    d: &Datatype,
    skipbytes: u64,
    nshards: usize,
) -> usize {
    let total = d.size().saturating_mul(count);
    let len = (packbuf.len() as u64).min(total.saturating_sub(skipbytes));
    if len == 0 {
        return 0;
    }
    let obs = lio_obs::enabled();
    let nsh = nshards.max(1) as u64;
    if d.as_strided().is_none() {
        let _ = d.program();
    }
    let (copied, runs) = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nsh as usize);
        let mut rest = dst;
        let mut cut = 0usize; // dst bytes already split off
        let mut done = 0u64;
        for i in 0..nsh {
            let hi = len * (i + 1) / nsh;
            if hi == done {
                continue; // zero-length shard
            }
            let lo = done;
            done = hi;
            // positions of the shard's first and one-past-last data byte
            let p_lo = ff_offset(d, skipbytes + lo) as usize;
            let p_hi = (ff_offset(d, skipbytes + hi - 1) + 1) as usize;
            let (_, r) = std::mem::take(&mut rest).split_at_mut(p_lo - cut);
            let (chunk, tail) = r.split_at_mut(p_hi - p_lo);
            rest = tail;
            cut = p_hi;
            let shard_pack = &packbuf[lo as usize..hi as usize];
            if obs {
                OBS_SHARD_BYTES.record(hi - lo);
            }
            let th = lio_obs::trace::thread_handle();
            handles.push(scope.spawn(move || {
                lio_obs::trace::adopt(th);
                let _sp = lio_obs::trace::span_ab("dt.unpack.shard", hi - lo, 0);
                unpack_span(shard_pack, chunk, p_lo as i64, count, d, skipbytes + lo)
            }));
        }
        if obs {
            OBS_SHARD_SHARDS.add(handles.len() as u64);
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("unpack shard worker panicked"))
            .fold((0usize, 0u64), |(b, r), (n, runs)| (b + n, r + runs))
    });
    debug_assert_eq!(copied as u64, len);
    if obs {
        OBS_UNPACK_CALLS.incr();
        OBS_UNPACK_BLOCKS.add(runs);
        OBS_UNPACK_BYTES.add(copied as u64);
    }
    copied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typemap::{expand, reference_pack};
    use crate::types::{Field, Order};

    fn vec_type() -> Datatype {
        Datatype::vector(3, 2, 4, &Datatype::int()).unwrap()
    }

    #[test]
    fn offset_of_each_byte_matches_typemap() {
        let d = vec_type();
        // enumerate the position of every data byte from the typemap
        let mut positions = Vec::new();
        for r in expand(&d, 2) {
            for k in 0..r.len {
                positions.push(r.disp + k as i64);
            }
        }
        for (n, &p) in positions.iter().enumerate() {
            assert_eq!(ff_offset(&d, n as u64), p, "byte {n}");
        }
        // one past the end of instance 0 = first byte of instance 2
        assert_eq!(
            ff_offset(&d, d.size() * 2),
            2 * d.extent() as i64 + positions[0]
        );
    }

    #[test]
    fn bytes_below_is_inverse_of_offset() {
        let d = vec_type();
        for n in 0..(d.size() * 3) {
            let p = ff_offset(&d, n);
            // all bytes before byte n have positions < p (monotone)
            assert_eq!(bytes_below_tiled(&d, p), n, "byte {n} at pos {p}");
            assert_eq!(bytes_below_tiled(&d, p + 1), n + 1);
        }
    }

    #[test]
    fn bytes_below_every_position() {
        let d = Datatype::indexed(&[2, 1, 3], &[0, 4, 8], &Datatype::int()).unwrap();
        // brute force against the typemap over 2 tiled instances; positions
        // beyond 2*extent would include instance-2 data (tiling is
        // unbounded), so stop there
        let ext = d.extent() as i64;
        let mut cover = vec![false; (ext * 2) as usize];
        for r in expand(&d, 2) {
            for k in 0..r.len {
                cover[(r.disp + k as i64) as usize] = true;
            }
        }
        let mut below = 0u64;
        for x in 0..=cover.len() {
            assert_eq!(bytes_below_tiled(&d, x as i64), below, "position {x}");
            if x < cover.len() && cover[x] {
                below += 1;
            }
        }
    }

    #[test]
    fn ff_size_window() {
        // vector(3,2,4) of int: 8-byte data blocks at 0, 16, 32; extent 40
        let d = vec_type();
        assert_eq!(ff_size(&d, 0, 40), 24);
        assert_eq!(ff_size(&d, 0, 8), 8);
        assert_eq!(ff_size(&d, 0, 16), 8); // block 0 + gap
        assert_eq!(ff_size(&d, 0, 17), 9);
        assert_eq!(ff_size(&d, 8, 16), 8); // starts at block 1
                                           // skip 4: start mid-block-0 at position 4
        assert_eq!(ff_size(&d, 4, 4), 4);
        assert_eq!(ff_size(&d, 4, 13), 5);
    }

    #[test]
    fn ff_extent_spans() {
        let d = vec_type();
        // first 8 bytes are block 0; the 9th byte is at 16
        assert_eq!(ff_extent(&d, 0, 8), 16);
        assert_eq!(ff_extent(&d, 0, 24), 40); // a full instance
        assert_eq!(ff_extent(&d, 0, 4), 4);
        assert_eq!(ff_extent(&d, 4, 8), 16 - 4 + 4);
        // spanning instances: 24 bytes from byte 12
        assert_eq!(
            ff_extent(&d, 12, 24),
            (ff_offset(&d, 36) - ff_offset(&d, 12)) as u64
        );
    }

    #[test]
    fn ff_size_extent_are_inverse() {
        let d =
            Datatype::subarray(&[6, 8], &[3, 4], &[2, 1], Order::C, &Datatype::double()).unwrap();
        for skip in (0..d.size() * 2).step_by(8) {
            for size in (8..=d.size()).step_by(16) {
                // data-byte positions are strictly increasing for monotone
                // types, so a window of extent ff_extent(size) holds
                // exactly `size` bytes
                let e = ff_extent(&d, skip, size);
                assert_eq!(ff_size(&d, skip, e), size, "skip={skip} size={size}");
            }
            for extent in (0..d.extent() * 2).step_by(24) {
                // and the extent spanned by what a window holds ends at or
                // past the window's end (the next byte lies outside)
                let s = ff_size(&d, skip, extent);
                assert!(ff_extent(&d, skip, s) >= extent || s == 0);
            }
        }
    }

    #[test]
    fn pack_matches_reference_full() {
        let d = Datatype::subarray(&[5, 7], &[3, 4], &[1, 2], Order::C, &Datatype::int()).unwrap();
        let src: Vec<u8> = (0..(d.extent() * 2) as usize)
            .map(|i| (i % 251) as u8)
            .collect();
        let want = reference_pack(&src, &d, 2);
        let mut got = vec![0u8; want.len()];
        let n = ff_pack(&src, 2, &d, 0, &mut got);
        assert_eq!(n, want.len());
        assert_eq!(got, want);
    }

    #[test]
    fn pack_every_skip_and_cap() {
        let d = Datatype::vector(3, 2, 4, &Datatype::basic(2)).unwrap();
        let src: Vec<u8> = (0..(d.extent() * 2) as u8).collect();
        let full = reference_pack(&src, &d, 2);
        let total = d.size() * 2;
        for skip in 0..total {
            for cap in [0, 1, 2, 5, total - skip] {
                let mut buf = vec![0u8; cap as usize];
                let n = ff_pack(&src, 2, &d, skip, &mut buf);
                assert_eq!(n as u64, cap.min(total - skip));
                assert_eq!(
                    &buf[..n],
                    &full[skip as usize..skip as usize + n],
                    "skip={skip} cap={cap}"
                );
            }
        }
    }

    #[test]
    fn unpack_reassembles() {
        let d = Datatype::indexed(&[1, 3, 2], &[0, 3, 9], &Datatype::int()).unwrap();
        let src: Vec<u8> = (0..d.extent() as u8).collect();
        let packed = reference_pack(&src, &d, 1);
        let mut dst = vec![0u8; d.extent() as usize];
        let n = ff_unpack(&packed, &mut dst, 1, &d, 0);
        assert_eq!(n as u64, d.size());
        for r in expand(&d, 1) {
            let o = r.disp as usize;
            assert_eq!(&dst[o..o + r.len as usize], &src[o..o + r.len as usize]);
        }
    }

    #[test]
    fn unpack_in_chunks_equals_unpack_whole() {
        let d = Datatype::vector(5, 3, 5, &Datatype::basic(2)).unwrap();
        let src: Vec<u8> = (0..d.extent() as u8).collect();
        let packed = reference_pack(&src, &d, 1);
        let mut whole = vec![0u8; d.extent() as usize];
        ff_unpack(&packed, &mut whole, 1, &d, 0);
        // unpack in chunks of 7 bytes using skipbytes, as the sieving loop
        // of the listless engine does
        let mut chunked = vec![0u8; d.extent() as usize];
        let mut skip = 0u64;
        while skip < d.size() {
            let n = (d.size() - skip).min(7) as usize;
            let m = ff_unpack(
                &packed[skip as usize..skip as usize + n],
                &mut chunked,
                1,
                &d,
                skip,
            );
            assert_eq!(m, n);
            skip += n as u64;
        }
        assert_eq!(whole, chunked);
    }

    #[test]
    fn pack_at_virtual_window() {
        // pack from a window that only covers part of the extent
        // blocks of 4 bytes at 0, 8, 16, 24; extent 28
        let d = Datatype::vector(4, 1, 2, &Datatype::int()).unwrap();
        let full: Vec<u8> = (0..d.extent() as u8).collect();
        // window covering positions 16..28 (blocks 2 and 3)
        let window = full[16..28].to_vec();
        let mut buf = vec![0u8; 8];
        // blocks 2,3 are data bytes 8..16
        let n = ff_pack_at(&window, 16, 1, &d, 8, &mut buf);
        assert_eq!(n, 8);
        assert_eq!(&buf[..4], &full[16..20]);
        assert_eq!(&buf[4..], &full[24..28]);
    }

    #[test]
    fn struct_with_markers_navigation() {
        // Figure 4-style type: LB at 0, data at disp 8, UB at 48
        let v = Datatype::vector(2, 1, 2, &Datatype::double()).unwrap();
        let d = Datatype::struct_type(vec![
            Field {
                disp: 0,
                count: 1,
                child: Datatype::lb_marker(),
            },
            Field {
                disp: 8,
                count: 1,
                child: v,
            },
            Field {
                disp: 48,
                count: 1,
                child: Datatype::ub_marker(),
            },
        ])
        .unwrap();
        assert_eq!(d.extent(), 48);
        assert_eq!(ff_offset(&d, 0), 8);
        assert_eq!(ff_offset(&d, 8), 24); // second block of the vector
        assert_eq!(ff_offset(&d, 16), 48 + 8); // next instance
        assert_eq!(ff_size(&d, 0, 48), 16);
        assert_eq!(bytes_below_tiled(&d, 48), 16);
    }

    #[test]
    fn navigation_scales_with_depth_not_blocks() {
        // a vector with a million blocks: navigation must still be instant
        // (this is a correctness test; the bench suite quantifies it)
        let d = Datatype::vector(1_000_000, 1, 2, &Datatype::double()).unwrap();
        assert_eq!(ff_offset(&d, 0), 0);
        assert_eq!(ff_offset(&d, 8 * 999_999), 16 * 999_999);
        assert_eq!(ff_size(&d, 0, d.extent()), d.size());
        assert_eq!(bytes_below_tiled(&d, 16 * 500_000), 8 * 500_000);
    }

    #[test]
    #[should_panic(expected = "zero-size")]
    fn navigate_empty_type_panics() {
        let d = Datatype::contiguous(0, &Datatype::int()).unwrap();
        ff_offset(&d, 0);
    }
}
