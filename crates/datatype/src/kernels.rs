//! Fixed-block gather/scatter kernels under the run-program interpreter.
//!
//! The compiled interpreter ([`crate::program`]) reduces every datatype to
//! nested `{count, block, stride}` frames, but until this layer existed the
//! innermost loop still paid a dynamic-length `copy_from_slice` per block —
//! a full `memcpy` call to move 2 or 8 bytes. That is exactly the regime
//! where derived-datatype engines lose to manual packing (Hunold et al.,
//! PAPERS.md): the copy loop is bookkeeping-bound, not bandwidth-bound.
//!
//! This module provides monomorphized kernels for the small fixed block
//! sizes (2/4/8/16/32 bytes) that dominate non-contiguous scientific
//! layouts:
//!
//! * **fixed** — portable unrolled loops whose per-block copy width is a
//!   compile-time constant (`ptr::copy_nonoverlapping::<B>`), so the
//!   compiler emits single loads/stores instead of `memcpy` calls;
//! * **sse2 / avx2** — `core::arch::x86_64` paths that batch several small
//!   blocks per 16/32-byte store on gather, and use wide unaligned
//!   loads/stores for 16/32-byte blocks. Selected by one-time runtime
//!   feature detection (`is_x86_feature_detected!`), never assumed.
//!
//! Selection happens **once at compile time per `Blocks` frame**
//! ([`Sel::select`] records block-size class, stride regularity, and
//! alignment class in the frame), so the interpreter's hot loop performs a
//! single direct dispatch per frame region — no per-block branching. A
//! bit-identical scalar path always remains: the `LIO_PACK_KERNEL`
//! environment variable (or the `pack_kernel` hint / info key) can force
//! `scalar`, `fixed`, `sse2`, or `avx2`, and any frame the kernels cannot
//! prove in-bounds falls back to the per-block scalar loop
//! (`dt.kernel.fallbacks`).

use std::ptr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use lio_obs::LazyCounter;

/// Frames that selected a vector-eligible kernel at compile time.
pub(crate) static OBS_KERNEL_SELECTED: LazyCounter = LazyCounter::new("dt.kernel.selected");
/// Whole blocks copied through a non-scalar kernel.
pub(crate) static OBS_KERNEL_BLOCKS: LazyCounter = LazyCounter::new("dt.kernel.blocks");
/// Bytes copied through a non-scalar kernel.
pub(crate) static OBS_KERNEL_BYTES: LazyCounter = LazyCounter::new("dt.kernel.bytes");
/// Frame regions that fell back to the scalar loop at run time (bounds
/// not provable for the batch path).
pub(crate) static OBS_KERNEL_FALLBACKS: LazyCounter = LazyCounter::new("dt.kernel.fallbacks");

/// Kernel family actually used for a frame region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Per-block `copy_from_slice` through the sink — the reference path.
    Scalar,
    /// Portable monomorphized fixed-width copy loop.
    Fixed,
    /// SSE2 wide/batched unaligned copies (x86_64 baseline).
    Sse2,
    /// AVX2 32-byte copies and 4×8-byte batched gathers.
    Avx2,
}

impl Kind {
    pub const fn name(self) -> &'static str {
        match self {
            Kind::Scalar => "scalar",
            Kind::Fixed => "fixed",
            Kind::Sse2 => "sse2",
            Kind::Avx2 => "avx2",
        }
    }
}

/// Kernel override mode: `auto` (per-frame compile-time selection),
/// `scalar` (disable kernels), or a forced family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Auto,
    Scalar,
    Fixed,
    Sse2,
    Avx2,
}

impl Mode {
    /// Every mode, for exhaustive differential testing.
    pub const ALL: [Mode; 5] = [
        Mode::Auto,
        Mode::Scalar,
        Mode::Fixed,
        Mode::Sse2,
        Mode::Avx2,
    ];

    pub fn parse(s: &str) -> Option<Mode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(Mode::Auto),
            "scalar" => Some(Mode::Scalar),
            "fixed" => Some(Mode::Fixed),
            "sse2" => Some(Mode::Sse2),
            "avx2" => Some(Mode::Avx2),
            _ => None,
        }
    }

    pub const fn name(self) -> &'static str {
        match self {
            Mode::Auto => "auto",
            Mode::Scalar => "scalar",
            Mode::Fixed => "fixed",
            Mode::Sse2 => "sse2",
            Mode::Avx2 => "avx2",
        }
    }
}

const MODE_UNSET: u8 = u8::MAX;
static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

fn mode_to_u8(m: Mode) -> u8 {
    match m {
        Mode::Auto => 0,
        Mode::Scalar => 1,
        Mode::Fixed => 2,
        Mode::Sse2 => 3,
        Mode::Avx2 => 4,
    }
}

fn mode_from_u8(v: u8) -> Mode {
    match v {
        1 => Mode::Scalar,
        2 => Mode::Fixed,
        3 => Mode::Sse2,
        4 => Mode::Avx2,
        _ => Mode::Auto,
    }
}

/// The process-wide kernel mode. Initialized from `LIO_PACK_KERNEL` on
/// first use (unset or unparsable → `auto`); [`force`] overrides it.
/// Programs are cached per datatype node, so the override is applied at
/// interpretation time (one atomic load per pack/unpack call), never
/// baked into a cached program.
pub fn mode() -> Mode {
    let v = MODE.load(Ordering::Relaxed);
    if v != MODE_UNSET {
        return mode_from_u8(v);
    }
    let m = std::env::var("LIO_PACK_KERNEL")
        .ok()
        .and_then(|s| Mode::parse(&s))
        .unwrap_or(Mode::Auto);
    // racing initializers agree (env is fixed), so a plain store is fine
    MODE.store(mode_to_u8(m), Ordering::Relaxed);
    m
}

/// Force the kernel mode for this process (the `pack_kernel` hint and the
/// differential tests use this; `LIO_PACK_KERNEL` seeds the default).
pub fn force(m: Mode) {
    MODE.store(mode_to_u8(m), Ordering::Relaxed);
}

/// `(sse2, avx2)` availability, detected once.
fn feats() -> (bool, bool) {
    static FEATS: OnceLock<(bool, bool)> = OnceLock::new();
    *FEATS.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            (
                is_x86_feature_detected!("sse2"),
                is_x86_feature_detected!("avx2"),
            )
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            (false, false)
        }
    })
}

/// Is `kind` executable on this CPU?
pub fn have(kind: Kind) -> bool {
    let (sse2, avx2) = feats();
    match kind {
        Kind::Scalar | Kind::Fixed => true,
        Kind::Sse2 => sse2,
        Kind::Avx2 => avx2,
    }
}

/// Per-frame kernel selection, recorded in the `Blocks` frame at program
/// compile time.
///
/// * `class` — the fixed block-size class (2/4/8/16/32), or 0 when the
///   frame is kernel-ineligible (other sizes, or non-positive stride);
/// * `align` — alignment class: trailing zero bits common to stride and
///   block, capped at 6 (all copies use unaligned loads/stores; the class
///   is recorded for observability and future aligned paths);
/// * `kind` — the family `auto` mode resolves to on this CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sel {
    pub class: u8,
    pub align: u8,
    pub kind: Kind,
}

impl Sel {
    /// The kernel-ineligible selection (scalar loop).
    pub const NONE: Sel = Sel {
        class: 0,
        align: 0,
        kind: Kind::Scalar,
    };

    pub fn select(block: u64, stride: i64) -> Sel {
        let class = match block {
            2 | 4 | 8 | 16 | 32 if stride > 0 => block as u8,
            _ => 0,
        };
        if class == 0 {
            return Sel::NONE;
        }
        let align = (stride as u64 | block).trailing_zeros().min(6) as u8;
        let (sse2, avx2) = feats();
        let kind = if avx2 && matches!(class, 8 | 16 | 32) {
            Kind::Avx2
        } else if sse2 {
            Kind::Sse2
        } else {
            Kind::Fixed
        };
        Sel { class, align, kind }
    }

    /// Whether a non-scalar kernel can engage for this frame.
    pub fn eligible(&self) -> bool {
        self.class != 0
    }
}

/// Resolve the effective kernel for one frame region: the frame's
/// compile-time selection filtered through the process mode, degraded to
/// what the CPU supports. `Scalar` means "use the per-block sink loop".
pub(crate) fn resolve(sel: Sel, mode: Mode) -> Kind {
    if sel.class == 0 {
        return Kind::Scalar;
    }
    match mode {
        Mode::Auto => sel.kind,
        Mode::Scalar => Kind::Scalar,
        Mode::Fixed => Kind::Fixed,
        Mode::Sse2 => {
            if have(Kind::Sse2) {
                Kind::Sse2
            } else {
                Kind::Fixed
            }
        }
        Mode::Avx2 => {
            if have(Kind::Avx2) && matches!(sel.class, 8 | 16 | 32) {
                Kind::Avx2
            } else if have(Kind::Sse2) {
                Kind::Sse2
            } else {
                Kind::Fixed
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Portable fixed-width kernels
// ---------------------------------------------------------------------------

/// Gather `count` blocks of `B` bytes, `stride` apart, into contiguous
/// `dst`. Unrolled 4× so the constant-width copies pipeline.
///
/// # Safety
/// `src` must be readable for every block `[j*stride, j*stride + B)`,
/// `j < count`, and `dst` writable for `count * B` bytes.
unsafe fn gather_fixed<const B: usize>(src: *const u8, stride: isize, count: usize, dst: *mut u8) {
    let mut s = src;
    let mut d = dst;
    let mut i = 0;
    while i + 4 <= count {
        ptr::copy_nonoverlapping(s, d, B);
        ptr::copy_nonoverlapping(s.offset(stride), d.add(B), B);
        ptr::copy_nonoverlapping(s.offset(2 * stride), d.add(2 * B), B);
        ptr::copy_nonoverlapping(s.offset(3 * stride), d.add(3 * B), B);
        s = s.offset(4 * stride);
        d = d.add(4 * B);
        i += 4;
    }
    while i < count {
        ptr::copy_nonoverlapping(s, d, B);
        s = s.offset(stride);
        d = d.add(B);
        i += 1;
    }
}

/// Scatter `count` contiguous blocks of `B` bytes from `src` to `dst`,
/// `stride` apart. Safety mirrors [`gather_fixed`] with roles swapped.
unsafe fn scatter_fixed<const B: usize>(src: *const u8, dst: *mut u8, stride: isize, count: usize) {
    let mut s = src;
    let mut d = dst;
    let mut i = 0;
    while i + 4 <= count {
        ptr::copy_nonoverlapping(s, d, B);
        ptr::copy_nonoverlapping(s.add(B), d.offset(stride), B);
        ptr::copy_nonoverlapping(s.add(2 * B), d.offset(2 * stride), B);
        ptr::copy_nonoverlapping(s.add(3 * B), d.offset(3 * stride), B);
        s = s.add(4 * B);
        d = d.offset(4 * stride);
        i += 4;
    }
    while i < count {
        ptr::copy_nonoverlapping(s, d, B);
        s = s.add(B);
        d = d.offset(stride);
        i += 1;
    }
}

unsafe fn gather_fixed_class(class: u8, src: *const u8, stride: isize, count: usize, dst: *mut u8) {
    match class {
        2 => gather_fixed::<2>(src, stride, count, dst),
        4 => gather_fixed::<4>(src, stride, count, dst),
        8 => gather_fixed::<8>(src, stride, count, dst),
        16 => gather_fixed::<16>(src, stride, count, dst),
        32 => gather_fixed::<32>(src, stride, count, dst),
        _ => unreachable!("kernel call on ineligible frame"),
    }
}

unsafe fn scatter_fixed_class(
    class: u8,
    src: *const u8,
    dst: *mut u8,
    stride: isize,
    count: usize,
) {
    match class {
        2 => scatter_fixed::<2>(src, dst, stride, count),
        4 => scatter_fixed::<4>(src, dst, stride, count),
        8 => scatter_fixed::<8>(src, dst, stride, count),
        16 => scatter_fixed::<16>(src, dst, stride, count),
        32 => scatter_fixed::<32>(src, dst, stride, count),
        _ => unreachable!("kernel call on ineligible frame"),
    }
}

// ---------------------------------------------------------------------------
// x86_64 SIMD kernels
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{gather_fixed, scatter_fixed};
    use core::arch::x86_64::*;
    use std::ptr;

    /// 8 two-byte blocks per 16-byte store; tail via the fixed kernel.
    ///
    /// # Safety
    /// Bounds as in [`gather_fixed`]; requires SSE2 (x86_64 baseline).
    pub unsafe fn gather2_sse2(src: *const u8, stride: isize, count: usize, dst: *mut u8) {
        let mut s = src;
        let mut d = dst;
        let mut i = 0;
        let rd = |p: *const u8| ptr::read_unaligned(p as *const u16) as i16;
        while i + 8 <= count {
            let v = _mm_set_epi16(
                rd(s.offset(7 * stride)),
                rd(s.offset(6 * stride)),
                rd(s.offset(5 * stride)),
                rd(s.offset(4 * stride)),
                rd(s.offset(3 * stride)),
                rd(s.offset(2 * stride)),
                rd(s.offset(stride)),
                rd(s),
            );
            _mm_storeu_si128(d as *mut __m128i, v);
            s = s.offset(8 * stride);
            d = d.add(16);
            i += 8;
        }
        gather_fixed::<2>(s, stride, count - i, d);
    }

    /// 4 four-byte blocks per 16-byte store.
    ///
    /// # Safety
    /// Bounds as in [`gather_fixed`]; requires SSE2.
    pub unsafe fn gather4_sse2(src: *const u8, stride: isize, count: usize, dst: *mut u8) {
        let mut s = src;
        let mut d = dst;
        let mut i = 0;
        let rd = |p: *const u8| ptr::read_unaligned(p as *const u32) as i32;
        while i + 4 <= count {
            let v = _mm_set_epi32(
                rd(s.offset(3 * stride)),
                rd(s.offset(2 * stride)),
                rd(s.offset(stride)),
                rd(s),
            );
            _mm_storeu_si128(d as *mut __m128i, v);
            s = s.offset(4 * stride);
            d = d.add(16);
            i += 4;
        }
        gather_fixed::<4>(s, stride, count - i, d);
    }

    /// 2 eight-byte blocks per 16-byte store.
    ///
    /// # Safety
    /// Bounds as in [`gather_fixed`]; requires SSE2.
    pub unsafe fn gather8_sse2(src: *const u8, stride: isize, count: usize, dst: *mut u8) {
        let mut s = src;
        let mut d = dst;
        let mut i = 0;
        let rd = |p: *const u8| ptr::read_unaligned(p as *const u64) as i64;
        while i + 2 <= count {
            let v = _mm_set_epi64x(rd(s.offset(stride)), rd(s));
            _mm_storeu_si128(d as *mut __m128i, v);
            s = s.offset(2 * stride);
            d = d.add(16);
            i += 2;
        }
        gather_fixed::<8>(s, stride, count - i, d);
    }

    /// One 16-byte unaligned load/store per block, unrolled 4×.
    ///
    /// # Safety
    /// Bounds as in [`gather_fixed`]; requires SSE2.
    pub unsafe fn gather16_sse2(src: *const u8, stride: isize, count: usize, dst: *mut u8) {
        let mut s = src;
        let mut d = dst;
        let mut i = 0;
        while i + 4 <= count {
            let a = _mm_loadu_si128(s as *const __m128i);
            let b = _mm_loadu_si128(s.offset(stride) as *const __m128i);
            let c = _mm_loadu_si128(s.offset(2 * stride) as *const __m128i);
            let e = _mm_loadu_si128(s.offset(3 * stride) as *const __m128i);
            _mm_storeu_si128(d as *mut __m128i, a);
            _mm_storeu_si128(d.add(16) as *mut __m128i, b);
            _mm_storeu_si128(d.add(32) as *mut __m128i, c);
            _mm_storeu_si128(d.add(48) as *mut __m128i, e);
            s = s.offset(4 * stride);
            d = d.add(64);
            i += 4;
        }
        while i < count {
            let a = _mm_loadu_si128(s as *const __m128i);
            _mm_storeu_si128(d as *mut __m128i, a);
            s = s.offset(stride);
            d = d.add(16);
            i += 1;
        }
    }

    /// Two 16-byte loads/stores per 32-byte block.
    ///
    /// # Safety
    /// Bounds as in [`gather_fixed`]; requires SSE2.
    pub unsafe fn gather32_sse2(src: *const u8, stride: isize, count: usize, dst: *mut u8) {
        let mut s = src;
        let mut d = dst;
        let mut i = 0;
        while i < count {
            let a = _mm_loadu_si128(s as *const __m128i);
            let b = _mm_loadu_si128(s.add(16) as *const __m128i);
            _mm_storeu_si128(d as *mut __m128i, a);
            _mm_storeu_si128(d.add(16) as *mut __m128i, b);
            s = s.offset(stride);
            d = d.add(32);
            i += 1;
        }
    }

    /// 16-byte strided stores from a contiguous source.
    ///
    /// # Safety
    /// Bounds as in [`scatter_fixed`]; requires SSE2.
    pub unsafe fn scatter16_sse2(src: *const u8, dst: *mut u8, stride: isize, count: usize) {
        let mut s = src;
        let mut d = dst;
        let mut i = 0;
        while i + 4 <= count {
            let a = _mm_loadu_si128(s as *const __m128i);
            let b = _mm_loadu_si128(s.add(16) as *const __m128i);
            let c = _mm_loadu_si128(s.add(32) as *const __m128i);
            let e = _mm_loadu_si128(s.add(48) as *const __m128i);
            _mm_storeu_si128(d as *mut __m128i, a);
            _mm_storeu_si128(d.offset(stride) as *mut __m128i, b);
            _mm_storeu_si128(d.offset(2 * stride) as *mut __m128i, c);
            _mm_storeu_si128(d.offset(3 * stride) as *mut __m128i, e);
            s = s.add(64);
            d = d.offset(4 * stride);
            i += 4;
        }
        while i < count {
            let a = _mm_loadu_si128(s as *const __m128i);
            _mm_storeu_si128(d as *mut __m128i, a);
            s = s.add(16);
            d = d.offset(stride);
            i += 1;
        }
    }

    /// 32-byte strided stores via two 16-byte ops per block.
    ///
    /// # Safety
    /// Bounds as in [`scatter_fixed`]; requires SSE2.
    pub unsafe fn scatter32_sse2(src: *const u8, dst: *mut u8, stride: isize, count: usize) {
        let mut s = src;
        let mut d = dst;
        let mut i = 0;
        while i < count {
            let a = _mm_loadu_si128(s as *const __m128i);
            let b = _mm_loadu_si128(s.add(16) as *const __m128i);
            _mm_storeu_si128(d as *mut __m128i, a);
            _mm_storeu_si128(d.add(16) as *mut __m128i, b);
            s = s.add(32);
            d = d.offset(stride);
            i += 1;
        }
    }

    /// 4 eight-byte blocks per 32-byte store.
    ///
    /// # Safety
    /// Bounds as in [`gather_fixed`]; requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gather8_avx2(src: *const u8, stride: isize, count: usize, dst: *mut u8) {
        let mut s = src;
        let mut d = dst;
        let mut i = 0;
        let rd = |p: *const u8| ptr::read_unaligned(p as *const u64) as i64;
        while i + 4 <= count {
            let v = _mm256_set_epi64x(
                rd(s.offset(3 * stride)),
                rd(s.offset(2 * stride)),
                rd(s.offset(stride)),
                rd(s),
            );
            _mm256_storeu_si256(d as *mut __m256i, v);
            s = s.offset(4 * stride);
            d = d.add(32);
            i += 4;
        }
        gather_fixed::<8>(s, stride, count - i, d);
    }

    /// 2 sixteen-byte blocks per 32-byte store.
    ///
    /// # Safety
    /// Bounds as in [`gather_fixed`]; requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gather16_avx2(src: *const u8, stride: isize, count: usize, dst: *mut u8) {
        let mut s = src;
        let mut d = dst;
        let mut i = 0;
        while i + 2 <= count {
            let lo = _mm_loadu_si128(s as *const __m128i);
            let hi = _mm_loadu_si128(s.offset(stride) as *const __m128i);
            let v = _mm256_set_m128i(hi, lo);
            _mm256_storeu_si256(d as *mut __m256i, v);
            s = s.offset(2 * stride);
            d = d.add(32);
            i += 2;
        }
        if i < count {
            let a = _mm_loadu_si128(s as *const __m128i);
            _mm_storeu_si128(d as *mut __m128i, a);
        }
    }

    /// One 32-byte unaligned load/store per block, unrolled 2×.
    ///
    /// # Safety
    /// Bounds as in [`gather_fixed`]; requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gather32_avx2(src: *const u8, stride: isize, count: usize, dst: *mut u8) {
        let mut s = src;
        let mut d = dst;
        let mut i = 0;
        while i + 2 <= count {
            let a = _mm256_loadu_si256(s as *const __m256i);
            let b = _mm256_loadu_si256(s.offset(stride) as *const __m256i);
            _mm256_storeu_si256(d as *mut __m256i, a);
            _mm256_storeu_si256(d.add(32) as *mut __m256i, b);
            s = s.offset(2 * stride);
            d = d.add(64);
            i += 2;
        }
        if i < count {
            let a = _mm256_loadu_si256(s as *const __m256i);
            _mm256_storeu_si256(d as *mut __m256i, a);
        }
    }

    /// 32-byte strided stores from a contiguous source.
    ///
    /// # Safety
    /// Bounds as in [`scatter_fixed`]; requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scatter32_avx2(src: *const u8, dst: *mut u8, stride: isize, count: usize) {
        let mut s = src;
        let mut d = dst;
        let mut i = 0;
        while i < count {
            let a = _mm256_loadu_si256(s as *const __m256i);
            _mm256_storeu_si256(d as *mut __m256i, a);
            s = s.add(32);
            d = d.offset(stride);
            i += 1;
        }
    }

    /// Eight-byte scatter: strided `u64` stores (one mov per block).
    ///
    /// # Safety
    /// Bounds as in [`scatter_fixed`].
    pub unsafe fn scatter8(src: *const u8, dst: *mut u8, stride: isize, count: usize) {
        scatter_fixed::<8>(src, dst, stride, count)
    }
}

/// Gather `count` whole blocks of `class` bytes, `stride` apart starting
/// at `src`, into contiguous `dst`, using kernel family `kind`. One
/// dispatch per frame region.
///
/// # Safety
/// The caller proves bounds for the whole region: every block
/// `[j*stride, j*stride + class)` readable at `src`, `count * class`
/// bytes writable at `dst`. `kind` must be CPU-supported ([`resolve`]).
pub(crate) unsafe fn gather(
    kind: Kind,
    class: u8,
    src: *const u8,
    stride: isize,
    count: usize,
    dst: *mut u8,
) {
    match kind {
        Kind::Scalar | Kind::Fixed => gather_fixed_class(class, src, stride, count, dst),
        #[cfg(target_arch = "x86_64")]
        Kind::Sse2 => match class {
            2 => x86::gather2_sse2(src, stride, count, dst),
            4 => x86::gather4_sse2(src, stride, count, dst),
            8 => x86::gather8_sse2(src, stride, count, dst),
            16 => x86::gather16_sse2(src, stride, count, dst),
            32 => x86::gather32_sse2(src, stride, count, dst),
            _ => unreachable!("kernel call on ineligible frame"),
        },
        #[cfg(target_arch = "x86_64")]
        Kind::Avx2 => match class {
            2 => x86::gather2_sse2(src, stride, count, dst),
            4 => x86::gather4_sse2(src, stride, count, dst),
            8 => x86::gather8_avx2(src, stride, count, dst),
            16 => x86::gather16_avx2(src, stride, count, dst),
            32 => x86::gather32_avx2(src, stride, count, dst),
            _ => unreachable!("kernel call on ineligible frame"),
        },
        #[cfg(not(target_arch = "x86_64"))]
        Kind::Sse2 | Kind::Avx2 => gather_fixed_class(class, src, stride, count, dst),
    }
}

/// Scatter `count` contiguous blocks of `class` bytes from `src` to
/// strided `dst`. Small-block scatters have no profitable SIMD batching
/// (the stores are strided), so classes 2/4/8 use the fixed kernels
/// under every family; 16/32 use wide stores.
///
/// # Safety
/// Mirror of [`gather`] with roles swapped.
pub(crate) unsafe fn scatter(
    kind: Kind,
    class: u8,
    src: *const u8,
    dst: *mut u8,
    stride: isize,
    count: usize,
) {
    match kind {
        Kind::Scalar | Kind::Fixed => scatter_fixed_class(class, src, dst, stride, count),
        #[cfg(target_arch = "x86_64")]
        Kind::Sse2 | Kind::Avx2 => match class {
            2 => scatter_fixed::<2>(src, dst, stride, count),
            4 => scatter_fixed::<4>(src, dst, stride, count),
            8 => x86::scatter8(src, dst, stride, count),
            16 => x86::scatter16_sse2(src, dst, stride, count),
            32 => {
                if kind == Kind::Avx2 {
                    x86::scatter32_avx2(src, dst, stride, count)
                } else {
                    x86::scatter32_sse2(src, dst, stride, count)
                }
            }
            _ => unreachable!("kernel call on ineligible frame"),
        },
        #[cfg(not(target_arch = "x86_64"))]
        Kind::Sse2 | Kind::Avx2 => scatter_fixed_class(class, src, dst, stride, count),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds_to_test() -> Vec<Kind> {
        let mut v = vec![Kind::Fixed];
        if have(Kind::Sse2) {
            v.push(Kind::Sse2);
        }
        if have(Kind::Avx2) {
            v.push(Kind::Avx2);
        }
        v
    }

    #[test]
    fn gather_matches_reference_for_every_class_and_kind() {
        for &class in &[2u8, 4, 8, 16, 32] {
            let b = class as usize;
            for stride in [b as isize, b as isize + 3, 2 * b as isize, 64] {
                for count in [0usize, 1, 2, 3, 7, 8, 9, 31, 64] {
                    let span = (count.max(1) - 1) as isize * stride + b as isize;
                    let src: Vec<u8> = (0..span as usize + 5).map(|i| (i % 251) as u8).collect();
                    let mut want = vec![0u8; count * b];
                    for j in 0..count {
                        let s = j as isize * stride;
                        want[j * b..(j + 1) * b].copy_from_slice(&src[s as usize..s as usize + b]);
                    }
                    for kind in kinds_to_test() {
                        let mut got = vec![0u8; count * b];
                        unsafe {
                            gather(kind, class, src.as_ptr(), stride, count, got.as_mut_ptr());
                        }
                        assert_eq!(
                            got, want,
                            "gather class={class} stride={stride} count={count} kind={kind:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scatter_matches_reference_for_every_class_and_kind() {
        for &class in &[2u8, 4, 8, 16, 32] {
            let b = class as usize;
            for stride in [b as isize, b as isize + 3, 2 * b as isize, 64] {
                for count in [0usize, 1, 2, 3, 7, 8, 9, 31, 64] {
                    let span = (count.max(1) - 1) as isize * stride + b as isize;
                    let src: Vec<u8> = (0..count * b).map(|i| (i % 249) as u8).collect();
                    let mut want = vec![0u8; span as usize + 5];
                    for j in 0..count {
                        let s = j as isize * stride;
                        want[s as usize..s as usize + b].copy_from_slice(&src[j * b..(j + 1) * b]);
                    }
                    for kind in kinds_to_test() {
                        let mut got = vec![0u8; span as usize + 5];
                        unsafe {
                            scatter(kind, class, src.as_ptr(), got.as_mut_ptr(), stride, count);
                        }
                        assert_eq!(
                            got, want,
                            "scatter class={class} stride={stride} count={count} kind={kind:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn selection_records_class_and_alignment() {
        let s = Sel::select(8, 64);
        assert_eq!(s.class, 8);
        assert_eq!(s.align, 3);
        assert!(s.eligible());
        // kernel-ineligible shapes
        assert_eq!(Sel::select(8192, 16384), Sel::NONE);
        assert_eq!(Sel::select(8, -16), Sel::NONE);
        assert_eq!(Sel::select(3, 7), Sel::NONE);
        // dense 32B blocks are eligible
        assert!(Sel::select(32, 32).eligible());
    }

    #[test]
    fn resolve_degrades_to_supported_kinds() {
        let sel = Sel::select(4, 16);
        assert_eq!(resolve(sel, Mode::Scalar), Kind::Scalar);
        assert_eq!(resolve(Sel::NONE, Mode::Avx2), Kind::Scalar);
        assert_eq!(resolve(sel, Mode::Fixed), Kind::Fixed);
        let k = resolve(sel, Mode::Auto);
        assert!(have(k), "auto selection must be CPU-supported");
        // avx2 has no 4-byte gather batching beyond sse2's
        let k = resolve(sel, Mode::Avx2);
        assert!(matches!(k, Kind::Sse2 | Kind::Fixed));
    }

    #[test]
    fn mode_parse_round_trips() {
        for m in Mode::ALL {
            assert_eq!(Mode::parse(m.name()), Some(m));
        }
        assert_eq!(Mode::parse("AVX2"), Some(Mode::Avx2));
        assert_eq!(Mode::parse("bogus"), None);
    }
}
