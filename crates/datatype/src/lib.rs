//! # lio-datatype — MPI-style derived datatypes with listless handling
//!
//! This crate implements the datatype machinery underlying the SC'03 paper
//! *Fast Parallel Non-Contiguous File Access* (Worringen, Träff, Ritzdorf):
//!
//! * [`Datatype`] — immutable derived-datatype trees mirroring the MPI
//!   constructors (contiguous, vector, hvector, indexed, hindexed,
//!   indexed_block, struct, subarray, resized, LB/UB markers), with MPI
//!   size/extent/bound semantics;
//! * [`OlList`] — **explicit flattening** into `⟨offset, length⟩` lists,
//!   the list-based baseline the paper attributes to ROMIO, complete with
//!   its `O(Nblock)` costs in time and memory and its linear-traversal
//!   navigation;
//! * [`FlatIter`], [`ff_pack`], [`ff_unpack`], [`ff_size`], [`ff_extent`]
//!   — **flattening-on-the-fly**, the paper's listless alternative:
//!   `O(depth)` seek, `O(depth · log k)` navigation, and pack/unpack whose
//!   cost is proportional only to the bytes moved;
//! * [`serialize`] — the compact tree encoding exchanged once per fileview
//!   by the fileview-caching optimization.
//!
//! The [`typemap`] module provides a deliberately naive reference
//! expansion used as the differential-testing oracle.
//!
//! ## Quick example
//!
//! ```
//! use lio_datatype::{Datatype, ff_pack, ff_size, OlList};
//!
//! // 8 blocks of one double, stride two doubles (the noncontig pattern):
//! let d = Datatype::vector(8, 1, 2, &Datatype::double()).unwrap();
//! let src: Vec<u8> = (0..d.extent() as u8).collect();
//!
//! // listless: pack without ever materializing a block list
//! let mut packed = vec![0u8; d.size() as usize];
//! assert_eq!(ff_pack(&src, 1, &d, 0, &mut packed), packed.len());
//!
//! // list-based: the same result via an explicit ol-list
//! let ol = OlList::flatten(&d, 1);
//! let mut packed2 = vec![0u8; d.size() as usize];
//! ol.pack(&src, 0, &mut packed2);
//! assert_eq!(packed, packed2);
//!
//! // navigation in O(depth): bytes of data in the first 48 bytes of file
//! assert_eq!(ff_size(&d, 0, 48), 24);
//! ```

pub mod darray;
pub mod ff;
pub mod flatten;
pub mod iter;
pub mod kernels;
pub mod program;
pub mod serialize;
pub mod strided;
pub mod typemap;
pub mod types;

pub use darray::{darray, Distrib};
pub use ff::{
    bytes_below_tiled, ff_extent, ff_offset, ff_pack, ff_pack_at, ff_pack_sharded, ff_pack_shards,
    ff_size, ff_unpack, ff_unpack_at, ff_unpack_sharded, ff_unpack_shards, SHARD_MIN_BYTES,
    SHARD_MIN_TOTAL,
};
pub use flatten::{OlList, OlPos, OlSeg};
pub use iter::FlatIter;
pub use program::RunProgram;
pub use strided::{strided_pack, strided_unpack, StridedSpec};
pub use typemap::Run;
pub use types::{Datatype, Field, HBlock, Order, TypeError, TypeKind};
