//! The derived-datatype tree: constructors and cached per-node metadata.
//!
//! A [`Datatype`] is an immutable, reference-counted tree mirroring the MPI
//! derived-datatype constructors (`MPI_Type_contiguous`, `MPI_Type_vector`,
//! `MPI_Type_create_hvector`, `MPI_Type_indexed`, `MPI_Type_create_hindexed`,
//! `MPI_Type_create_struct`, `MPI_Type_create_subarray`,
//! `MPI_Type_create_resized`, and the MPI-1 `MPI_LB`/`MPI_UB` markers).
//!
//! Every node caches the quantities both I/O engines need in `O(1)`:
//! `size` (true data bytes per instance), `lb`/`ub` (extent bounds, marker
//! aware), `depth` (tree depth — the paper's low-order cost term for
//! flattening-on-the-fly), and block statistics. Indexed and struct nodes
//! additionally carry prefix sums of child sizes so that
//! flattening-on-the-fly can seek to an arbitrary data offset in
//! `O(depth · log k)` instead of traversing an ol-list.

use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::program::RunProgram;

/// Errors arising from datatype construction or use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A count, blocklength, or size parameter was negative in spirit
    /// (we use unsigned types, so this reports impossible combinations).
    InvalidCount(String),
    /// Mismatched argument lengths (e.g. displacements vs blocklengths).
    LengthMismatch { left: usize, right: usize },
    /// A subarray specification was inconsistent.
    InvalidSubarray(String),
    /// The type is not usable in the requested role (e.g. as a filetype).
    InvalidUsage(String),
    /// Deserialization of a compact type representation failed.
    Corrupt(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::InvalidCount(s) => write!(f, "invalid count: {s}"),
            TypeError::LengthMismatch { left, right } => {
                write!(f, "argument length mismatch: {left} vs {right}")
            }
            TypeError::InvalidSubarray(s) => write!(f, "invalid subarray: {s}"),
            TypeError::InvalidUsage(s) => write!(f, "invalid usage: {s}"),
            TypeError::Corrupt(s) => write!(f, "corrupt type encoding: {s}"),
        }
    }
}

impl std::error::Error for TypeError {}

/// Array storage order for [`Datatype::subarray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Row-major (last dimension contiguous), like C and `MPI_ORDER_C`.
    C,
    /// Column-major (first dimension contiguous), like Fortran and
    /// `MPI_ORDER_FORTRAN`.
    Fortran,
}

/// One block of an `hindexed`-style node: `blocklen` child instances placed
/// at byte displacement `disp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HBlock {
    /// Byte displacement of the block relative to the node origin.
    pub disp: i64,
    /// Number of consecutive child instances in this block.
    pub blocklen: u64,
}

/// One field of a struct node: `count` instances of `child` at byte
/// displacement `disp`.
#[derive(Debug, Clone)]
pub struct Field {
    /// Byte displacement of the field relative to the node origin.
    pub disp: i64,
    /// Repetition count of the child type.
    pub count: u64,
    /// The field's datatype.
    pub child: Datatype,
}

/// The constructor variants of a datatype node.
#[derive(Debug, Clone)]
pub enum TypeKind {
    /// An elementary type of `size` bytes (e.g. 1 = `MPI_BYTE`,
    /// 8 = `MPI_DOUBLE`). The typemap is a single run at displacement 0.
    Basic { size: u32 },
    /// MPI-1 `MPI_LB`: a zero-size marker pinning the lower bound.
    LbMark,
    /// MPI-1 `MPI_UB`: a zero-size marker pinning the upper bound.
    UbMark,
    /// `count` child instances tiled at multiples of the child extent.
    Contiguous { count: u64, child: Datatype },
    /// `count` blocks of `blocklen` child instances; block `i` starts at
    /// byte `i * stride` (`stride` is in **bytes**; the element-stride
    /// constructor converts). Covers both `vector` and `hvector`.
    Hvector {
        count: u64,
        blocklen: u64,
        stride: i64,
        child: Datatype,
    },
    /// Blocks of child instances at explicit byte displacements. Covers
    /// `indexed`, `hindexed`, and `indexed_block`.
    Hindexed {
        blocks: Arc<[HBlock]>,
        child: Datatype,
    },
    /// Heterogeneous fields at explicit byte displacements.
    Struct { fields: Arc<[Field]> },
    /// The child with overridden lower bound and extent
    /// (`MPI_Type_create_resized`).
    Resized {
        lb: i64,
        extent: u64,
        child: Datatype,
    },
}

/// Cached metadata for one node; computed once at construction.
#[derive(Debug)]
pub(crate) struct Meta {
    /// True data bytes in one instance of the type.
    pub size: u64,
    /// Effective lower bound in bytes (marker/resize aware).
    pub lb: i64,
    /// Effective upper bound in bytes (marker/resize aware); extent = ub-lb.
    pub ub: i64,
    /// Lowest byte touched by actual data (ignoring markers), or 0 if empty.
    pub data_lb: i64,
    /// One past the highest byte touched by actual data, or 0 if empty.
    pub data_ub: i64,
    /// Sticky explicit lower bound from an `MPI_LB` marker in the typemap.
    pub explicit_lb: Option<i64>,
    /// Sticky explicit upper bound from an `MPI_UB` marker in the typemap.
    pub explicit_ub: Option<i64>,
    /// Depth of the tree (a Basic leaf has depth 1).
    pub depth: u32,
    /// If the instance's data forms a single contiguous run, its start
    /// displacement.
    pub single_run: Option<i64>,
    /// Number of leaf runs per instance **before** adjacent-run merging:
    /// the ol-list length a naive flattener produces (the paper's Nblock
    /// upper bound).
    pub leaf_runs: u64,
    /// Whether all data displacements within one instance are monotone
    /// non-decreasing in typemap order, and non-negative — the MPI-IO
    /// precondition for filetypes and etypes.
    pub monotone: bool,
    /// Prefix sums of cumulative data size per block/field (indexed and
    /// struct nodes only); `prefix[i]` = data bytes strictly before child
    /// block `i`. Length = number of blocks + 1.
    pub size_prefix: Option<Arc<[u64]>>,
}

/// An immutable MPI-style derived datatype.
///
/// Cloning is cheap (`Arc`). All constructors validate their arguments and
/// return [`TypeError`] on inconsistent input.
///
/// # Example
///
/// ```
/// use lio_datatype::Datatype;
///
/// // A vector of 4 blocks of 2 doubles, stride 3 doubles:
/// let d = Datatype::vector(4, 2, 3, &Datatype::double()).unwrap();
/// assert_eq!(d.size(), 4 * 2 * 8);
/// assert_eq!(d.extent(), ((3 * 3) + 2) as u64 * 8);
/// ```
#[derive(Clone)]
pub struct Datatype(pub(crate) Arc<Node>);

#[derive(Debug)]
pub(crate) struct Node {
    pub kind: TypeKind,
    pub meta: Meta,
    /// Compiled run program, built lazily on first pack/unpack and shared
    /// by every clone of this node (see [`Datatype::program`]).
    pub program: OnceLock<Arc<RunProgram>>,
}

impl fmt::Debug for Datatype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Datatype({:?}, size={}, lb={}, ub={})",
            self.kind_name(),
            self.size(),
            self.lb(),
            self.ub()
        )
    }
}

impl Datatype {
    // ----- elementary types ---------------------------------------------

    /// An elementary type of `size` bytes.
    pub fn basic(size: u32) -> Datatype {
        let size64 = size as u64;
        Datatype(Arc::new(Node {
            program: OnceLock::new(),
            kind: TypeKind::Basic { size },
            meta: Meta {
                size: size64,
                lb: 0,
                ub: size as i64,
                data_lb: 0,
                data_ub: size as i64,
                explicit_lb: None,
                explicit_ub: None,
                depth: 1,
                single_run: if size > 0 { Some(0) } else { None },
                leaf_runs: if size > 0 { 1 } else { 0 },
                monotone: true,
                size_prefix: None,
            },
        }))
    }

    /// `MPI_BYTE`: one byte.
    pub fn byte() -> Datatype {
        Datatype::basic(1)
    }

    /// `MPI_INT`: four bytes.
    pub fn int() -> Datatype {
        Datatype::basic(4)
    }

    /// `MPI_FLOAT`: four bytes.
    pub fn float() -> Datatype {
        Datatype::basic(4)
    }

    /// `MPI_DOUBLE`: eight bytes.
    pub fn double() -> Datatype {
        Datatype::basic(8)
    }

    /// The `MPI_LB` marker: zero-size, pins the lower bound of a struct.
    pub fn lb_marker() -> Datatype {
        Datatype(Arc::new(Node {
            program: OnceLock::new(),
            kind: TypeKind::LbMark,
            meta: Meta {
                size: 0,
                lb: 0,
                ub: 0,
                data_lb: 0,
                data_ub: 0,
                explicit_lb: Some(0),
                explicit_ub: None,
                depth: 1,
                single_run: None,
                leaf_runs: 0,
                monotone: true,
                size_prefix: None,
            },
        }))
    }

    /// The `MPI_UB` marker: zero-size, pins the upper bound of a struct.
    pub fn ub_marker() -> Datatype {
        Datatype(Arc::new(Node {
            program: OnceLock::new(),
            kind: TypeKind::UbMark,
            meta: Meta {
                size: 0,
                lb: 0,
                ub: 0,
                data_lb: 0,
                data_ub: 0,
                explicit_lb: None,
                explicit_ub: Some(0),
                depth: 1,
                single_run: None,
                leaf_runs: 0,
                monotone: true,
                size_prefix: None,
            },
        }))
    }

    // ----- derived constructors -----------------------------------------

    /// `MPI_Type_contiguous`: `count` child instances back to back.
    pub fn contiguous(count: u64, child: &Datatype) -> Result<Datatype, TypeError> {
        let ext = child.extent() as i64;
        let m = &child.0.meta;
        let size = m
            .size
            .checked_mul(count)
            .ok_or_else(|| TypeError::InvalidCount("contiguous size overflow".into()))?;
        let (data_lb, data_ub) = if count == 0 || m.size == 0 {
            (0, 0)
        } else {
            (m.data_lb, (count as i64 - 1) * ext + m.data_ub)
        };
        let explicit_lb = m.explicit_lb.map(|l| {
            // markers repeat with each instance; the minimum is at the first
            // or last instance depending on the sign of the extent
            if count == 0 {
                l
            } else {
                l.min((count as i64 - 1) * ext + l)
            }
        });
        let explicit_ub = m.explicit_ub.map(|u| {
            if count == 0 {
                u
            } else {
                u.max((count as i64 - 1) * ext + u)
            }
        });
        let lb = explicit_lb.unwrap_or(data_lb);
        let ub = explicit_ub.unwrap_or(data_ub);
        let single_run = match (count, m.single_run) {
            (0, _) => None,
            (1, s) => s,
            (_, Some(s)) if m.size == ext as u64 && ext >= 0 => Some(s),
            _ => None,
        };
        let leaf_runs = m.leaf_runs.saturating_mul(count);
        // Tiling a monotone child at non-negative multiples of a
        // non-negative extent stays monotone iff successive instances do
        // not interleave: instance i's data ends before instance i+1's
        // data begins.
        let monotone = m.monotone
            && data_lb >= 0
            && (count <= 1 || (ext >= 0 && m.data_ub <= ext + m.data_lb));
        Ok(Datatype(Arc::new(Node {
            program: OnceLock::new(),
            kind: TypeKind::Contiguous {
                count,
                child: child.clone(),
            },
            meta: Meta {
                size,
                lb,
                ub,
                data_lb,
                data_ub,
                explicit_lb,
                explicit_ub,
                depth: m.depth + 1,
                single_run,
                leaf_runs,
                monotone,
                size_prefix: None,
            },
        })))
    }

    /// `MPI_Type_vector`: `count` blocks of `blocklen` child instances,
    /// block starts `stride` child **extents** apart.
    pub fn vector(
        count: u64,
        blocklen: u64,
        stride: i64,
        child: &Datatype,
    ) -> Result<Datatype, TypeError> {
        let ext = child.extent() as i64;
        Datatype::hvector(count, blocklen, stride * ext, child)
    }

    /// `MPI_Type_create_hvector`: like [`Datatype::vector`] but the stride
    /// is in **bytes**.
    pub fn hvector(
        count: u64,
        blocklen: u64,
        stride: i64,
        child: &Datatype,
    ) -> Result<Datatype, TypeError> {
        let m = &child.0.meta;
        let ext = child.extent() as i64;
        let block_size = m
            .size
            .checked_mul(blocklen)
            .ok_or_else(|| TypeError::InvalidCount("hvector block size overflow".into()))?;
        let size = block_size
            .checked_mul(count)
            .ok_or_else(|| TypeError::InvalidCount("hvector size overflow".into()))?;

        // Displacements of the child instances: i*stride + j*ext for
        // i in 0..count, j in 0..blocklen.
        let empty = count == 0 || blocklen == 0;
        let span = |per_inst_lo: i64, per_inst_hi: i64| -> (i64, i64) {
            if empty {
                return (0, 0);
            }
            let last_block = (count as i64 - 1) * stride;
            let last_in_block = (blocklen as i64 - 1) * ext;
            let lo = per_inst_lo + 0i64.min(last_block) + 0i64.min(last_in_block);
            let hi = per_inst_hi + 0i64.max(last_block) + 0i64.max(last_in_block);
            (lo, hi)
        };
        let (data_lb, data_ub) = if empty || m.size == 0 {
            (0, 0)
        } else {
            span(m.data_lb, m.data_ub)
        };
        let explicit_lb = m.explicit_lb.map(|l| if empty { l } else { span(l, l).0 });
        let explicit_ub = m.explicit_ub.map(|u| if empty { u } else { span(u, u).1 });
        let lb = explicit_lb.unwrap_or(data_lb);
        let ub = explicit_ub.unwrap_or(data_ub);

        let dense_child = m.single_run.is_some() && m.size == ext as u64 && ext >= 0;
        let single_run = if empty {
            None
        } else if count == 1 && blocklen == 1 {
            m.single_run
        } else if dense_child && (count == 1 || stride == blocklen as i64 * ext) {
            // child instances tile seamlessly within and across blocks
            m.single_run
        } else {
            None
        };
        let leaf_runs = m.leaf_runs.saturating_mul(blocklen).saturating_mul(count);
        let block_extent = if blocklen == 0 {
            0
        } else {
            (blocklen as i64 - 1) * ext + m.data_ub - m.data_lb
        };
        let monotone = m.monotone
            && data_lb >= 0
            && ext >= 0
            && (blocklen <= 1 || m.data_ub <= ext + m.data_lb)
            && (count <= 1 || stride >= block_extent);
        Ok(Datatype(Arc::new(Node {
            program: OnceLock::new(),
            kind: TypeKind::Hvector {
                count,
                blocklen,
                stride,
                child: child.clone(),
            },
            meta: Meta {
                size,
                lb,
                ub,
                data_lb,
                data_ub,
                explicit_lb,
                explicit_ub,
                depth: m.depth + 1,
                single_run,
                leaf_runs,
                monotone,
                size_prefix: None,
            },
        })))
    }

    /// `MPI_Type_indexed`: blocks with displacements in child **extents**.
    pub fn indexed(
        blocklens: &[u64],
        disps: &[i64],
        child: &Datatype,
    ) -> Result<Datatype, TypeError> {
        if blocklens.len() != disps.len() {
            return Err(TypeError::LengthMismatch {
                left: blocklens.len(),
                right: disps.len(),
            });
        }
        let ext = child.extent() as i64;
        let blocks: Vec<HBlock> = blocklens
            .iter()
            .zip(disps)
            .map(|(&blocklen, &d)| HBlock {
                disp: d * ext,
                blocklen,
            })
            .collect();
        Datatype::hindexed_blocks(blocks, child)
    }

    /// `MPI_Type_create_hindexed`: blocks with displacements in **bytes**.
    pub fn hindexed(
        blocklens: &[u64],
        byte_disps: &[i64],
        child: &Datatype,
    ) -> Result<Datatype, TypeError> {
        if blocklens.len() != byte_disps.len() {
            return Err(TypeError::LengthMismatch {
                left: blocklens.len(),
                right: byte_disps.len(),
            });
        }
        let blocks: Vec<HBlock> = blocklens
            .iter()
            .zip(byte_disps)
            .map(|(&blocklen, &disp)| HBlock { disp, blocklen })
            .collect();
        Datatype::hindexed_blocks(blocks, child)
    }

    /// `MPI_Type_create_indexed_block`: equal-size blocks, displacements in
    /// child extents.
    pub fn indexed_block(
        blocklen: u64,
        disps: &[i64],
        child: &Datatype,
    ) -> Result<Datatype, TypeError> {
        let ext = child.extent() as i64;
        let blocks: Vec<HBlock> = disps
            .iter()
            .map(|&d| HBlock {
                disp: d * ext,
                blocklen,
            })
            .collect();
        Datatype::hindexed_blocks(blocks, child)
    }

    fn hindexed_blocks(mut blocks: Vec<HBlock>, child: &Datatype) -> Result<Datatype, TypeError> {
        // Zero-length blocks contribute no typemap entries (not even
        // markers), so dropping them is semantically transparent and keeps
        // the block list's displacement order consistent with its data.
        blocks.retain(|b| b.blocklen > 0);
        let m = &child.0.meta;
        let ext = child.extent() as i64;

        let mut size: u64 = 0;
        let mut prefix = Vec::with_capacity(blocks.len() + 1);
        prefix.push(0u64);
        let mut data_lb = i64::MAX;
        let mut data_ub = i64::MIN;
        let mut explicit_lb: Option<i64> = None;
        let mut explicit_ub: Option<i64> = None;
        let mut leaf_runs: u64 = 0;
        let needs_tiling = blocks.iter().any(|b| b.blocklen > 1);
        let mut monotone =
            m.monotone && ext >= 0 && (!needs_tiling || m.data_ub <= ext + m.data_lb);
        let mut prev_end: i64 = i64::MIN;

        for b in &blocks {
            let bsize = m.size.saturating_mul(b.blocklen);
            size = size
                .checked_add(bsize)
                .ok_or_else(|| TypeError::InvalidCount("hindexed size overflow".into()))?;
            prefix.push(size);
            leaf_runs = leaf_runs.saturating_add(m.leaf_runs.saturating_mul(b.blocklen));
            if b.blocklen > 0 {
                if m.size > 0 {
                    let lo = b.disp + m.data_lb;
                    let hi = b.disp + (b.blocklen as i64 - 1) * ext + m.data_ub;
                    data_lb = data_lb.min(lo);
                    data_ub = data_ub.max(hi);
                    if lo < prev_end || lo < 0 {
                        monotone = false;
                    }
                    prev_end = prev_end.max(hi);
                }
                if let Some(l) = m.explicit_lb {
                    let cand = b.disp + l;
                    explicit_lb = Some(explicit_lb.map_or(cand, |e| e.min(cand)));
                }
                if let Some(u) = m.explicit_ub {
                    let cand = b.disp + (b.blocklen as i64 - 1) * ext + u;
                    explicit_ub = Some(explicit_ub.map_or(cand, |e| e.max(cand)));
                }
            }
        }
        if data_lb == i64::MAX {
            data_lb = 0;
            data_ub = 0;
        }
        let lb = explicit_lb.unwrap_or(data_lb);
        let ub = explicit_ub.unwrap_or(data_ub);
        let single_run = single_run_of_blocks(&blocks, m, ext, size);
        Ok(Datatype(Arc::new(Node {
            program: OnceLock::new(),
            kind: TypeKind::Hindexed {
                blocks: blocks.into(),
                child: child.clone(),
            },
            meta: Meta {
                size,
                lb,
                ub,
                data_lb,
                data_ub,
                explicit_lb,
                explicit_ub,
                depth: m.depth + 1,
                single_run,
                leaf_runs,
                monotone,
                size_prefix: Some(prefix.into()),
            },
        })))
    }

    /// `MPI_Type_create_struct`: heterogeneous fields at byte displacements.
    ///
    /// `MPI_LB`/`MPI_UB` markers among the fields pin the bounds, exactly as
    /// in MPI-1 (this is how the paper's Figure 4 datatype sets its extent).
    pub fn struct_type(fields: Vec<Field>) -> Result<Datatype, TypeError> {
        let mut size: u64 = 0;
        let mut prefix = Vec::with_capacity(fields.len() + 1);
        prefix.push(0u64);
        let mut data_lb = i64::MAX;
        let mut data_ub = i64::MIN;
        let mut explicit_lb: Option<i64> = None;
        let mut explicit_ub: Option<i64> = None;
        let mut depth = 1;
        let mut leaf_runs: u64 = 0;
        let mut monotone = true;
        let mut prev_end: i64 = i64::MIN;

        for f in &fields {
            let m = &f.child.0.meta;
            let ext = f.child.extent() as i64;
            let fsize = m.size.saturating_mul(f.count);
            size = size
                .checked_add(fsize)
                .ok_or_else(|| TypeError::InvalidCount("struct size overflow".into()))?;
            prefix.push(size);
            depth = depth.max(m.depth + 1);
            leaf_runs = leaf_runs.saturating_add(m.leaf_runs.saturating_mul(f.count));
            if f.count > 0 {
                if m.size > 0 {
                    let lo = f.disp + m.data_lb;
                    let hi = f.disp + (f.count as i64 - 1) * ext + m.data_ub;
                    data_lb = data_lb.min(lo);
                    data_ub = data_ub.max(hi);
                    let tile_monotone =
                        m.monotone && ext >= 0 && (f.count <= 1 || m.data_ub <= ext + m.data_lb);
                    if !tile_monotone || lo < prev_end || lo < 0 {
                        monotone = false;
                    }
                    prev_end = prev_end.max(hi);
                }
                if let Some(l) = m.explicit_lb {
                    let cand = f.disp + l.min((f.count as i64 - 1) * ext + l);
                    explicit_lb = Some(explicit_lb.map_or(cand, |e| e.min(cand)));
                }
                if let Some(u) = m.explicit_ub {
                    let cand = f.disp + u.max((f.count as i64 - 1) * ext + u);
                    explicit_ub = Some(explicit_ub.map_or(cand, |e| e.max(cand)));
                }
            }
        }
        if data_lb == i64::MAX {
            data_lb = 0;
            data_ub = 0;
        }
        let lb = explicit_lb.unwrap_or(data_lb);
        let ub = explicit_ub.unwrap_or(data_ub);
        let single_run = single_run_of_fields(&fields, size);
        Ok(Datatype(Arc::new(Node {
            program: OnceLock::new(),
            kind: TypeKind::Struct {
                fields: fields.into(),
            },
            meta: Meta {
                size,
                lb,
                ub,
                data_lb,
                data_ub,
                explicit_lb,
                explicit_ub,
                depth,
                single_run,
                leaf_runs,
                monotone,
                size_prefix: None, // computed on demand via fields (heterogeneous)
            },
        })))
    }

    /// `MPI_Type_create_resized`: override the child's lower bound and
    /// extent.
    pub fn resized(child: &Datatype, lb: i64, extent: u64) -> Result<Datatype, TypeError> {
        let m = &child.0.meta;
        Ok(Datatype(Arc::new(Node {
            program: OnceLock::new(),
            kind: TypeKind::Resized {
                lb,
                extent,
                child: child.clone(),
            },
            meta: Meta {
                size: m.size,
                lb,
                ub: lb + extent as i64,
                data_lb: m.data_lb,
                data_ub: m.data_ub,
                explicit_lb: Some(lb),
                explicit_ub: Some(lb + extent as i64),
                depth: m.depth + 1,
                single_run: m.single_run,
                leaf_runs: m.leaf_runs,
                monotone: m.monotone && m.data_lb >= 0,
                size_prefix: None,
            },
        })))
    }

    /// `MPI_Type_create_subarray`: an `ndims`-dimensional subarray of
    /// `subsizes` starting at `starts` within a global array of `sizes`,
    /// over elements of type `elem`.
    ///
    /// The resulting type has the extent of the **full** array (like MPI),
    /// so tiling it as a filetype walks successive full arrays.
    pub fn subarray(
        sizes: &[u64],
        subsizes: &[u64],
        starts: &[u64],
        order: Order,
        elem: &Datatype,
    ) -> Result<Datatype, TypeError> {
        let nd = sizes.len();
        if subsizes.len() != nd || starts.len() != nd {
            return Err(TypeError::LengthMismatch {
                left: nd,
                right: subsizes.len().min(starts.len()),
            });
        }
        if nd == 0 {
            return Err(TypeError::InvalidSubarray("zero dimensions".into()));
        }
        for i in 0..nd {
            if subsizes[i] == 0 || sizes[i] == 0 {
                return Err(TypeError::InvalidSubarray(format!(
                    "dimension {i} has zero size"
                )));
            }
            if starts[i] + subsizes[i] > sizes[i] {
                return Err(TypeError::InvalidSubarray(format!(
                    "dimension {i}: start {} + subsize {} exceeds size {}",
                    starts[i], subsizes[i], sizes[i]
                )));
            }
        }

        // Normalize to row-major processing: dims[0] is the slowest.
        let idx: Vec<usize> = match order {
            Order::C => (0..nd).collect(),
            Order::Fortran => (0..nd).rev().collect(),
        };

        let esize = elem.extent();
        // Build from the innermost (contiguous) dimension outwards.
        let mut t = Datatype::contiguous(subsizes[idx[nd - 1]], elem)?;
        let mut row_extent = sizes[idx[nd - 1]] * esize; // bytes per full row
        let mut offset = starts[idx[nd - 1]] as i64 * esize as i64;
        for d in (0..nd - 1).rev() {
            let dim = idx[d];
            t = Datatype::hvector(subsizes[dim], 1, row_extent as i64, &t)?;
            offset += starts[dim] as i64 * row_extent as i64;
            row_extent *= sizes[dim];
        }
        // Place at the absolute offset and give it the full-array extent.
        let placed = Datatype::struct_type(vec![Field {
            disp: offset,
            count: 1,
            child: t,
        }])?;
        Datatype::resized(&placed, 0, row_extent)
    }

    // ----- accessors ------------------------------------------------------

    /// True data bytes in one instance.
    #[inline]
    pub fn size(&self) -> u64 {
        self.0.meta.size
    }

    /// Effective lower bound (bytes).
    #[inline]
    pub fn lb(&self) -> i64 {
        self.0.meta.lb
    }

    /// Effective upper bound (bytes).
    #[inline]
    pub fn ub(&self) -> i64 {
        self.0.meta.ub
    }

    /// Extent in bytes: `ub - lb`. When used with a repetition count,
    /// instance `i` is displaced by `i * extent`.
    #[inline]
    pub fn extent(&self) -> u64 {
        (self.0.meta.ub - self.0.meta.lb).max(0) as u64
    }

    /// Lowest byte offset touched by actual data.
    #[inline]
    pub fn data_lb(&self) -> i64 {
        self.0.meta.data_lb
    }

    /// One past the highest byte offset touched by actual data.
    #[inline]
    pub fn data_ub(&self) -> i64 {
        self.0.meta.data_ub
    }

    /// Tree depth (a leaf has depth 1). Flattening-on-the-fly costs are
    /// proportional to this, not to the number of blocks.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.0.meta.depth
    }

    /// Number of leaf runs per instance before adjacent-run merging — the
    /// length of the ol-list a naive flattener builds (`Nblock`).
    #[inline]
    pub fn leaf_runs(&self) -> u64 {
        self.0.meta.leaf_runs
    }

    /// If one instance's data is a single contiguous run, the displacement
    /// of that run.
    #[inline]
    pub fn single_run(&self) -> Option<i64> {
        self.0.meta.single_run
    }

    /// Whether the instance's data forms one contiguous run (gaps in the
    /// extent are still allowed).
    #[inline]
    pub fn is_contiguous(&self) -> bool {
        self.0.meta.single_run.is_some() || self.0.meta.size == 0
    }

    /// Whether data displacements are monotone non-decreasing and
    /// non-negative — required of etypes and filetypes by MPI-IO.
    #[inline]
    pub fn is_monotone(&self) -> bool {
        self.0.meta.monotone
    }

    /// The node kind (for inspection and serialization).
    #[inline]
    pub fn kind(&self) -> &TypeKind {
        &self.0.kind
    }

    pub(crate) fn kind_name(&self) -> &'static str {
        match self.0.kind {
            TypeKind::Basic { .. } => "Basic",
            TypeKind::LbMark => "LbMark",
            TypeKind::UbMark => "UbMark",
            TypeKind::Contiguous { .. } => "Contiguous",
            TypeKind::Hvector { .. } => "Hvector",
            TypeKind::Hindexed { .. } => "Hindexed",
            TypeKind::Struct { .. } => "Struct",
            TypeKind::Resized { .. } => "Resized",
        }
    }

    /// Validate the MPI-IO restrictions on filetypes (and etypes):
    /// monotonically non-decreasing, non-negative data displacements
    /// ([MPI-2, §9.1.1]). The paper's mergeview correctness argument
    /// depends on this.
    pub fn valid_as_filetype(&self) -> Result<(), TypeError> {
        if !self.0.meta.monotone {
            return Err(TypeError::InvalidUsage(
                "filetypes require monotone non-negative displacements".into(),
            ));
        }
        if self.0.meta.lb < 0 {
            return Err(TypeError::InvalidUsage(
                "filetypes require a non-negative lower bound".into(),
            ));
        }
        Ok(())
    }

    /// Pointer-identity equality (same `Arc`). Structural equality is
    /// provided by [`Datatype::structurally_equal`].
    #[inline]
    pub fn same(&self, other: &Datatype) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Deep structural equality of two type trees.
    pub fn structurally_equal(&self, other: &Datatype) -> bool {
        if self.same(other) {
            return true;
        }
        match (&self.0.kind, &other.0.kind) {
            (TypeKind::Basic { size: a }, TypeKind::Basic { size: b }) => a == b,
            (TypeKind::LbMark, TypeKind::LbMark) | (TypeKind::UbMark, TypeKind::UbMark) => true,
            (
                TypeKind::Contiguous {
                    count: c1,
                    child: t1,
                },
                TypeKind::Contiguous {
                    count: c2,
                    child: t2,
                },
            ) => c1 == c2 && t1.structurally_equal(t2),
            (
                TypeKind::Hvector {
                    count: c1,
                    blocklen: b1,
                    stride: s1,
                    child: t1,
                },
                TypeKind::Hvector {
                    count: c2,
                    blocklen: b2,
                    stride: s2,
                    child: t2,
                },
            ) => c1 == c2 && b1 == b2 && s1 == s2 && t1.structurally_equal(t2),
            (
                TypeKind::Hindexed {
                    blocks: b1,
                    child: t1,
                },
                TypeKind::Hindexed {
                    blocks: b2,
                    child: t2,
                },
            ) => b1 == b2 && t1.structurally_equal(t2),
            (TypeKind::Struct { fields: f1 }, TypeKind::Struct { fields: f2 }) => {
                f1.len() == f2.len()
                    && f1.iter().zip(f2.iter()).all(|(a, b)| {
                        a.disp == b.disp
                            && a.count == b.count
                            && a.child.structurally_equal(&b.child)
                    })
            }
            (
                TypeKind::Resized {
                    lb: l1,
                    extent: e1,
                    child: t1,
                },
                TypeKind::Resized {
                    lb: l2,
                    extent: e2,
                    child: t2,
                },
            ) => l1 == l2 && e1 == e2 && t1.structurally_equal(t2),
            _ => false,
        }
    }
}

/// Determine whether a set of hindexed blocks forms a single contiguous run.
fn single_run_of_blocks(blocks: &[HBlock], m: &Meta, ext: i64, total_size: u64) -> Option<i64> {
    if total_size == 0 {
        return None;
    }
    let dense_child = m.single_run == Some(m.data_lb) && m.size == ext.max(0) as u64;
    let mut start: Option<i64> = None;
    let mut end: i64 = 0;
    for b in blocks {
        if b.blocklen == 0 || m.size == 0 {
            continue;
        }
        let run_start;
        let run_end;
        if b.blocklen == 1 {
            let s = m.single_run?;
            run_start = b.disp + s;
            run_end = run_start + m.size as i64;
        } else if dense_child {
            run_start = b.disp + m.data_lb;
            run_end = run_start + (b.blocklen * m.size) as i64;
        } else {
            return None;
        }
        match start {
            None => {
                start = Some(run_start);
                end = run_end;
            }
            Some(_) => {
                if run_start != end {
                    return None;
                }
                end = run_end;
            }
        }
    }
    start
}

/// Determine whether struct fields form a single contiguous run.
fn single_run_of_fields(fields: &[Field], total_size: u64) -> Option<i64> {
    if total_size == 0 {
        return None;
    }
    let mut start: Option<i64> = None;
    let mut end: i64 = 0;
    for f in fields {
        let m = &f.child.0.meta;
        if f.count == 0 || m.size == 0 {
            continue;
        }
        let ext = f.child.extent() as i64;
        let run_start;
        let run_end;
        if f.count == 1 {
            let s = m.single_run?;
            run_start = f.disp + s;
            run_end = run_start + m.size as i64;
        } else if m.single_run == Some(m.data_lb) && m.size == ext.max(0) as u64 {
            run_start = f.disp + m.data_lb;
            run_end = run_start + (f.count * m.size) as i64;
        } else {
            return None;
        }
        match start {
            None => {
                start = Some(run_start);
                end = run_end;
            }
            Some(_) => {
                if run_start != end {
                    return None;
                }
                end = run_end;
            }
        }
    }
    start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let d = Datatype::double();
        assert_eq!(d.size(), 8);
        assert_eq!(d.extent(), 8);
        assert_eq!(d.lb(), 0);
        assert_eq!(d.ub(), 8);
        assert_eq!(d.depth(), 1);
        assert!(d.is_contiguous());
        assert!(d.is_monotone());
        assert_eq!(d.leaf_runs(), 1);
    }

    #[test]
    fn zero_size_basic() {
        let d = Datatype::basic(0);
        assert_eq!(d.size(), 0);
        assert_eq!(d.leaf_runs(), 0);
        assert!(d.is_contiguous()); // vacuously
    }

    #[test]
    fn contiguous_merges_runs() {
        let d = Datatype::contiguous(10, &Datatype::int()).unwrap();
        assert_eq!(d.size(), 40);
        assert_eq!(d.extent(), 40);
        assert_eq!(d.single_run(), Some(0));
        assert_eq!(d.depth(), 2);
    }

    #[test]
    fn contiguous_zero_count() {
        let d = Datatype::contiguous(0, &Datatype::int()).unwrap();
        assert_eq!(d.size(), 0);
        assert_eq!(d.extent(), 0);
        assert_eq!(d.leaf_runs(), 0);
    }

    #[test]
    fn vector_extent_matches_mpi() {
        // MPI example: vector(count=2, blocklen=3, stride=4) of MPI_INT
        // typemap spans [0, (4*(2-1)+3)*4) = [0, 28)
        let d = Datatype::vector(2, 3, 4, &Datatype::int()).unwrap();
        assert_eq!(d.size(), 24);
        assert_eq!(d.extent(), 28);
        assert!(!d.is_contiguous());
        assert!(d.is_monotone());
        assert_eq!(d.leaf_runs(), 6);
    }

    #[test]
    fn vector_dense_when_stride_equals_blocklen() {
        let d = Datatype::vector(4, 2, 2, &Datatype::double()).unwrap();
        assert_eq!(d.single_run(), Some(0));
        assert_eq!(d.size(), 64);
        assert_eq!(d.extent(), 64);
    }

    #[test]
    fn vector_negative_stride_not_monotone() {
        let d = Datatype::vector(3, 1, -2, &Datatype::int()).unwrap();
        assert!(!d.is_monotone());
        assert!(d.valid_as_filetype().is_err());
        // data spans from -2*2*4 to 4
        assert_eq!(d.data_lb(), -16);
        assert_eq!(d.data_ub(), 4);
    }

    #[test]
    fn hvector_byte_stride() {
        let d = Datatype::hvector(3, 1, 10, &Datatype::int()).unwrap();
        assert_eq!(d.size(), 12);
        assert_eq!(d.extent(), 24);
        assert!(d.is_monotone());
    }

    #[test]
    fn indexed_bounds() {
        let d = Datatype::indexed(&[2, 1], &[0, 5], &Datatype::int()).unwrap();
        assert_eq!(d.size(), 12);
        assert_eq!(d.lb(), 0);
        assert_eq!(d.ub(), 24);
        assert!(d.is_monotone());
    }

    #[test]
    fn indexed_non_monotone_detected() {
        let d = Datatype::indexed(&[1, 1], &[5, 0], &Datatype::int()).unwrap();
        assert!(!d.is_monotone());
        assert!(d.valid_as_filetype().is_err());
    }

    #[test]
    fn indexed_overlapping_blocks_not_monotone() {
        // block 0 covers elements 0..3, block 1 starts at element 2
        let d = Datatype::indexed(&[3, 2], &[0, 2], &Datatype::int()).unwrap();
        assert!(!d.is_monotone());
    }

    #[test]
    fn indexed_block_equal_sizes() {
        let d = Datatype::indexed_block(2, &[0, 4, 8], &Datatype::double()).unwrap();
        assert_eq!(d.size(), 48);
        assert_eq!(d.single_run(), None);
        assert!(d.is_monotone());
    }

    #[test]
    fn indexed_block_adjacent_is_single_run() {
        let d = Datatype::indexed_block(2, &[0, 2, 4], &Datatype::double()).unwrap();
        assert_eq!(d.single_run(), Some(0));
    }

    #[test]
    fn struct_with_lb_ub_markers() {
        // The paper's Figure 4: struct(LB@0, vector@disp, UB@extent).
        let v = Datatype::vector(4, 2, 6, &Datatype::double()).unwrap();
        let d = Datatype::struct_type(vec![
            Field {
                disp: 0,
                count: 1,
                child: Datatype::lb_marker(),
            },
            Field {
                disp: 16,
                count: 1,
                child: v,
            },
            Field {
                disp: 400,
                count: 1,
                child: Datatype::ub_marker(),
            },
        ])
        .unwrap();
        assert_eq!(d.lb(), 0);
        assert_eq!(d.ub(), 400);
        assert_eq!(d.extent(), 400);
        assert_eq!(d.size(), 64);
        assert!(d.is_monotone());
    }

    #[test]
    fn markers_are_sticky_through_constructors() {
        let inner = Datatype::struct_type(vec![
            Field {
                disp: 0,
                count: 1,
                child: Datatype::int(),
            },
            Field {
                disp: 100,
                count: 1,
                child: Datatype::ub_marker(),
            },
        ])
        .unwrap();
        assert_eq!(inner.extent(), 100);
        let outer = Datatype::contiguous(3, &inner).unwrap();
        // instances at 0, 100, 200; ub marker of last at 300
        assert_eq!(outer.ub(), 300);
        assert_eq!(outer.extent(), 300);
    }

    #[test]
    fn resized_overrides_bounds() {
        let d = Datatype::resized(&Datatype::int(), -4, 16).unwrap();
        assert_eq!(d.lb(), -4);
        assert_eq!(d.ub(), 12);
        assert_eq!(d.extent(), 16);
        assert_eq!(d.size(), 4);
        // negative lb makes it unusable as filetype
        assert!(d.valid_as_filetype().is_err());
    }

    #[test]
    fn resized_tiling_respects_new_extent() {
        let r = Datatype::resized(&Datatype::int(), 0, 12).unwrap();
        let c = Datatype::contiguous(3, &r).unwrap();
        assert_eq!(c.size(), 12);
        assert_eq!(c.extent(), 36);
        assert!(!c.is_contiguous());
    }

    #[test]
    fn subarray_2d_c_order() {
        // 4x6 array of ints, take rows 1..3, cols 2..5
        let d = Datatype::subarray(&[4, 6], &[2, 3], &[1, 2], Order::C, &Datatype::int()).unwrap();
        assert_eq!(d.size(), 2 * 3 * 4);
        assert_eq!(d.extent(), 4 * 6 * 4);
        assert!(d.is_monotone());
        assert!(d.valid_as_filetype().is_ok());
        // first data byte at (1*6+2)*4 = 32
        assert_eq!(d.data_lb(), 32);
    }

    #[test]
    fn subarray_fortran_order_matches_transposed_c() {
        let f = Datatype::subarray(&[6, 4], &[3, 2], &[2, 1], Order::Fortran, &Datatype::int())
            .unwrap();
        let c = Datatype::subarray(&[4, 6], &[2, 3], &[1, 2], Order::C, &Datatype::int()).unwrap();
        assert_eq!(f.size(), c.size());
        assert_eq!(f.extent(), c.extent());
        assert_eq!(f.data_lb(), c.data_lb());
    }

    #[test]
    fn subarray_full_extent_is_contiguous_data() {
        let d =
            Datatype::subarray(&[4, 4], &[4, 4], &[0, 0], Order::C, &Datatype::double()).unwrap();
        assert_eq!(d.size(), d.extent());
        assert!(d.is_contiguous());
    }

    #[test]
    fn subarray_rejects_out_of_range() {
        assert!(Datatype::subarray(&[4, 4], &[2, 3], &[3, 0], Order::C, &Datatype::int()).is_err());
        assert!(Datatype::subarray(&[4], &[0], &[0], Order::C, &Datatype::int()).is_err());
    }

    #[test]
    fn nested_vector_depth() {
        let inner = Datatype::vector(2, 1, 2, &Datatype::int()).unwrap();
        let outer = Datatype::vector(3, 1, 4, &inner).unwrap();
        assert_eq!(outer.depth(), 3);
        assert_eq!(outer.size(), 24);
        assert_eq!(outer.leaf_runs(), 6);
    }

    #[test]
    fn structural_equality() {
        let a = Datatype::vector(4, 2, 3, &Datatype::int()).unwrap();
        let b = Datatype::vector(4, 2, 3, &Datatype::int()).unwrap();
        let c = Datatype::vector(4, 2, 4, &Datatype::int()).unwrap();
        assert!(a.structurally_equal(&b));
        assert!(!a.structurally_equal(&c));
        assert!(a.structurally_equal(&a.clone()));
    }

    #[test]
    fn length_mismatch_errors() {
        assert!(matches!(
            Datatype::indexed(&[1, 2], &[0], &Datatype::int()),
            Err(TypeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn contiguous_of_gappy_child_not_monotone_check() {
        // child with a gap: vector(2,1,2) of int => elements at 0 and 8,
        // extent 12; tiling stays monotone since data fits the extent
        let child = Datatype::vector(2, 1, 2, &Datatype::int()).unwrap();
        let d = Datatype::contiguous(3, &child).unwrap();
        assert!(d.is_monotone());
        assert_eq!(d.leaf_runs(), 6);
    }
}

impl fmt::Display for Datatype {
    /// A readable multi-line rendering of the type tree, e.g.
    ///
    /// ```text
    /// struct (size 64, extent 400)
    /// ├─ [+0] LB
    /// ├─ [+16] vector 4 x 2 stride 48B of
    /// │        basic 8B
    /// └─ [+400] UB
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
            for _ in 0..depth {
                write!(f, "   ")?;
            }
            Ok(())
        }
        fn walk(d: &Datatype, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
            indent(f, depth)?;
            match d.kind() {
                TypeKind::Basic { size } => writeln!(f, "basic {size}B"),
                TypeKind::LbMark => writeln!(f, "LB"),
                TypeKind::UbMark => writeln!(f, "UB"),
                TypeKind::Contiguous { count, child } => {
                    writeln!(f, "contiguous {count} of")?;
                    walk(child, f, depth + 1)
                }
                TypeKind::Hvector {
                    count,
                    blocklen,
                    stride,
                    child,
                } => {
                    writeln!(f, "vector {count} x {blocklen} stride {stride}B of")?;
                    walk(child, f, depth + 1)
                }
                TypeKind::Hindexed { blocks, child } => {
                    write!(f, "indexed [")?;
                    for (i, b) in blocks.iter().take(6).enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{}@{}", b.blocklen, b.disp)?;
                    }
                    if blocks.len() > 6 {
                        write!(f, ", …{} more", blocks.len() - 6)?;
                    }
                    writeln!(f, "] of")?;
                    walk(child, f, depth + 1)
                }
                TypeKind::Struct { fields } => {
                    writeln!(f, "struct (size {}, extent {})", d.size(), d.extent())?;
                    for fld in fields.iter() {
                        indent(f, depth + 1)?;
                        writeln!(f, "[+{}] x{}:", fld.disp, fld.count)?;
                        walk(&fld.child, f, depth + 2)?;
                    }
                    Ok(())
                }
                TypeKind::Resized { lb, extent, child } => {
                    writeln!(f, "resized lb {lb} extent {extent} of")?;
                    walk(child, f, depth + 1)
                }
            }
        }
        walk(self, f, 0)
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn display_renders_tree() {
        let v = Datatype::vector(4, 2, 6, &Datatype::double()).unwrap();
        let d = Datatype::struct_type(vec![
            Field {
                disp: 0,
                count: 1,
                child: Datatype::lb_marker(),
            },
            Field {
                disp: 16,
                count: 1,
                child: v,
            },
        ])
        .unwrap();
        let s = format!("{d}");
        assert!(s.contains("struct"), "{s}");
        assert!(s.contains("LB"), "{s}");
        assert!(s.contains("vector 4 x 2"), "{s}");
        assert!(s.contains("basic 8B"), "{s}");
    }

    #[test]
    fn display_truncates_long_indexed() {
        let disps: Vec<i64> = (0..20).map(|i| i * 3).collect();
        let lens = vec![1u64; 20];
        let d = Datatype::indexed(&lens, &disps, &Datatype::int()).unwrap();
        let s = format!("{d}");
        assert!(s.contains("…14 more"), "{s}");
    }
}
