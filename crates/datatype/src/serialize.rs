//! Compact wire encoding of datatype trees.
//!
//! Fileview caching (Section 3.2.3 of the paper) exchanges "a compact
//! representation of each process' filetype" exactly once when a fileview
//! is established, instead of shipping `O(Nblock)` ol-lists on every
//! collective access. This module provides that representation: a
//! tag-prefixed preorder encoding whose size is proportional to the *tree*
//! size (a vector costs ~26 bytes regardless of its block count), standing
//! in for the ADI the MPI/SX implementation shares with its one-sided
//! communication layer.

use crate::types::{Datatype, Field, HBlock, TypeError, TypeKind};

const TAG_BASIC: u8 = 1;
const TAG_LB: u8 = 2;
const TAG_UB: u8 = 3;
const TAG_CONTIG: u8 = 4;
const TAG_HVECTOR: u8 = 5;
const TAG_HINDEXED: u8 = 6;
const TAG_STRUCT: u8 = 7;
const TAG_RESIZED: u8 = 8;

/// Encode a datatype tree into a compact byte vector.
pub fn encode(d: &Datatype) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_into(d, &mut out);
    out
}

/// Encode a datatype tree, appending to `out`.
pub fn encode_into(d: &Datatype, out: &mut Vec<u8>) {
    match d.kind() {
        TypeKind::Basic { size } => {
            out.push(TAG_BASIC);
            put_u64(out, *size as u64);
        }
        TypeKind::LbMark => out.push(TAG_LB),
        TypeKind::UbMark => out.push(TAG_UB),
        TypeKind::Contiguous { count, child } => {
            out.push(TAG_CONTIG);
            put_u64(out, *count);
            encode_into(child, out);
        }
        TypeKind::Hvector {
            count,
            blocklen,
            stride,
            child,
        } => {
            out.push(TAG_HVECTOR);
            put_u64(out, *count);
            put_u64(out, *blocklen);
            put_i64(out, *stride);
            encode_into(child, out);
        }
        TypeKind::Hindexed { blocks, child } => {
            out.push(TAG_HINDEXED);
            put_u64(out, blocks.len() as u64);
            for b in blocks.iter() {
                put_i64(out, b.disp);
                put_u64(out, b.blocklen);
            }
            encode_into(child, out);
        }
        TypeKind::Struct { fields } => {
            out.push(TAG_STRUCT);
            put_u64(out, fields.len() as u64);
            for f in fields.iter() {
                put_i64(out, f.disp);
                put_u64(out, f.count);
                encode_into(&f.child, out);
            }
        }
        TypeKind::Resized { lb, extent, child } => {
            out.push(TAG_RESIZED);
            put_i64(out, *lb);
            put_u64(out, *extent);
            encode_into(child, out);
        }
    }
}

/// Decode a datatype tree previously produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<Datatype, TypeError> {
    let mut pos = 0usize;
    let d = decode_at(buf, &mut pos)?;
    if pos != buf.len() {
        return Err(TypeError::Corrupt(format!(
            "{} trailing bytes after type encoding",
            buf.len() - pos
        )));
    }
    Ok(d)
}

fn decode_at(buf: &[u8], pos: &mut usize) -> Result<Datatype, TypeError> {
    let tag = take(buf, pos, 1)?[0];
    match tag {
        TAG_BASIC => {
            let size = get_u64(buf, pos)?;
            if size > u32::MAX as u64 {
                return Err(TypeError::Corrupt("basic size too large".into()));
            }
            Ok(Datatype::basic(size as u32))
        }
        TAG_LB => Ok(Datatype::lb_marker()),
        TAG_UB => Ok(Datatype::ub_marker()),
        TAG_CONTIG => {
            let count = get_u64(buf, pos)?;
            let child = decode_at(buf, pos)?;
            Datatype::contiguous(count, &child)
        }
        TAG_HVECTOR => {
            let count = get_u64(buf, pos)?;
            let blocklen = get_u64(buf, pos)?;
            let stride = get_i64(buf, pos)?;
            let child = decode_at(buf, pos)?;
            Datatype::hvector(count, blocklen, stride, &child)
        }
        TAG_HINDEXED => {
            let n = get_u64(buf, pos)? as usize;
            if n > buf.len() / 16 + 1 {
                return Err(TypeError::Corrupt("hindexed block count too large".into()));
            }
            let mut lens = Vec::with_capacity(n);
            let mut disps = Vec::with_capacity(n);
            for _ in 0..n {
                disps.push(get_i64(buf, pos)?);
                lens.push(get_u64(buf, pos)?);
            }
            let child = decode_at(buf, pos)?;
            Datatype::hindexed(&lens, &disps, &child)
        }
        TAG_STRUCT => {
            let n = get_u64(buf, pos)? as usize;
            if n > buf.len() / 17 + 1 {
                return Err(TypeError::Corrupt("struct field count too large".into()));
            }
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let disp = get_i64(buf, pos)?;
                let count = get_u64(buf, pos)?;
                let child = decode_at(buf, pos)?;
                fields.push(Field { disp, count, child });
            }
            Datatype::struct_type(fields)
        }
        TAG_RESIZED => {
            let lb = get_i64(buf, pos)?;
            let extent = get_u64(buf, pos)?;
            let child = decode_at(buf, pos)?;
            Datatype::resized(&child, lb, extent)
        }
        other => Err(TypeError::Corrupt(format!("unknown type tag {other}"))),
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], TypeError> {
    if *pos + n > buf.len() {
        return Err(TypeError::Corrupt("truncated type encoding".into()));
    }
    let s = &buf[*pos..*pos + n];
    *pos += n;
    Ok(s)
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, TypeError> {
    let s = take(buf, pos, 8)?;
    Ok(u64::from_le_bytes(s.try_into().expect("eight bytes")))
}

fn get_i64(buf: &[u8], pos: &mut usize) -> Result<i64, TypeError> {
    let s = take(buf, pos, 8)?;
    Ok(i64::from_le_bytes(s.try_into().expect("eight bytes")))
}

/// A dummy `HBlock` use to keep the import meaningful for doc purposes.
#[allow(dead_code)]
fn _assert_types(b: HBlock) -> i64 {
    b.disp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Order;

    fn roundtrip(d: &Datatype) {
        let bytes = encode(d);
        let back = decode(&bytes).expect("decode");
        assert!(d.structurally_equal(&back), "{d:?} != {back:?}");
        assert_eq!(d.size(), back.size());
        assert_eq!(d.extent(), back.extent());
        assert_eq!(d.lb(), back.lb());
        assert_eq!(d.ub(), back.ub());
    }

    #[test]
    fn roundtrip_basics() {
        roundtrip(&Datatype::byte());
        roundtrip(&Datatype::double());
        roundtrip(&Datatype::lb_marker());
        roundtrip(&Datatype::ub_marker());
    }

    #[test]
    fn roundtrip_derived() {
        roundtrip(&Datatype::contiguous(12, &Datatype::int()).unwrap());
        roundtrip(&Datatype::vector(100, 3, 7, &Datatype::double()).unwrap());
        roundtrip(&Datatype::indexed(&[1, 2, 3], &[0, 5, 11], &Datatype::int()).unwrap());
        roundtrip(&Datatype::resized(&Datatype::int(), -4, 32).unwrap());
        roundtrip(
            &Datatype::subarray(
                &[8, 8, 8],
                &[4, 2, 3],
                &[1, 0, 5],
                Order::C,
                &Datatype::double(),
            )
            .unwrap(),
        );
    }

    #[test]
    fn roundtrip_struct_with_markers() {
        let v = Datatype::vector(16, 2, 4, &Datatype::double()).unwrap();
        let d = Datatype::struct_type(vec![
            Field {
                disp: 0,
                count: 1,
                child: Datatype::lb_marker(),
            },
            Field {
                disp: 24,
                count: 2,
                child: v,
            },
            Field {
                disp: 2048,
                count: 1,
                child: Datatype::ub_marker(),
            },
        ])
        .unwrap();
        roundtrip(&d);
    }

    #[test]
    fn encoding_size_independent_of_block_count() {
        // The point of fileview caching: a million-block vector encodes in
        // the same handful of bytes as a two-block one.
        let small = Datatype::vector(2, 1, 2, &Datatype::double()).unwrap();
        let huge = Datatype::vector(1_000_000, 1, 2, &Datatype::double()).unwrap();
        assert_eq!(encode(&small).len(), encode(&huge).len());
        // ...while the ol-list grows linearly (16 bytes per block)
        use crate::flatten::OlList;
        assert_eq!(OlList::flatten(&huge, 1).memory_bytes(), 16_000_000);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[99]).is_err());
        assert!(decode(&[TAG_CONTIG, 1, 2]).is_err()); // truncated count
                                                       // trailing bytes
        let mut ok = encode(&Datatype::int());
        ok.push(0);
        assert!(decode(&ok).is_err());
    }

    #[test]
    fn decode_rejects_absurd_counts() {
        // a claimed million-field struct in a ten-byte buffer
        let mut buf = vec![TAG_STRUCT];
        buf.extend_from_slice(&1_000_000u64.to_le_bytes());
        buf.push(0);
        assert!(decode(&buf).is_err());
    }
}
