//! Explicit datatype flattening into ol-lists — the list-based baseline.
//!
//! This module reproduces the representation the paper attributes to ROMIO
//! (Section 2.1): a datatype is expanded into a linear list of
//! `⟨offset, length⟩` tuples, one per contiguous block. All three drawbacks
//! the paper identifies are faithfully present and measurable:
//!
//! * **memory consumption** — [`OlList::memory_bytes`] reports the
//!   `Nblock · (sizeof(offset) + sizeof(length))` footprint;
//! * **traversal time** — [`OlList::locate`] performs the linear scan that
//!   list-based navigation requires (`Nblock/2` entries on average);
//! * **copy time** — [`OlList::pack`]/[`OlList::unpack`] read one tuple per
//!   copied block.

use crate::typemap::Run;
use crate::types::Datatype;
use crate::FlatIter;
use lio_obs::LazyCounter;

static OBS_FLATTEN_CALLS: LazyCounter = LazyCounter::new("dt.flatten.calls");
static OBS_FLATTEN_ENTRIES: LazyCounter = LazyCounter::new("dt.flatten.entries");
static OBS_FLATTEN_BYTES: LazyCounter = LazyCounter::new("dt.flatten.bytes");

/// One ol-list entry: a contiguous block of `len` bytes at byte `offset`.
///
/// Offsets and lengths are stored at the width the paper assumes
/// (`MPI_Aint`/`MPI_Offset`, 64 bits each — 16 bytes per tuple).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OlSeg {
    /// Byte offset of the block relative to the buffer origin.
    pub offset: i64,
    /// Length of the block in bytes.
    pub len: u64,
}

/// A flattened datatype: the explicit `⟨offset, length⟩` list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OlList {
    /// The blocks, in typemap (monotone for filetypes) order.
    pub segs: Vec<OlSeg>,
}

/// A position within an [`OlList`], as returned by navigation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OlPos {
    /// Index of the segment containing the position.
    pub seg: usize,
    /// Byte offset into that segment.
    pub within: u64,
}

impl OlList {
    /// Explicitly flatten `count` instances of `d` — the `O(Nblock)`
    /// operation ROMIO performs when a fileview is first established.
    /// Adjacent runs are merged, as ROMIO's flattening does.
    pub fn flatten(d: &Datatype, count: u64) -> OlList {
        let mut segs: Vec<OlSeg> = Vec::new();
        for run in FlatIter::new(d, count) {
            if let Some(last) = segs.last_mut() {
                if last.offset + last.len as i64 == run.disp {
                    last.len += run.len;
                    continue;
                }
            }
            segs.push(OlSeg {
                offset: run.disp,
                len: run.len,
            });
        }
        let list = OlList { segs };
        if lio_obs::enabled() {
            OBS_FLATTEN_CALLS.incr();
            OBS_FLATTEN_ENTRIES.add(list.segs.len() as u64);
            OBS_FLATTEN_BYTES.add(list.memory_bytes() as u64);
        }
        list
    }

    /// Build directly from runs (used by the two-phase engine when an AP
    /// constructs the per-IOP access list).
    pub fn from_runs(runs: impl IntoIterator<Item = Run>) -> OlList {
        let mut segs: Vec<OlSeg> = Vec::new();
        for run in runs {
            if run.len == 0 {
                continue;
            }
            if let Some(last) = segs.last_mut() {
                if last.offset + last.len as i64 == run.disp {
                    last.len += run.len;
                    continue;
                }
            }
            segs.push(OlSeg {
                offset: run.disp,
                len: run.len,
            });
        }
        OlList { segs }
    }

    /// Number of blocks — the paper's `Nblock` after merging.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.segs.len()
    }

    /// Total data bytes described by the list.
    pub fn total_data(&self) -> u64 {
        self.segs.iter().map(|s| s.len).sum()
    }

    /// The memory footprint of the representation itself:
    /// `Nblock · (sizeof(MPI_Aint) + sizeof(MPI_Offset))` = 16·Nblock bytes.
    #[inline]
    pub fn memory_bytes(&self) -> usize {
        self.segs.len() * 16
    }

    /// Locate the block containing the `databytes`-th data byte by **linear
    /// traversal from the start** — exactly the list-based navigation cost
    /// the paper criticizes (Section 2.2). Returns `None` when the offset
    /// lies at or beyond the end of the data.
    pub fn locate(&self, databytes: u64) -> Option<OlPos> {
        let mut remaining = databytes;
        for (i, s) in self.segs.iter().enumerate() {
            if remaining < s.len {
                return Some(OlPos {
                    seg: i,
                    within: remaining,
                });
            }
            remaining -= s.len;
        }
        None
    }

    /// The absolute byte offset of the `databytes`-th data byte (linear
    /// traversal; the list-based counterpart of `ff_offset`). For
    /// `databytes` equal to the total data size, returns one past the last
    /// block.
    pub fn offset_of(&self, databytes: u64) -> Option<i64> {
        if databytes == self.total_data() {
            return self.segs.last().map(|s| s.offset + s.len as i64);
        }
        self.locate(databytes)
            .map(|p| self.segs[p.seg].offset + p.within as i64)
    }

    /// Count the data bytes with offsets in `[lo, hi)` by linear traversal
    /// (the list-based counterpart of `ff_size`). Requires a monotone list.
    pub fn size_in_window(&self, lo: i64, hi: i64) -> u64 {
        let mut total = 0;
        for s in &self.segs {
            let a = s.offset.max(lo);
            let b = (s.offset + s.len as i64).min(hi);
            if b > a {
                total += (b - a) as u64;
            }
        }
        total
    }

    /// Pack typed data into `packbuf`, skipping the first `skipbytes` data
    /// bytes, copying at most `packbuf.len()` bytes: the list-based copy
    /// loop with its per-block tuple read. Returns bytes copied.
    pub fn pack(&self, src: &[u8], skipbytes: u64, packbuf: &mut [u8]) -> usize {
        let Some(start) = self.locate(skipbytes) else {
            return 0;
        };
        let mut out = 0usize;
        let mut within = start.within;
        for s in &self.segs[start.seg..] {
            if out >= packbuf.len() {
                break;
            }
            let off = (s.offset + within as i64) as usize;
            let avail = (s.len - within) as usize;
            let n = avail.min(packbuf.len() - out);
            packbuf[out..out + n].copy_from_slice(&src[off..off + n]);
            out += n;
            within = 0;
        }
        out
    }

    /// Unpack packed data into a typed buffer, skipping the first
    /// `skipbytes` data bytes. Returns bytes copied.
    pub fn unpack(&self, packbuf: &[u8], dst: &mut [u8], skipbytes: u64) -> usize {
        let Some(start) = self.locate(skipbytes) else {
            return 0;
        };
        let mut consumed = 0usize;
        let mut within = start.within;
        for s in &self.segs[start.seg..] {
            if consumed >= packbuf.len() {
                break;
            }
            let off = (s.offset + within as i64) as usize;
            let avail = (s.len - within) as usize;
            let n = avail.min(packbuf.len() - consumed);
            dst[off..off + n].copy_from_slice(&packbuf[consumed..consumed + n]);
            consumed += n;
            within = 0;
        }
        consumed
    }

    /// Merge several monotone ol-lists into one, combining adjacent and
    /// overlapping blocks — ROMIO's collective-write optimization, with the
    /// paper's `O(Σ_p Nblock(p))` cost (a k-way merge).
    pub fn merge_lists(lists: &[&OlList]) -> OlList {
        let mut cursors = vec![0usize; lists.len()];
        let mut segs: Vec<OlSeg> = Vec::new();
        loop {
            // pick the list whose next segment starts earliest
            let mut best: Option<(usize, i64)> = None;
            for (li, l) in lists.iter().enumerate() {
                if let Some(s) = l.segs.get(cursors[li]) {
                    if best.is_none_or(|(_, o)| s.offset < o) {
                        best = Some((li, s.offset));
                    }
                }
            }
            let Some((li, _)) = best else { break };
            let s = lists[li].segs[cursors[li]];
            cursors[li] += 1;
            if let Some(last) = segs.last_mut() {
                let last_end = last.offset + last.len as i64;
                if s.offset <= last_end {
                    let new_end = last_end.max(s.offset + s.len as i64);
                    last.len = (new_end - last.offset) as u64;
                    continue;
                }
            }
            segs.push(s);
        }
        OlList { segs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typemap::{expand_merged, reference_pack};
    use crate::types::{Datatype, Field};

    #[test]
    fn flatten_matches_reference() {
        let d = Datatype::vector(4, 2, 3, &Datatype::int()).unwrap();
        let l = OlList::flatten(&d, 2);
        let want = expand_merged(&d, 2);
        assert_eq!(l.segs.len(), want.len());
        for (s, r) in l.segs.iter().zip(&want) {
            assert_eq!(s.offset, r.disp);
            assert_eq!(s.len, r.len);
        }
    }

    #[test]
    fn memory_blowup_for_small_blocks() {
        // the paper's extreme example: blocklen < 16 bytes means the list
        // outweighs the data
        let d = Datatype::vector(1000, 1, 2, &Datatype::double()).unwrap();
        let l = OlList::flatten(&d, 1);
        assert_eq!(l.num_blocks(), 1000);
        assert_eq!(l.memory_bytes(), 16_000);
        assert!(l.memory_bytes() as u64 > d.size()); // 16k > 8k
    }

    #[test]
    fn locate_linear() {
        let d = Datatype::vector(3, 2, 4, &Datatype::int()).unwrap();
        let l = OlList::flatten(&d, 1);
        // blocks of 8 bytes at 0, 16, 32
        assert_eq!(l.locate(0), Some(OlPos { seg: 0, within: 0 }));
        assert_eq!(l.locate(7), Some(OlPos { seg: 0, within: 7 }));
        assert_eq!(l.locate(8), Some(OlPos { seg: 1, within: 0 }));
        assert_eq!(l.locate(23), Some(OlPos { seg: 2, within: 7 }));
        assert_eq!(l.locate(24), None);
    }

    #[test]
    fn offset_of_navigation() {
        let d = Datatype::vector(3, 2, 4, &Datatype::int()).unwrap();
        let l = OlList::flatten(&d, 1);
        assert_eq!(l.offset_of(0), Some(0));
        assert_eq!(l.offset_of(8), Some(16));
        assert_eq!(l.offset_of(24), Some(40)); // one past the end
    }

    #[test]
    fn size_in_window() {
        let d = Datatype::vector(3, 2, 4, &Datatype::int()).unwrap();
        let l = OlList::flatten(&d, 1);
        assert_eq!(l.size_in_window(0, 40), 24);
        assert_eq!(l.size_in_window(0, 8), 8);
        assert_eq!(l.size_in_window(4, 20), 8); // half of block 0, half of 1
        assert_eq!(l.size_in_window(8, 16), 0); // the gap
    }

    #[test]
    fn pack_matches_reference() {
        let d = Datatype::vector(4, 3, 5, &Datatype::basic(2)).unwrap();
        let src: Vec<u8> = (0..d.extent() as u8 * 2).collect();
        let l = OlList::flatten(&d, 2);
        let mut got = vec![0u8; (d.size() * 2) as usize];
        let n = l.pack(&src, 0, &mut got);
        assert_eq!(n, got.len());
        assert_eq!(got, reference_pack(&src, &d, 2));
    }

    #[test]
    fn pack_with_skip_and_limit() {
        let d = Datatype::vector(4, 3, 5, &Datatype::basic(2)).unwrap();
        let src: Vec<u8> = (0..d.extent() as u8).collect();
        let l = OlList::flatten(&d, 1);
        let full = reference_pack(&src, &d, 1);
        for skip in 0..d.size() {
            for cap in 0..=(d.size() - skip) {
                let mut buf = vec![0u8; cap as usize];
                let n = l.pack(&src, skip, &mut buf);
                assert_eq!(n as u64, cap);
                assert_eq!(&buf[..], &full[skip as usize..(skip + cap) as usize]);
            }
        }
    }

    #[test]
    fn unpack_roundtrip() {
        let d = Datatype::indexed(&[2, 1, 2], &[0, 4, 7], &Datatype::int()).unwrap();
        let src: Vec<u8> = (0..d.extent() as u8).collect();
        let l = OlList::flatten(&d, 1);
        let mut packed = vec![0u8; d.size() as usize];
        l.pack(&src, 0, &mut packed);
        let mut dst = vec![0xEEu8; d.extent() as usize];
        let n = l.unpack(&packed, &mut dst, 0);
        assert_eq!(n as u64, d.size());
        for s in &l.segs {
            let o = s.offset as usize;
            assert_eq!(&dst[o..o + s.len as usize], &src[o..o + s.len as usize]);
        }
    }

    #[test]
    fn merge_two_interleaved_lists() {
        let a = OlList {
            segs: vec![OlSeg { offset: 0, len: 8 }, OlSeg { offset: 16, len: 8 }],
        };
        let b = OlList {
            segs: vec![OlSeg { offset: 8, len: 8 }, OlSeg { offset: 24, len: 8 }],
        };
        let m = OlList::merge_lists(&[&a, &b]);
        assert_eq!(m.segs, vec![OlSeg { offset: 0, len: 32 }]);
    }

    #[test]
    fn merge_detects_gap() {
        let a = OlList {
            segs: vec![OlSeg { offset: 0, len: 8 }],
        };
        let b = OlList {
            segs: vec![OlSeg { offset: 12, len: 8 }],
        };
        let m = OlList::merge_lists(&[&a, &b]);
        assert_eq!(m.segs.len(), 2);
    }

    #[test]
    fn merge_with_overlap() {
        let a = OlList {
            segs: vec![OlSeg { offset: 0, len: 10 }],
        };
        let b = OlList {
            segs: vec![OlSeg { offset: 5, len: 10 }],
        };
        let m = OlList::merge_lists(&[&a, &b]);
        assert_eq!(m.segs, vec![OlSeg { offset: 0, len: 15 }]);
    }

    #[test]
    fn flatten_struct_with_struct_child() {
        let inner = Datatype::struct_type(vec![
            Field {
                disp: 0,
                count: 2,
                child: Datatype::int(),
            },
            Field {
                disp: 12,
                count: 1,
                child: Datatype::int(),
            },
        ])
        .unwrap();
        let l = OlList::flatten(&inner, 1);
        assert_eq!(
            l.segs,
            vec![OlSeg { offset: 0, len: 8 }, OlSeg { offset: 12, len: 4 }]
        );
    }

    #[test]
    fn empty_flatten() {
        let d = Datatype::contiguous(0, &Datatype::int()).unwrap();
        let l = OlList::flatten(&d, 3);
        assert!(l.segs.is_empty());
        assert_eq!(l.locate(0), None);
        assert_eq!(l.total_data(), 0);
    }
}
