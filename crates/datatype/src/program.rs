//! Compiled datatype run programs.
//!
//! The generic pack/unpack path walks the [`Datatype`] tree per run via
//! [`crate::FlatIter`]: every emitted run pays a frame-stack descent and
//! per-node dispatch. That interpreter overhead is exactly why derived-
//! datatype copies miss memcpy speed on small blocks. This module
//! *compiles* the tree once into a compact run program — normalized
//! nested loop descriptors (`{count, block, stride}` frames) plus literal
//! run tails for irregular shapes — and interprets that program with
//! tight block-copy loops and no per-run tree re-descent.
//!
//! Normalization happens at compile time:
//!
//! * any subtree that reduces to the canonical strided form becomes a
//!   single [`PNode::Blocks`] frame (this subsumes contiguous children,
//!   unit-count wrappers, dense vectors, and evenly spaced indexed
//!   blocks — the same folding as [`Datatype::as_strided`], applied at
//!   *every* level, not just the root);
//! * regular repetition that cannot fold becomes a [`PNode::Loop`] frame
//!   storing the body's data size so a `skipbytes` entry point divides
//!   instead of iterating;
//! * irregular displacement lists (ragged hindexed, multi-field structs)
//!   become a [`PNode::Tail`] with a size-prefix table, entered by binary
//!   search.
//!
//! The interpreter therefore preserves the paper's navigation contract:
//! entry at an arbitrary `skipbytes` costs `O(depth)` (one division per
//! loop frame, one binary search per tail), after which cost is
//! proportional only to the bytes moved.
//!
//! Programs are cached per datatype node behind a `OnceLock`, so repeated
//! I/O on the same fileview or memtype pays compilation once; the
//! `dt.compile.*` counters expose build-vs-hit behavior.

use std::sync::Arc;

use lio_obs::LazyCounter;

use crate::types::{Datatype, TypeKind};

static OBS_COMPILE_PROGRAMS: LazyCounter = LazyCounter::new("dt.compile.programs");
static OBS_COMPILE_FRAMES: LazyCounter = LazyCounter::new("dt.compile.frames");
static OBS_COMPILE_CACHE_HITS: LazyCounter = LazyCounter::new("dt.compile.cache_hits");

/// One node of a compiled run program.
#[derive(Debug, Clone)]
enum PNode {
    /// `count` dense blocks of `block` bytes, block `j` starting at
    /// `base + j·stride` — the `{count, block, stride}` frame. This is
    /// the canonical strided form and the only node that copies bytes.
    Blocks {
        base: i64,
        stride: i64,
        block: u64,
        count: u64,
    },
    /// `count` repetitions of `body` (holding `size` data bytes each),
    /// repetition `i` originating at `base + i·stride`.
    Loop {
        base: i64,
        count: u64,
        stride: i64,
        size: u64,
        body: Box<PNode>,
    },
    /// Literal tail: heterogeneous parts at explicit displacements.
    /// `prefix[i]` is the data size strictly before part `i`
    /// (`len = parts.len() + 1`, strictly increasing), so a `skipbytes`
    /// entry finds its part by binary search.
    Tail {
        parts: Box<[Part]>,
        prefix: Arc<[u64]>,
    },
}

/// One literal-tail entry: `node` displaced by `disp` bytes.
#[derive(Debug, Clone)]
struct Part {
    disp: i64,
    node: PNode,
}

/// A datatype compiled to a run program. Obtain via
/// [`Datatype::program`]; the instance layout (`size`/`extent`) is
/// duplicated here so the interpreter never touches the tree.
#[derive(Debug)]
pub struct RunProgram {
    root: Option<PNode>,
    size: u64,
    extent: i64,
    frames: u32,
}

impl Datatype {
    /// The compiled run program for this type, built on first use and
    /// cached on the node (`OnceLock`), so every subsequent pack on the
    /// same fileview or memtype reuses it.
    pub fn program(&self) -> &RunProgram {
        if let Some(p) = self.0.program.get() {
            OBS_COMPILE_CACHE_HITS.incr();
            return p.as_ref();
        }
        self.0
            .program
            .get_or_init(|| {
                let p = RunProgram::compile(self);
                OBS_COMPILE_PROGRAMS.incr();
                OBS_COMPILE_FRAMES.add(p.frames as u64);
                if lio_obs::profile::enabled() {
                    let (loops, tails, mn, mx) =
                        p.root.as_ref().map_or((0, 0, u64::MAX, 0), shape_of);
                    // a single Blocks frame is the fully normalized form:
                    // one strided memcpy loop, no interpreter recursion
                    let normalized = p.frames == 1 && matches!(p.root, Some(PNode::Blocks { .. }));
                    lio_obs::profile::record_program(p.frames, loops, tails, mn, mx, normalized);
                }
                Arc::new(p)
            })
            .as_ref()
    }
}

impl RunProgram {
    /// Compile `d` into a run program (no caching; prefer
    /// [`Datatype::program`]).
    pub fn compile(d: &Datatype) -> RunProgram {
        let root = compile_node(d);
        RunProgram {
            frames: root.as_ref().map_or(0, count_frames),
            root,
            size: d.size(),
            extent: d.extent() as i64,
        }
    }

    /// Number of program nodes (loop/tail/block frames).
    pub fn frames(&self) -> u32 {
        self.frames
    }

    /// Pack `count` tiled instances into `packbuf`, skipping the first
    /// `skip` data bytes; `src[0]` corresponds to typemap displacement
    /// `buf_disp`. Returns `(bytes copied, runs copied)`.
    pub fn pack_into(
        &self,
        src: &[u8],
        buf_disp: i64,
        count: u64,
        skip: u64,
        packbuf: &mut [u8],
    ) -> (usize, u64) {
        let Some(root) = &self.root else {
            return (0, 0);
        };
        let total = self.size.saturating_mul(count);
        if skip >= total || packbuf.is_empty() {
            return (0, 0);
        }
        let cap = (total - skip).min(packbuf.len() as u64) as usize;
        let mut sink = PackSink {
            src,
            out: &mut packbuf[..cap],
            cursor: 0,
            runs: 0,
            obs: lio_obs::enabled(),
        };
        let mut inst = skip / self.size;
        let mut s = skip % self.size;
        let mut origin = inst as i64 * self.extent - buf_disp;
        while inst < count && !sink.full() {
            root.walk(origin, s, &mut sink);
            inst += 1;
            s = 0;
            origin += self.extent;
        }
        (sink.cursor, sink.runs)
    }

    /// Unpack `packbuf` into `count` tiled instances of `dst`, skipping
    /// the first `skip` data bytes; `dst[0]` corresponds to typemap
    /// displacement `buf_disp`. Returns `(bytes copied, runs copied)`.
    pub fn unpack_into(
        &self,
        packbuf: &[u8],
        dst: &mut [u8],
        buf_disp: i64,
        count: u64,
        skip: u64,
    ) -> (usize, u64) {
        let Some(root) = &self.root else {
            return (0, 0);
        };
        let total = self.size.saturating_mul(count);
        if skip >= total || packbuf.is_empty() {
            return (0, 0);
        }
        let cap = (total - skip).min(packbuf.len() as u64) as usize;
        let mut sink = UnpackSink {
            packbuf: &packbuf[..cap],
            dst,
            cursor: 0,
            runs: 0,
            obs: lio_obs::enabled(),
        };
        let mut inst = skip / self.size;
        let mut s = skip % self.size;
        let mut origin = inst as i64 * self.extent - buf_disp;
        while inst < count && !sink.full() {
            root.walk(origin, s, &mut sink);
            inst += 1;
            s = 0;
            origin += self.extent;
        }
        (sink.cursor, sink.runs)
    }
}

/// Compile one node; `None` when the subtree holds no data.
fn compile_node(d: &Datatype) -> Option<PNode> {
    if d.size() == 0 {
        return None;
    }
    // Any strided-reducible subtree collapses to one Blocks frame.
    if let Some(s) = d.as_strided() {
        return Some(PNode::Blocks {
            base: s.base,
            stride: s.stride,
            block: s.block,
            count: s.count,
        });
    }
    match d.kind() {
        // Basic always reduces to strided; markers hold no data.
        TypeKind::Basic { .. } | TypeKind::LbMark | TypeKind::UbMark => {
            unreachable!("leaf types reduce to a Blocks frame or hold no data")
        }
        TypeKind::Contiguous { count, child } => {
            let body = compile_node(child)?;
            Some(tile(body, *count, child.extent() as i64, child.size()))
        }
        TypeKind::Hvector {
            count,
            blocklen,
            stride,
            child,
        } => {
            let inner = tile(
                compile_node(child)?,
                *blocklen,
                child.extent() as i64,
                child.size(),
            );
            Some(tile(inner, *count, *stride, child.size() * blocklen))
        }
        TypeKind::Hindexed { blocks, child } => {
            let cext = child.extent() as i64;
            let csize = child.size();
            let childp = compile_node(child)?;
            let parts: Vec<Part> = blocks
                .iter()
                .map(|b| Part {
                    disp: b.disp,
                    node: tile(childp.clone(), b.blocklen, cext, csize),
                })
                .collect();
            let prefix =
                d.0.meta
                    .size_prefix
                    .clone()
                    .expect("hindexed nodes carry size prefix sums");
            Some(PNode::Tail {
                parts: parts.into(),
                prefix,
            })
        }
        TypeKind::Struct { fields } => {
            let mut parts = Vec::new();
            let mut prefix = vec![0u64];
            let mut cum = 0u64;
            for f in fields.iter() {
                let fsize = f.child.size() * f.count;
                if fsize == 0 {
                    continue; // markers and empty fields hold no data
                }
                let node = tile(
                    compile_node(&f.child)?,
                    f.count,
                    f.child.extent() as i64,
                    f.child.size(),
                );
                parts.push(Part { disp: f.disp, node });
                cum += fsize;
                prefix.push(cum);
            }
            if parts.len() == 1 {
                // single data field: fold its displacement into the body
                // (the subarray placement shape)
                let Part { disp, node } = parts.pop().unwrap();
                match node {
                    PNode::Blocks {
                        base,
                        stride,
                        block,
                        count,
                    } => {
                        return Some(PNode::Blocks {
                            base: base + disp,
                            stride,
                            block,
                            count,
                        })
                    }
                    PNode::Loop {
                        base,
                        count,
                        stride,
                        size,
                        body,
                    } => {
                        return Some(PNode::Loop {
                            base: base + disp,
                            count,
                            stride,
                            size,
                            body,
                        })
                    }
                    tail => parts.push(Part { disp, node: tail }),
                }
            }
            Some(PNode::Tail {
                parts: parts.into(),
                prefix: prefix.into(),
            })
        }
        TypeKind::Resized { child, .. } => compile_node(child),
    }
}

/// `n` repetitions of `body` (holding `body_size` data bytes) placed
/// `step` bytes apart: fold into the body's Blocks frame when the
/// repetitions keep blocks evenly spaced (mirroring
/// `StridedSpec::tile`), collapse unit counts, loop otherwise.
fn tile(body: PNode, n: u64, step: i64, body_size: u64) -> PNode {
    debug_assert!(n >= 1, "zero-count subtrees hold no data");
    if n == 1 {
        return body;
    }
    if let PNode::Blocks {
        base,
        stride,
        block,
        count,
    } = body
    {
        if count == 1 {
            if step == block as i64 {
                // dense: merge into one big block
                return PNode::Blocks {
                    base,
                    stride: (block * n) as i64,
                    block: block * n,
                    count: 1,
                };
            }
            return PNode::Blocks {
                base,
                stride: step,
                block,
                count: n,
            };
        }
        if step == stride * count as i64 {
            return PNode::Blocks {
                base,
                stride,
                block,
                count: count * n,
            };
        }
        return PNode::Loop {
            base: 0,
            count: n,
            stride: step,
            size: body_size,
            body: Box::new(PNode::Blocks {
                base,
                stride,
                block,
                count,
            }),
        };
    }
    PNode::Loop {
        base: 0,
        count: n,
        stride: step,
        size: body_size,
        body: Box::new(body),
    }
}

fn count_frames(node: &PNode) -> u32 {
    match node {
        PNode::Blocks { .. } => 1,
        PNode::Loop { body, .. } => 1 + count_frames(body),
        PNode::Tail { parts, .. } => 1 + parts.iter().map(|p| count_frames(&p.node)).sum::<u32>(),
    }
}

/// `(loop_frames, tail_frames, min_block, max_block)` over the tree;
/// `min_block` is `u64::MAX` when no Blocks frame exists.
fn shape_of(node: &PNode) -> (u32, u32, u64, u64) {
    match node {
        PNode::Blocks { block, .. } => (0, 0, *block, *block),
        PNode::Loop { body, .. } => {
            let (l, t, mn, mx) = shape_of(body);
            (l + 1, t, mn, mx)
        }
        PNode::Tail { parts, .. } => {
            let mut acc = (0u32, 1u32, u64::MAX, 0u64);
            for p in parts.iter() {
                let (l, t, mn, mx) = shape_of(&p.node);
                acc = (acc.0 + l, acc.1 + t, acc.2.min(mn), acc.3.max(mx));
            }
            acc
        }
    }
}

/// Where the interpreter's runs go: pack copies out of the typed buffer,
/// unpack copies into it. `run` returns the bytes actually moved (short
/// when the contiguous side is exhausted).
trait Sink {
    fn run(&mut self, pos: i64, len: u64) -> u64;
    fn full(&self) -> bool;
}

struct PackSink<'a> {
    src: &'a [u8],
    out: &'a mut [u8],
    cursor: usize,
    runs: u64,
    obs: bool,
}

impl Sink for PackSink<'_> {
    #[inline]
    fn run(&mut self, pos: i64, len: u64) -> u64 {
        let n = (len as usize).min(self.out.len() - self.cursor);
        if n == 0 {
            return 0;
        }
        let s = pos as usize;
        self.out[self.cursor..self.cursor + n].copy_from_slice(&self.src[s..s + n]);
        self.cursor += n;
        self.runs += 1;
        if self.obs {
            crate::ff::OBS_RUN_LEN.record(n as u64);
        }
        n as u64
    }

    #[inline]
    fn full(&self) -> bool {
        self.cursor == self.out.len()
    }
}

struct UnpackSink<'a> {
    packbuf: &'a [u8],
    dst: &'a mut [u8],
    cursor: usize,
    runs: u64,
    obs: bool,
}

impl Sink for UnpackSink<'_> {
    #[inline]
    fn run(&mut self, pos: i64, len: u64) -> u64 {
        let n = (len as usize).min(self.packbuf.len() - self.cursor);
        if n == 0 {
            return 0;
        }
        let t = pos as usize;
        self.dst[t..t + n].copy_from_slice(&self.packbuf[self.cursor..self.cursor + n]);
        self.cursor += n;
        self.runs += 1;
        if self.obs {
            crate::ff::OBS_RUN_LEN.record(n as u64);
        }
        n as u64
    }

    #[inline]
    fn full(&self) -> bool {
        self.cursor == self.packbuf.len()
    }
}

impl PNode {
    /// Execute one instance of this node at `origin`, entering after
    /// `skip` data bytes (`skip` < the node's data size). The `O(depth)`
    /// entry divides/searches per frame; thereafter every iteration is a
    /// block copy.
    fn walk<S: Sink>(&self, origin: i64, skip: u64, sink: &mut S) {
        match self {
            PNode::Blocks {
                base,
                stride,
                block,
                count,
            } => {
                let mut j = skip / block;
                if j >= *count {
                    return;
                }
                let within = skip % block;
                let mut start = origin + base + j as i64 * stride;
                // first (possibly partial) block
                let want = block - within;
                if sink.run(start + within as i64, want) < want {
                    return;
                }
                j += 1;
                start += stride;
                while j < *count {
                    if sink.run(start, *block) < *block {
                        return;
                    }
                    j += 1;
                    start += stride;
                }
            }
            PNode::Loop {
                base,
                count,
                stride,
                size,
                body,
            } => {
                let mut i = skip / size;
                if i >= *count {
                    return;
                }
                let mut s = skip % size;
                let mut org = origin + base + i as i64 * stride;
                while i < *count {
                    body.walk(org, s, sink);
                    if sink.full() {
                        return;
                    }
                    i += 1;
                    s = 0;
                    org += stride;
                }
            }
            PNode::Tail { parts, prefix } => {
                // prefix[0] == 0 <= skip, so the partition point is >= 1
                let mut p = prefix.partition_point(|&v| v <= skip) - 1;
                if p >= parts.len() {
                    return;
                }
                let mut s = skip - prefix[p];
                while p < parts.len() {
                    let part = &parts[p];
                    part.node.walk(origin + part.disp, s, sink);
                    if sink.full() {
                        return;
                    }
                    p += 1;
                    s = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typemap::reference_pack;
    use crate::types::{Field, Order};

    /// Compile + pack + compare against the typemap oracle for every
    /// skip position.
    fn check_all_skips(d: &Datatype, count: u64) {
        let span = (count as i64 - 1).max(0) * d.extent() as i64 + d.data_ub();
        let src: Vec<u8> = (0..span.max(1) as usize).map(|i| (i % 251) as u8).collect();
        let full = reference_pack(&src, d, count);
        let total = d.size() * count;
        assert_eq!(full.len() as u64, total);
        let prog = d.program();
        for skip in 0..total {
            let mut buf = vec![0u8; (total - skip) as usize];
            let (n, _) = prog.pack_into(&src, 0, count, skip, &mut buf);
            assert_eq!(n as u64, total - skip, "skip {skip}");
            assert_eq!(&buf[..], &full[skip as usize..], "skip {skip}");
            // and unpack back into a fresh buffer
            let mut dst = vec![0u8; src.len()];
            let (m, _) = prog.unpack_into(&buf, &mut dst, 0, count, skip);
            assert_eq!(m, n);
            let check = reference_pack(&dst, d, count);
            assert_eq!(&check[skip as usize..], &full[skip as usize..]);
        }
    }

    #[test]
    fn nested_vector_compiles_to_loop_over_blocks() {
        // 3D subarray: cannot reduce to one strided frame
        let d = Datatype::subarray(
            &[4, 4, 4],
            &[2, 2, 2],
            &[1, 1, 1],
            Order::C,
            &Datatype::int(),
        )
        .unwrap();
        assert!(d.as_strided().is_none());
        let prog = d.program();
        assert!(prog.frames() >= 2);
        check_all_skips(&d, 2);
    }

    #[test]
    fn strided_types_compile_to_single_frame() {
        for d in [
            Datatype::vector(8, 1, 2, &Datatype::double()).unwrap(),
            Datatype::contiguous(10, &Datatype::int()).unwrap(),
            Datatype::vector(4, 3, 5, &Datatype::int()).unwrap(),
        ] {
            assert_eq!(d.program().frames(), 1, "{d:?}");
            check_all_skips(&d, 3);
        }
    }

    #[test]
    fn ragged_indexed_compiles_to_tail() {
        let d = Datatype::indexed(&[2, 1, 3], &[0, 4, 8], &Datatype::int()).unwrap();
        assert!(d.as_strided().is_none());
        check_all_skips(&d, 2);
    }

    #[test]
    fn multi_field_struct_with_markers() {
        let v = Datatype::vector(2, 1, 2, &Datatype::double()).unwrap();
        let d = Datatype::struct_type(vec![
            Field {
                disp: 0,
                count: 1,
                child: Datatype::lb_marker(),
            },
            Field {
                disp: 8,
                count: 2,
                child: v,
            },
            Field {
                disp: 100,
                count: 3,
                child: Datatype::int(),
            },
            Field {
                disp: 160,
                count: 1,
                child: Datatype::ub_marker(),
            },
        ])
        .unwrap();
        check_all_skips(&d, 2);
    }

    #[test]
    fn single_field_struct_folds_displacement() {
        // the subarray placement shape: one field at a nonzero disp
        let d = Datatype::subarray(&[6, 8], &[3, 4], &[2, 1], Order::C, &Datatype::int()).unwrap();
        check_all_skips(&d, 2);
    }

    #[test]
    fn empty_type_has_no_program_body() {
        let d = Datatype::contiguous(0, &Datatype::int()).unwrap();
        let prog = d.program();
        assert_eq!(prog.frames(), 0);
        let mut buf = [0u8; 8];
        assert_eq!(prog.pack_into(&[], 0, 4, 0, &mut buf), (0, 0));
    }

    #[test]
    fn program_is_cached_per_node() {
        let d = Datatype::vector(3, 1, 2, &Datatype::int()).unwrap();
        let a = d.program() as *const RunProgram;
        let b = d.clone().program() as *const RunProgram;
        assert_eq!(a, b, "clones share the cached program");
    }

    #[test]
    fn capped_output_truncates_like_ff_pack() {
        let d = Datatype::vector(3, 2, 4, &Datatype::basic(2)).unwrap();
        let src: Vec<u8> = (0..(d.extent() * 2) as u8).collect();
        let full = reference_pack(&src, &d, 2);
        let total = d.size() * 2;
        let prog = d.program();
        for skip in 0..total {
            for cap in [0u64, 1, 2, 5, total - skip] {
                let mut buf = vec![0u8; cap as usize];
                let (n, _) = prog.pack_into(&src, 0, 2, skip, &mut buf);
                assert_eq!(n as u64, cap.min(total - skip));
                assert_eq!(
                    &buf[..n],
                    &full[skip as usize..skip as usize + n],
                    "skip={skip} cap={cap}"
                );
            }
        }
    }

    #[test]
    fn virtual_buffer_displacement() {
        // window covering positions 16..28 of a 4-block vector
        let d = Datatype::vector(4, 1, 2, &Datatype::int()).unwrap();
        let full: Vec<u8> = (0..d.extent() as u8).collect();
        let window = full[16..28].to_vec();
        let mut buf = vec![0u8; 8];
        let (n, _) = d.program().pack_into(&window, 16, 1, 8, &mut buf);
        assert_eq!(n, 8);
        assert_eq!(&buf[..4], &full[16..20]);
        assert_eq!(&buf[4..], &full[24..28]);
    }
}
