//! Compiled datatype run programs.
//!
//! The generic pack/unpack path walks the [`Datatype`] tree per run via
//! [`crate::FlatIter`]: every emitted run pays a frame-stack descent and
//! per-node dispatch. That interpreter overhead is exactly why derived-
//! datatype copies miss memcpy speed on small blocks. This module
//! *compiles* the tree once into a compact run program — normalized
//! nested loop descriptors (`{count, block, stride}` frames) plus literal
//! run tails for irregular shapes — and interprets that program with
//! tight block-copy loops and no per-run tree re-descent.
//!
//! Normalization happens at compile time, in two stages:
//!
//! * **construction folding** — any subtree that reduces to the canonical
//!   strided form becomes a single [`PNode::Blocks`] frame (this subsumes
//!   contiguous children, unit-count wrappers, dense vectors, and evenly
//!   spaced indexed blocks — the same folding as [`Datatype::as_strided`],
//!   applied at *every* level, not just the root); regular repetition that
//!   cannot fold becomes a [`PNode::Loop`] frame storing the body's data
//!   size so a `skipbytes` entry point divides instead of iterating;
//!   irregular displacement lists (ragged hindexed, multi-field structs)
//!   become a [`PNode::Tail`] with a size-prefix table, entered by binary
//!   search;
//! * **a normalization pass** ([`normalize`]) that rewrites the raw tree
//!   into canonical strided form wherever the type map permits: it merges
//!   adjacent blocks whose spacing equals the block size, hoists
//!   unit-count and single-child loops, splices nested tails, folds
//!   maximal runs of identical equally-spaced tail parts (the
//!   equal-displacement struct-field shape) back into `Blocks`/`Loop`
//!   frames — splitting a ragged tail into a strided prefix plus a short
//!   literal tail — and collapses single-part tails. The
//!   `dt.normalize.{rewrites,frames_before,frames_after}` counters record
//!   what the pass accomplished.
//!
//! After normalization every `Blocks` frame records its kernel selection
//! ([`crate::kernels::Sel`]): block-size class, alignment class, and the
//! fixed-width/SIMD copy kernel that `auto` mode resolves to, so the
//! interpreter's hot loop is one direct gather/scatter call per frame
//! region with no per-block dispatch (see [`crate::kernels`]).
//!
//! The interpreter therefore preserves the paper's navigation contract:
//! entry at an arbitrary `skipbytes` costs `O(depth)` (one division per
//! loop frame, one binary search per tail), after which cost is
//! proportional only to the bytes moved.
//!
//! Programs are cached per datatype node behind a `OnceLock`, so repeated
//! I/O on the same fileview or memtype pays compilation once; the
//! `dt.compile.*` counters expose build-vs-hit behavior.

use std::sync::Arc;

use lio_obs::LazyCounter;

use crate::kernels::{self, Kind, Mode, Sel};
use crate::types::{Datatype, TypeKind};

static OBS_COMPILE_PROGRAMS: LazyCounter = LazyCounter::new("dt.compile.programs");
static OBS_COMPILE_FRAMES: LazyCounter = LazyCounter::new("dt.compile.frames");
static OBS_COMPILE_CACHE_HITS: LazyCounter = LazyCounter::new("dt.compile.cache_hits");

/// Rewrites applied by the normalization pass, and the frame counts it
/// saw before/after — `frames_before == frames_after` with
/// `rewrites == 0` means programs were already canonical ("born strided").
static OBS_NORM_REWRITES: LazyCounter = LazyCounter::new("dt.normalize.rewrites");
static OBS_NORM_FRAMES_BEFORE: LazyCounter = LazyCounter::new("dt.normalize.frames_before");
static OBS_NORM_FRAMES_AFTER: LazyCounter = LazyCounter::new("dt.normalize.frames_after");

/// One node of a compiled run program.
#[derive(Debug, Clone, PartialEq)]
enum PNode {
    /// `count` dense blocks of `block` bytes, block `j` starting at
    /// `base + j·stride` — the `{count, block, stride}` frame. This is
    /// the canonical strided form and the only node that copies bytes;
    /// `kern` records its compile-time kernel selection.
    Blocks {
        base: i64,
        stride: i64,
        block: u64,
        count: u64,
        kern: Sel,
    },
    /// `count` repetitions of `body` (holding `size` data bytes each),
    /// repetition `i` originating at `base + i·stride`.
    Loop {
        base: i64,
        count: u64,
        stride: i64,
        size: u64,
        body: Box<PNode>,
    },
    /// Literal tail: heterogeneous parts at explicit displacements.
    /// `prefix[i]` is the data size strictly before part `i`
    /// (`len = parts.len() + 1`, strictly increasing), so a `skipbytes`
    /// entry finds its part by binary search.
    Tail {
        parts: Box<[Part]>,
        prefix: Arc<[u64]>,
    },
}

/// One literal-tail entry: `node` displaced by `disp` bytes.
#[derive(Debug, Clone, PartialEq)]
struct Part {
    disp: i64,
    node: PNode,
}

/// The canonical `Blocks` constructor: kernel selection happens here,
/// once, at compile time.
fn blocks(base: i64, stride: i64, block: u64, count: u64) -> PNode {
    PNode::Blocks {
        base,
        stride,
        block,
        count,
        kern: Sel::select(block, stride),
    }
}

/// A datatype compiled to a run program. Obtain via
/// [`Datatype::program`]; the instance layout (`size`/`extent`) is
/// duplicated here so the interpreter never touches the tree.
#[derive(Debug)]
pub struct RunProgram {
    root: Option<PNode>,
    size: u64,
    extent: i64,
    frames: u32,
    rewrites: u32,
}

impl Datatype {
    /// The compiled run program for this type, built on first use and
    /// cached on the node (`OnceLock`), so every subsequent pack on the
    /// same fileview or memtype reuses it.
    pub fn program(&self) -> &RunProgram {
        if let Some(p) = self.0.program.get() {
            OBS_COMPILE_CACHE_HITS.incr();
            return p.as_ref();
        }
        self.0
            .program
            .get_or_init(|| {
                let p = RunProgram::compile(self);
                OBS_COMPILE_PROGRAMS.incr();
                OBS_COMPILE_FRAMES.add(p.frames as u64);
                if lio_obs::profile::enabled() {
                    let (loops, tails, mn, mx) =
                        p.root.as_ref().map_or((0, 0, u64::MAX, 0), shape_of);
                    // a single Blocks frame is the fully normalized form:
                    // one strided memcpy loop, no interpreter recursion
                    let normalized = p.frames == 1 && matches!(p.root, Some(PNode::Blocks { .. }));
                    let mut block_sizes = Vec::new();
                    if let Some(root) = &p.root {
                        collect_blocks(root, &mut block_sizes);
                    }
                    lio_obs::profile::record_program(
                        p.frames,
                        loops,
                        tails,
                        mn,
                        mx,
                        normalized,
                        p.rewrites,
                        &block_sizes,
                    );
                }
                Arc::new(p)
            })
            .as_ref()
    }
}

impl RunProgram {
    /// Compile `d` into a run program (no caching; prefer
    /// [`Datatype::program`]).
    pub fn compile(d: &Datatype) -> RunProgram {
        let raw = compile_node(d);
        let before = raw.as_ref().map_or(0, count_frames);
        let mut rewrites = 0u32;
        let root = raw.map(|n| normalize(n, &mut rewrites));
        let frames = root.as_ref().map_or(0, count_frames);
        OBS_NORM_FRAMES_BEFORE.add(before as u64);
        OBS_NORM_FRAMES_AFTER.add(frames as u64);
        if rewrites > 0 {
            OBS_NORM_REWRITES.add(rewrites as u64);
        }
        if let Some(root) = &root {
            // count frames that selected a vector-eligible kernel
            let selected = count_selected(root);
            if selected > 0 {
                kernels::OBS_KERNEL_SELECTED.add(selected);
            }
        }
        RunProgram {
            frames,
            rewrites,
            root,
            size: d.size(),
            extent: d.extent() as i64,
        }
    }

    /// Number of program nodes (loop/tail/block frames).
    pub fn frames(&self) -> u32 {
        self.frames
    }

    /// Rewrites applied by the normalization pass; 0 means the raw
    /// compile was already canonical.
    pub fn rewrites(&self) -> u32 {
        self.rewrites
    }

    /// A compact structural description, for tests and the profiler:
    /// `B(base,stride,block,count)`, `L(base,count,stride,size)[body]`,
    /// `T[@disp part; ...]`, or `-` for an empty program.
    pub fn describe(&self) -> String {
        self.root.as_ref().map_or_else(|| "-".into(), describe_node)
    }

    /// Pack `count` tiled instances into `packbuf`, skipping the first
    /// `skip` data bytes; `src[0]` corresponds to typemap displacement
    /// `buf_disp`. Returns `(bytes copied, runs copied)`.
    pub fn pack_into(
        &self,
        src: &[u8],
        buf_disp: i64,
        count: u64,
        skip: u64,
        packbuf: &mut [u8],
    ) -> (usize, u64) {
        let Some(root) = &self.root else {
            return (0, 0);
        };
        let total = self.size.saturating_mul(count);
        if skip >= total || packbuf.is_empty() {
            return (0, 0);
        }
        let cap = (total - skip).min(packbuf.len() as u64) as usize;
        let mut sink = PackSink {
            src,
            out: &mut packbuf[..cap],
            cursor: 0,
            runs: 0,
            obs: lio_obs::enabled(),
            mode: kernels::mode(),
        };
        let mut inst = skip / self.size;
        let mut s = skip % self.size;
        let mut origin = inst as i64 * self.extent - buf_disp;
        while inst < count && !sink.full() {
            root.walk(origin, s, &mut sink);
            inst += 1;
            s = 0;
            origin += self.extent;
        }
        (sink.cursor, sink.runs)
    }

    /// Unpack `packbuf` into `count` tiled instances of `dst`, skipping
    /// the first `skip` data bytes; `dst[0]` corresponds to typemap
    /// displacement `buf_disp`. Returns `(bytes copied, runs copied)`.
    pub fn unpack_into(
        &self,
        packbuf: &[u8],
        dst: &mut [u8],
        buf_disp: i64,
        count: u64,
        skip: u64,
    ) -> (usize, u64) {
        let Some(root) = &self.root else {
            return (0, 0);
        };
        let total = self.size.saturating_mul(count);
        if skip >= total || packbuf.is_empty() {
            return (0, 0);
        }
        let cap = (total - skip).min(packbuf.len() as u64) as usize;
        let mut sink = UnpackSink {
            packbuf: &packbuf[..cap],
            dst,
            cursor: 0,
            runs: 0,
            obs: lio_obs::enabled(),
            mode: kernels::mode(),
        };
        let mut inst = skip / self.size;
        let mut s = skip % self.size;
        let mut origin = inst as i64 * self.extent - buf_disp;
        while inst < count && !sink.full() {
            root.walk(origin, s, &mut sink);
            inst += 1;
            s = 0;
            origin += self.extent;
        }
        (sink.cursor, sink.runs)
    }
}

/// Compile one node; `None` when the subtree holds no data.
fn compile_node(d: &Datatype) -> Option<PNode> {
    if d.size() == 0 {
        return None;
    }
    // Any strided-reducible subtree collapses to one Blocks frame.
    if let Some(s) = d.as_strided() {
        return Some(blocks(s.base, s.stride, s.block, s.count));
    }
    match d.kind() {
        // Basic always reduces to strided; markers hold no data.
        TypeKind::Basic { .. } | TypeKind::LbMark | TypeKind::UbMark => {
            unreachable!("leaf types reduce to a Blocks frame or hold no data")
        }
        TypeKind::Contiguous { count, child } => {
            let body = compile_node(child)?;
            Some(tile(body, *count, child.extent() as i64, child.size()))
        }
        TypeKind::Hvector {
            count,
            blocklen,
            stride,
            child,
        } => {
            let inner = tile(
                compile_node(child)?,
                *blocklen,
                child.extent() as i64,
                child.size(),
            );
            Some(tile(inner, *count, *stride, child.size() * blocklen))
        }
        TypeKind::Hindexed { blocks, child } => {
            let cext = child.extent() as i64;
            let csize = child.size();
            let childp = compile_node(child)?;
            let parts: Vec<Part> = blocks
                .iter()
                .map(|b| Part {
                    disp: b.disp,
                    node: tile(childp.clone(), b.blocklen, cext, csize),
                })
                .collect();
            let prefix =
                d.0.meta
                    .size_prefix
                    .clone()
                    .expect("hindexed nodes carry size prefix sums");
            Some(PNode::Tail {
                parts: parts.into(),
                prefix,
            })
        }
        TypeKind::Struct { fields } => {
            let mut parts = Vec::new();
            let mut prefix = vec![0u64];
            let mut cum = 0u64;
            for f in fields.iter() {
                let fsize = f.child.size() * f.count;
                if fsize == 0 {
                    continue; // markers and empty fields hold no data
                }
                let node = tile(
                    compile_node(&f.child)?,
                    f.count,
                    f.child.extent() as i64,
                    f.child.size(),
                );
                parts.push(Part { disp: f.disp, node });
                cum += fsize;
                prefix.push(cum);
            }
            if parts.len() == 1 {
                // single data field: fold its displacement into the body
                // (the subarray placement shape)
                let Part { disp, node } = parts.pop().unwrap();
                match node {
                    tail @ PNode::Tail { .. } => parts.push(Part { disp, node: tail }),
                    other => return Some(shift(other, disp)),
                }
            }
            Some(PNode::Tail {
                parts: parts.into(),
                prefix: prefix.into(),
            })
        }
        TypeKind::Resized { child, .. } => compile_node(child),
    }
}

/// `n` repetitions of `body` (holding `body_size` data bytes) placed
/// `step` bytes apart: fold into the body's Blocks frame when the
/// repetitions keep blocks evenly spaced (mirroring
/// `StridedSpec::tile`), collapse unit counts, loop otherwise.
fn tile(body: PNode, n: u64, step: i64, body_size: u64) -> PNode {
    debug_assert!(n >= 1, "zero-count subtrees hold no data");
    if n == 1 {
        return body;
    }
    if let PNode::Blocks {
        base,
        stride,
        block,
        count,
        ..
    } = body
    {
        if count == 1 {
            if step == block as i64 {
                // dense: merge into one big block
                return blocks(base, (block * n) as i64, block * n, 1);
            }
            return blocks(base, step, block, n);
        }
        if step == stride * count as i64 {
            return blocks(base, stride, block, count * n);
        }
        return PNode::Loop {
            base: 0,
            count: n,
            stride: step,
            size: body_size,
            body: Box::new(blocks(base, stride, block, count)),
        };
    }
    PNode::Loop {
        base: 0,
        count: n,
        stride: step,
        size: body_size,
        body: Box::new(body),
    }
}

/// Displace `node` by `d` bytes (folding the displacement into the node
/// instead of wrapping it in a unit tail).
fn shift(node: PNode, d: i64) -> PNode {
    if d == 0 {
        return node;
    }
    match node {
        PNode::Blocks {
            base,
            stride,
            block,
            count,
            kern,
        } => PNode::Blocks {
            base: base + d,
            stride,
            block,
            count,
            kern,
        },
        PNode::Loop {
            base,
            count,
            stride,
            size,
            body,
        } => PNode::Loop {
            base: base + d,
            count,
            stride,
            size,
            body,
        },
        PNode::Tail { parts, prefix } => {
            let parts: Vec<Part> = parts
                .iter()
                .map(|p| Part {
                    disp: p.disp + d,
                    node: p.node.clone(),
                })
                .collect();
            PNode::Tail {
                parts: parts.into(),
                prefix,
            }
        }
    }
}

/// Data bytes held by one instance of `node`.
fn node_size(node: &PNode) -> u64 {
    match node {
        PNode::Blocks { block, count, .. } => block * count,
        PNode::Loop { count, size, .. } => count * size,
        PNode::Tail { prefix, .. } => *prefix.last().unwrap_or(&0),
    }
}

/// The normalization pass: rewrite the raw compile into canonical
/// strided form wherever the type map permits, counting rewrites.
/// Preserves data order and per-node data size exactly, so skip-entry
/// arithmetic is unaffected.
fn normalize(node: PNode, rw: &mut u32) -> PNode {
    match node {
        PNode::Blocks {
            base,
            stride,
            block,
            count,
            ..
        } => {
            if count > 1 && stride == block as i64 {
                // stride == block: the blocks are dense — one big block
                *rw += 1;
                blocks(base, (block * count) as i64, block * count, 1)
            } else {
                blocks(base, stride, block, count)
            }
        }
        PNode::Loop {
            base,
            count,
            stride,
            size,
            body,
        } => {
            let body = normalize(*body, rw);
            if count == 1 {
                // unit-count loop: hoist the body
                *rw += 1;
                return shift(body, base);
            }
            // re-run the tiling fold: a normalized body may now collapse
            // (e.g. a dense inner vector that became a single block)
            match tile(body, count, stride, size) {
                PNode::Loop {
                    base: b,
                    count,
                    stride,
                    size,
                    body,
                } => PNode::Loop {
                    base: base + b,
                    count,
                    stride,
                    size,
                    body,
                },
                folded => {
                    *rw += 1;
                    shift(folded, base)
                }
            }
        }
        PNode::Tail { parts, .. } => {
            // normalize parts, splicing nested tails into this one so
            // adjacency is visible across the former nesting boundary
            let mut flat: Vec<Part> = Vec::with_capacity(parts.len());
            for part in parts.iter() {
                match normalize(part.node.clone(), rw) {
                    PNode::Tail { parts: inner, .. } => {
                        *rw += 1;
                        for ip in inner.iter() {
                            flat.push(Part {
                                disp: part.disp + ip.disp,
                                node: ip.node.clone(),
                            });
                        }
                    }
                    n => flat.push(Part {
                        disp: part.disp,
                        node: n,
                    }),
                }
            }
            let merged = merge_adjacent(flat, rw);
            let mut folded = fold_runs(merged, rw);
            if folded.len() == 1 {
                // single-part tail: fold the displacement away
                *rw += 1;
                let Part { disp, node } = folded.pop().unwrap();
                return shift(node, disp);
            }
            let mut prefix = Vec::with_capacity(folded.len() + 1);
            let mut cum = 0u64;
            prefix.push(0);
            for p in &folded {
                cum += node_size(&p.node);
                prefix.push(cum);
            }
            PNode::Tail {
                parts: folded.into(),
                prefix: prefix.into(),
            }
        }
    }
}

/// Merge neighboring `Blocks` parts that continue each other: two
/// touching blocks become one bigger block, and blocks that keep a
/// common stride extend the run. One linear sweep.
fn merge_adjacent(parts: Vec<Part>, rw: &mut u32) -> Vec<Part> {
    let mut out: Vec<Part> = Vec::with_capacity(parts.len());
    for part in parts {
        let Some(prev) = out.last_mut() else {
            out.push(part);
            continue;
        };
        if let Some(merged) = try_merge(prev, &part) {
            *prev = merged;
            *rw += 1;
        } else {
            out.push(part);
        }
    }
    out
}

fn try_merge(a: &Part, b: &Part) -> Option<Part> {
    let PNode::Blocks {
        base: ab,
        stride: astride,
        block: ablock,
        count: ac,
        ..
    } = a.node
    else {
        return None;
    };
    let PNode::Blocks {
        base: bb,
        stride: bstride,
        block: bblock,
        count: bc,
        ..
    } = b.node
    else {
        return None;
    };
    let a_start = a.disp + ab;
    let b_start = b.disp + bb;
    // touching single blocks (any sizes): one bigger block
    if ac == 1 && bc == 1 && b_start == a_start + ablock as i64 {
        let blk = ablock + bblock;
        return Some(Part {
            disp: 0,
            node: blocks(a_start, blk as i64, blk, 1),
        });
    }
    if ablock != bblock {
        return None;
    }
    // same block size: extend the strided run when the spacing continues.
    // A unit-count side imposes no stride constraint of its own.
    let a_last = a_start + (ac as i64 - 1) * if ac > 1 { astride } else { 0 };
    let step = b_start - a_last;
    if step <= 0 {
        return None;
    }
    let stride_ok = |c: u64, s: i64| c <= 1 || s == step;
    if stride_ok(ac, astride) && stride_ok(bc, bstride) {
        return Some(Part {
            disp: 0,
            node: blocks(a_start, step, ablock, ac + bc),
        });
    }
    None
}

/// Fold maximal runs (length ≥ 2) of structurally identical parts at
/// equally spaced displacements back through [`tile`] — the
/// equal-displacement struct-field / ragged-hindexed shape. A run that
/// tiles to `Blocks` yields a strided prefix; otherwise a `Loop` part.
fn fold_runs(parts: Vec<Part>, rw: &mut u32) -> Vec<Part> {
    let mut out: Vec<Part> = Vec::with_capacity(parts.len());
    let mut i = 0;
    while i < parts.len() {
        if i + 1 < parts.len() && parts[i + 1].node == parts[i].node {
            let step = parts[i + 1].disp - parts[i].disp;
            if step != 0 {
                let mut j = i + 1;
                while j + 1 < parts.len()
                    && parts[j + 1].node == parts[i].node
                    && parts[j + 1].disp - parts[j].disp == step
                {
                    j += 1;
                }
                let n = (j - i + 1) as u64;
                let body = parts[i].node.clone();
                let size = node_size(&body);
                *rw += 1;
                out.push(Part {
                    disp: parts[i].disp,
                    node: tile(body, n, step, size),
                });
                i = j + 1;
                continue;
            }
        }
        out.push(parts[i].clone());
        i += 1;
    }
    out
}

/// Append every `Blocks` frame's block size (for the profiler's
/// block-size histogram).
fn collect_blocks(node: &PNode, sizes: &mut Vec<u64>) {
    match node {
        PNode::Blocks { block, .. } => sizes.push(*block),
        PNode::Loop { body, .. } => collect_blocks(body, sizes),
        PNode::Tail { parts, .. } => {
            for p in parts.iter() {
                collect_blocks(&p.node, sizes);
            }
        }
    }
}

/// `Blocks` frames whose compile-time selection is kernel-eligible.
fn count_selected(node: &PNode) -> u64 {
    match node {
        PNode::Blocks { kern, .. } => u64::from(kern.eligible()),
        PNode::Loop { body, .. } => count_selected(body),
        PNode::Tail { parts, .. } => parts.iter().map(|p| count_selected(&p.node)).sum(),
    }
}

fn describe_node(node: &PNode) -> String {
    match node {
        PNode::Blocks {
            base,
            stride,
            block,
            count,
            ..
        } => format!("B({base},{stride},{block},{count})"),
        PNode::Loop {
            base,
            count,
            stride,
            size,
            body,
        } => format!("L({base},{count},{stride},{size})[{}]", describe_node(body)),
        PNode::Tail { parts, .. } => {
            let inner: Vec<String> = parts
                .iter()
                .map(|p| format!("@{} {}", p.disp, describe_node(&p.node)))
                .collect();
            format!("T[{}]", inner.join("; "))
        }
    }
}

fn count_frames(node: &PNode) -> u32 {
    match node {
        PNode::Blocks { .. } => 1,
        PNode::Loop { body, .. } => 1 + count_frames(body),
        PNode::Tail { parts, .. } => 1 + parts.iter().map(|p| count_frames(&p.node)).sum::<u32>(),
    }
}

/// `(loop_frames, tail_frames, min_block, max_block)` over the tree;
/// `min_block` is `u64::MAX` when no Blocks frame exists.
fn shape_of(node: &PNode) -> (u32, u32, u64, u64) {
    match node {
        PNode::Blocks { block, .. } => (0, 0, *block, *block),
        PNode::Loop { body, .. } => {
            let (l, t, mn, mx) = shape_of(body);
            (l + 1, t, mn, mx)
        }
        PNode::Tail { parts, .. } => {
            let mut acc = (0u32, 1u32, u64::MAX, 0u64);
            for p in parts.iter() {
                let (l, t, mn, mx) = shape_of(&p.node);
                acc = (acc.0 + l, acc.1 + t, acc.2.min(mn), acc.3.max(mx));
            }
            acc
        }
    }
}

/// Where the interpreter's runs go: pack copies out of the typed buffer,
/// unpack copies into it. `run` returns the bytes actually moved (short
/// when the contiguous side is exhausted); `blocks` moves a whole frame
/// region of equal blocks through the frame's selected kernel, falling
/// back to per-block `run` calls when the region's bounds cannot be
/// proven (or the kernel is scalar).
trait Sink {
    fn run(&mut self, pos: i64, len: u64) -> u64;
    fn full(&self) -> bool;
    fn blocks(&mut self, start: i64, stride: i64, block: u64, count: u64, sel: Sel);
}

struct PackSink<'a> {
    src: &'a [u8],
    out: &'a mut [u8],
    cursor: usize,
    runs: u64,
    obs: bool,
    mode: Mode,
}

impl Sink for PackSink<'_> {
    #[inline]
    fn run(&mut self, pos: i64, len: u64) -> u64 {
        let n = (len as usize).min(self.out.len() - self.cursor);
        if n == 0 {
            return 0;
        }
        let s = pos as usize;
        self.out[self.cursor..self.cursor + n].copy_from_slice(&self.src[s..s + n]);
        self.cursor += n;
        self.runs += 1;
        if self.obs {
            crate::ff::OBS_RUN_LEN.record(n as u64);
        }
        n as u64
    }

    #[inline]
    fn full(&self) -> bool {
        self.cursor == self.out.len()
    }

    fn blocks(&mut self, start: i64, stride: i64, block: u64, count: u64, sel: Sel) {
        let rem = (self.out.len() - self.cursor) as u64;
        let full = count.min(rem / block);
        let mut pos = start;
        if full > 0 {
            let kind = kernels::resolve(sel, self.mode);
            let mut done = false;
            if kind != Kind::Scalar {
                let end = start + (full as i64 - 1) * stride + block as i64;
                if start >= 0 && end >= 0 && end as u64 <= self.src.len() as u64 {
                    // the whole region is in bounds: one direct kernel call
                    unsafe {
                        kernels::gather(
                            kind,
                            sel.class,
                            self.src.as_ptr().add(start as usize),
                            stride as isize,
                            full as usize,
                            self.out.as_mut_ptr().add(self.cursor),
                        );
                    }
                    self.cursor += (full * block) as usize;
                    self.runs += full;
                    if self.obs {
                        crate::ff::OBS_RUN_LEN.record_n(block, full);
                        kernels::OBS_KERNEL_BLOCKS.add(full);
                        kernels::OBS_KERNEL_BYTES.add(full * block);
                    }
                    done = true;
                } else {
                    kernels::OBS_KERNEL_FALLBACKS.incr();
                }
            }
            if !done {
                // scalar reference path (also preserves the original
                // panic-on-out-of-bounds semantics)
                for _ in 0..full {
                    self.run(pos, block);
                    pos += stride;
                }
            } else {
                pos += full as i64 * stride;
            }
        }
        if full < count && !self.full() {
            // partial tail block: capacity ends inside this block
            self.run(pos, block);
        }
    }
}

struct UnpackSink<'a> {
    packbuf: &'a [u8],
    dst: &'a mut [u8],
    cursor: usize,
    runs: u64,
    obs: bool,
    mode: Mode,
}

impl Sink for UnpackSink<'_> {
    #[inline]
    fn run(&mut self, pos: i64, len: u64) -> u64 {
        let n = (len as usize).min(self.packbuf.len() - self.cursor);
        if n == 0 {
            return 0;
        }
        let t = pos as usize;
        self.dst[t..t + n].copy_from_slice(&self.packbuf[self.cursor..self.cursor + n]);
        self.cursor += n;
        self.runs += 1;
        if self.obs {
            crate::ff::OBS_RUN_LEN.record(n as u64);
        }
        n as u64
    }

    #[inline]
    fn full(&self) -> bool {
        self.cursor == self.packbuf.len()
    }

    fn blocks(&mut self, start: i64, stride: i64, block: u64, count: u64, sel: Sel) {
        let rem = (self.packbuf.len() - self.cursor) as u64;
        let full = count.min(rem / block);
        let mut pos = start;
        if full > 0 {
            let kind = kernels::resolve(sel, self.mode);
            let mut done = false;
            if kind != Kind::Scalar {
                let end = start + (full as i64 - 1) * stride + block as i64;
                if start >= 0 && end >= 0 && end as u64 <= self.dst.len() as u64 {
                    unsafe {
                        kernels::scatter(
                            kind,
                            sel.class,
                            self.packbuf.as_ptr().add(self.cursor),
                            self.dst.as_mut_ptr().add(start as usize),
                            stride as isize,
                            full as usize,
                        );
                    }
                    self.cursor += (full * block) as usize;
                    self.runs += full;
                    if self.obs {
                        crate::ff::OBS_RUN_LEN.record_n(block, full);
                        kernels::OBS_KERNEL_BLOCKS.add(full);
                        kernels::OBS_KERNEL_BYTES.add(full * block);
                    }
                    done = true;
                } else {
                    kernels::OBS_KERNEL_FALLBACKS.incr();
                }
            }
            if !done {
                for _ in 0..full {
                    self.run(pos, block);
                    pos += stride;
                }
            } else {
                pos += full as i64 * stride;
            }
        }
        if full < count && !self.full() {
            self.run(pos, block);
        }
    }
}

impl PNode {
    /// Execute one instance of this node at `origin`, entering after
    /// `skip` data bytes (`skip` < the node's data size). The `O(depth)`
    /// entry divides/searches per frame; thereafter every iteration is a
    /// block copy.
    fn walk<S: Sink>(&self, origin: i64, skip: u64, sink: &mut S) {
        match self {
            PNode::Blocks {
                base,
                stride,
                block,
                count,
                kern,
            } => {
                let mut j = skip / block;
                if j >= *count {
                    return;
                }
                let within = skip % block;
                let mut start = origin + base + j as i64 * stride;
                if within != 0 {
                    // partial first block, then the kernelized region
                    let want = block - within;
                    if sink.run(start + within as i64, want) < want {
                        return;
                    }
                    j += 1;
                    start += stride;
                }
                if j < *count {
                    sink.blocks(start, *stride, *block, *count - j, *kern);
                }
            }
            PNode::Loop {
                base,
                count,
                stride,
                size,
                body,
            } => {
                let mut i = skip / size;
                if i >= *count {
                    return;
                }
                let mut s = skip % size;
                let mut org = origin + base + i as i64 * stride;
                while i < *count {
                    body.walk(org, s, sink);
                    if sink.full() {
                        return;
                    }
                    i += 1;
                    s = 0;
                    org += stride;
                }
            }
            PNode::Tail { parts, prefix } => {
                // prefix[0] == 0 <= skip, so the partition point is >= 1
                let mut p = prefix.partition_point(|&v| v <= skip) - 1;
                if p >= parts.len() {
                    return;
                }
                let mut s = skip - prefix[p];
                while p < parts.len() {
                    let part = &parts[p];
                    part.node.walk(origin + part.disp, s, sink);
                    if sink.full() {
                        return;
                    }
                    p += 1;
                    s = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typemap::reference_pack;
    use crate::types::{Field, Order};

    /// Compile + pack + compare against the typemap oracle for every
    /// skip position.
    fn check_all_skips(d: &Datatype, count: u64) {
        let span = (count as i64 - 1).max(0) * d.extent() as i64 + d.data_ub();
        let src: Vec<u8> = (0..span.max(1) as usize).map(|i| (i % 251) as u8).collect();
        let full = reference_pack(&src, d, count);
        let total = d.size() * count;
        assert_eq!(full.len() as u64, total);
        let prog = d.program();
        for skip in 0..total {
            let mut buf = vec![0u8; (total - skip) as usize];
            let (n, _) = prog.pack_into(&src, 0, count, skip, &mut buf);
            assert_eq!(n as u64, total - skip, "skip {skip}");
            assert_eq!(&buf[..], &full[skip as usize..], "skip {skip}");
            // and unpack back into a fresh buffer
            let mut dst = vec![0u8; src.len()];
            let (m, _) = prog.unpack_into(&buf, &mut dst, 0, count, skip);
            assert_eq!(m, n);
            let check = reference_pack(&dst, d, count);
            assert_eq!(&check[skip as usize..], &full[skip as usize..]);
        }
    }

    #[test]
    fn nested_vector_compiles_to_loop_over_blocks() {
        // 3D subarray: cannot reduce to one strided frame
        let d = Datatype::subarray(
            &[4, 4, 4],
            &[2, 2, 2],
            &[1, 1, 1],
            Order::C,
            &Datatype::int(),
        )
        .unwrap();
        assert!(d.as_strided().is_none());
        let prog = d.program();
        assert!(prog.frames() >= 2);
        check_all_skips(&d, 2);
    }

    #[test]
    fn strided_types_compile_to_single_frame() {
        for d in [
            Datatype::vector(8, 1, 2, &Datatype::double()).unwrap(),
            Datatype::contiguous(10, &Datatype::int()).unwrap(),
            Datatype::vector(4, 3, 5, &Datatype::int()).unwrap(),
        ] {
            assert_eq!(d.program().frames(), 1, "{d:?}");
            check_all_skips(&d, 3);
        }
    }

    #[test]
    fn ragged_indexed_compiles_to_tail() {
        let d = Datatype::indexed(&[2, 1, 3], &[0, 4, 8], &Datatype::int()).unwrap();
        assert!(d.as_strided().is_none());
        check_all_skips(&d, 2);
    }

    #[test]
    fn multi_field_struct_with_markers() {
        let v = Datatype::vector(2, 1, 2, &Datatype::double()).unwrap();
        let d = Datatype::struct_type(vec![
            Field {
                disp: 0,
                count: 1,
                child: Datatype::lb_marker(),
            },
            Field {
                disp: 8,
                count: 2,
                child: v,
            },
            Field {
                disp: 100,
                count: 3,
                child: Datatype::int(),
            },
            Field {
                disp: 160,
                count: 1,
                child: Datatype::ub_marker(),
            },
        ])
        .unwrap();
        check_all_skips(&d, 2);
    }

    #[test]
    fn single_field_struct_folds_displacement() {
        // the subarray placement shape: one field at a nonzero disp
        let d = Datatype::subarray(&[6, 8], &[3, 4], &[2, 1], Order::C, &Datatype::int()).unwrap();
        check_all_skips(&d, 2);
    }

    #[test]
    fn empty_type_has_no_program_body() {
        let d = Datatype::contiguous(0, &Datatype::int()).unwrap();
        let prog = d.program();
        assert_eq!(prog.frames(), 0);
        let mut buf = [0u8; 8];
        assert_eq!(prog.pack_into(&[], 0, 4, 0, &mut buf), (0, 0));
    }

    #[test]
    fn program_is_cached_per_node() {
        let d = Datatype::vector(3, 1, 2, &Datatype::int()).unwrap();
        let a = d.program() as *const RunProgram;
        let b = d.clone().program() as *const RunProgram;
        assert_eq!(a, b, "clones share the cached program");
    }

    #[test]
    fn capped_output_truncates_like_ff_pack() {
        let d = Datatype::vector(3, 2, 4, &Datatype::basic(2)).unwrap();
        let src: Vec<u8> = (0..(d.extent() * 2) as u8).collect();
        let full = reference_pack(&src, &d, 2);
        let total = d.size() * 2;
        let prog = d.program();
        for skip in 0..total {
            for cap in [0u64, 1, 2, 5, total - skip] {
                let mut buf = vec![0u8; cap as usize];
                let (n, _) = prog.pack_into(&src, 0, 2, skip, &mut buf);
                assert_eq!(n as u64, cap.min(total - skip));
                assert_eq!(
                    &buf[..n],
                    &full[skip as usize..skip as usize + n],
                    "skip={skip} cap={cap}"
                );
            }
        }
    }

    #[test]
    fn virtual_buffer_displacement() {
        // window covering positions 16..28 of a 4-block vector
        let d = Datatype::vector(4, 1, 2, &Datatype::int()).unwrap();
        let full: Vec<u8> = (0..d.extent() as u8).collect();
        let window = full[16..28].to_vec();
        let mut buf = vec![0u8; 8];
        let (n, _) = d.program().pack_into(&window, 16, 1, 8, &mut buf);
        assert_eq!(n, 8);
        assert_eq!(&buf[..4], &full[16..20]);
        assert_eq!(&buf[4..], &full[24..28]);
    }
}
