//! Memory-datatype packing, per engine.
//!
//! Non-contiguous *user buffers* (memtypes) are handled differently by the
//! two engines, mirroring the paper:
//!
//! * list-based (Section 2.1): an ol-list is created for the memtype **on
//!   every access** and discarded afterwards ("these lists are not stored
//!   beyond the single access operation");
//! * listless (Section 3.1): `ff_pack`/`ff_unpack` stream the data with no
//!   materialized representation.

use lio_datatype::{ff_pack_sharded, ff_unpack_sharded, Datatype, OlList};

use crate::error::{IoError, Result};

/// Packs and unpacks the user buffer's data stream.
pub(crate) enum MemPacker {
    /// The memtype's data is a single run starting at this offset: the
    /// stream is a subslice of the user buffer.
    Contig { base: usize },
    /// List-based: flatten to an ol-list per access.
    List { list: OlList },
    /// Listless: flattening-on-the-fly, sharded across `threads`
    /// workers when the copy is large enough.
    Ff {
        memtype: Datatype,
        count: u64,
        threads: usize,
    },
}

impl MemPacker {
    /// Build a packer for `count` instances of `memtype` over a user
    /// buffer of `buf_len` bytes, using the list-based engine when
    /// `list_based` is set. `threads` > 1 enables sharded pack/unpack
    /// for large listless copies. Validates that the buffer covers the
    /// data.
    pub fn new(
        memtype: &Datatype,
        count: u64,
        buf_len: usize,
        list_based: bool,
        threads: usize,
    ) -> Result<MemPacker> {
        if memtype.data_lb() < 0 {
            return Err(IoError::Usage(
                "memtypes with negative data displacements are not supported; \
                 shift the type or the buffer"
                    .into(),
            ));
        }
        let span = if count == 0 || memtype.size() == 0 {
            0
        } else {
            (count as i64 - 1) * memtype.extent() as i64 + memtype.data_ub()
        };
        if span > buf_len as i64 {
            return Err(IoError::Usage(format!(
                "user buffer of {buf_len} bytes does not cover the memtype span of {span} bytes"
            )));
        }
        if let Some(s) = memtype.single_run() {
            if memtype.size() == memtype.extent() || count == 1 {
                return Ok(MemPacker::Contig { base: s as usize });
            }
        }
        if list_based {
            // the per-access flattening cost of the list-based engine
            Ok(MemPacker::List {
                list: OlList::flatten(memtype, count),
            })
        } else {
            Ok(MemPacker::Ff {
                memtype: memtype.clone(),
                count,
                threads,
            })
        }
    }

    /// Copy `out.len()` stream bytes starting at stream position `skip`
    /// out of the user buffer. Returns bytes copied.
    pub fn pack(&self, user: &[u8], skip: u64, out: &mut [u8]) -> usize {
        match self {
            MemPacker::Contig { base } => {
                let s = base + skip as usize;
                let n = out.len().min(user.len().saturating_sub(s));
                out[..n].copy_from_slice(&user[s..s + n]);
                n
            }
            MemPacker::List { list } => list.pack(user, skip, out),
            MemPacker::Ff {
                memtype,
                count,
                threads,
            } => ff_pack_sharded(user, *count, memtype, skip, out, *threads),
        }
    }

    /// Copy `data` into the user buffer at stream position `skip`.
    /// Returns bytes copied.
    pub fn unpack(&self, data: &[u8], user: &mut [u8], skip: u64) -> usize {
        match self {
            MemPacker::Contig { base } => {
                let s = base + skip as usize;
                let n = data.len().min(user.len().saturating_sub(s));
                user[s..s + n].copy_from_slice(&data[..n]);
                n
            }
            MemPacker::List { list } => list.unpack(data, user, skip),
            MemPacker::Ff {
                memtype,
                count,
                threads,
            } => ff_unpack_sharded(data, user, *count, memtype, skip, *threads),
        }
    }

    /// Whether the stream is a contiguous slice of the user buffer.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_contiguous(&self) -> bool {
        matches!(self, MemPacker::Contig { .. })
    }

    /// For contiguous packers, the stream as a borrowed subslice
    /// (zero-copy fast path).
    pub fn contig_slice<'a>(&self, user: &'a [u8], skip: u64, len: u64) -> Option<&'a [u8]> {
        match self {
            MemPacker::Contig { base } => {
                let s = base + skip as usize;
                Some(&user[s..s + len as usize])
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contig_passthrough() {
        let m = Datatype::contiguous(4, &Datatype::double()).unwrap();
        let p = MemPacker::new(&m, 1, 32, false, 1).unwrap();
        assert!(p.is_contiguous());
        let user: Vec<u8> = (0..32).collect();
        let mut out = vec![0u8; 16];
        assert_eq!(p.pack(&user, 8, &mut out), 16);
        assert_eq!(&out[..], &user[8..24]);
    }

    #[test]
    fn engines_pack_identically() {
        let m = lio_datatype::Datatype::vector(5, 3, 5, &Datatype::int()).unwrap();
        let user: Vec<u8> = (0..m.extent() as usize * 2).map(|i| i as u8).collect();
        let a = MemPacker::new(&m, 2, user.len(), true, 1).unwrap();
        let b = MemPacker::new(&m, 2, user.len(), false, 1).unwrap();
        let total = (m.size() * 2) as usize;
        for skip in [0u64, 1, 7, 60] {
            let mut oa = vec![0u8; total - skip as usize];
            let mut ob = vec![0u8; total - skip as usize];
            assert_eq!(a.pack(&user, skip, &mut oa), oa.len());
            assert_eq!(b.pack(&user, skip, &mut ob), ob.len());
            assert_eq!(oa, ob);
        }
    }

    #[test]
    fn engines_unpack_identically() {
        let m = lio_datatype::Datatype::vector(4, 2, 3, &Datatype::int()).unwrap();
        let total = (m.size() * 2) as usize;
        let data: Vec<u8> = (0..total as u8).collect();
        let span = m.extent() as usize * 2;
        let mut ua = vec![0xAAu8; span];
        let mut ub = vec![0xAAu8; span];
        let a = MemPacker::new(&m, 2, span, true, 1).unwrap();
        let b = MemPacker::new(&m, 2, span, false, 1).unwrap();
        a.unpack(&data, &mut ua, 0);
        b.unpack(&data, &mut ub, 0);
        assert_eq!(ua, ub);
    }

    #[test]
    fn buffer_too_small_rejected() {
        let m = Datatype::contiguous(4, &Datatype::double()).unwrap();
        assert!(MemPacker::new(&m, 1, 31, false, 1).is_err());
        assert!(MemPacker::new(&m, 1, 32, false, 1).is_ok());
    }

    #[test]
    fn negative_lb_rejected() {
        let m = Datatype::resized(&Datatype::int(), -4, 8).unwrap();
        let shifted = Datatype::hindexed(&[1], &[-8], &Datatype::int()).unwrap();
        assert!(MemPacker::new(&shifted, 1, 64, false, 1).is_err());
        // resized with negative lb but non-negative data is fine
        assert!(MemPacker::new(&m, 1, 64, false, 1).is_ok());
    }

    #[test]
    fn single_instance_gappy_type_is_contig_when_single_run() {
        // a resized int: one data run but extent 12
        let m = Datatype::resized(&Datatype::int(), 0, 12).unwrap();
        let p = MemPacker::new(&m, 1, 12, false, 1).unwrap();
        assert!(p.is_contiguous());
        // two instances: gaps between runs, not contiguous
        let p2 = MemPacker::new(&m, 2, 24, false, 1).unwrap();
        assert!(!p2.is_contiguous());
    }
}
