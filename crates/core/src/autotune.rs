//! Self-tuning collective engine: online knob adaptation from
//! critical-path feedback.
//!
//! Every collective knob in this crate — engine choice,
//! `two_phase_pipeline`, `pipeline_depth`, `cb_buffer_size`,
//! `pack_threads` — is otherwise frozen at open time, exactly the manual
//! hint-tuning burden ROMIO documents. This module closes the loop: a
//! per-file [`Tuner`] ingests each collective op's critical-path
//! breakdown (exchange vs io vs pack nanoseconds, observed file-domain
//! span) and retunes the *next* op's effective knobs with a bounded
//! hill-climb:
//!
//! - **signal**: the op's phase breakdown is classified (io-bound,
//!   exchange-bound, pack-bound, cb-geometry mismatch, balanced);
//! - **hysteresis**: a knob only moves after [`K_CONSISTENT`] ops agree
//!   on the same signal, so one noisy op never moves anything;
//! - **clamp**: every move is a single ×2/÷2 (or on/off) step inside
//!   hard bounds;
//! - **revert**: each move is a *trial* — if the next op's wall time
//!   regresses more than [`REVERT_TOL`] over the pre-move baseline, the
//!   knob snaps back and that (knob, direction) is blocked from further
//!   attempts, so the climb cannot oscillate.
//!
//! After [`SETTLE_QUIET`] consecutive ops without a move the tuner is
//! *settled* (`core.tune.settled`). Cold start is shared with the PR 6
//! advisor: the first measured op's live profile runs through
//! `lio_obs::profile::RULES` via [`apply_settings`], so the rule table's
//! thresholds exist in exactly one place.
//!
//! Cross-rank agreement: collective knobs (window size, depth, engine)
//! must be identical on every rank for the *same* op, or the exchange
//! protocol itself diverges. The shared [`TunerState`] lives on the
//! [`crate::SharedFile`] (one per file, cloned into every rank) and
//! memoizes decisions by op index: whichever rank plans op *n* first
//! runs the decision from op *n−1*'s aggregated reports, every other
//! rank reads the memoized result. Reports arriving after their op's
//! decision was taken (reads have no closing barrier) are dropped as
//! stale; aborted ops mark the aggregate so the decision discards it —
//! failed ops never move a knob (`core.tune.discarded`).
//!
//! The tuner changes *performance* knobs only: the differential corpus
//! (`tests/autotune.rs`, plus the `LIO_AUTOTUNE=1` corpus reruns in
//! ci.sh) pins file bytes identical with and without it.

use crate::hints::{Engine, Hints};
use lio_obs::profile::{self, Recommendation};
use lio_obs::{trace, LazyCounter};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Consecutive identical signals required before a knob moves.
pub const K_CONSISTENT: u32 = 2;
/// Consecutive move-free decisions before the tuner counts as settled.
pub const SETTLE_QUIET: u32 = 3;
/// A trial move is reverted when the next op's wall time exceeds the
/// pre-move baseline by more than this fraction.
pub const REVERT_TOL: f64 = 0.10;
/// Collective-buffer clamp for tuner moves (matches the advisor's
/// `cb_target` clamp in `lio_obs::profile`).
pub const CB_MIN: usize = 64 * 1024;
pub const CB_MAX: usize = 16 * 1024 * 1024;
/// Pipeline-depth ceiling for io-bound escalation (exchange-bound stops
/// at 4: deeper windows only buy more overlap when storage is the
/// laggard).
pub const DEPTH_MAX_IO: usize = 8;
pub const DEPTH_MAX_EXCH: usize = 4;
/// Pack-shard ceiling, matching `Hints::effective_pack_threads`'s auto cap.
pub const PACK_MAX: usize = 8;

static OBS_DECISIONS: LazyCounter = LazyCounter::new("core.tune.decisions");
static OBS_REVERTS: LazyCounter = LazyCounter::new("core.tune.reverts");
static OBS_SETTLED: LazyCounter = LazyCounter::new("core.tune.settled");
static OBS_DISCARDED: LazyCounter = LazyCounter::new("core.tune.discarded");

/// What one rank observed for one collective op. All ranks' outcomes for
/// the same op index are aggregated before the next decision.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpOutcome {
    /// Write (`true`) or read collective.
    pub write: bool,
    /// This rank's wall time for the op, ns (0 when `lio_obs` is off).
    pub wall_ns: u64,
    /// Critical-path phase nanoseconds, as the engines already meter
    /// them for the `core.coll.*` counters.
    pub exchange_ns: u64,
    pub io_ns: u64,
    pub pack_ns: u64,
    /// Phase time hidden by pipelining (phases sum − wall).
    pub overlap_ns: u64,
    /// Bytes this rank moved.
    pub bytes: u64,
    /// Total file-domain span of the op (identical on every rank).
    pub span: u64,
}

/// Per-op aggregate across ranks.
#[derive(Clone, Copy, Debug, Default)]
struct Agg {
    reports: u32,
    aborted: bool,
    wall_max: u64,
    exch: u64,
    io: u64,
    pack: u64,
    overlap: u64,
    span: u64,
}

impl Agg {
    fn merge(&mut self, o: &OpOutcome, aborted: bool) {
        self.reports += 1;
        self.aborted |= aborted;
        self.wall_max = self.wall_max.max(o.wall_ns);
        self.exch += o.exchange_ns;
        self.io += o.io_ns;
        self.pack += o.pack_ns;
        self.overlap += o.overlap_ns;
        self.span = self.span.max(o.span);
    }
}

/// The tunable knob subset of [`Hints`]: exactly the collective knobs
/// that must agree across ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Knobs {
    pub engine: Engine,
    pub pipelined: bool,
    pub depth: usize,
    pub cb: usize,
    pub pack_threads: usize,
}

impl Knobs {
    pub fn from_hints(h: &Hints) -> Knobs {
        Knobs {
            engine: h.engine,
            pipelined: h.two_phase_pipeline,
            depth: h.pipeline_depth.max(1),
            cb: h.cb_buffer_size,
            pack_threads: h.pack_threads,
        }
    }

    /// Overlay these knobs on `base`, leaving every non-tuned hint alone.
    pub fn apply_to(&self, base: &Hints) -> Hints {
        let mut h = *base;
        h.engine = self.engine;
        h.two_phase_pipeline = self.pipelined;
        h.pipeline_depth = self.depth;
        h.cb_buffer_size = self.cb;
        h.pack_threads = self.pack_threads;
        h
    }

    /// Compact rendering for decision logs and convergence tables,
    /// e.g. `listless/pipe=on x4/cb=524288/pt=1`.
    pub fn summary(&self) -> String {
        format!(
            "{}/pipe={} x{}/cb={}/pt={}",
            match self.engine {
                Engine::ListBased => "list_based",
                Engine::Listless => "listless",
            },
            if self.pipelined { "on" } else { "off" },
            self.depth,
            self.cb,
            self.pack_threads
        )
    }
}

/// Which knob a decision touched (trace `b` payload for `tune.*` marks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Knob {
    ColdStart = 0,
    Engine = 1,
    Pipeline = 2,
    Depth = 3,
    Cb = 4,
    Pack = 5,
}

/// The classified signal an op's aggregate emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SignalKind {
    Balanced,
    IoBound,
    ExchangeBound,
    PackBound,
    CbMismatch {
        up: bool,
    },
    /// Pipelined, but the windows barely overlap: the depth buys window
    /// overhead without hiding anything.
    Underlap,
    /// The health layer flagged one rank as persistently arriving last
    /// (skew streak over [`lio_obs::health::STRAGGLER_K`] windows): the
    /// collective is gated on a laggard, not on aggregate bandwidth.
    SlowRank {
        rank: u32,
    },
}

impl SignalKind {
    fn describe(&self, agg: &Agg) -> String {
        let total = (agg.exch + agg.io + agg.pack).max(1) as f64;
        match self {
            SignalKind::Balanced => "balanced phases".to_string(),
            SignalKind::IoBound => {
                format!(
                    "io-bound ({:.0}% of phase time)",
                    agg.io as f64 / total * 100.0
                )
            }
            SignalKind::ExchangeBound => format!(
                "exchange-bound ({:.0}% of phase time)",
                agg.exch as f64 / total * 100.0
            ),
            SignalKind::PackBound => {
                format!(
                    "pack-bound ({:.0}% of phase time)",
                    agg.pack as f64 / total * 100.0
                )
            }
            SignalKind::CbMismatch { up } => format!(
                "cb {} vs target {} for span {} ({})",
                "mismatch",
                profile::cb_target(agg.span),
                agg.span,
                if *up { "too small" } else { "too large" }
            ),
            SignalKind::Underlap => format!(
                "under-lap: pipelined but overlap is {:.0}% of phase time",
                agg.overlap as f64 / total * 100.0
            ),
            SignalKind::SlowRank { rank } => {
                format!("rank {rank} persistently arrives last (health skew streak)")
            }
        }
    }
}

/// An in-flight trial move, judged by the next successful op's wall time.
#[derive(Clone, Debug)]
struct Trial {
    prev: Knobs,
    baseline_wall: f64,
    knob: Knob,
    dir: i8,
    desc: String,
}

/// One logged decision, in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TuneDecision {
    /// The op index the decision's knobs first apply to.
    pub op: u64,
    /// `cold_start` | `move` | `commit` | `revert` | `discard` | `settle`.
    pub action: &'static str,
    /// The knob transition, e.g. `pipeline_depth 2 -> 4`.
    pub knob: String,
    /// The triggering signal, stated in profile-evidence terms.
    pub signal: String,
    /// Aggregate wall of the op that triggered the decision, ns.
    pub wall_ns: u64,
}

/// One row of the convergence table: the knobs an op ran with and the
/// slowest rank's wall time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TuneOp {
    pub op: u64,
    pub knobs: String,
    pub wall_ns: u64,
}

/// Snapshot of everything the tuner has done, for `repro autotune`
/// tables and assertions ([`crate::SharedFile::tune_report`]).
#[derive(Clone, Debug, Default)]
pub struct TuneReport {
    pub decisions: Vec<TuneDecision>,
    pub ops: Vec<TuneOp>,
    /// Reports that arrived after their op's decision was taken.
    pub stale_reports: u64,
    /// Aborted ops whose measurements were discarded.
    pub discarded: u64,
    pub settled: bool,
    /// Knob summaries at arm time and now.
    pub initial: String,
    pub current: String,
}

/// The shared per-file tuner: one per [`crate::SharedFile`], memoizing
/// per-op decisions so every rank resolves identical effective knobs.
/// Public (with [`Tuner`]) so tests can drive synthetic outcome
/// sequences through the exact production decision path.
#[derive(Debug)]
pub struct TunerState {
    base: Hints,
    knobs: Knobs,
    initial: Knobs,
    /// Env-pinned values: the tuner never fights an explicit
    /// `LIO_PIPELINE` / `LIO_PACK_THREADS` override.
    frozen_pipeline: Option<bool>,
    frozen_pack: Option<usize>,
    /// Lowest op index whose decision has not been taken yet. Op 0 runs
    /// the initial knobs; the decision applying to op n consumes op
    /// n−1's aggregate.
    next_decision: u64,
    /// Highest op index planned so far (+1); reopened files resume here.
    ops_seen: u64,
    pending: BTreeMap<u64, Agg>,
    cold_started: bool,
    trial: Option<Trial>,
    /// EWMA wall under the current committed knobs.
    baseline_wall: Option<f64>,
    last_signal: Option<SignalKind>,
    streak: u32,
    quiet: u32,
    settled: bool,
    /// (knob, direction) pairs that reverted once: never retried (until
    /// a workload shift clears the slate — see [`TunerState::ingest`]).
    blocked: Vec<(Knob, i8)>,
    /// Health-layer dominant-phase detector: a sustained shift after the
    /// tuner settled re-opens the search (PR 9 follow-on).
    shift: lio_obs::health::ShiftDetector,
    report: TuneReport,
}

fn env_flag(name: &str) -> Option<bool> {
    match std::env::var(name) {
        Ok(v) => match v.as_str() {
            "1" | "on" | "true" | "enable" => Some(true),
            "0" | "off" | "false" | "disable" => Some(false),
            _ => None,
        },
        Err(_) => None,
    }
}

impl TunerState {
    pub fn new(base: &Hints) -> TunerState {
        let mut knobs = Knobs::from_hints(base);
        let frozen_pipeline = env_flag("LIO_PIPELINE");
        if let Some(v) = frozen_pipeline {
            knobs.pipelined = v;
        }
        let frozen_pack = std::env::var("LIO_PACK_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok());
        if let Some(v) = frozen_pack {
            knobs.pack_threads = v;
        }
        TunerState {
            base: *base,
            knobs,
            initial: knobs,
            frozen_pipeline,
            frozen_pack,
            next_decision: 1,
            ops_seen: 0,
            pending: BTreeMap::new(),
            cold_started: false,
            trial: None,
            baseline_wall: None,
            last_signal: None,
            streak: 0,
            quiet: 0,
            settled: false,
            blocked: Vec::new(),
            shift: lio_obs::health::ShiftDetector::new(),
            report: TuneReport::default(),
        }
    }

    /// Effective hints for op `op`. The first caller for a given index
    /// runs any pending decisions (consuming earlier ops' aggregates);
    /// later callers read the memoized result — this is what keeps every
    /// rank's collective knobs identical per op.
    pub fn plan(&mut self, op: u64) -> Hints {
        let base = self.base;
        self.plan_with(op, &base)
    }

    /// Like [`TunerState::plan`], but overlays the tuned knobs on a
    /// caller-supplied base — the per-`File` hints, which may differ
    /// across reopens of the same shared file.
    pub fn plan_with(&mut self, op: u64, base: &Hints) -> Hints {
        self.ops_seen = self.ops_seen.max(op + 1);
        while self.next_decision <= op {
            let agg = self.pending.remove(&(self.next_decision - 1));
            let decision_op = self.next_decision;
            self.next_decision += 1;
            self.ingest(decision_op, agg);
        }
        if self.report.ops.len() as u64 == op {
            self.report.ops.push(TuneOp {
                op,
                knobs: self.knobs.summary(),
                wall_ns: 0,
            });
        }
        self.knobs.apply_to(base)
    }

    /// One rank's outcome for op `op`.
    pub fn record(&mut self, op: u64, o: OpOutcome) {
        self.record_inner(op, &o, false);
    }

    /// One rank aborted op `op` (fault path): the whole op's
    /// measurements are poisoned and its decision becomes a discard.
    pub fn record_aborted(&mut self, op: u64) {
        self.record_inner(op, &OpOutcome::default(), true);
    }

    fn record_inner(&mut self, op: u64, o: &OpOutcome, aborted: bool) {
        if op + 1 < self.next_decision {
            // the decision consuming this op already ran (reads have no
            // closing barrier, so stragglers are expected): drop as stale
            self.report.stale_reports += 1;
            return;
        }
        self.pending.entry(op).or_default().merge(o, aborted);
        if let Some(row) = self.report.ops.get_mut(op as usize) {
            row.wall_ns = row.wall_ns.max(o.wall_ns);
        }
    }

    pub fn report_snapshot(&self) -> TuneReport {
        let mut r = self.report.clone();
        r.settled = self.settled;
        r.initial = self.initial.summary();
        r.current = self.knobs.summary();
        r
    }

    fn push_decision(
        &mut self,
        op: u64,
        action: &'static str,
        knob: String,
        signal: String,
        wall_ns: u64,
    ) {
        self.report.decisions.push(TuneDecision {
            op,
            action,
            knob,
            signal,
            wall_ns,
        });
    }

    fn note_quiet(&mut self, op: u64, wall_ns: u64) {
        self.quiet += 1;
        if self.quiet >= SETTLE_QUIET && !self.settled {
            self.settled = true;
            OBS_SETTLED.incr();
            trace::mark("tune.settle", op, 0);
            self.push_decision(
                op,
                "settle",
                self.knobs.summary(),
                format!("{SETTLE_QUIET} decisions without a move"),
                wall_ns,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn start_trial(
        &mut self,
        op: u64,
        action: &'static str,
        tag: &'static str,
        knob: Knob,
        dir: i8,
        desc: String,
        signal: String,
        next: Knobs,
        baseline_wall: f64,
        wall_ns: u64,
    ) {
        self.streak = 0;
        self.last_signal = None;
        self.quiet = 0;
        self.settled = false;
        OBS_DECISIONS.incr();
        trace::mark(tag, op, knob as u64);
        self.trial = Some(Trial {
            prev: self.knobs,
            baseline_wall,
            knob,
            dir,
            desc: desc.clone(),
        });
        self.knobs = next;
        self.push_decision(op, action, desc, signal, wall_ns);
    }

    /// Run the decision that applies from op `op` onward, fed by op
    /// `op − 1`'s aggregate (absent when nothing reported, e.g. obs off).
    fn ingest(&mut self, op: u64, agg: Option<Agg>) {
        let Some(agg) = agg else { return };
        if agg.aborted {
            self.report.discarded += 1;
            OBS_DISCARDED.incr();
            // an aborted op measures the fault, not the knobs: keep the
            // trial (judged by the next clean op) and move nothing
            self.push_decision(
                op,
                "discard",
                String::new(),
                "op aborted by fault".to_string(),
                agg.wall_max,
            );
            return;
        }
        let wall = agg.wall_max as f64;
        // Workload-shift re-tuning: every clean op's phase breakdown
        // feeds the health layer's dominant-phase detector. A sustained
        // shift after the tuner settled re-opens the search — including
        // moves blocked by a revert, since that regression was measured
        // on the old workload.
        if self.shift.observe(agg.exch, agg.io, agg.pack) && self.settled {
            self.settled = false;
            self.quiet = 0;
            self.streak = 0;
            self.last_signal = None;
            self.blocked.clear();
            trace::mark("tune.unsettle", op, 0);
            self.push_decision(
                op,
                "unsettle",
                self.knobs.summary(),
                format!(
                    "sustained phase-distribution shift ({} consecutive ops)",
                    lio_obs::health::ShiftDetector::PERSISTENCE
                ),
                agg.wall_max,
            );
        }
        if let Some(tr) = self.trial.take() {
            if tr.baseline_wall > 0.0 && wall > tr.baseline_wall * (1.0 + REVERT_TOL) {
                OBS_REVERTS.incr();
                trace::mark("tune.revert", op, tr.knob as u64);
                self.blocked.push((tr.knob, tr.dir));
                self.knobs = tr.prev;
                self.baseline_wall = Some(tr.baseline_wall);
                self.quiet = 0;
                self.push_decision(
                    op,
                    "revert",
                    tr.desc,
                    format!(
                        "wall {} ns > {:.0}% over pre-move baseline {:.0} ns",
                        agg.wall_max,
                        REVERT_TOL * 100.0,
                        tr.baseline_wall
                    ),
                    agg.wall_max,
                );
            } else {
                self.baseline_wall = Some(wall);
                if tr.knob == Knob::Pipeline {
                    // two-way hysteresis for boolean toggles: a committed,
                    // measurement-confirmed flip is never exactly undone,
                    // else the phase-dominance signal re-litigates it
                    // forever (scalar knobs may still step back)
                    self.blocked.push((tr.knob, -tr.dir));
                }
                self.push_decision(
                    op,
                    "commit",
                    tr.desc,
                    format!("wall {} ns held within tolerance", agg.wall_max),
                    agg.wall_max,
                );
            }
            return;
        }
        if !self.cold_started {
            self.cold_started = true;
            self.baseline_wall = Some(wall);
            if profile::enabled() {
                let p = profile::snapshot();
                if p.has_collective() {
                    let recs = profile::advise(&p);
                    let mut k = Knobs::from_hints(&apply_settings(self.base, &recs));
                    if let Some(v) = self.frozen_pipeline {
                        k.pipelined = v;
                    }
                    if let Some(v) = self.frozen_pack {
                        k.pack_threads = v;
                    }
                    if k != self.knobs {
                        let desc = format!("{} -> {}", self.knobs.summary(), k.summary());
                        self.start_trial(
                            op,
                            "cold_start",
                            "tune.cold_start",
                            Knob::ColdStart,
                            0,
                            desc,
                            format!(
                                "advisor rule table on live profile ({} recommendations)",
                                recs.len()
                            ),
                            k,
                            wall,
                            agg.wall_max,
                        );
                    }
                }
            }
            return;
        }
        let b = self.baseline_wall.get_or_insert(wall);
        *b = 0.5 * *b + 0.5 * wall;
        let baseline = *b;
        let sig = self.classify(&agg);
        self.streak = if self.last_signal == Some(sig) {
            self.streak + 1
        } else {
            1
        };
        self.last_signal = Some(sig);
        if sig == SignalKind::Balanced || self.streak < K_CONSISTENT {
            self.note_quiet(op, agg.wall_max);
            return;
        }
        match self.propose(sig, &agg) {
            Some((knob, dir, desc, next)) => {
                let signal = sig.describe(&agg);
                self.start_trial(
                    op,
                    "move",
                    "tune.move",
                    knob,
                    dir,
                    desc,
                    signal,
                    next,
                    baseline,
                    agg.wall_max,
                );
            }
            None => self.note_quiet(op, agg.wall_max),
        }
    }

    fn classify(&self, agg: &Agg) -> SignalKind {
        // A health-flagged straggler outranks every aggregate signal: the
        // op is gated on one laggard rank, so phase totals mislead. Off
        // (the default) this is one relaxed load, and the existing
        // decision sequences are untouched.
        if lio_obs::health::enabled() {
            if let Some(s) = lio_obs::health::straggler() {
                return SignalKind::SlowRank { rank: s.rank };
            }
        }
        if agg.span > 0 {
            let target = profile::cb_target(agg.span);
            let cur = self.knobs.cb as u64;
            if cur > target.saturating_mul(4) {
                return SignalKind::CbMismatch { up: false };
            }
            if cur.saturating_mul(4) < target {
                return SignalKind::CbMismatch { up: true };
            }
        }
        let total = agg.exch + agg.io + agg.pack;
        if total == 0 {
            return SignalKind::Balanced;
        }
        let frac = |v: u64| v as f64 / total as f64;
        // under-lap beats phase dominance: an io-bound pipelined op whose
        // windows never overlap should shed the pipeline, not deepen it
        if self.knobs.pipelined && frac(agg.overlap) < 0.125 {
            return SignalKind::Underlap;
        }
        if frac(agg.io) >= 0.5 {
            SignalKind::IoBound
        } else if frac(agg.exch) >= 0.5 {
            SignalKind::ExchangeBound
        } else if frac(agg.pack) >= 0.5 {
            SignalKind::PackBound
        } else {
            SignalKind::Balanced
        }
    }

    fn propose(&self, sig: SignalKind, _agg: &Agg) -> Option<(Knob, i8, String, Knobs)> {
        let k = self.knobs;
        let open = |knob: Knob, dir: i8| !self.blocked.contains(&(knob, dir));
        match sig {
            SignalKind::Balanced => None,
            SignalKind::CbMismatch { up } => {
                let dir = if up { 1 } else { -1 };
                if !open(Knob::Cb, dir) {
                    return None;
                }
                let next = if up {
                    k.cb.saturating_mul(2).min(CB_MAX)
                } else {
                    (k.cb / 2).max(CB_MIN)
                };
                (next != k.cb).then(|| {
                    (
                        Knob::Cb,
                        dir,
                        format!("cb_buffer_size {} -> {}", k.cb, next),
                        Knobs { cb: next, ..k },
                    )
                })
            }
            SignalKind::IoBound => {
                if !k.pipelined && self.frozen_pipeline.is_none() && open(Knob::Pipeline, 1) {
                    Some((
                        Knob::Pipeline,
                        1,
                        "two_phase_pipeline off -> on".to_string(),
                        Knobs {
                            pipelined: true,
                            ..k
                        },
                    ))
                } else if k.pipelined && k.depth < DEPTH_MAX_IO && open(Knob::Depth, 1) {
                    Some((
                        Knob::Depth,
                        1,
                        format!("pipeline_depth {} -> {}", k.depth, k.depth * 2),
                        Knobs {
                            depth: (k.depth * 2).min(DEPTH_MAX_IO),
                            ..k
                        },
                    ))
                } else {
                    None
                }
            }
            SignalKind::ExchangeBound => {
                if k.engine == Engine::ListBased && open(Knob::Engine, 1) {
                    Some((
                        Knob::Engine,
                        1,
                        "engine list_based -> listless".to_string(),
                        Knobs {
                            engine: Engine::Listless,
                            ..k
                        },
                    ))
                } else if !k.pipelined && self.frozen_pipeline.is_none() && open(Knob::Pipeline, 1)
                {
                    Some((
                        Knob::Pipeline,
                        1,
                        "two_phase_pipeline off -> on".to_string(),
                        Knobs {
                            pipelined: true,
                            ..k
                        },
                    ))
                } else if k.pipelined && k.depth < DEPTH_MAX_EXCH && open(Knob::Depth, 1) {
                    Some((
                        Knob::Depth,
                        1,
                        format!("pipeline_depth {} -> {}", k.depth, k.depth * 2),
                        Knobs {
                            depth: (k.depth * 2).min(DEPTH_MAX_EXCH),
                            ..k
                        },
                    ))
                } else {
                    None
                }
            }
            SignalKind::Underlap => {
                if k.pipelined && self.frozen_pipeline.is_none() && open(Knob::Pipeline, -1) {
                    Some((
                        Knob::Pipeline,
                        -1,
                        "two_phase_pipeline on -> off".to_string(),
                        Knobs {
                            pipelined: false,
                            ..k
                        },
                    ))
                } else {
                    None
                }
            }
            SignalKind::SlowRank { .. } => {
                // A laggard stalls every window the punctual ranks have
                // already delivered: pipelining (then depth) overlaps its
                // lateness with storage work instead of serializing on it.
                if !k.pipelined && self.frozen_pipeline.is_none() && open(Knob::Pipeline, 1) {
                    Some((
                        Knob::Pipeline,
                        1,
                        "two_phase_pipeline off -> on".to_string(),
                        Knobs {
                            pipelined: true,
                            ..k
                        },
                    ))
                } else if k.pipelined && k.depth < DEPTH_MAX_EXCH && open(Knob::Depth, 1) {
                    Some((
                        Knob::Depth,
                        1,
                        format!("pipeline_depth {} -> {}", k.depth, k.depth * 2),
                        Knobs {
                            depth: (k.depth * 2).min(DEPTH_MAX_EXCH),
                            ..k
                        },
                    ))
                } else {
                    None
                }
            }
            SignalKind::PackBound => {
                // pack_threads 0 is already "auto" (engine-sized pool)
                if self.frozen_pack.is_none()
                    && k.pack_threads >= 1
                    && k.pack_threads < PACK_MAX
                    && open(Knob::Pack, 1)
                {
                    let next = (k.pack_threads * 2).min(PACK_MAX);
                    Some((
                        Knob::Pack,
                        1,
                        format!("pack_threads {} -> {}", k.pack_threads, next),
                        Knobs {
                            pack_threads: next,
                            ..k
                        },
                    ))
                } else {
                    None
                }
            }
        }
    }
}

/// Standalone driver around [`TunerState`] for tests and offline replay:
/// the same decision path the in-file tuner runs, minus the cross-rank
/// memoization plumbing.
#[derive(Debug)]
pub struct Tuner {
    st: TunerState,
}

impl Tuner {
    pub fn new(base: &Hints) -> Tuner {
        Tuner {
            st: TunerState::new(base),
        }
    }

    /// Effective hints for op `op` (runs pending decisions).
    pub fn plan_hints(&mut self, op: u64) -> Hints {
        self.st.plan(op)
    }

    /// Report one rank's outcome for op `op`.
    pub fn record(&mut self, op: u64, o: OpOutcome) {
        self.st.record(op, o);
    }

    /// Report one rank's abort for op `op`.
    pub fn record_aborted(&mut self, op: u64) {
        self.st.record_aborted(op);
    }

    pub fn report(&self) -> TuneReport {
        self.st.report_snapshot()
    }
}

/// The slot a [`crate::SharedFile`] carries: lazily initialized by the
/// first armed open.
pub(crate) type SharedTuner = Arc<Mutex<Option<TunerState>>>;

/// Per-`File` (per-rank) handle to the shared tuner. Tracks this rank's
/// op index locally — ranks issue the same collective sequence, so the
/// indices agree by construction; the shared state memoizes the decision
/// for each index.
pub(crate) struct FileTuner {
    shared: SharedTuner,
    /// Global op index this file's op 0 maps to (reopens resume where
    /// the previous session of the file left off).
    base_op: u64,
    issued: Cell<u64>,
    cur_op: Cell<u64>,
}

impl FileTuner {
    pub(crate) fn arm(slot: &SharedTuner, hints: &Hints) -> FileTuner {
        let mut g = slot.lock().unwrap();
        let st = g.get_or_insert_with(|| TunerState::new(hints));
        FileTuner {
            base_op: st.ops_seen,
            shared: Arc::clone(slot),
            issued: Cell::new(0),
            cur_op: Cell::new(0),
        }
    }

    /// Effective hints for the collective op about to start, overlaying
    /// the tuned knobs on this file's own hints.
    pub(crate) fn plan(&self, base: &Hints) -> Hints {
        let op = self.base_op + self.issued.get();
        self.issued.set(self.issued.get() + 1);
        self.cur_op.set(op);
        self.shared
            .lock()
            .unwrap()
            .as_mut()
            .expect("armed tuner state")
            .plan_with(op, base)
    }

    /// Report the op planned last by this rank.
    pub(crate) fn finish_op(&self, o: OpOutcome) {
        self.shared
            .lock()
            .unwrap()
            .as_mut()
            .expect("armed tuner state")
            .record(self.cur_op.get(), o);
    }

    /// Report that the op planned last by this rank aborted.
    pub(crate) fn abort_op(&self) {
        self.shared
            .lock()
            .unwrap()
            .as_mut()
            .expect("armed tuner state")
            .record_aborted(self.cur_op.get());
    }
}

/// Apply advisor [`Recommendation`]s to `base`, translating the
/// advisor's setting strings through [`Hints::apply_info`]. This is the
/// single code path turning `profile::RULES` output into knobs — the
/// tuner's cold start and any caller acting on `repro profile` advice
/// share it, so thresholds are never duplicated. Settings `apply_info`
/// does not recognize map first (`sieving=…` → `romio_ds_write=…`);
/// unparseable settings are skipped.
pub fn apply_settings(base: Hints, recs: &[Recommendation]) -> Hints {
    let mut hints = base;
    for r in recs {
        for part in r.setting.split(',') {
            let part = part.trim();
            let Some((k, v)) = part.split_once('=') else {
                continue;
            };
            let (k, v) = match (k, v) {
                ("sieving", "sieve") => ("romio_ds_write", "enable"),
                ("sieving", "direct") => ("romio_ds_write", "disable"),
                ("sieving", v) => ("romio_ds_write", v),
                other => other,
            };
            if let Ok(h) = hints.apply_info([(k, v)]) {
                hints = h;
            }
        }
    }
    hints
}

/// The advisor-derived cold-start knobs for a given profile — exposed so
/// the regression test can pin tuner cold start == advisor output on the
/// canned fig5/fig6 profiles.
pub fn cold_start_knobs(base: &Hints, p: &profile::ProfileSnapshot) -> Knobs {
    Knobs::from_hints(&apply_settings(*base, &profile::advise(p)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// These tests pin exact decision sequences from default hints; an
    /// explicit env override (ci's `LIO_PIPELINE=1` corpus runs, etc.)
    /// legitimately freezes or flips knobs, so skip under one.
    fn env_pinned() -> bool {
        [
            "LIO_PIPELINE",
            "LIO_PACK_THREADS",
            "LIO_PROFILE",
            "LIO_AUTOTUNE",
        ]
        .iter()
        .any(|v| std::env::var(v).is_ok())
    }

    fn io_bound(span: u64) -> OpOutcome {
        OpOutcome {
            write: true,
            wall_ns: 1_000_000,
            exchange_ns: 150_000,
            io_ns: 800_000,
            pack_ns: 50_000,
            overlap_ns: 0,
            bytes: span / 4,
            span,
        }
    }

    /// span chosen so cb_target(span) == default cb: no geometry signal.
    const SPAN: u64 = 16 << 20;

    #[test]
    fn knob_moves_need_consistent_signals() {
        if env_pinned() {
            return;
        }
        let mut t = Tuner::new(&Hints::default());
        let h0 = t.plan_hints(0);
        assert!(!h0.two_phase_pipeline);
        t.record(0, io_bound(SPAN));
        // op 1's decision sees one io-bound op: cold start (profile off
        // here) establishes the baseline, no move yet
        let h1 = t.plan_hints(1);
        assert!(!h1.two_phase_pipeline);
        t.record(1, io_bound(SPAN));
        // one consistent signal — still below K_CONSISTENT
        let h2 = t.plan_hints(2);
        assert!(!h2.two_phase_pipeline);
        t.record(2, io_bound(SPAN));
        // second consistent signal: the move fires
        let h3 = t.plan_hints(3);
        assert!(h3.two_phase_pipeline, "{:?}", t.report().decisions);
        assert_eq!(t.report().decisions.last().unwrap().action, "move");
    }

    #[test]
    fn regressing_trial_reverts_and_blocks() {
        if env_pinned() {
            return;
        }
        let mut t = Tuner::new(&Hints::default());
        for op in 0..3 {
            t.plan_hints(op);
            t.record(op, io_bound(SPAN));
        }
        let h = t.plan_hints(3);
        assert!(h.two_phase_pipeline);
        // the trial op regresses 3x: revert
        t.record(
            3,
            OpOutcome {
                wall_ns: 3_000_000,
                ..io_bound(SPAN)
            },
        );
        let h = t.plan_hints(4);
        assert!(!h.two_phase_pipeline);
        let r = t.report();
        assert_eq!(r.decisions.last().unwrap().action, "revert");
        // the blocked move never fires again despite io-bound signals
        for op in 4..12 {
            t.record(op, io_bound(SPAN));
            let h = t.plan_hints(op + 1);
            assert!(!h.two_phase_pipeline);
        }
        assert!(t.report().settled, "{:?}", t.report().decisions);
        assert_eq!(t.report().current, t.report().initial);
    }

    #[test]
    fn improving_trial_commits_then_escalates_depth() {
        if env_pinned() {
            return;
        }
        let mut t = Tuner::new(&Hints::default());
        for op in 0..3 {
            t.plan_hints(op);
            t.record(op, io_bound(SPAN));
        }
        let h = t.plan_hints(3);
        assert!(h.two_phase_pipeline);
        assert_eq!(h.pipeline_depth, 2);
        // trial improves and the windows genuinely overlap (20% of phase
        // time — above the under-lap floor): commit, then two more
        // io-bound ops escalate depth
        t.record(
            3,
            OpOutcome {
                wall_ns: 600_000,
                overlap_ns: 200_000,
                ..io_bound(SPAN)
            },
        );
        for op in 4..8 {
            t.plan_hints(op);
            t.record(
                op,
                OpOutcome {
                    wall_ns: 600_000,
                    overlap_ns: 200_000,
                    ..io_bound(SPAN)
                },
            );
        }
        let h = t.plan_hints(8);
        assert!(h.two_phase_pipeline);
        assert_eq!(h.pipeline_depth, 4, "{:?}", t.report().decisions);
    }

    #[test]
    fn underlap_sheds_the_pipeline() {
        if env_pinned() {
            return;
        }
        let mut t = Tuner::new(&Hints::default().pipelined(true).pipeline_depth(4));
        for op in 0..8 {
            let h = t.plan_hints(op);
            t.record(op, io_bound(SPAN)); // pipelined, overlap_ns == 0
            if !h.two_phase_pipeline {
                break;
            }
        }
        let h = t.plan_hints(8);
        assert!(
            !h.two_phase_pipeline,
            "zero overlap under pipelining must shed the pipeline: {:?}",
            t.report().decisions
        );
        assert!(t
            .report()
            .decisions
            .iter()
            .any(|d| d.signal.contains("under-lap")));
    }

    #[test]
    fn aborted_ops_are_discarded() {
        if env_pinned() {
            return;
        }
        let mut t = Tuner::new(&Hints::default());
        t.plan_hints(0);
        t.record_aborted(0);
        let h1 = t.plan_hints(1);
        assert_eq!(h1, Hints::default());
        let r = t.report();
        assert_eq!(r.discarded, 1);
        assert!(r.decisions.iter().all(|d| d.action != "move"));
    }

    #[test]
    fn stale_reports_are_dropped() {
        if env_pinned() {
            return;
        }
        let mut t = Tuner::new(&Hints::default());
        t.plan_hints(0);
        t.record(0, io_bound(SPAN));
        t.plan_hints(1);
        t.plan_hints(2);
        // op 0's decision already ran: a straggler report is stale
        t.record(0, io_bound(SPAN));
        assert_eq!(t.report().stale_reports, 1);
    }

    #[test]
    fn cb_mismatch_steps_toward_target() {
        if env_pinned() {
            return;
        }
        // span 512 KiB → target 128 KiB; default cb 4 MiB is > 4× target
        let span = 512 << 10;
        let mut t = Tuner::new(&Hints::default());
        let mut cb = Hints::default().cb_buffer_size;
        for op in 0..32 {
            let h = t.plan_hints(op);
            assert!(h.cb_buffer_size <= cb, "cb only shrinks");
            cb = h.cb_buffer_size;
            t.record(
                op,
                OpOutcome {
                    write: true,
                    wall_ns: 1_000_000,
                    exchange_ns: 400_000,
                    io_ns: 400_000,
                    pack_ns: 200_000,
                    overlap_ns: 0,
                    bytes: span / 4,
                    span,
                },
            );
        }
        // within 4× of target (128 KiB): 512 KiB
        assert_eq!(cb, 512 << 10, "{:?}", t.report().decisions);
        assert!(t.report().settled);
    }

    #[test]
    fn workload_shift_unsettles_and_reopens_blocked_moves() {
        if env_pinned() {
            return;
        }
        // Listless base so the exchange-bound proposal goes straight to
        // the (blocked) pipeline knob rather than the engine knob.
        let base = Hints::with_engine(Engine::Listless);
        let mut t = Tuner::new(&base);
        for op in 0..3 {
            t.plan_hints(op);
            t.record(op, io_bound(SPAN));
        }
        let h = t.plan_hints(3);
        assert!(h.two_phase_pipeline, "io-bound streak trials the pipeline");
        // the trial regresses: pipeline-on is reverted and blocked
        t.record(
            3,
            OpOutcome {
                wall_ns: 3_000_000,
                ..io_bound(SPAN)
            },
        );
        for op in 4..12 {
            let h = t.plan_hints(op);
            assert!(!h.two_phase_pipeline);
            t.record(op, io_bound(SPAN));
        }
        t.plan_hints(12);
        assert!(t.report().settled, "{:?}", t.report().decisions);
        // The workload durably shifts to exchange-bound: after
        // ShiftDetector::PERSISTENCE consecutive shifted ops the tuner
        // un-settles, clears the block, and re-trials the pipeline.
        let exch_bound = OpOutcome {
            exchange_ns: 800_000,
            io_ns: 150_000,
            ..io_bound(SPAN)
        };
        t.record(12, exch_bound);
        let mut pipelined = false;
        for op in 13..24 {
            let h = t.plan_hints(op);
            if h.two_phase_pipeline {
                pipelined = true;
                break;
            }
            t.record(op, exch_bound);
        }
        let r = t.report();
        assert!(
            r.decisions.iter().any(|d| d.action == "unsettle"),
            "{:?}",
            r.decisions
        );
        assert!(pipelined, "blocked move must reopen: {:?}", r.decisions);
    }

    #[test]
    fn apply_settings_maps_advisor_strings() {
        let recs = vec![
            Recommendation {
                rule: "pipelining",
                setting: "two_phase_pipeline=enable, pipeline_depth=4".to_string(),
                reason: String::new(),
            },
            Recommendation {
                rule: "cb_buffer_size",
                setting: "cb_buffer_size=1048576".to_string(),
                reason: String::new(),
            },
            Recommendation {
                rule: "sieving",
                setting: "sieving=direct".to_string(),
                reason: String::new(),
            },
        ];
        let h = apply_settings(Hints::default(), &recs);
        assert!(h.two_phase_pipeline);
        assert_eq!(h.pipeline_depth, 4);
        assert_eq!(h.cb_buffer_size, 1 << 20);
        assert_eq!(h.sieving, crate::SievingMode::Direct);
    }
}
