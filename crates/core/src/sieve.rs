//! Independent non-contiguous file access: data sieving and direct access.
//!
//! This is the independent path of both engines (paper Section 2.2 /
//! 3.2.3). The window loop, locking, and read-modify-write structure are
//! shared; everything datatype-related goes through the crate-internal
//! `ViewNav` and `MemPacker`, which is where the engines differ.

use lio_pfs::{RangeLock, StorageFile};

use crate::error::Result;
use crate::hints::{Hints, SievingMode};
use crate::packer::MemPacker;
use crate::view::ViewNav;

/// Read `storage[offset..]` into `buf`, zero-filling anything past EOF.
/// Short reads are resumed and transient errors retried with bounded
/// backoff ([`lio_pfs::retry`]), so the result is short only at EOF.
pub(crate) fn read_window(storage: &dyn StorageFile, offset: u64, buf: &mut [u8]) -> Result<()> {
    let n = lio_pfs::retry::read_full_at(storage, offset, buf)?;
    if n < buf.len() {
        buf[n..].fill(0);
    }
    Ok(())
}

/// Write all of `buf` at `offset`, resuming short writes and retrying
/// transient errors with bounded backoff.
pub(crate) fn write_window(storage: &dyn StorageFile, offset: u64, buf: &[u8]) -> Result<()> {
    lio_pfs::retry::write_full_at(storage, offset, buf)?;
    Ok(())
}

/// Independent write of `total` stream bytes starting at stream position
/// `stream_start`. Returns bytes written.
#[allow(clippy::too_many_arguments)]
pub(crate) fn write_independent(
    storage: &dyn StorageFile,
    lock: &RangeLock,
    nav: &ViewNav,
    packer: &MemPacker,
    user: &[u8],
    stream_start: u64,
    total: u64,
    hints: &Hints,
    whole_range_locked: bool,
) -> Result<u64> {
    if total == 0 {
        return Ok(0);
    }

    // c-c / nc-c: the file region is contiguous — one pack, one write.
    if nav.view().is_contiguous() {
        let abs = nav.stream_to_abs(stream_start);
        lio_obs::profile::record_run(total, 0, true);
        return write_contiguous_region(storage, packer, user, abs, total);
    }

    match resolve_mode(hints.sieving, nav, stream_start, total) {
        SievingMode::Direct => write_direct(storage, nav, packer, user, stream_start, total),
        _ => write_sieved(
            storage,
            lock,
            nav,
            packer,
            user,
            stream_start,
            total,
            hints,
            whole_range_locked,
        ),
    }
}

/// The sieving-vs-direct decision of the paper's outlook: data sieving
/// amortizes per-access latency but reads/writes gap bytes and pays a
/// read-modify-write for writes; per-block access touches exactly the
/// data but costs one storage call per block.
///
/// Heuristic: take the view's *density* over the accessed extent
/// (`data bytes / extent bytes`) and its mean block length. Dense views
/// (≥ ½) always sieve — the window is mostly useful. Sparse views with
/// large blocks (≥ 8 KiB mean) go direct — per-access cost is amortized
/// by the block itself and sieving would move mostly gaps.
pub fn choose_mode(density: f64, mean_block: f64) -> SievingMode {
    if density >= 0.5 || mean_block < 8192.0 {
        SievingMode::Sieve
    } else {
        SievingMode::Direct
    }
}

/// Resolve `Auto` against the actual access; pass through explicit modes.
fn resolve_mode(mode: SievingMode, nav: &ViewNav, stream_start: u64, total: u64) -> SievingMode {
    if mode != SievingMode::Auto {
        return mode;
    }
    let lo = nav.stream_to_abs(stream_start);
    let hi = nav.stream_to_abs(stream_start + total - 1) + 1;
    let density = total as f64 / (hi - lo).max(1) as f64;
    // estimate the mean block length from the filetype
    let ft = &nav.view().filetype;
    let mean_block = ft.size() as f64 / ft.leaf_runs().max(1) as f64;
    choose_mode(density, mean_block)
}

/// Contiguous-file write path (the `c-c`/`nc-c` cases of Figure 1):
/// pack (if needed) and write in large chunks.
fn write_contiguous_region(
    storage: &dyn StorageFile,
    packer: &MemPacker,
    user: &[u8],
    abs: u64,
    total: u64,
) -> Result<u64> {
    if let Some(slice) = packer.contig_slice(user, 0, total) {
        // c-c: a single zero-copy write
        write_window(storage, abs, slice)?;
        return Ok(total);
    }
    // nc-c: pack through an intermediate buffer
    const CHUNK: usize = 4 << 20;
    let mut packbuf = vec![0u8; CHUNK.min(total as usize)];
    let mut done = 0u64;
    while done < total {
        let n = ((total - done) as usize).min(packbuf.len());
        let got = packer.pack(user, done, &mut packbuf[..n]);
        debug_assert_eq!(got, n);
        write_window(storage, abs + done, &packbuf[..n])?;
        done += n as u64;
    }
    Ok(total)
}

/// Direct mode: one file access per contiguous block of the view.
fn write_direct(
    storage: &dyn StorageFile,
    nav: &ViewNav,
    packer: &MemPacker,
    user: &[u8],
    stream_start: u64,
    total: u64,
) -> Result<u64> {
    let mut done = 0u64;
    let mut chunk = Vec::new();
    // Iterate runs window-lessly: ask the nav for runs, write each.
    // We reuse place_into_window machinery by treating each run as its own
    // window via stream arithmetic.
    let mut stream = stream_start;
    let mut prev_end = u64::MAX;
    while done < total {
        let abs = nav.stream_to_abs(stream);
        // the run containing `stream` extends to the next gap; bound it by
        // probing how many view bytes the next file bytes hold
        let remaining = total - done;
        // find the run length: view bytes in [abs, abs+X) grow linearly
        // until the gap; we simply extract up to `remaining` bytes but cap
        // at the run boundary by asking for the contiguous span
        let run_len = contiguous_span(nav, abs, remaining);
        if lio_obs::profile::enabled() {
            let gap = if prev_end == u64::MAX {
                0
            } else {
                abs - prev_end
            };
            lio_obs::profile::record_run(run_len, gap, abs == prev_end);
            prev_end = abs + run_len;
        }
        chunk.resize(run_len as usize, 0);
        let got = packer.pack(user, done, &mut chunk);
        debug_assert_eq!(got as u64, run_len);
        write_window(storage, abs, &chunk)?;
        done += run_len;
        stream += run_len;
    }
    Ok(total)
}

/// Length of the contiguous view run starting at the data byte at `abs`,
/// capped at `cap`. Uses doubling + navigation probes, so the cost stays
/// `O(depth · log cap)` for the listless nav.
fn contiguous_span(nav: &ViewNav, abs: u64, cap: u64) -> u64 {
    // `abs` is the position of a data byte. The run continues while
    // bytes_in(abs, abs+k) == k.
    let mut lo = 1u64; // at least one byte (abs is a data byte)
    let mut hi = cap;
    if hi <= lo {
        return cap.max(1).min(cap);
    }
    if nav.bytes_in(abs, abs + hi) == hi {
        return hi;
    }
    // binary search the largest k with bytes_in == k
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if nav.bytes_in(abs, abs + mid) == mid {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Data sieving write: lock, read, merge, write back, per window.
#[allow(clippy::too_many_arguments)]
fn write_sieved(
    storage: &dyn StorageFile,
    lock: &RangeLock,
    nav: &ViewNav,
    packer: &MemPacker,
    user: &[u8],
    stream_start: u64,
    total: u64,
    hints: &Hints,
    whole_range_locked: bool,
) -> Result<u64> {
    let end_abs = nav.stream_to_abs(stream_start + total - 1) + 1;
    let bufsize = hints.ind_buffer_size as u64;
    let mut filebuf = vec![0u8; hints.ind_buffer_size];
    let mut packbuf = vec![0u8; hints.ind_buffer_size];

    let mut stream = stream_start;
    let mut done = 0u64;
    while done < total {
        let win_start = nav.stream_to_abs(stream);
        let win_len = bufsize.min(end_abs - win_start);
        let fb = &mut filebuf[..win_len as usize];
        // view bytes inside the window, capped to what we still have
        let n = nav
            .bytes_in(win_start, win_start + win_len)
            .min(total - done);
        debug_assert!(n > 0, "window starts at a data byte");
        let nb = n as usize;
        let got = packer.pack(user, done, &mut packbuf[..nb]);
        debug_assert_eq!(got, nb);

        // in atomic mode the caller already holds the whole access range;
        // taking the window lock again would self-deadlock
        let _guard = (!whole_range_locked).then(|| lock.lock(win_start..win_start + win_len));
        // skip the pre-read when the window is fully covered by our data
        let dense = n == win_len;
        if !dense {
            read_window(storage, win_start, fb)?;
        }
        let placed = nav.place_into_window(&packbuf[..nb], stream, fb, win_start);
        debug_assert_eq!(placed, nb);
        write_window(storage, win_start, fb)?;
        drop(_guard);

        stream += n;
        done += n;
    }
    Ok(total)
}

/// Independent read of `total` stream bytes starting at stream position
/// `stream_start`. Returns bytes read (holes/EOF read as zeros).
pub(crate) fn read_independent(
    storage: &dyn StorageFile,
    nav: &ViewNav,
    packer: &MemPacker,
    user: &mut [u8],
    stream_start: u64,
    total: u64,
    hints: &Hints,
) -> Result<u64> {
    if total == 0 {
        return Ok(0);
    }

    if nav.view().is_contiguous() {
        let abs = nav.stream_to_abs(stream_start);
        lio_obs::profile::record_run(total, 0, true);
        const CHUNK: usize = 4 << 20;
        let mut buf = vec![0u8; CHUNK.min(total as usize)];
        let mut done = 0u64;
        while done < total {
            let n = ((total - done) as usize).min(buf.len());
            read_window(storage, abs + done, &mut buf[..n])?;
            let put = packer.unpack(&buf[..n], user, done);
            debug_assert_eq!(put, n);
            done += n as u64;
        }
        return Ok(total);
    }

    match resolve_mode(hints.sieving, nav, stream_start, total) {
        SievingMode::Direct => {
            let mut stream = stream_start;
            let mut done = 0u64;
            let mut chunk = Vec::new();
            let mut prev_end = u64::MAX;
            while done < total {
                let abs = nav.stream_to_abs(stream);
                let run_len = contiguous_span(nav, abs, total - done);
                if lio_obs::profile::enabled() {
                    let gap = if prev_end == u64::MAX {
                        0
                    } else {
                        abs - prev_end
                    };
                    lio_obs::profile::record_run(run_len, gap, abs == prev_end);
                    prev_end = abs + run_len;
                }
                chunk.resize(run_len as usize, 0);
                read_window(storage, abs, &mut chunk)?;
                let put = packer.unpack(&chunk, user, done);
                debug_assert_eq!(put as u64, run_len);
                done += run_len;
                stream += run_len;
            }
            Ok(total)
        }
        _ => {
            let end_abs = nav.stream_to_abs(stream_start + total - 1) + 1;
            let bufsize = hints.ind_buffer_size as u64;
            let mut filebuf = vec![0u8; hints.ind_buffer_size];
            let mut packbuf = vec![0u8; hints.ind_buffer_size];
            let mut stream = stream_start;
            let mut done = 0u64;
            while done < total {
                let win_start = nav.stream_to_abs(stream);
                let win_len = bufsize.min(end_abs - win_start);
                let fb = &mut filebuf[..win_len as usize];
                read_window(storage, win_start, fb)?;
                let n = nav
                    .bytes_in(win_start, win_start + win_len)
                    .min(total - done);
                debug_assert!(n > 0);
                let got =
                    nav.extract_from_window(fb, win_start, stream, &mut packbuf[..n as usize]);
                debug_assert_eq!(got as u64, n);
                let put = packer.unpack(&packbuf[..n as usize], user, done);
                debug_assert_eq!(put as u64, n);
                stream += n;
                done += n;
            }
            Ok(total)
        }
    }
}
