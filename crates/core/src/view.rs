//! Fileviews and the two navigation/copy engines that interpret them.
//!
//! A [`FileView`] is the MPI-IO triple `(disp, etype, filetype)`: the
//! filetype tiles the file from byte `disp` onwards, and the bytes covered
//! by its data form the view's *stream* — the sequence of data bytes a
//! process reads or writes. Offsets passed to the access routines are in
//! etype units and may land anywhere inside the filetype, which is why
//! navigation (stream position ↔ absolute file offset) is needed at all.
//!
//! The crate-internal `ViewNav` encapsulates the part the paper is
//! about: *how* that navigation and the associated copying is done.
//!
//! * `ListNav` — the list-based baseline: an explicitly flattened
//!   ol-list, searched **linearly from the start** on every navigation
//!   (the `O(Nblock/2)`-per-access cost of Section 2.2).
//! * `FfNav` — listless: flattening-on-the-fly navigation in
//!   `O(depth · log k)` and lazily-seeked run iteration (Section 3).

use std::sync::Arc;

use lio_datatype::typemap::Run;
use lio_datatype::{
    bytes_below_tiled, ff_offset, strided_pack, strided_unpack, Datatype, FlatIter, OlList,
    StridedSpec,
};

use crate::error::{IoError, Result};

/// An MPI-IO fileview: displacement, elementary type, filetype.
#[derive(Debug, Clone)]
pub struct FileView {
    /// Absolute byte displacement where the tiled filetype begins
    /// (skips headers etc.).
    pub disp: u64,
    /// The elementary type; access offsets count in units of its size.
    pub etype: Datatype,
    /// The filetype tiling the file from `disp`.
    pub filetype: Datatype,
}

impl FileView {
    /// Validate and build a fileview. Enforces the MPI-IO restrictions:
    /// monotone non-negative filetype displacements, etype dividing the
    /// filetype size.
    pub fn new(disp: u64, etype: Datatype, filetype: Datatype) -> Result<FileView> {
        filetype.valid_as_filetype()?;
        if etype.size() == 0 {
            return Err(IoError::Usage("etype must have nonzero size".into()));
        }
        if filetype.size() == 0 {
            return Err(IoError::Usage("filetype must have nonzero size".into()));
        }
        if !filetype.size().is_multiple_of(etype.size()) {
            return Err(IoError::Usage(format!(
                "filetype size {} is not a multiple of etype size {}",
                filetype.size(),
                etype.size()
            )));
        }
        Ok(FileView {
            disp,
            etype,
            filetype,
        })
    }

    /// The default "flat" view: etype and filetype are bytes.
    pub fn bytes() -> FileView {
        FileView {
            disp: 0,
            etype: Datatype::byte(),
            filetype: Datatype::byte(),
        }
    }

    /// Whether the view exposes the file contiguously (no holes), so
    /// accesses can bypass sieving entirely.
    pub fn is_contiguous(&self) -> bool {
        self.filetype.size() == self.filetype.extent()
            && self.filetype.single_run() == Some(self.filetype.data_lb())
    }

    /// Convert an access offset in etype units to a stream byte position.
    #[inline]
    pub fn etype_offset_to_stream(&self, offset: u64) -> u64 {
        offset * self.etype.size()
    }
}

/// Engine-specific navigation over one rank's fileview.
pub(crate) enum ViewNav {
    List(ListNav),
    Ff(FfNav),
}

impl ViewNav {
    /// Absolute file offset of stream byte `stream`.
    pub fn stream_to_abs(&self, stream: u64) -> u64 {
        match self {
            ViewNav::List(n) => n.stream_to_abs(stream),
            ViewNav::Ff(n) => n.stream_to_abs(stream),
        }
    }

    /// Stream bytes with absolute offsets `< abs`.
    pub fn abs_to_stream(&self, abs: u64) -> u64 {
        match self {
            ViewNav::List(n) => n.abs_to_stream(abs),
            ViewNav::Ff(n) => n.abs_to_stream(abs),
        }
    }

    /// Stream bytes with absolute offsets in `[lo, hi)`.
    pub fn bytes_in(&self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return 0;
        }
        self.abs_to_stream(hi) - self.abs_to_stream(lo)
    }

    /// Copy stream-ordered `data` (starting at stream position `stream0`)
    /// into the window `filebuf` that mirrors file bytes
    /// `[win_start, win_start + filebuf.len())`. Returns bytes placed
    /// (stops at window end or data end).
    pub fn place_into_window(
        &self,
        data: &[u8],
        stream0: u64,
        filebuf: &mut [u8],
        win_start: u64,
    ) -> usize {
        match self {
            ViewNav::List(n) => {
                let runs = n.runs_from(stream0);
                place_runs(runs, data, filebuf, win_start)
            }
            ViewNav::Ff(n) => n.place_window(data, stream0, filebuf, win_start),
        }
    }

    /// Copy this view's bytes out of the window `filebuf` (mirroring
    /// `[win_start, win_start + filebuf.len())`) into `out`, starting at
    /// stream position `stream0`. Returns bytes extracted (stops at
    /// window end or `out` end).
    pub fn extract_from_window(
        &self,
        filebuf: &[u8],
        win_start: u64,
        stream0: u64,
        out: &mut [u8],
    ) -> usize {
        match self {
            ViewNav::List(n) => {
                let runs = n.runs_from(stream0);
                extract_runs(runs, filebuf, win_start, out)
            }
            ViewNav::Ff(n) => n.extract_window(filebuf, win_start, stream0, out),
        }
    }

    /// The underlying view.
    pub fn view(&self) -> &FileView {
        match self {
            ViewNav::List(n) => &n.view,
            ViewNav::Ff(n) => &n.view,
        }
    }
}

/// Shared placement loop: copy `data` into the window along `runs`
/// (absolute, monotone, starting at or after `win_start`).
pub(crate) fn place_runs(
    runs: impl Iterator<Item = Run>,
    data: &[u8],
    filebuf: &mut [u8],
    win_start: u64,
) -> usize {
    let win_end = win_start + filebuf.len() as u64;
    let mut consumed = 0usize;
    let profiling = lio_obs::profile::enabled();
    let mut prev_end = u64::MAX;
    for run in runs {
        if consumed >= data.len() {
            break;
        }
        let abs = run.disp as u64;
        if abs >= win_end {
            break;
        }
        debug_assert!(abs >= win_start, "run starts before the window");
        let take = (run.len as usize)
            .min(data.len() - consumed)
            .min((win_end - abs) as usize);
        let o = (abs - win_start) as usize;
        filebuf[o..o + take].copy_from_slice(&data[consumed..consumed + take]);
        consumed += take;
        if profiling {
            let gap = if prev_end == u64::MAX {
                0
            } else {
                abs - prev_end
            };
            lio_obs::profile::record_run(take as u64, gap, abs == prev_end);
            prev_end = abs + take as u64;
        }
        if take < run.len as usize {
            break; // window or data exhausted mid-run
        }
    }
    consumed
}

/// Shared extraction loop: copy window bytes into `out` along `runs`.
pub(crate) fn extract_runs(
    runs: impl Iterator<Item = Run>,
    filebuf: &[u8],
    win_start: u64,
    out: &mut [u8],
) -> usize {
    let win_end = win_start + filebuf.len() as u64;
    let mut produced = 0usize;
    let profiling = lio_obs::profile::enabled();
    let mut prev_end = u64::MAX;
    for run in runs {
        if produced >= out.len() {
            break;
        }
        let abs = run.disp as u64;
        if abs >= win_end {
            break;
        }
        debug_assert!(abs >= win_start, "run starts before the window");
        let take = (run.len as usize)
            .min(out.len() - produced)
            .min((win_end - abs) as usize);
        let o = (abs - win_start) as usize;
        out[produced..produced + take].copy_from_slice(&filebuf[o..o + take]);
        produced += take;
        if profiling {
            let gap = if prev_end == u64::MAX {
                0
            } else {
                abs - prev_end
            };
            lio_obs::profile::record_run(take as u64, gap, abs == prev_end);
            prev_end = abs + take as u64;
        }
        if take < run.len as usize {
            break;
        }
    }
    produced
}

// ---------------------------------------------------------------------
// List-based navigation
// ---------------------------------------------------------------------

/// List-based navigator: explicit ol-list, linear traversal per access.
pub(crate) struct ListNav {
    pub view: FileView,
    /// Flattened single filetype instance (offsets relative to `disp`).
    /// Created once when the view is established, as ROMIO does.
    pub list: Arc<OlList>,
}

impl ListNav {
    pub fn new(view: FileView) -> ListNav {
        // the paper's "explicit flattening" — O(Nblock) time and memory
        let list = Arc::new(OlList::flatten(&view.filetype, 1));
        ListNav { view, list }
    }

    fn fsize(&self) -> u64 {
        self.view.filetype.size()
    }

    fn fext(&self) -> u64 {
        self.view.filetype.extent()
    }

    pub fn stream_to_abs(&self, stream: u64) -> u64 {
        let inst = stream / self.fsize();
        let within = stream % self.fsize();
        // deliberate linear traversal from the start of the list — the
        // list-based navigation cost of paper Section 2.2
        let rel = self.list.offset_of(within).expect("within < filetype size");
        self.view.disp + inst * self.fext() + rel as u64
    }

    pub fn abs_to_stream(&self, abs: u64) -> u64 {
        if abs <= self.view.disp {
            return 0;
        }
        let rel = abs - self.view.disp;
        let inst = rel / self.fext();
        let within = rel % self.fext();
        // linear scan for the partial instance
        inst * self.fsize() + self.list.size_in_window(0, within as i64)
    }

    /// Iterator over absolute-offset runs from stream position `stream0`.
    /// Construction performs the linear locate.
    pub fn runs_from(&self, stream0: u64) -> ListRuns<'_> {
        let fsize = self.fsize();
        let inst = stream0 / fsize;
        let within = stream0 % fsize;
        // linear locate (the measured overhead)
        let pos = self.list.locate(within);
        let (seg, offset_in_seg) = match pos {
            Some(p) => (p.seg, p.within),
            None => (self.list.segs.len(), 0), // within == 0 of empty? fsize>0 so only when within rounds to len
        };
        ListRuns {
            nav: self,
            inst,
            seg,
            offset_in_seg,
        }
    }
}

/// Absolute-run iterator over a tiled ol-list.
pub(crate) struct ListRuns<'a> {
    nav: &'a ListNav,
    inst: u64,
    seg: usize,
    offset_in_seg: u64,
}

impl Iterator for ListRuns<'_> {
    type Item = Run;

    fn next(&mut self) -> Option<Run> {
        let list = &self.nav.list;
        if self.seg >= list.segs.len() {
            // wrap to the next filetype instance
            self.inst += 1;
            self.seg = 0;
            self.offset_in_seg = 0;
            if list.segs.is_empty() {
                return None;
            }
        }
        let s = list.segs[self.seg];
        let base = self.nav.view.disp + self.inst * self.nav.fext();
        let run = Run {
            disp: (base as i64) + s.offset + self.offset_in_seg as i64,
            len: s.len - self.offset_in_seg,
        };
        self.seg += 1;
        self.offset_in_seg = 0;
        Some(run)
    }
}

// ---------------------------------------------------------------------
// Listless (flattening-on-the-fly) navigation
// ---------------------------------------------------------------------

/// Listless navigator: no materialized representation beyond the
/// `O(1)`-size canonical strided form (when the filetype reduces to one).
pub(crate) struct FfNav {
    pub view: FileView,
    /// The flattening-on-the-fly copy batch descriptor, if applicable.
    strided: Option<StridedSpec>,
}

impl FfNav {
    pub fn new(view: FileView) -> FfNav {
        let strided = view.filetype.as_strided();
        FfNav { view, strided }
    }

    /// Place stream data into a window (strided fast path when possible).
    pub fn place_window(
        &self,
        data: &[u8],
        stream0: u64,
        filebuf: &mut [u8],
        win_start: u64,
    ) -> usize {
        if let Some(spec) = &self.strided {
            let buf_disp = win_start as i64 - self.view.disp as i64;
            let n = strided_unpack(
                &spec.clone(),
                self.view.filetype.extent(),
                filebuf,
                buf_disp,
                u64::MAX,
                stream0,
                data,
            );
            // the fast path never materializes runs, so account for the
            // regular pattern as a batch (a dense spec is one big run)
            if spec.stride.unsigned_abs() == spec.block {
                lio_obs::profile::record_run(n as u64, 0, true);
            } else {
                lio_obs::profile::record_strided(
                    spec.block,
                    spec.stride.unsigned_abs(),
                    (n as u64).div_ceil(spec.block.max(1)),
                );
            }
            return n;
        }
        let needed = stream0 + data.len() as u64;
        let runs = self.runs_from(stream0, needed);
        place_runs(runs, data, filebuf, win_start)
    }

    /// Extract window bytes into `out` (strided fast path when possible).
    pub fn extract_window(
        &self,
        filebuf: &[u8],
        win_start: u64,
        stream0: u64,
        out: &mut [u8],
    ) -> usize {
        if let Some(spec) = &self.strided {
            let buf_disp = win_start as i64 - self.view.disp as i64;
            let n = strided_pack(
                &spec.clone(),
                self.view.filetype.extent(),
                filebuf,
                buf_disp,
                u64::MAX,
                stream0,
                out,
            );
            if spec.stride.unsigned_abs() == spec.block {
                lio_obs::profile::record_run(n as u64, 0, true);
            } else {
                lio_obs::profile::record_strided(
                    spec.block,
                    spec.stride.unsigned_abs(),
                    (n as u64).div_ceil(spec.block.max(1)),
                );
            }
            return n;
        }
        let needed = stream0 + out.len() as u64;
        let runs = self.runs_from(stream0, needed);
        extract_runs(runs, filebuf, win_start, out)
    }

    pub fn stream_to_abs(&self, stream: u64) -> u64 {
        self.view.disp + ff_offset(&self.view.filetype, stream) as u64
    }

    pub fn abs_to_stream(&self, abs: u64) -> u64 {
        if abs <= self.view.disp {
            return 0;
        }
        bytes_below_tiled(&self.view.filetype, (abs - self.view.disp) as i64)
    }

    /// Iterator over absolute-offset runs from stream position `stream0`,
    /// valid until stream position `stream_hi`. Construction costs
    /// `O(depth)`.
    pub fn runs_from(&self, stream0: u64, stream_hi: u64) -> FfRuns<'_> {
        let fsize = self.view.filetype.size();
        let count = stream_hi / fsize + 2;
        FfRuns {
            disp: self.view.disp,
            iter: FlatIter::with_skip(&self.view.filetype, count, stream0),
        }
    }
}

/// Absolute-run iterator driven by flattening-on-the-fly.
pub(crate) struct FfRuns<'a> {
    disp: u64,
    iter: FlatIter<'a>,
}

impl Iterator for FfRuns<'_> {
    type Item = Run;

    fn next(&mut self) -> Option<Run> {
        self.iter.next_run().map(|r| Run {
            disp: r.disp + self.disp as i64,
            len: r.len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lio_datatype::Datatype;

    fn sample_view(disp: u64) -> FileView {
        // blocks of 8 bytes at 0, 16, 32 within a 40-byte extent
        let ft = Datatype::vector(3, 1, 2, &Datatype::double()).unwrap();
        FileView::new(disp, Datatype::double(), ft).unwrap()
    }

    fn both_navs(view: FileView) -> (ListNav, FfNav) {
        (ListNav::new(view.clone()), FfNav::new(view))
    }

    #[test]
    fn view_validation() {
        assert!(FileView::new(0, Datatype::double(), Datatype::double()).is_ok());
        // non-monotone filetype rejected
        let bad = Datatype::indexed(&[1, 1], &[4, 0], &Datatype::int()).unwrap();
        assert!(FileView::new(0, Datatype::int(), bad).is_err());
        // etype not dividing filetype size
        let ft = Datatype::contiguous(3, &Datatype::byte()).unwrap();
        assert!(FileView::new(0, Datatype::int(), ft).is_err());
    }

    #[test]
    fn contiguous_detection() {
        assert!(FileView::bytes().is_contiguous());
        let dense = FileView::new(
            8,
            Datatype::double(),
            Datatype::contiguous(4, &Datatype::double()).unwrap(),
        )
        .unwrap();
        assert!(dense.is_contiguous());
        assert!(!sample_view(0).is_contiguous());
    }

    #[test]
    fn navs_agree_on_stream_to_abs() {
        let (ln, fn_) = both_navs(sample_view(100));
        for stream in 0..96 {
            assert_eq!(
                ln.stream_to_abs(stream),
                fn_.stream_to_abs(stream),
                "stream {stream}"
            );
        }
    }

    #[test]
    fn navs_agree_on_abs_to_stream() {
        let (ln, fn_) = both_navs(sample_view(100));
        for abs in 0..300 {
            assert_eq!(ln.abs_to_stream(abs), fn_.abs_to_stream(abs), "abs {abs}");
        }
    }

    #[test]
    fn stream_to_abs_values() {
        let (ln, _) = both_navs(sample_view(100));
        assert_eq!(ln.stream_to_abs(0), 100);
        assert_eq!(ln.stream_to_abs(8), 116);
        assert_eq!(ln.stream_to_abs(16), 132);
        assert_eq!(ln.stream_to_abs(24), 140); // next instance
    }

    #[test]
    fn runs_iterators_agree() {
        let view = sample_view(64);
        let (ln, fn_) = both_navs(view);
        for stream0 in 0..48 {
            let a: Vec<Run> = ln.runs_from(stream0).take(8).collect();
            let b: Vec<Run> = fn_.runs_from(stream0, stream0 + 200).take(8).collect();
            assert_eq!(a, b, "stream0 {stream0}");
        }
    }

    #[test]
    fn place_and_extract_roundtrip() {
        let view = sample_view(0);
        let nav = ViewNav::Ff(FfNav::new(view));
        let data: Vec<u8> = (1..=24).collect();
        // window covering the whole first instance
        let mut filebuf = vec![0u8; 40];
        let placed = nav.place_into_window(&data, 0, &mut filebuf, 0);
        assert_eq!(placed, 24);
        assert_eq!(&filebuf[0..8], &data[0..8]);
        assert_eq!(&filebuf[16..24], &data[8..16]);
        assert_eq!(&filebuf[32..40], &data[16..24]);
        // gaps untouched
        assert_eq!(&filebuf[8..16], &[0; 8]);

        let mut out = vec![0u8; 24];
        let got = nav.extract_from_window(&filebuf, 0, 0, &mut out);
        assert_eq!(got, 24);
        assert_eq!(out, data);
    }

    #[test]
    fn place_clips_at_window_end() {
        let view = sample_view(0);
        for nav in [
            ViewNav::List(ListNav::new(view.clone())),
            ViewNav::Ff(FfNav::new(view.clone())),
        ] {
            let data: Vec<u8> = (1..=24).collect();
            // window covers only the first 20 bytes of the file
            let mut filebuf = vec![0u8; 20];
            let placed = nav.place_into_window(&data, 0, &mut filebuf, 0);
            assert_eq!(placed, 12); // block 0 (8) + half of block 1 (4)
            assert_eq!(&filebuf[0..8], &data[0..8]);
            assert_eq!(&filebuf[16..20], &data[8..12]);
            // continue in the next window
            let mut filebuf2 = vec![0u8; 20];
            let placed2 = nav.place_into_window(&data[12..], 12, &mut filebuf2, 20);
            assert_eq!(placed2, 12);
            assert_eq!(&filebuf2[0..4], &data[12..16]); // rest of block 1
            assert_eq!(&filebuf2[12..20], &data[16..24]); // block 2
        }
    }

    #[test]
    fn windows_starting_inside_gaps() {
        let view = sample_view(0);
        for nav in [
            ViewNav::List(ListNav::new(view.clone())),
            ViewNav::Ff(FfNav::new(view.clone())),
        ] {
            // window [10, 30): contains only block 1 (16..24)
            assert_eq!(nav.bytes_in(10, 30), 8);
            let mut filebuf = vec![9u8; 20];
            let stream0 = nav.abs_to_stream(10);
            assert_eq!(stream0, 8);
            let data = [1u8, 2, 3, 4, 5, 6, 7, 8];
            let placed = nav.place_into_window(&data, stream0, &mut filebuf, 10);
            assert_eq!(placed, 8);
            assert_eq!(&filebuf[6..14], &data);
        }
    }

    #[test]
    fn disp_offsets_everything() {
        let view = sample_view(1000);
        let nav = ViewNav::Ff(FfNav::new(view));
        assert_eq!(nav.stream_to_abs(0), 1000);
        assert_eq!(nav.abs_to_stream(999), 0);
        assert_eq!(nav.abs_to_stream(1008), 8);
        assert_eq!(nav.bytes_in(0, 1000), 0);
    }
}
