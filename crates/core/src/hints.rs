//! Tuning hints, modelled on ROMIO's `MPI_Info` keys.

/// Pack-kernel family selector, re-exported from
/// [`lio_datatype::kernels::Mode`] so hint-level callers need not depend
/// on the datatype crate directly.
pub use lio_datatype::kernels::Mode as PackKernel;

/// Which datatype-handling engine a file uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Explicit flattening into `⟨offset, length⟩` lists; linear-list
    /// navigation; ol-list exchange for collective access. The ROMIO-style
    /// baseline (paper Section 2).
    ListBased,
    /// Flattening-on-the-fly; `O(depth)` navigation; fileview caching and
    /// mergeview for collective access. The paper's contribution
    /// (Section 3).
    Listless,
}

/// How independent non-contiguous accesses touch the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SievingMode {
    /// Data sieving: read a large window, copy through it, write it back
    /// (ROMIO's default; the paper's Section 2.2).
    Sieve,
    /// One file access per contiguous block — the alternative the paper's
    /// outlook discusses as a trade-off against sieving.
    Direct,
    /// Decide per access: sieving pays when the view is dense inside its
    /// extent (most of each window is useful); direct access pays when
    /// blocks are large and sparse. This implements the "more general
    /// optimization ... the decision on the trade-off between data
    /// sieving and multiple file accesses" of the paper's outlook
    /// (Section 5). See [`crate::sieve::choose_mode`] for the heuristic.
    Auto,
}

/// Which storage substrate backs a file opened through the hint path.
///
/// The backends are byte-for-byte equivalent by construction (the
/// cross-backend differential corpus in `tests/backend.rs` pins this);
/// they differ only in where the bytes live and what the access costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// In-memory file (`lio_pfs::MemFile`) — memcpy-speed storage, the
    /// paper's "fast file system" regime. The default.
    #[default]
    Mem,
    /// In-memory file behind the calibrated SX-6 local-FS bandwidth model
    /// (`lio_pfs::ThrottledFile`).
    Throttled,
    /// Real OS file served through the asynchronous submission-queue
    /// backend (`lio_pfs::OsFile` over an unlinked temp file in
    /// `LIO_OS_DIR`).
    Os,
}

impl BackendKind {
    /// The canonical info-value / env-value name of this backend.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Mem => "mem",
            BackendKind::Throttled => "throttled",
            BackendKind::Os => "os",
        }
    }

    /// Parse a backend name (`mem`, `throttled`, `os`).
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.trim() {
            "mem" | "memory" => Some(BackendKind::Mem),
            "throttled" => Some(BackendKind::Throttled),
            "os" => Some(BackendKind::Os),
            _ => None,
        }
    }

    /// The backend selected by the `LIO_BACKEND` environment variable,
    /// or the default (`Mem`) when unset or unparseable.
    pub fn from_env() -> BackendKind {
        std::env::var("LIO_BACKEND")
            .ok()
            .and_then(|v| BackendKind::parse(&v))
            .unwrap_or_default()
    }
}

/// A malformed `MPI_Info` value: the key is recognized, but the value
/// cannot be parsed. Carries enough structure for callers to report or
/// match on the failing pair instead of string-scraping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintError {
    /// The recognized info key whose value failed to parse.
    pub key: String,
    /// The offending value, verbatim.
    pub value: String,
    /// What a valid value would have looked like.
    pub reason: String,
}

impl std::fmt::Display for HintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad hint {}={:?}: {}", self.key, self.value, self.reason)
    }
}

impl std::error::Error for HintError {}

impl HintError {
    fn new(key: &str, value: &str, reason: impl Into<String>) -> HintError {
        HintError {
            key: key.to_string(),
            value: value.to_string(),
            reason: reason.into(),
        }
    }
}

/// Per-file tuning knobs (ROMIO's `ind_rd_buffer_size`,
/// `cb_buffer_size`, `cb_nodes`, ... equivalents).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hints {
    /// Engine selection.
    pub engine: Engine,
    /// Buffer size for independent data sieving (ROMIO default: 512 KiB
    /// for writes / 4 MiB for reads; we use one knob).
    pub ind_buffer_size: usize,
    /// Buffer size for collective (two-phase) file access per IOP window
    /// (ROMIO default 4 MiB).
    pub cb_buffer_size: usize,
    /// Number of io-processes for collective access; `0` means every rank
    /// is an IOP (the common single-node configuration in the paper).
    pub cb_nodes: usize,
    /// Independent access strategy for non-contiguous fileviews.
    pub sieving: SievingMode,
    /// For collective writes: detect fully-covered windows and skip the
    /// read-modify-write (ROMIO's list-merge optimization; the listless
    /// engine uses the mergeview instead).
    pub detect_dense_writes: bool,
    /// Use the pipelined two-phase path: APs ship their contribution per
    /// file-domain window (bounding IOP memory) and each IOP
    /// double-buffers, overlapping storage I/O with the exchange. Off by
    /// default: on memcpy-speed storage the per-call worker threads cost
    /// more than they hide, so the paper-regime benches keep the
    /// monolithic path unless asked. The `LIO_PIPELINE` environment
    /// variable overrides this hint either way (see
    /// [`Hints::pipeline_enabled`]).
    pub two_phase_pipeline: bool,
    /// How many collective-buffer windows the pipelined path keeps in
    /// flight per IOP (and how far each AP may run ahead of the IOP's
    /// placement, enforced by credits). 2 = classic double buffering.
    pub pipeline_depth: usize,
    /// Worker threads for sharded datatype pack/unpack (listless engine):
    /// large copies are split at data-byte positions computed with the
    /// paper's `O(depth)` seek and copied by `std::thread::scope` workers
    /// into disjoint buffer slices. `1` (the default) keeps the copy
    /// single-threaded; `0` means auto (one worker per available core,
    /// capped at 8); `n > 1` uses up to `n` workers. Copies below a byte
    /// threshold stay single-threaded regardless. The `LIO_PACK_THREADS`
    /// environment variable overrides this hint (see
    /// [`Hints::effective_pack_threads`]).
    pub pack_threads: usize,
    /// Pack-kernel family for the compiled run-program interpreter:
    /// `Some(mode)` forces the process-global kernel mode at open time
    /// (`auto` picks the best family the CPU supports per frame; `scalar`
    /// disables the fixed-block kernels; `fixed`/`sse2`/`avx2` force one
    /// family, degrading to what the CPU supports). `None` (the default)
    /// leaves the process-global setting (and the `LIO_PACK_KERNEL`
    /// environment variable) in charge. See
    /// [`Hints::effective_pack_kernel`].
    pub pack_kernel: Option<PackKernel>,
    /// Observability: `Some(on)` forces `lio-obs` recording on or off when
    /// a file is opened with these hints; `None` leaves the process-global
    /// setting (and the `LIO_OBS` environment variable) in charge.
    pub obs: Option<bool>,
    /// Event tracing: `Some(on)` forces the `lio-trace` recorder on or off
    /// when a file is opened with these hints; `None` leaves the
    /// process-global setting (and the `LIO_TRACE` environment variable)
    /// in charge.
    pub trace: Option<bool>,
    /// Access-pattern profiling: `Some(on)` forces the `lio-profile`
    /// recorder on or off when a file is opened with these hints; `None`
    /// leaves the process-global setting (and the `LIO_PROFILE`
    /// environment variable) in charge.
    pub profile: Option<bool>,
    /// Runtime health layer (`lio_obs::health`): `Some(on)` forces
    /// progress heartbeats + the hang watchdog on or off when a file is
    /// opened with these hints; `None` leaves the process-global
    /// setting (and the `LIO_HEALTH` environment variable) in charge.
    pub health: Option<bool>,
    /// Which storage substrate backs files opened through the
    /// backend-aware open path ([`crate::SharedFile::for_backend`]).
    /// The `LIO_BACKEND` environment variable overrides this hint (see
    /// [`Hints::effective_backend`]).
    pub backend: BackendKind,
    /// Online knob adaptation: `Some(true)` arms the per-file tuner
    /// ([`crate::autotune`]), which retunes the *next* collective op's
    /// effective knobs from each op's critical-path breakdown; `Some(false)`
    /// forces it off; `None` (the default) defers to the `LIO_AUTOTUNE`
    /// environment variable (see [`Hints::autotune_enabled`]). The tuner
    /// changes *performance* knobs only — file bytes are identical with or
    /// without it (pinned by the differential corpus).
    pub autotune: Option<bool>,
}

impl Hints {
    /// Defaults with the given engine.
    pub fn with_engine(engine: Engine) -> Hints {
        Hints {
            engine,
            ind_buffer_size: 512 * 1024,
            cb_buffer_size: 4 * 1024 * 1024,
            cb_nodes: 0,
            sieving: SievingMode::Sieve,
            detect_dense_writes: true,
            two_phase_pipeline: false,
            pipeline_depth: 2,
            pack_threads: 1,
            pack_kernel: None,
            obs: None,
            trace: None,
            profile: None,
            health: None,
            backend: BackendKind::Mem,
            autotune: None,
        }
    }

    /// ROMIO-style list-based engine with default buffers.
    pub fn list_based() -> Hints {
        Hints::with_engine(Engine::ListBased)
    }

    /// Listless engine with default buffers.
    pub fn listless() -> Hints {
        Hints::with_engine(Engine::Listless)
    }

    /// Override the independent sieving buffer size (builder style).
    pub fn ind_buffer(mut self, bytes: usize) -> Hints {
        self.ind_buffer_size = bytes.max(1);
        self
    }

    /// Override the collective buffer size (builder style).
    pub fn cb_buffer(mut self, bytes: usize) -> Hints {
        self.cb_buffer_size = bytes.max(1);
        self
    }

    /// Override the number of io-processes (builder style).
    pub fn io_nodes(mut self, n: usize) -> Hints {
        self.cb_nodes = n;
        self
    }

    /// Override the independent access strategy (builder style).
    pub fn sieving_mode(mut self, mode: SievingMode) -> Hints {
        self.sieving = mode;
        self
    }

    /// Force `lio-obs` metrics recording on or off at open time
    /// (builder style). The default (`None`) defers to
    /// `lio_obs::set_enabled` / the `LIO_OBS` environment variable.
    pub fn observability(mut self, on: bool) -> Hints {
        self.obs = Some(on);
        self
    }

    /// Force `lio-trace` event recording on or off at open time
    /// (builder style). The default (`None`) defers to
    /// `lio_obs::trace::set_enabled` / the `LIO_TRACE` environment
    /// variable.
    pub fn tracing(mut self, on: bool) -> Hints {
        self.trace = Some(on);
        self
    }

    /// Force `lio-profile` access-pattern recording on or off at open
    /// time (builder style). The default (`None`) defers to
    /// `lio_obs::profile::set_enabled` / the `LIO_PROFILE` environment
    /// variable.
    pub fn profiling(mut self, on: bool) -> Hints {
        self.profile = Some(on);
        self
    }

    /// Force the runtime health layer (heartbeats + hang watchdog) on
    /// or off at open time (builder style). The default (`None`) defers
    /// to `lio_obs::health::set_enabled` / the `LIO_HEALTH` environment
    /// variable.
    pub fn health(mut self, on: bool) -> Hints {
        self.health = Some(on);
        self
    }

    /// Arm or disarm the online knob tuner at open time (builder style).
    /// The default (`None`) defers to the `LIO_AUTOTUNE` environment
    /// variable (see [`Hints::autotune_enabled`]).
    pub fn autotune(mut self, on: bool) -> Hints {
        self.autotune = Some(on);
        self
    }

    /// Whether opens with these hints arm the online knob tuner, honoring
    /// the `LIO_AUTOTUNE` environment override: `1`/`on`/`true`/`enable`
    /// forces it on, `0`/`off`/`false`/`disable` forces it off, anything
    /// else (or unset) defers to the `autotune` hint (off when `None`).
    pub fn autotune_enabled(&self) -> bool {
        match std::env::var("LIO_AUTOTUNE") {
            Ok(v) => match v.as_str() {
                "1" | "on" | "true" | "enable" => true,
                "0" | "off" | "false" | "disable" => false,
                _ => self.autotune == Some(true),
            },
            Err(_) => self.autotune == Some(true),
        }
    }

    /// Select the storage backend for backend-aware opens (builder
    /// style). The `LIO_BACKEND` environment variable overrides this
    /// either way (see [`Hints::effective_backend`]).
    pub fn backend(mut self, kind: BackendKind) -> Hints {
        self.backend = kind;
        self
    }

    /// The backend this open should use, honoring the `LIO_BACKEND`
    /// environment override (`mem`, `throttled`, `os`; anything
    /// unparseable or unset defers to the `backend` hint).
    pub fn effective_backend(&self) -> BackendKind {
        match std::env::var("LIO_BACKEND") {
            Ok(v) => BackendKind::parse(&v).unwrap_or(self.backend),
            Err(_) => self.backend,
        }
    }

    /// Enable or disable the pipelined two-phase path (builder style).
    pub fn pipelined(mut self, on: bool) -> Hints {
        self.two_phase_pipeline = on;
        self
    }

    /// Override the pipeline depth (builder style; clamped to ≥ 1).
    pub fn pipeline_depth(mut self, windows: usize) -> Hints {
        self.pipeline_depth = windows.max(1);
        self
    }

    /// Set the sharded pack/unpack worker count (builder style;
    /// `0` = auto, `1` = single-threaded).
    pub fn pack_threads(mut self, threads: usize) -> Hints {
        self.pack_threads = threads;
        self
    }

    /// Force the pack-kernel family at open time (builder style). The
    /// default (`None`) defers to the process-global mode and the
    /// `LIO_PACK_KERNEL` environment variable.
    pub fn pack_kernel(mut self, mode: PackKernel) -> Hints {
        self.pack_kernel = Some(mode);
        self
    }

    /// The pack-kernel mode this open should install, honoring the
    /// `LIO_PACK_KERNEL` environment override (`auto`, `scalar`, `fixed`,
    /// `sse2`, `avx2`; anything unparseable or unset defers to the
    /// `pack_kernel` hint). Returns `None` when neither the environment
    /// nor the hint asks for anything — the process-global default
    /// (`auto`) stays in charge.
    pub fn effective_pack_kernel(&self) -> Option<PackKernel> {
        match std::env::var("LIO_PACK_KERNEL") {
            Ok(v) => PackKernel::parse(&v).or(self.pack_kernel),
            Err(_) => self.pack_kernel,
        }
    }

    /// The worker-thread budget for sharded pack/unpack, honoring the
    /// `LIO_PACK_THREADS` environment override (a thread count; `0` for
    /// auto; anything unparseable defers to the `pack_threads` hint).
    /// Auto resolves to the number of available cores, capped at 8.
    pub fn effective_pack_threads(&self) -> usize {
        let requested = match std::env::var("LIO_PACK_THREADS") {
            Ok(v) => v.trim().parse::<usize>().unwrap_or(self.pack_threads),
            Err(_) => self.pack_threads,
        };
        if requested == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        } else {
            requested
        }
    }

    /// Whether collective calls take the pipelined path, honoring the
    /// `LIO_PIPELINE` environment override: `1`/`on`/`true`/`enable`
    /// forces it on, `0`/`off`/`false`/`disable` forces it off, anything
    /// else (or unset) defers to the `two_phase_pipeline` hint.
    pub fn pipeline_enabled(&self) -> bool {
        match std::env::var("LIO_PIPELINE") {
            Ok(v) => match v.as_str() {
                "1" | "on" | "true" | "enable" => true,
                "0" | "off" | "false" | "disable" => false,
                _ => self.two_phase_pipeline,
            },
            Err(_) => self.two_phase_pipeline,
        }
    }

    /// Pipeline depth with the ≥ 1 invariant enforced.
    pub fn effective_pipeline_depth(&self) -> usize {
        self.pipeline_depth.max(1)
    }

    /// Resolve `cb_nodes` against the world size.
    pub fn effective_io_nodes(&self, world: usize) -> usize {
        if self.cb_nodes == 0 {
            world
        } else {
            self.cb_nodes.min(world).max(1)
        }
    }
}

impl Default for Hints {
    fn default() -> Hints {
        Hints::listless()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let h = Hints::default();
        assert_eq!(h.engine, Engine::Listless);
        assert_eq!(h.ind_buffer_size, 512 * 1024);
        assert_eq!(h.cb_buffer_size, 4 * 1024 * 1024);
        assert_eq!(h.effective_io_nodes(8), 8);
    }

    #[test]
    fn builders() {
        let h = Hints::list_based()
            .ind_buffer(1024)
            .cb_buffer(2048)
            .io_nodes(2);
        assert_eq!(h.engine, Engine::ListBased);
        assert_eq!(h.ind_buffer_size, 1024);
        assert_eq!(h.cb_buffer_size, 2048);
        assert_eq!(h.effective_io_nodes(8), 2);
        assert_eq!(h.effective_io_nodes(1), 1);
    }

    #[test]
    fn zero_buffer_clamped() {
        let h = Hints::listless().ind_buffer(0);
        assert_eq!(h.ind_buffer_size, 1);
    }

    #[test]
    fn pipeline_builders() {
        let h = Hints::default();
        assert!(!h.two_phase_pipeline);
        assert_eq!(h.pipeline_depth, 2);
        let h = Hints::listless().pipelined(true).pipeline_depth(0);
        assert!(h.two_phase_pipeline);
        assert_eq!(h.effective_pipeline_depth(), 1);
    }
}

impl Hints {
    /// Parse ROMIO-style `MPI_Info` key/value pairs into hints, starting
    /// from `self`. Unknown keys are ignored (the `MPI_Info` contract);
    /// malformed values return a typed [`HintError`] naming the pair.
    ///
    /// Recognized keys: `engine` (`list_based`/`listless`),
    /// `ind_rd_buffer_size`, `ind_wr_buffer_size` (both map to the single
    /// independent buffer knob; the larger wins), `cb_buffer_size`,
    /// `cb_nodes`, `romio_ds_write` (`enable`/`disable`/`automatic` →
    /// sieve/direct/auto), `detect_dense_writes` (`true`/`false`),
    /// `two_phase_pipeline` (`enable`/`disable`), `pipeline_depth`
    /// (windows in flight, ≥ 1), `pack_threads` (sharded pack/unpack
    /// workers; 0 = auto), `pack_kernel` (`auto`/`scalar`/`fixed`/
    /// `sse2`/`avx2` — pack-kernel family for compiled run programs),
    /// `backend` (`mem`/`throttled`/`os` — storage substrate for
    /// backend-aware opens), `lio_obs` (`enable`/`disable` — force
    /// metrics recording at open), `lio_trace` (`enable`/`disable` —
    /// force event tracing at open), `lio_health` (`enable`/`disable`
    /// — force the runtime health layer at open).
    ///
    /// ```
    /// use lio_core::{Engine, Hints, SievingMode};
    /// let h = Hints::default()
    ///     .apply_info([("cb_buffer_size", "1048576"), ("romio_ds_write", "automatic")])
    ///     .unwrap();
    /// assert_eq!(h.cb_buffer_size, 1048576);
    /// assert_eq!(h.sieving, SievingMode::Auto);
    /// ```
    pub fn apply_info<'a>(
        mut self,
        pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> std::result::Result<Hints, HintError> {
        for (k, v) in pairs {
            match k {
                "engine" => {
                    self.engine = match v {
                        "list_based" | "list-based" => Engine::ListBased,
                        "listless" => Engine::Listless,
                        _ => return Err(HintError::new(k, v, "expected list_based or listless")),
                    }
                }
                "ind_rd_buffer_size" | "ind_wr_buffer_size" => {
                    let n: usize = v
                        .parse()
                        .map_err(|_| HintError::new(k, v, "expected a byte count"))?;
                    self.ind_buffer_size = self.ind_buffer_size.max(n.max(1));
                }
                "cb_buffer_size" => {
                    self.cb_buffer_size = v
                        .parse::<usize>()
                        .map_err(|_| HintError::new(k, v, "expected a byte count"))?
                        .max(1);
                }
                "cb_nodes" => {
                    self.cb_nodes = v
                        .parse()
                        .map_err(|_| HintError::new(k, v, "expected a process count"))?;
                }
                "romio_ds_write" | "romio_ds_read" => {
                    self.sieving = match v {
                        "enable" => SievingMode::Sieve,
                        "disable" => SievingMode::Direct,
                        "automatic" => SievingMode::Auto,
                        _ => {
                            return Err(HintError::new(
                                k,
                                v,
                                "expected enable, disable, or automatic",
                            ))
                        }
                    }
                }
                "detect_dense_writes" => {
                    self.detect_dense_writes = match v {
                        "true" => true,
                        "false" => false,
                        _ => return Err(HintError::new(k, v, "expected true or false")),
                    }
                }
                "two_phase_pipeline" => {
                    self.two_phase_pipeline = match v {
                        "enable" | "true" | "1" => true,
                        "disable" | "false" | "0" => false,
                        _ => return Err(HintError::new(k, v, "expected enable or disable")),
                    }
                }
                "pipeline_depth" => {
                    self.pipeline_depth = v
                        .parse::<usize>()
                        .map_err(|_| HintError::new(k, v, "expected a window count"))?
                        .max(1);
                }
                "pack_threads" => {
                    self.pack_threads = v
                        .parse::<usize>()
                        .map_err(|_| HintError::new(k, v, "expected a thread count (0 = auto)"))?;
                }
                "pack_kernel" => {
                    self.pack_kernel = Some(PackKernel::parse(v).ok_or_else(|| {
                        HintError::new(k, v, "expected auto, scalar, fixed, sse2, or avx2")
                    })?);
                }
                "backend" => {
                    self.backend = BackendKind::parse(v)
                        .ok_or_else(|| HintError::new(k, v, "expected mem, throttled, or os"))?;
                }
                "lio_obs" => {
                    self.obs = match v {
                        "enable" | "true" | "1" => Some(true),
                        "disable" | "false" | "0" => Some(false),
                        _ => return Err(HintError::new(k, v, "expected enable or disable")),
                    }
                }
                "lio_trace" => {
                    self.trace = match v {
                        "enable" | "true" | "1" => Some(true),
                        "disable" | "false" | "0" => Some(false),
                        _ => return Err(HintError::new(k, v, "expected enable or disable")),
                    }
                }
                "lio_profile" => {
                    self.profile = match v {
                        "enable" | "true" | "1" => Some(true),
                        "disable" | "false" | "0" => Some(false),
                        _ => return Err(HintError::new(k, v, "expected enable or disable")),
                    }
                }
                "lio_health" => {
                    self.health = match v {
                        "enable" | "true" | "1" => Some(true),
                        "disable" | "false" | "0" => Some(false),
                        _ => return Err(HintError::new(k, v, "expected enable or disable")),
                    }
                }
                "lio_autotune" => {
                    self.autotune = match v {
                        "enable" | "true" | "1" => Some(true),
                        "disable" | "false" | "0" => Some(false),
                        _ => return Err(HintError::new(k, v, "expected enable or disable")),
                    }
                }
                _ => {} // unknown keys are ignored, like MPI_Info
            }
        }
        Ok(self)
    }

    /// Serialize these hints back to `MPI_Info` pairs. Every recognized
    /// key that [`Hints::apply_info`] parses is emitted (the read/write
    /// sieving aliases collapse to `romio_ds_write`; `lio_obs` only
    /// appears when the hint forces observability one way), so
    /// `base.apply_info(h.to_info_pairs())` reconstructs `h` for any base
    /// whose independent buffer does not exceed `h`'s (the
    /// `ind_*_buffer_size` keys are larger-wins by the ROMIO contract).
    pub fn to_info(&self) -> Vec<(String, String)> {
        let mut pairs = vec![
            (
                "engine".to_string(),
                match self.engine {
                    Engine::ListBased => "list_based".to_string(),
                    Engine::Listless => "listless".to_string(),
                },
            ),
            (
                "ind_rd_buffer_size".to_string(),
                self.ind_buffer_size.to_string(),
            ),
            (
                "ind_wr_buffer_size".to_string(),
                self.ind_buffer_size.to_string(),
            ),
            (
                "cb_buffer_size".to_string(),
                self.cb_buffer_size.to_string(),
            ),
            ("cb_nodes".to_string(), self.cb_nodes.to_string()),
            (
                "romio_ds_write".to_string(),
                match self.sieving {
                    SievingMode::Sieve => "enable".to_string(),
                    SievingMode::Direct => "disable".to_string(),
                    SievingMode::Auto => "automatic".to_string(),
                },
            ),
            (
                "detect_dense_writes".to_string(),
                self.detect_dense_writes.to_string(),
            ),
            (
                "two_phase_pipeline".to_string(),
                if self.two_phase_pipeline {
                    "enable".to_string()
                } else {
                    "disable".to_string()
                },
            ),
            (
                "pipeline_depth".to_string(),
                self.pipeline_depth.to_string(),
            ),
            ("pack_threads".to_string(), self.pack_threads.to_string()),
            ("backend".to_string(), self.backend.name().to_string()),
        ];
        if let Some(mode) = self.pack_kernel {
            pairs.push(("pack_kernel".to_string(), mode.name().to_string()));
        }
        if let Some(on) = self.obs {
            pairs.push((
                "lio_obs".to_string(),
                if on { "enable" } else { "disable" }.to_string(),
            ));
        }
        if let Some(on) = self.trace {
            pairs.push((
                "lio_trace".to_string(),
                if on { "enable" } else { "disable" }.to_string(),
            ));
        }
        if let Some(on) = self.profile {
            pairs.push((
                "lio_profile".to_string(),
                if on { "enable" } else { "disable" }.to_string(),
            ));
        }
        if let Some(on) = self.health {
            pairs.push((
                "lio_health".to_string(),
                if on { "enable" } else { "disable" }.to_string(),
            ));
        }
        if let Some(on) = self.autotune {
            pairs.push((
                "lio_autotune".to_string(),
                if on { "enable" } else { "disable" }.to_string(),
            ));
        }
        pairs
    }
}

#[cfg(test)]
mod info_tests {
    use super::*;

    #[test]
    fn info_pairs_parse() {
        let h = Hints::list_based()
            .apply_info([
                ("engine", "listless"),
                ("cb_buffer_size", "65536"),
                ("cb_nodes", "2"),
                ("ind_rd_buffer_size", "8192"),
                ("ind_wr_buffer_size", "4096"),
                ("romio_ds_write", "disable"),
                ("detect_dense_writes", "false"),
                ("totally_unknown_key", "whatever"),
            ])
            .unwrap();
        assert_eq!(h.engine, Engine::Listless);
        assert_eq!(h.cb_buffer_size, 65536);
        assert_eq!(h.cb_nodes, 2);
        assert_eq!(h.ind_buffer_size, 512 * 1024); // max of default and given
        assert_eq!(h.sieving, SievingMode::Direct);
        assert!(!h.detect_dense_writes);
    }

    #[test]
    fn info_errors_on_malformed_values() {
        assert!(Hints::default().apply_info([("engine", "magic")]).is_err());
        assert!(Hints::default()
            .apply_info([("cb_buffer_size", "lots")])
            .is_err());
        assert!(Hints::default()
            .apply_info([("detect_dense_writes", "maybe")])
            .is_err());
    }

    #[test]
    fn pipeline_info_keys() {
        let h = Hints::default()
            .apply_info([("two_phase_pipeline", "enable"), ("pipeline_depth", "3")])
            .unwrap();
        assert!(h.two_phase_pipeline);
        assert_eq!(h.pipeline_depth, 3);
        assert!(Hints::default()
            .apply_info([("two_phase_pipeline", "maybe")])
            .is_err());
        assert!(Hints::default()
            .apply_info([("pipeline_depth", "deep")])
            .is_err());
    }

    #[test]
    fn pack_threads_info_key() {
        let h = Hints::default()
            .apply_info([("pack_threads", "4")])
            .unwrap();
        assert_eq!(h.pack_threads, 4);
        let h = Hints::default()
            .apply_info([("pack_threads", "0")])
            .unwrap();
        assert_eq!(h.pack_threads, 0);
        assert!(Hints::default()
            .apply_info([("pack_threads", "many")])
            .is_err());
        // round-trips through to_info
        let h = Hints::default().pack_threads(3);
        let pairs = h.to_info();
        let back = Hints::list_based()
            .apply_info(pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .unwrap();
        assert_eq!(back.pack_threads, 3);
    }

    #[test]
    fn pack_kernel_info_key() {
        assert_eq!(Hints::default().pack_kernel, None);
        let h = Hints::default()
            .apply_info([("pack_kernel", "scalar")])
            .unwrap();
        assert_eq!(h.pack_kernel, Some(PackKernel::Scalar));
        let h = Hints::default()
            .apply_info([("pack_kernel", "avx2")])
            .unwrap();
        assert_eq!(h.pack_kernel, Some(PackKernel::Avx2));
        assert!(Hints::default()
            .apply_info([("pack_kernel", "warp9")])
            .is_err());
        // absent by default, emitted (and round-tripped) only when set
        assert!(Hints::default()
            .to_info()
            .iter()
            .all(|(k, _)| k != "pack_kernel"));
        let pairs = Hints::default().pack_kernel(PackKernel::Fixed).to_info();
        let back = Hints::list_based()
            .apply_info(pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .unwrap();
        assert_eq!(back.pack_kernel, Some(PackKernel::Fixed));
    }

    #[test]
    fn pack_kernel_env_defers_to_hint() {
        if std::env::var("LIO_PACK_KERNEL").is_ok() {
            return; // the env override legitimately wins
        }
        assert_eq!(Hints::default().effective_pack_kernel(), None);
        assert_eq!(
            Hints::default()
                .pack_kernel(PackKernel::Sse2)
                .effective_pack_kernel(),
            Some(PackKernel::Sse2)
        );
    }

    #[test]
    fn trace_info_key() {
        let h = Hints::default()
            .apply_info([("lio_trace", "enable")])
            .unwrap();
        assert_eq!(h.trace, Some(true));
        let h = Hints::default().apply_info([("lio_trace", "0")]).unwrap();
        assert_eq!(h.trace, Some(false));
        assert!(Hints::default()
            .apply_info([("lio_trace", "maybe")])
            .is_err());
        // absent by default, emitted (and round-tripped) only when forced
        assert!(Hints::default()
            .to_info()
            .iter()
            .all(|(k, _)| k != "lio_trace"));
        let pairs = Hints::default().tracing(true).to_info();
        let back = Hints::list_based()
            .apply_info(pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .unwrap();
        assert_eq!(back.trace, Some(true));
    }

    #[test]
    fn profile_info_key() {
        let h = Hints::default()
            .apply_info([("lio_profile", "enable")])
            .unwrap();
        assert_eq!(h.profile, Some(true));
        let h = Hints::default().apply_info([("lio_profile", "0")]).unwrap();
        assert_eq!(h.profile, Some(false));
        assert!(Hints::default()
            .apply_info([("lio_profile", "maybe")])
            .is_err());
        // absent by default, emitted (and round-tripped) only when forced
        assert!(Hints::default()
            .to_info()
            .iter()
            .all(|(k, _)| k != "lio_profile"));
        let pairs = Hints::default().profiling(true).to_info();
        let back = Hints::list_based()
            .apply_info(pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .unwrap();
        assert_eq!(back.profile, Some(true));
    }

    #[test]
    fn health_info_key() {
        let h = Hints::default()
            .apply_info([("lio_health", "enable")])
            .unwrap();
        assert_eq!(h.health, Some(true));
        let h = Hints::default().apply_info([("lio_health", "0")]).unwrap();
        assert_eq!(h.health, Some(false));
        assert!(Hints::default()
            .apply_info([("lio_health", "maybe")])
            .is_err());
        // absent by default, emitted (and round-tripped) only when forced
        assert!(Hints::default()
            .to_info()
            .iter()
            .all(|(k, _)| k != "lio_health"));
        let pairs = Hints::default().health(true).to_info();
        let back = Hints::list_based()
            .apply_info(pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .unwrap();
        assert_eq!(back.health, Some(true));
    }

    #[test]
    fn autotune_info_key() {
        let h = Hints::default()
            .apply_info([("lio_autotune", "enable")])
            .unwrap();
        assert_eq!(h.autotune, Some(true));
        let h = Hints::default()
            .apply_info([("lio_autotune", "0")])
            .unwrap();
        assert_eq!(h.autotune, Some(false));
        assert!(Hints::default()
            .apply_info([("lio_autotune", "maybe")])
            .is_err());
        // absent by default, emitted (and round-tripped) only when forced
        assert!(Hints::default()
            .to_info()
            .iter()
            .all(|(k, _)| k != "lio_autotune"));
        let pairs = Hints::default().autotune(true).to_info();
        let back = Hints::list_based()
            .apply_info(pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .unwrap();
        assert_eq!(back.autotune, Some(true));
    }

    #[test]
    fn autotune_env_defers_to_hint() {
        if std::env::var("LIO_AUTOTUNE").is_ok() {
            return; // the env override legitimately wins
        }
        assert!(!Hints::default().autotune_enabled());
        assert!(Hints::default().autotune(true).autotune_enabled());
        assert!(!Hints::default().autotune(false).autotune_enabled());
    }

    #[test]
    fn backend_info_key() {
        assert_eq!(Hints::default().backend, BackendKind::Mem);
        let h = Hints::default().apply_info([("backend", "os")]).unwrap();
        assert_eq!(h.backend, BackendKind::Os);
        let h = Hints::default()
            .apply_info([("backend", "throttled")])
            .unwrap();
        assert_eq!(h.backend, BackendKind::Throttled);
        assert!(Hints::default().apply_info([("backend", "cloud")]).is_err());
        // always emitted, round-trips
        let pairs = Hints::default().backend(BackendKind::Os).to_info();
        assert!(pairs.iter().any(|(k, v)| k == "backend" && v == "os"));
        let back = Hints::list_based()
            .apply_info(pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .unwrap();
        assert_eq!(back.backend, BackendKind::Os);
    }

    #[test]
    fn backend_env_defers_to_hint() {
        if std::env::var("LIO_BACKEND").is_ok() {
            return; // the env override legitimately wins
        }
        assert_eq!(Hints::default().effective_backend(), BackendKind::Mem);
        assert_eq!(
            Hints::default()
                .backend(BackendKind::Os)
                .effective_backend(),
            BackendKind::Os
        );
        assert_eq!(BackendKind::parse("memory"), Some(BackendKind::Mem));
        assert_eq!(BackendKind::parse("nvme"), None);
        assert_eq!(BackendKind::Os.name(), "os");
    }

    #[test]
    fn pack_threads_auto_resolves_to_cores() {
        if std::env::var("LIO_PACK_THREADS").is_ok() {
            return; // the env override legitimately wins
        }
        assert_eq!(Hints::default().effective_pack_threads(), 1);
        let auto = Hints::default().pack_threads(0).effective_pack_threads();
        assert!((1..=8).contains(&auto));
        assert_eq!(Hints::default().pack_threads(4).effective_pack_threads(), 4);
    }

    #[test]
    fn small_ind_buffer_respects_existing() {
        let h = Hints::default()
            .ind_buffer(64)
            .apply_info([("ind_rd_buffer_size", "128")])
            .unwrap();
        assert_eq!(h.ind_buffer_size, 128);
    }
}
