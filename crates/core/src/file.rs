//! The file handle: open, set_view, independent and collective access.

use std::sync::Arc;

use lio_datatype::Datatype;
use lio_mpi::Comm;
use lio_obs::LazyHistogram;
use lio_pfs::{RangeLock, StorageFile};

use crate::autotune::{FileTuner, SharedTuner, TuneReport};
use crate::error::{IoError, Result};
use crate::hints::{Engine, Hints};
use crate::packer::MemPacker;
use crate::sieve;
use crate::twophase::{self, CollState};
use crate::view::{FfNav, FileView, ListNav, ViewNav};

// Per-operation wall-time spans (nanoseconds), one histogram per entry
// point. Each call contributes one sample, so `count` is the number of
// operations and `sum` the total time spent in them on this process.
static OBS_WRITE_AT_NS: LazyHistogram = LazyHistogram::new("core.write_at.ns");
static OBS_READ_AT_NS: LazyHistogram = LazyHistogram::new("core.read_at.ns");
static OBS_WRITE_ALL_NS: LazyHistogram = LazyHistogram::new("core.write_at_all.ns");
static OBS_READ_ALL_NS: LazyHistogram = LazyHistogram::new("core.read_at_all.ns");
static OBS_SET_VIEW_NS: LazyHistogram = LazyHistogram::new("core.set_view.ns");

/// The state shared by all ranks that open the same file: the storage
/// backend and the byte-range lock protecting data-sieving writes.
///
/// Create one `SharedFile` outside the rank closure and clone it into each
/// rank, mirroring how MPI ranks share a file system:
///
/// ```
/// use lio_core::{File, Hints, SharedFile};
/// use lio_mpi::World;
/// use lio_pfs::MemFile;
///
/// let shared = SharedFile::new(MemFile::new());
/// World::run(2, |comm| {
///     let mut f = File::open(comm, shared.clone(), Hints::listless()).unwrap();
///     f.write_bytes_at(comm.rank() as u64 * 4, &[comm.rank() as u8; 4]).unwrap();
/// });
/// assert_eq!(shared.len(), 8);
/// ```
#[derive(Clone)]
pub struct SharedFile {
    storage: Arc<dyn StorageFile>,
    lock: RangeLock,
    /// The shared file pointer (etype units), one per open file as in
    /// MPI-IO's `MPI_File_read/write_shared` family.
    shared_fp: Arc<std::sync::atomic::AtomicU64>,
    /// The online knob tuner ([`crate::autotune`]), lazily initialized by
    /// the first open with autotune armed. One per file, shared by every
    /// rank, so per-op knob decisions are identical across the world.
    tuner: SharedTuner,
}

impl SharedFile {
    /// Wrap a storage backend.
    pub fn new(storage: impl StorageFile + 'static) -> SharedFile {
        SharedFile::from_arc(Arc::new(storage))
    }

    /// Wrap an already-shared storage backend.
    pub fn from_arc(storage: Arc<dyn StorageFile>) -> SharedFile {
        SharedFile {
            storage,
            lock: RangeLock::new(),
            shared_fp: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            tuner: Arc::new(std::sync::Mutex::new(None)),
        }
    }

    /// Open a fresh file on the given storage backend: an in-memory file
    /// for [`BackendKind::Mem`], the calibrated SX-6 bandwidth model for
    /// [`BackendKind::Throttled`], and the asynchronous submission-queue
    /// backend over an unlinked temp file for [`BackendKind::Os`]
    /// (configured by `LIO_OS_DIR`/`LIO_OS_WORKERS`/`LIO_OS_DEPTH`).
    /// Only the `Os` backend can fail (temp-file creation).
    pub fn for_backend(kind: crate::BackendKind) -> std::io::Result<SharedFile> {
        use crate::BackendKind;
        Ok(match kind {
            BackendKind::Mem => SharedFile::new(lio_pfs::MemFile::new()),
            BackendKind::Throttled => SharedFile::new(lio_pfs::ThrottledFile::new(
                lio_pfs::MemFile::new(),
                lio_pfs::Throttle::sx6_local_fs(),
            )),
            BackendKind::Os => SharedFile::new(lio_pfs::OsFile::temp()?),
        })
    }

    /// [`SharedFile::for_backend`] resolved through a hint set: the
    /// `backend` hint decides, with the `LIO_BACKEND` environment
    /// variable overriding either way (see
    /// [`Hints::effective_backend`](crate::Hints::effective_backend)).
    /// The result is shared by every rank that opens the file — create
    /// it once and clone, exactly like a [`SharedFile::new`] handle.
    pub fn for_hints(hints: &crate::Hints) -> std::io::Result<SharedFile> {
        SharedFile::for_backend(hints.effective_backend())
    }

    /// The storage backend.
    pub fn storage(&self) -> &Arc<dyn StorageFile> {
        &self.storage
    }

    /// Current file length in bytes.
    pub fn len(&self) -> u64 {
        self.storage.len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.storage.len() == 0
    }

    /// Everything the online tuner decided for this file so far (`None`
    /// until an autotune-armed open ran a collective). Safe to call from
    /// outside the rank closure after `World::run` returns.
    pub fn tune_report(&self) -> Option<TuneReport> {
        self.tuner
            .lock()
            .unwrap()
            .as_ref()
            .map(|st| st.report_snapshot())
    }

    /// A point-in-time health report for the ranks working on this
    /// file: per-rank phase/progress/queue-depth snapshots plus the
    /// watchdog and straggler aggregates (see `lio_obs::health`).
    /// The heartbeat slots are process-global, so on a process running
    /// several files this reports every active rank. Safe to call from
    /// outside the rank closure while `World::run` is in flight —
    /// readers never block a heartbeat writer.
    pub fn health_report(&self) -> lio_obs::health::HealthReport {
        lio_obs::health::report()
    }
}

/// An open file handle for one rank.
///
/// Mirrors the MPI-IO access model: a fileview (`set_view`) filters the
/// file; offsets are in etype units and may land anywhere inside the
/// filetype; independent (`read_at`/`write_at`) and collective
/// (`read_at_all`/`write_at_all`) routines move possibly non-contiguous
/// user buffers (memtypes) through the view. The engine — list-based or
/// listless — is chosen by [`Hints`].
pub struct File<'c> {
    shared: SharedFile,
    comm: &'c Comm,
    hints: Hints,
    nav: ViewNav,
    coll: CollState,
    /// With autotune armed: the *other* engine's navigation and
    /// collective state for the current view, so a tuner engine switch
    /// takes effect at the next op without a collective re-establish.
    nav_alt: Option<ViewNav>,
    coll_alt: Option<CollState>,
    /// This rank's handle to the shared online tuner, when armed.
    tuner: Option<FileTuner>,
    /// Collective ops issued through this handle — the health layer's
    /// op id. Collectives are called in the same order on every rank,
    /// so the ids align across the world.
    ops: std::sync::atomic::AtomicU64,
    /// Individual file pointer, in etype units.
    fp: u64,
    /// Atomic mode: independent accesses lock their whole file range, so
    /// conflicting accesses from different ranks serialize
    /// (`MPI_File_set_atomicity`).
    atomic: bool,
}

impl<'c> File<'c> {
    /// Open the file collectively. Every rank of `comm` must call this
    /// with the same `shared` file and equivalent hints.
    pub fn open(comm: &'c Comm, shared: SharedFile, hints: Hints) -> Result<File<'c>> {
        lio_obs::init_from_env();
        if let Some(on) = hints.obs {
            lio_obs::set_enabled(on);
        }
        lio_obs::trace::init_from_env();
        if let Some(on) = hints.trace {
            lio_obs::trace::set_enabled(on);
        }
        lio_obs::profile::init_from_env();
        if let Some(on) = hints.profile {
            lio_obs::profile::set_enabled(on);
        }
        lio_obs::health::init_from_env();
        if let Some(on) = hints.health {
            lio_obs::health::set_enabled(on);
        }
        if lio_obs::health::enabled() {
            lio_obs::health::ensure_watchdog();
        }
        if let Some(mode) = hints.effective_pack_kernel() {
            lio_datatype::kernels::force(mode);
        }
        let tuner = if hints.autotune_enabled() {
            // the tuner is fed by the obs phase clocks: without them every
            // wall/phase reading is zero, so arm obs unless the caller
            // explicitly forced it off
            if hints.obs.is_none() {
                lio_obs::set_enabled(true);
            }
            Some(FileTuner::arm(&shared.tuner, &hints))
        } else {
            None
        };
        let view = FileView::bytes();
        let nav = Self::make_nav(view.clone(), hints.engine);
        let coll = twophase::establish_view(comm, &view, hints.engine)?;
        let (nav_alt, coll_alt) = Self::make_alt(comm, &view, hints.engine, tuner.is_some());
        Ok(File {
            shared,
            comm,
            hints,
            nav,
            coll,
            nav_alt,
            coll_alt,
            tuner,
            ops: std::sync::atomic::AtomicU64::new(0),
            fp: 0,
            atomic: false,
        })
    }

    /// Build the other engine's navigation and collective state so the
    /// tuner can switch engines between ops. `establish_view` for the
    /// listless engine is collective (fileview allgather); all ranks arm
    /// autotune together, so the call pattern stays symmetric. A view the
    /// alternate engine cannot establish (error is symmetric — every rank
    /// decodes the same exchanged views) simply disables engine switching.
    fn make_alt(
        comm: &Comm,
        view: &FileView,
        engine: Engine,
        armed: bool,
    ) -> (Option<ViewNav>, Option<CollState>) {
        if !armed {
            return (None, None);
        }
        let alt = match engine {
            Engine::ListBased => Engine::Listless,
            Engine::Listless => Engine::ListBased,
        };
        match twophase::establish_view(comm, view, alt) {
            Ok(coll) => (Some(Self::make_nav(view.clone(), alt)), Some(coll)),
            Err(_) => (None, None),
        }
    }

    fn make_nav(view: FileView, engine: Engine) -> ViewNav {
        match engine {
            Engine::ListBased => ViewNav::List(ListNav::new(view)),
            Engine::Listless => ViewNav::Ff(FfNav::new(view)),
        }
    }

    /// Establish a fileview (collective; resets the file pointer, as
    /// `MPI_File_set_view` does). Each rank may pass a different view.
    pub fn set_view(&mut self, disp: u64, etype: Datatype, filetype: Datatype) -> Result<()> {
        let _span = OBS_SET_VIEW_NS.span();
        let view = FileView::new(disp, etype, filetype)?;
        lio_obs::profile::record_view(
            view.filetype.size(),
            view.filetype.extent(),
            view.filetype.leaf_runs(),
            view.is_contiguous(),
        );
        self.coll = twophase::establish_view(self.comm, &view, self.hints.engine)?;
        let (nav_alt, coll_alt) =
            Self::make_alt(self.comm, &view, self.hints.engine, self.tuner.is_some());
        self.nav_alt = nav_alt;
        self.coll_alt = coll_alt;
        self.nav = Self::make_nav(view, self.hints.engine);
        self.fp = 0;
        Ok(())
    }

    /// The current fileview.
    pub fn view(&self) -> &FileView {
        self.nav.view()
    }

    /// The hints this file was opened with.
    pub fn hints(&self) -> &Hints {
        &self.hints
    }

    /// The communicator the file was opened on.
    pub fn comm(&self) -> &Comm {
        self.comm
    }

    /// The shared state (storage + lock).
    pub fn shared(&self) -> &SharedFile {
        &self.shared
    }

    fn stream_params(&self, offset: u64, count: u64, memtype: &Datatype) -> (u64, u64) {
        let stream_start = self.nav.view().etype_offset_to_stream(offset);
        let total = count * memtype.size();
        (stream_start, total)
    }

    fn packer(
        &self,
        hints: &Hints,
        memtype: &Datatype,
        count: u64,
        buf_len: usize,
    ) -> Result<MemPacker> {
        MemPacker::new(
            memtype,
            count,
            buf_len,
            hints.engine == Engine::ListBased,
            hints.effective_pack_threads(),
        )
    }

    /// Resolve what the next collective op runs with: the tuner's
    /// effective-hints snapshot (plus the matching nav/coll pair, which
    /// may be the alternate engine's) when autotune is armed; the
    /// open-time hints otherwise.
    fn plan_collective(&self) -> (Hints, &ViewNav, &CollState, Option<&FileTuner>) {
        let Some(t) = &self.tuner else {
            return (self.hints, &self.nav, &self.coll, None);
        };
        let mut eff = t.plan(&self.hints);
        if eff.engine != self.hints.engine {
            if let (Some(nav), Some(coll)) = (&self.nav_alt, &self.coll_alt) {
                return (eff, nav, coll, Some(t));
            }
            // alternate engine unavailable for this view: run the primary
            eff.engine = self.hints.engine;
        }
        (eff, &self.nav, &self.coll, Some(t))
    }

    // ----- independent access -------------------------------------------

    /// Enable or disable atomic mode (`MPI_File_set_atomicity`): with
    /// atomicity on, each independent access locks its entire file range,
    /// so conflicting concurrent accesses appear sequentially consistent
    /// instead of potentially interleaving at sieving-window granularity.
    pub fn set_atomicity(&mut self, atomic: bool) {
        self.atomic = atomic;
    }

    /// Whether atomic mode is enabled.
    pub fn atomicity(&self) -> bool {
        self.atomic
    }

    /// The file range an access touches (for atomic-mode locking).
    fn access_span(&self, stream_start: u64, total: u64) -> std::ops::Range<u64> {
        if total == 0 {
            return 0..0;
        }
        let lo = self.nav.stream_to_abs(stream_start);
        let hi = self.nav.stream_to_abs(stream_start + total - 1) + 1;
        lo..hi
    }

    /// Independent write of `count` instances of `memtype` from `buf` at
    /// view offset `offset` (etype units). Returns bytes written.
    pub fn write_at(&self, offset: u64, buf: &[u8], count: u64, memtype: &Datatype) -> Result<u64> {
        let _span = OBS_WRITE_AT_NS.span();
        let (stream_start, total) = self.stream_params(offset, count, memtype);
        lio_obs::profile::record_op(lio_obs::profile::OpClass::IndWrite, total);
        let packer = self.packer(&self.hints, memtype, count, buf.len())?;
        let _atomic_guard = self
            .atomic
            .then(|| self.shared.lock.lock(self.access_span(stream_start, total)));
        sieve::write_independent(
            self.shared.storage.as_ref(),
            &self.shared.lock,
            &self.nav,
            &packer,
            buf,
            stream_start,
            total,
            &self.hints,
            self.atomic,
        )
    }

    /// Independent read into `count` instances of `memtype` in `buf` at
    /// view offset `offset` (etype units). Holes and bytes past EOF read
    /// as zeros. Returns bytes read.
    pub fn read_at(
        &self,
        offset: u64,
        buf: &mut [u8],
        count: u64,
        memtype: &Datatype,
    ) -> Result<u64> {
        let _span = OBS_READ_AT_NS.span();
        let (stream_start, total) = self.stream_params(offset, count, memtype);
        lio_obs::profile::record_op(lio_obs::profile::OpClass::IndRead, total);
        let packer = self.packer(&self.hints, memtype, count, buf.len())?;
        let _atomic_guard = self
            .atomic
            .then(|| self.shared.lock.lock(self.access_span(stream_start, total)));
        sieve::read_independent(
            self.shared.storage.as_ref(),
            &self.nav,
            &packer,
            buf,
            stream_start,
            total,
            &self.hints,
        )
    }

    /// Independent contiguous-buffer write (`memtype` = bytes).
    pub fn write_bytes_at(&self, offset: u64, buf: &[u8]) -> Result<u64> {
        self.write_at(offset, buf, buf.len() as u64, &Datatype::byte())
    }

    /// Independent contiguous-buffer read (`memtype` = bytes).
    pub fn read_bytes_at(&self, offset: u64, buf: &mut [u8]) -> Result<u64> {
        let count = buf.len() as u64;
        self.read_at(offset, buf, count, &Datatype::byte())
    }

    // ----- collective access ---------------------------------------------

    /// Collective write (`MPI_File_write_at_all`): every rank of the
    /// communicator must call this, each with its own offset, buffer, and
    /// memtype. Performed with two-phase I/O.
    pub fn write_at_all(
        &self,
        offset: u64,
        buf: &[u8],
        count: u64,
        memtype: &Datatype,
    ) -> Result<u64> {
        let _span = OBS_WRITE_ALL_NS.span();
        let (stream_start, total) = self.stream_params(offset, count, memtype);
        lio_obs::profile::record_op(lio_obs::profile::OpClass::CollWrite, total);
        let (eff, nav, coll, tuner) = self.plan_collective();
        let packer = self.packer(&eff, memtype, count, buf.len())?;
        self.health_begin(true);
        let res = twophase::write_at_all(
            self.shared.storage.as_ref(),
            self.comm,
            coll,
            nav,
            &packer,
            buf,
            stream_start,
            total,
            &eff,
            tuner,
        );
        self.health_end(res)
    }

    /// Collective read (`MPI_File_read_at_all`).
    pub fn read_at_all(
        &self,
        offset: u64,
        buf: &mut [u8],
        count: u64,
        memtype: &Datatype,
    ) -> Result<u64> {
        let _span = OBS_READ_ALL_NS.span();
        let (stream_start, total) = self.stream_params(offset, count, memtype);
        lio_obs::profile::record_op(lio_obs::profile::OpClass::CollRead, total);
        let (eff, nav, coll, tuner) = self.plan_collective();
        let packer = self.packer(&eff, memtype, count, buf.len())?;
        self.health_begin(false);
        let res = twophase::read_at_all(
            self.shared.storage.as_ref(),
            self.comm,
            coll,
            nav,
            &packer,
            buf,
            stream_start,
            total,
            &eff,
            tuner,
        );
        self.health_end(res)
    }

    /// Stamp the health heartbeat slot for a starting collective op.
    fn health_begin(&self, write: bool) {
        let op = self.ops.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        lio_obs::health::op_begin(op, write);
    }

    /// Close out the health slot for a finished collective op and
    /// surface a watchdog abort. The engine has returned, so every rank
    /// already reached the closing sync — converting the parked stall
    /// to [`IoError::Stalled`] here strands no peer. An engine error
    /// (e.g. a fault abort) wins over a parked stall.
    fn health_end(&self, res: Result<u64>) -> Result<u64> {
        if !lio_obs::health::enabled() {
            return res;
        }
        lio_obs::health::op_end();
        match (res, lio_obs::health::take_stall(self.comm.rank() as u32)) {
            (Ok(_), Some(info)) => Err(IoError::Stalled(info)),
            (res, _) => res,
        }
    }

    // ----- individual file pointer ----------------------------------------

    /// Set the individual file pointer (etype units).
    pub fn seek(&mut self, offset: u64) {
        self.fp = offset;
    }

    /// The individual file pointer (etype units).
    pub fn tell(&self) -> u64 {
        self.fp
    }

    /// Write at the file pointer and advance it.
    pub fn write(&mut self, buf: &[u8], count: u64, memtype: &Datatype) -> Result<u64> {
        let n = self.write_at(self.fp, buf, count, memtype)?;
        self.advance(count, memtype)?;
        Ok(n)
    }

    /// Read at the file pointer and advance it.
    pub fn read(&mut self, buf: &mut [u8], count: u64, memtype: &Datatype) -> Result<u64> {
        let n = self.read_at(self.fp, buf, count, memtype)?;
        self.advance(count, memtype)?;
        Ok(n)
    }

    fn advance(&mut self, count: u64, memtype: &Datatype) -> Result<()> {
        let esize = self.nav.view().etype.size();
        let bytes = count * memtype.size();
        if !bytes.is_multiple_of(esize) {
            return Err(IoError::Usage(format!(
                "transfer of {bytes} bytes is not a whole number of etypes (size {esize})"
            )));
        }
        self.fp += bytes / esize;
        Ok(())
    }

    // ----- shared file pointer ---------------------------------------------

    /// Write at the *shared* file pointer (one pointer per open file,
    /// like `MPI_File_write_shared`). Concurrent callers are serialized
    /// by an atomic reservation: each sees a distinct, contiguous range
    /// of etype offsets in some order.
    ///
    /// All ranks must use the same fileview for shared-pointer access
    /// (the MPI-IO requirement).
    pub fn write_shared(&self, buf: &[u8], count: u64, memtype: &Datatype) -> Result<u64> {
        let etypes = self.etypes_of(count, memtype)?;
        let at = self
            .shared
            .shared_fp
            .fetch_add(etypes, std::sync::atomic::Ordering::SeqCst);
        self.write_at(at, buf, count, memtype)
    }

    /// Read at the shared file pointer (like `MPI_File_read_shared`).
    pub fn read_shared(&self, buf: &mut [u8], count: u64, memtype: &Datatype) -> Result<u64> {
        let etypes = self.etypes_of(count, memtype)?;
        let at = self
            .shared
            .shared_fp
            .fetch_add(etypes, std::sync::atomic::Ordering::SeqCst);
        self.read_at(at, buf, count, memtype)
    }

    /// Set the shared file pointer (like `MPI_File_seek_shared`; call
    /// with the same value from every rank).
    pub fn seek_shared(&self, offset: u64) {
        self.shared
            .shared_fp
            .store(offset, std::sync::atomic::Ordering::SeqCst);
    }

    /// The shared file pointer's current value (etype units).
    pub fn tell_shared(&self) -> u64 {
        self.shared
            .shared_fp
            .load(std::sync::atomic::Ordering::SeqCst)
    }

    fn etypes_of(&self, count: u64, memtype: &Datatype) -> Result<u64> {
        let esize = self.nav.view().etype.size();
        let bytes = count * memtype.size();
        if !bytes.is_multiple_of(esize) {
            return Err(IoError::Usage(format!(
                "transfer of {bytes} bytes is not a whole number of etypes (size {esize})"
            )));
        }
        Ok(bytes / esize)
    }

    // ----- inquiries ---------------------------------------------------------

    /// The absolute file byte offset of a view offset (etype units) —
    /// `MPI_File_get_byte_offset`. Uses the engine's navigation, so this
    /// is `O(Nblock)` on the list-based engine and `O(depth)` listless.
    pub fn byte_offset(&self, offset: u64) -> u64 {
        self.nav
            .stream_to_abs(self.nav.view().etype_offset_to_stream(offset))
    }

    /// The view offset (etype units) of the first whole etype at or after
    /// the absolute byte `abs` — the inverse of [`File::byte_offset`].
    pub fn offset_of_byte(&self, abs: u64) -> u64 {
        let esize = self.nav.view().etype.size();
        self.nav.abs_to_stream(abs).div_ceil(esize)
    }

    /// Flush the storage backend, retrying transient flush faults with
    /// bounded backoff ([`lio_pfs::retry`]).
    pub fn sync(&self) -> Result<()> {
        lio_pfs::retry::sync_with_retry(self.shared.storage.as_ref())?;
        Ok(())
    }

    /// File length in bytes.
    pub fn len(&self) -> u64 {
        self.shared.storage.len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pre-size the file (collective convenience; rank 0 performs it).
    pub fn preallocate(&self, len: u64) -> Result<()> {
        if self.comm.rank() == 0 {
            self.shared.storage.set_len(len)?;
        }
        self.comm.barrier();
        Ok(())
    }
}
