//! Error type for the MPI-IO layer.

use std::fmt;
use std::io;

use lio_datatype::TypeError;

/// Errors from file operations.
#[derive(Debug)]
pub enum IoError {
    /// Underlying storage failure.
    Storage(io::Error),
    /// Invalid datatype for the requested role.
    Datatype(TypeError),
    /// The call violated an interface contract (wrong buffer size,
    /// unsupported hint combination, ...).
    Usage(String),
    /// The health watchdog aborted a collective op that made no
    /// progress past its deadline. Carries the culprit rank, the phase
    /// it was stuck in, and how far the op had gotten; every peer
    /// still reached the closing sync before this surfaced (see
    /// `lio_obs::health`).
    Stalled(lio_obs::health::StallInfo),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Storage(e) => write!(f, "storage error: {e}"),
            IoError::Datatype(e) => write!(f, "datatype error: {e}"),
            IoError::Usage(s) => write!(f, "usage error: {s}"),
            IoError::Stalled(info) => write!(f, "collective I/O stalled: {info}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Storage(e) => Some(e),
            IoError::Datatype(e) => Some(e),
            IoError::Usage(_) | IoError::Stalled(_) => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Storage(e)
    }
}

impl From<TypeError> for IoError {
    fn from(e: TypeError) -> Self {
        IoError::Datatype(e)
    }
}

/// Result alias for file operations.
pub type Result<T> = std::result::Result<T, IoError>;
