//! Pipelined two-phase collective I/O.
//!
//! The monolithic schedule in [`crate::twophase`] ships each AP's whole
//! per-domain contribution in one message, then lets the IOP walk its
//! domain window by window — exchange and storage strictly in sequence,
//! with transient IOP memory proportional to the collective access. This
//! module replaces the schedule (not the data placement, which is shared
//! with `twophase`) with a **windowed, credit-controlled pipeline**:
//!
//! * APs chop their contribution along a window grid anchored at the
//!   IOP's domain start (`win_j = dom.0 + j·cb_buffer_size`) and ship one
//!   message per non-empty window, at most `pipeline_depth` un-credited
//!   messages in flight per (AP, IOP) pair;
//! * the IOP owns `pipeline_depth` window buffers and runs storage I/O on
//!   two small worker lanes (read and write), so the read-modify-write of
//!   window `k` overlaps receiving and placing window `k+1` — and, with
//!   depth ≥ 2, the pre-read of `k+1` overlaps the write-back of `k`;
//! * the IOP grants one credit per consumed message, which bounds its
//!   buffering at `O(pipeline_depth · cb_buffer_size · nprocs)` no matter
//!   how large the collective access is.
//!
//! Deadlock freedom: the IOP consumes windows strictly in domain order
//! and APs send them in the same order, so every message the *front*
//! window still needs comes from an AP whose earlier messages have all
//! been credited — such an AP always holds a free credit, hence the front
//! window can always complete.
//!
//! Both engines ride the same pipeline. The ol-list (list-based) or the
//! cached fileview (listless) is used to *predict*, on both sides
//! independently, how many bytes each AP contributes to each window, so
//! no per-window metadata is exchanged — window messages are pure data.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::time::Duration;

use lio_mpi::Comm;
use lio_obs::health::{self, HbPhase};
use lio_obs::{LazyCounter, LazyGauge};
use lio_pfs::{SqBuf, Sqe, StorageFile, SubmissionQueue};

use crate::autotune::{FileTuner, OpOutcome};
use crate::error::{IoError, Result};
use crate::hints::{Engine, Hints};
use crate::packer::MemPacker;
use crate::sieve::{read_window, write_window};
use crate::twophase::{
    access_range, build_access_list, file_domains, parse_ol_list, stream_intersection, CollState,
    Coverage, MergeView, OBS_EXCH_DATA_BYTES, OBS_EXCH_LIST_BYTES, OBS_FAULT_ABORTS, OBS_R_CALLS,
    OBS_R_EXCH_NS, OBS_R_IO_NS, OBS_R_PACK_NS, OBS_WINDOWS, OBS_W_CALLS, OBS_W_EXCH_NS,
    OBS_W_IO_NS, OBS_W_PACK_NS, TAG_TP_CREDIT, TAG_TP_DATA, TAG_TP_LIST, TAG_TP_RDATA, TAG_TP_WIN,
};
use crate::view::{FfNav, ViewNav};

// Pipeline-specific metrics, alongside the shared two-phase breakdown.
// `overlap_ns` is the portion of storage-lane time hidden behind the
// exchange: `(exchange_ns + pack_ns + io_ns) − wall`, i.e. how much
// longer the phases would have taken run back to back. The gauges track
// high-water marks: concurrently in-flight windows on the IOP, and total
// bytes the IOP holds (window buffers + queued messages) — the quantity
// the credit protocol bounds.
static OBS_W_OVERLAP_NS: LazyCounter = LazyCounter::new("core.coll.write.overlap_ns");
static OBS_R_OVERLAP_NS: LazyCounter = LazyCounter::new("core.coll.read.overlap_ns");
static OBS_INFLIGHT_WINDOWS: LazyGauge = LazyGauge::new("core.coll.pipeline.inflight_windows");
static OBS_PEAK_BUFFERED: LazyGauge = LazyGauge::new("core.coll.pipeline.peak_buffered_bytes");

/// How long the event loop blocks on the storage-done channel when it has
/// nothing else to do. Only a latency bound on reacting to newly arrived
/// messages; completions wake it immediately.
const IO_WAIT_SLICE: Duration = Duration::from_micros(500);

// ---------------------------------------------------------------------
// Incremental ol-list cursors (list-based engine)
// ---------------------------------------------------------------------

/// Position inside a parsed ol-list: segment index + byte offset into it.
#[derive(Clone, Copy, Default)]
struct ListPos {
    seg: usize,
    off: u64,
}

/// Absolute offset of the next unconsumed byte, `None` when exhausted.
fn segs_next_abs(segs: &[(u64, u64)], pos: ListPos) -> Option<u64> {
    segs.get(pos.seg).map(|&(off, _)| off + pos.off)
}

/// Advance `pos` past every byte below `abs_end`; returns the byte count.
fn segs_advance(segs: &[(u64, u64)], pos: &mut ListPos, abs_end: u64) -> u64 {
    let mut n = 0u64;
    while let Some(&(off, len)) = segs.get(pos.seg) {
        let cur = off + pos.off;
        if cur >= abs_end {
            break;
        }
        let take = (len - pos.off).min(abs_end - cur);
        n += take;
        pos.off += take;
        if pos.off == len {
            pos.seg += 1;
            pos.off = 0;
        }
    }
    n
}

/// Scatter `data` into the window buffer `fb` (covering file range
/// `[fb_lo, fb_lo + fb.len())`) at the offsets the list dictates.
fn segs_place(segs: &[(u64, u64)], pos: &mut ListPos, data: &[u8], fb: &mut [u8], fb_lo: u64) {
    let mut d = 0usize;
    while d < data.len() {
        let (off, len) = segs[pos.seg];
        let cur = off + pos.off;
        let take = (len - pos.off).min((data.len() - d) as u64) as usize;
        let o = (cur - fb_lo) as usize;
        fb[o..o + take].copy_from_slice(&data[d..d + take]);
        d += take;
        pos.off += take as u64;
        if pos.off == len {
            pos.seg += 1;
            pos.off = 0;
        }
    }
}

/// Gather `want` bytes from the window buffer into `out`, list order.
fn segs_extract(
    segs: &[(u64, u64)],
    pos: &mut ListPos,
    fb: &[u8],
    fb_lo: u64,
    mut want: u64,
    out: &mut Vec<u8>,
) {
    while want > 0 {
        let (off, len) = segs[pos.seg];
        let cur = off + pos.off;
        let take = (len - pos.off).min(want);
        let o = (cur - fb_lo) as usize;
        out.extend_from_slice(&fb[o..o + take as usize]);
        want -= take;
        pos.off += take;
        if pos.off == len {
            pos.seg += 1;
            pos.off = 0;
        }
    }
}

/// Advance `pos` by `n` bytes without touching any buffer (error paths).
fn segs_skip(segs: &[(u64, u64)], pos: &mut ListPos, mut n: u64) {
    while n > 0 {
        let (_, len) = segs[pos.seg];
        let take = (len - pos.off).min(n);
        n -= take;
        pos.off += take;
        if pos.off == len {
            pos.seg += 1;
            pos.off = 0;
        }
    }
}

// ---------------------------------------------------------------------
// AP side: windowed producers
// ---------------------------------------------------------------------

/// One AP→IOP data stream, produced window by window under credit
/// control. The window grid is recomputed from the navigator each time,
/// so `ff_size`-style cursor state is just the stream position.
struct ApSend {
    iop: usize,
    dom: (u64, u64),
    s_hi: u64,
    s_cursor: u64,
    /// Sent but not yet credited window messages.
    in_flight: usize,
}

impl ApSend {
    /// The next window's stream interval `(lo, len)`, advancing the
    /// cursor; `None` when this stream is fully produced.
    fn next_window(&mut self, nav: &ViewNav, cb: u64) -> Option<(u64, u64)> {
        if self.s_cursor >= self.s_hi {
            return None;
        }
        let next_abs = nav.stream_to_abs(self.s_cursor);
        let j = (next_abs - self.dom.0) / cb;
        let win_end = (self.dom.0 + (j + 1) * cb).min(self.dom.1);
        let take = nav
            .abs_to_stream(win_end)
            .min(self.s_hi)
            .saturating_sub(self.s_cursor);
        debug_assert!(take > 0, "window grid skipped the cursor");
        let lo = self.s_cursor;
        self.s_cursor += take;
        Some((lo, take))
    }

    fn finished(&self) -> bool {
        self.s_cursor >= self.s_hi && self.in_flight == 0
    }
}

/// Pack and send window messages for every stream with spare credit.
#[allow(clippy::too_many_arguments)]
fn ap_pump(
    aps: &mut [Option<ApSend>],
    nav: &ViewNav,
    comm: &Comm,
    packer: &MemPacker,
    user: &[u8],
    stream_start: u64,
    depth: usize,
    cb: u64,
    obs: bool,
    pack_ns: &mut u64,
) -> bool {
    let mut progressed = false;
    for ap in aps.iter_mut().flatten() {
        while ap.in_flight < depth {
            let Some((lo, take)) = ap.next_window(nav, cb) else {
                break;
            };
            health::beat(HbPhase::Pack);
            let t = lio_obs::now();
            let sp = lio_obs::trace::span_ab("pack", take, lo);
            // zero-copy fast path: contiguous memtypes lift the window
            // straight out of the user buffer, skipping the zero-fill
            let msg = match packer.contig_slice(user, lo - stream_start, take) {
                Some(s) => s.to_vec(),
                None => {
                    let mut m = vec![0u8; take as usize];
                    let got = packer.pack(user, lo - stream_start, &mut m);
                    debug_assert_eq!(got as u64, take);
                    m
                }
            };
            drop(sp);
            *pack_ns += lio_obs::elapsed_ns(t);
            if obs {
                OBS_EXCH_DATA_BYTES.add(take);
            }
            health::beat_bytes(HbPhase::Exchange, take);
            let sp = lio_obs::trace::span_ab("exch.send", ap.iop as u64, take);
            comm.send_vec(ap.iop, TAG_TP_WIN, msg);
            drop(sp);
            ap.in_flight += 1;
            progressed = true;
        }
    }
    progressed
}

// ---------------------------------------------------------------------
// IOP side: window planner shared by the write and read pipelines
// ---------------------------------------------------------------------

/// Covered-window test for the write pipeline (either engine's flavour).
enum Cover<'a> {
    List(Coverage),
    Merge(&'a MergeView),
    None,
}

/// One AP as seen by the IOP: its announced stream interval, its access
/// description (ol-list or cached fileview), and two cursors — `expect`
/// predicts per-window byte counts ahead of arrival, `consume` walks the
/// same description again when data is actually placed or extracted.
struct Peer {
    s_lo: u64,
    s_hi: u64,
    /// List-based: the parsed ol-list. Listless peers use `navs` instead.
    segs: Option<Vec<(u64, u64)>>,
    expect_stream: u64,
    expect_pos: ListPos,
    consume_stream: u64,
    consume_pos: ListPos,
    /// Received, not yet consumed window messages (≤ depth by credits).
    msgq: VecDeque<Vec<u8>>,
}

impl Peer {
    fn new(s_lo: u64, s_hi: u64, segs: Option<Vec<(u64, u64)>>) -> Peer {
        Peer {
            s_lo,
            s_hi,
            segs,
            expect_stream: s_lo,
            expect_pos: ListPos::default(),
            consume_stream: s_lo,
            consume_pos: ListPos::default(),
            msgq: VecDeque::new(),
        }
    }

    /// Absolute offset of this peer's next unplanned byte.
    fn next_abs(&self, nav: Option<&FfNav>) -> Option<u64> {
        if self.expect_stream >= self.s_hi {
            return None;
        }
        match &self.segs {
            Some(segs) => segs_next_abs(segs, self.expect_pos),
            None => Some(
                nav.expect("listless peer has a cached view")
                    .stream_to_abs(self.expect_stream),
            ),
        }
    }

    /// Bytes this peer contributes below `abs_end`; advances `expect`.
    fn expect_advance(&mut self, nav: Option<&FfNav>, abs_end: u64) -> u64 {
        if self.expect_stream >= self.s_hi {
            return 0;
        }
        let take = match &self.segs {
            Some(segs) => segs_advance(segs, &mut self.expect_pos, abs_end),
            None => nav
                .expect("listless peer has a cached view")
                .abs_to_stream(abs_end)
                .min(self.s_hi)
                .saturating_sub(self.expect_stream),
        };
        self.expect_stream += take;
        take
    }

    /// Place one window message into the buffer; advances `consume`.
    fn place(&mut self, nav: Option<&FfNav>, data: &[u8], fb: &mut [u8], fb_lo: u64) {
        match &self.segs {
            Some(segs) => segs_place(segs, &mut self.consume_pos, data, fb, fb_lo),
            None => {
                let placed = nav.expect("listless peer has a cached view").place_window(
                    data,
                    self.consume_stream,
                    fb,
                    fb_lo,
                );
                debug_assert_eq!(placed, data.len());
            }
        }
        self.consume_stream += data.len() as u64;
    }

    /// Gather `take` bytes of this peer's window share; advances `consume`.
    fn extract(
        &mut self,
        nav: Option<&FfNav>,
        fb: &[u8],
        fb_lo: u64,
        take: u64,
        out: &mut Vec<u8>,
    ) {
        match &self.segs {
            Some(segs) => segs_extract(segs, &mut self.consume_pos, fb, fb_lo, take, out),
            None => {
                let start = out.len();
                out.resize(start + take as usize, 0);
                let got = nav
                    .expect("listless peer has a cached view")
                    .extract_window(fb, fb_lo, self.consume_stream, &mut out[start..]);
                debug_assert_eq!(got as u64, take);
            }
        }
        self.consume_stream += take;
    }

    /// Advance `consume` without touching buffers (after a fatal error).
    fn skip(&mut self, take: u64) {
        if let Some(segs) = &self.segs {
            segs_skip(segs, &mut self.consume_pos, take);
        }
        self.consume_stream += take;
    }
}

/// One planned window: the clipped storage range and each peer's share.
struct WindowPlan {
    io_lo: u64,
    io_hi: u64,
    takes: Vec<u64>,
    /// Fully covered by incoming data — the RMW pre-read can be skipped.
    dense: bool,
}

/// IOP-side window planner. Both the AP and the IOP derive the same
/// window grid (anchored at `dom.0`) from the same access descriptions,
/// so the k-th non-empty window of a peer is exactly its k-th message.
struct Planner<'a> {
    dom: (u64, u64),
    cb: u64,
    data_lo: u64,
    data_hi: u64,
    peers: Vec<Peer>,
    navs: Option<&'a [FfNav]>,
    cover: Cover<'a>,
}

impl<'a> Planner<'a> {
    /// Blocking header collection: every rank has already sent its
    /// announcement (and ol-list) before any rank enters its pipeline
    /// loop, so waiting here cannot deadlock. Completes receives in
    /// arrival order. Returns `None` when no peer contributes data.
    fn collect(
        comm: &Comm,
        dom: (u64, u64),
        cb: u64,
        engine: Engine,
        state: &'a CollState,
        detect_dense: bool,
    ) -> Result<Option<Planner<'a>>> {
        let p_n = comm.size();
        let mut hdrs: Vec<Option<Vec<u8>>> = (0..p_n).map(|_| None).collect();
        let mut lists: Vec<Option<Vec<u8>>> = (0..p_n).map(|_| None).collect();
        let sp = lio_obs::trace::span("exch.wait");
        match engine {
            Engine::ListBased => {
                let mut reqs: Vec<lio_mpi::Request> = Vec::with_capacity(2 * p_n);
                for p in 0..p_n {
                    reqs.push(comm.irecv(p, TAG_TP_LIST));
                    reqs.push(comm.irecv(p, TAG_TP_DATA));
                }
                for _ in 0..2 * p_n {
                    let (i, src, payload) = comm.wait_any(&mut reqs);
                    if i % 2 == 0 {
                        lists[src] = Some(payload);
                    } else {
                        // header arrival order = rank entry order into the
                        // collective: the per-op skew baseline
                        health::window_mark(0, src as u32);
                        hdrs[src] = Some(payload);
                    }
                }
            }
            Engine::Listless => {
                let mut reqs: Vec<lio_mpi::Request> =
                    (0..p_n).map(|p| comm.irecv(p, TAG_TP_DATA)).collect();
                for _ in 0..p_n {
                    let (_, src, payload) = comm.wait_any(&mut reqs);
                    health::window_mark(0, src as u32);
                    hdrs[src] = Some(payload);
                }
            }
        }
        drop(sp);
        health::window_flush();
        let navs = match engine {
            Engine::ListBased => None,
            Engine::Listless => Some(
                state
                    .remote_navs
                    .as_deref()
                    .expect("listless collective requires cached fileviews"),
            ),
        };
        let mut peers = Vec::with_capacity(p_n);
        for p in 0..p_n {
            let hdr = hdrs[p].take().expect("all headers received");
            let s_lo = u64::from_le_bytes(hdr[0..8].try_into().expect("s_lo"));
            let s_hi = u64::from_le_bytes(hdr[8..16].try_into().expect("s_hi"));
            let segs = match engine {
                Engine::ListBased => Some(parse_ol_list(
                    lists[p].take().expect("all lists received").as_slice(),
                )?),
                Engine::Listless => None,
            };
            peers.push(Peer::new(s_lo, s_hi, segs));
        }
        // Clip the domain to where data actually lands (as the monolithic
        // schedule does), so pipelined and monolithic collectives produce
        // byte-identical files.
        let mut data_lo: Option<u64> = None;
        let mut data_hi: Option<u64> = None;
        for (p, peer) in peers.iter().enumerate() {
            if peer.s_hi <= peer.s_lo {
                continue;
            }
            let (lo, hi) = match &peer.segs {
                Some(segs) => {
                    if segs.is_empty() {
                        continue;
                    }
                    let first = segs[0].0;
                    let last = segs[segs.len() - 1];
                    (first, last.0 + last.1)
                }
                None => {
                    let nav = &navs.expect("listless views")[p];
                    (
                        nav.stream_to_abs(peer.s_lo),
                        nav.stream_to_abs(peer.s_hi - 1) + 1,
                    )
                }
            };
            data_lo = Some(data_lo.map_or(lo, |v| v.min(lo)));
            data_hi = Some(data_hi.map_or(hi, |v| v.max(hi)));
        }
        let (Some(data_lo), Some(data_hi)) = (data_lo, data_hi) else {
            return Ok(None);
        };
        let cover = if detect_dense {
            match engine {
                Engine::ListBased => {
                    let refs: Vec<&[(u64, u64)]> =
                        peers.iter().filter_map(|p| p.segs.as_deref()).collect();
                    Cover::List(Coverage::merge_segs(&refs))
                }
                Engine::Listless => state.merge.as_ref().map_or(Cover::None, Cover::Merge),
            }
        } else {
            Cover::None
        };
        Ok(Some(Planner {
            dom,
            cb,
            data_lo: data_lo.max(dom.0),
            data_hi: data_hi.min(dom.1),
            peers,
            navs,
            cover,
        }))
    }

    /// Plan the next non-empty window in domain order, advancing every
    /// peer's `expect` cursor past it. `None` when all data is planned.
    fn next_plan(&mut self) -> Option<WindowPlan> {
        let navs = self.navs;
        let mut min_abs: Option<u64> = None;
        for (p, peer) in self.peers.iter().enumerate() {
            if let Some(a) = peer.next_abs(navs.map(|n| &n[p])) {
                min_abs = Some(min_abs.map_or(a, |m| m.min(a)));
            }
        }
        let a = min_abs?;
        let j = (a - self.dom.0) / self.cb;
        let win = self.dom.0 + j * self.cb;
        let grid_end = (win + self.cb).min(self.dom.1);
        let mut takes = vec![0u64; self.peers.len()];
        for (p, take) in takes.iter_mut().enumerate() {
            *take = self.peers[p].expect_advance(navs.map(|n| &n[p]), grid_end);
        }
        let io_lo = win.max(self.data_lo);
        let io_hi = grid_end.min(self.data_hi);
        debug_assert!(io_lo < io_hi, "planned window holds no data");
        let dense = match &mut self.cover {
            Cover::List(c) => c.covered(io_lo, io_hi),
            Cover::Merge(m) => m.covered(io_lo, io_hi),
            Cover::None => false,
        };
        Some(WindowPlan {
            io_lo,
            io_hi,
            takes,
            dense,
        })
    }
}

// ---------------------------------------------------------------------
// Storage lanes
// ---------------------------------------------------------------------

/// A window-buffer job for a storage lane.
struct Job {
    seq: u64,
    off: u64,
    len: usize,
    buf: Vec<u8>,
}

/// A completed storage-lane job, returning buffer ownership.
enum LaneDone {
    Read {
        seq: u64,
        buf: Vec<u8>,
        res: Result<()>,
    },
    Write {
        buf: Vec<u8>,
        res: Result<()>,
    },
}

/// Spawn the pre-read lane inside `scope`.
///
/// Backends that expose a [`SubmissionQueue`] get the ring variant:
/// every job is submitted the moment it arrives (whole-window batch
/// submission — the queue's depth bound is the only backpressure) and a
/// harvester forwards completions *in device order*. Consumers
/// seq-match, so reordering is fine. Synchronous backends get the
/// classic one-thread lane, whose completions are FIFO.
fn spawn_read_lane<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    storage: &'scope dyn StorageFile,
    rx: Receiver<Job>,
    done: Sender<LaneDone>,
    io_ns: &'scope AtomicU64,
) {
    if let Some(queue) = storage.submission() {
        spawn_ring_lane(scope, queue, rx, done, io_ns, false);
        return;
    }
    let th = lio_obs::trace::thread_handle();
    let hh = health::thread_handle();
    scope.spawn(move || {
        lio_obs::trace::adopt(th);
        health::adopt(hh);
        lio_pfs::take_spin_ns();
        for job in rx.iter() {
            let Job {
                seq,
                off,
                len,
                mut buf,
            } = job;
            let t = lio_obs::now();
            let sp = lio_obs::trace::span_ab("io.read", off, len as u64);
            let res = read_window(storage, off, &mut buf[..len]);
            drop(sp);
            // a slow device still completes jobs: each one refreshes the
            // owning rank's heartbeat, so slow never reads as stuck
            health::beat_bytes(HbPhase::Io, len as u64);
            // book modelled device time only: the throttle's busy-wait
            // tail is CPU burn and would inflate io_ns / overlap_ns
            let spin = lio_pfs::take_spin_ns();
            io_ns.fetch_add(
                lio_obs::elapsed_ns(t).saturating_sub(spin),
                Ordering::Relaxed,
            );
            if done.send(LaneDone::Read { seq, buf, res }).is_err() {
                break;
            }
        }
    });
}

/// Spawn the write-back lane inside `scope` (ring variant when the
/// backend exposes a [`SubmissionQueue`]; see [`spawn_read_lane`]).
fn spawn_write_lane<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    storage: &'scope dyn StorageFile,
    rx: Receiver<Job>,
    done: Sender<LaneDone>,
    io_ns: &'scope AtomicU64,
) {
    if let Some(queue) = storage.submission() {
        spawn_ring_lane(scope, queue, rx, done, io_ns, true);
        return;
    }
    let th = lio_obs::trace::thread_handle();
    let hh = health::thread_handle();
    scope.spawn(move || {
        lio_obs::trace::adopt(th);
        health::adopt(hh);
        lio_pfs::take_spin_ns();
        for job in rx.iter() {
            let t = lio_obs::now();
            let sp = lio_obs::trace::span_ab("io.write", job.off, job.len as u64);
            let res = write_window(storage, job.off, &job.buf[..job.len]);
            drop(sp);
            health::beat_bytes(HbPhase::Io, job.len as u64);
            let spin = lio_pfs::take_spin_ns();
            io_ns.fetch_add(
                lio_obs::elapsed_ns(t).saturating_sub(spin),
                Ordering::Relaxed,
            );
            if done.send(LaneDone::Write { buf: job.buf, res }).is_err() {
                break;
            }
        }
    });
}

/// The submission-queue storage lane: a submitter thread pushes every
/// arriving job straight onto the backend's ring (the window seq is the
/// submission token), and a harvester thread turns completions — in
/// whatever order the device produces them — back into [`LaneDone`]s.
///
/// Window buffers travel through the ring as [`SqBuf::Owned`] and come
/// back at full capacity (the queue never truncates), which the engines'
/// buffer recycling depends on. Short reads are EOF by the queue's
/// contract, so the harvester zero-fills the tail exactly like the
/// synchronous lane's `read_window`. `io_ns` books the device service
/// time reported per completion, keeping the overlap accounting
/// comparable with the synchronous lanes.
fn spawn_ring_lane<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    queue: &'scope SubmissionQueue,
    rx: Receiver<Job>,
    done: Sender<LaneDone>,
    io_ns: &'scope AtomicU64,
    write: bool,
) {
    let (cq_tx, cq_rx) = mpsc::channel();
    let th = lio_obs::trace::thread_handle();
    let hh = health::thread_handle();
    scope.spawn(move || {
        lio_obs::trace::adopt(th);
        health::adopt(hh);
        for job in rx.iter() {
            let name = if write {
                "io.submit.write"
            } else {
                "io.submit.read"
            };
            let _sp = lio_obs::trace::span_ab(name, job.off, job.len as u64);
            let sqe = if write {
                Sqe::write(job.seq, job.off, SqBuf::Owned(job.buf), job.len)
            } else {
                Sqe::read(job.seq, job.off, SqBuf::Owned(job.buf), job.len)
            };
            queue.submit(sqe, &cq_tx);
        }
        // cq_tx drops here; the harvester exits once in-flight entries
        // have all completed.
    });
    let th = lio_obs::trace::thread_handle();
    let hh = health::thread_handle();
    scope.spawn(move || {
        lio_obs::trace::adopt(th);
        health::adopt(hh);
        for cqe in cq_rx.iter() {
            health::beat_bytes(HbPhase::Io, cqe.len as u64);
            io_ns.fetch_add(cqe.service_ns, Ordering::Relaxed);
            let mut buf = cqe
                .buf
                .expect("ring completions return their buffer")
                .into_owned()
                .expect("the lane submits owned buffers");
            let d = if write {
                LaneDone::Write {
                    buf,
                    res: cqe.result.map(|_| ()).map_err(IoError::from),
                }
            } else {
                let res = match cqe.result {
                    Ok(n) => {
                        buf[n..cqe.len].fill(0); // past EOF reads as zeros
                        Ok(())
                    }
                    Err(e) => Err(IoError::from(e)),
                };
                LaneDone::Read {
                    seq: cqe.token,
                    buf,
                    res,
                }
            };
            if done.send(d).is_err() {
                break;
            }
        }
    });
}

// ---------------------------------------------------------------------
// IOP write pipeline
// ---------------------------------------------------------------------

/// The double-buffered IOP write loop's state machine. Windows move
/// through: planned → (pre-read on the read lane | dense) → front
/// placement once every contributor's message arrived → write lane.
struct IopWrite<'a> {
    planner: Planner<'a>,
    depth: usize,
    queue: VecDeque<ScheduledWin>,
    free_bufs: Vec<Vec<u8>>,
    bufs_allocated: usize,
    next_seq: u64,
    planner_done: bool,
    reads_outstanding: usize,
    writes_outstanding: usize,
    msgq_bytes: usize,
    fatal: Option<IoError>,
}

struct ScheduledWin {
    seq: u64,
    plan: WindowPlan,
    /// Present (and `ready`) once the pre-read returned, or immediately
    /// for dense windows.
    buf: Option<Vec<u8>>,
    ready: bool,
}

impl<'a> IopWrite<'a> {
    fn new(planner: Planner<'a>, depth: usize) -> IopWrite<'a> {
        IopWrite {
            planner,
            depth,
            queue: VecDeque::new(),
            free_bufs: Vec::new(),
            bufs_allocated: 0,
            next_seq: 0,
            planner_done: false,
            reads_outstanding: 0,
            writes_outstanding: 0,
            msgq_bytes: 0,
            fatal: None,
        }
    }

    fn done(&self) -> bool {
        self.planner_done
            && self.queue.is_empty()
            && self.reads_outstanding == 0
            && self.writes_outstanding == 0
    }

    fn storage_pending(&self) -> bool {
        self.reads_outstanding + self.writes_outstanding > 0
    }

    fn buffered_bytes(&self) -> u64 {
        (self.msgq_bytes + self.bufs_allocated * self.planner.cb as usize) as u64
    }

    fn on_done(&mut self, d: LaneDone) {
        match d {
            LaneDone::Read { seq, buf, res } => {
                self.reads_outstanding -= 1;
                if let Err(e) = res {
                    self.fatal.get_or_insert(e);
                }
                match self.queue.iter_mut().find(|s| s.seq == seq) {
                    Some(s) => {
                        s.buf = Some(buf);
                        s.ready = true;
                    }
                    None => self.free_bufs.push(buf),
                }
            }
            LaneDone::Write { buf, res } => {
                self.writes_outstanding -= 1;
                if let Err(e) = res {
                    self.fatal.get_or_insert(e);
                }
                self.free_bufs.push(buf);
            }
        }
    }

    /// One scheduling round: absorb completions and messages, keep up to
    /// `depth` windows in flight, place + write-back the front window as
    /// soon as its pre-read and all its messages are in.
    fn pump(
        &mut self,
        comm: &Comm,
        rjob_tx: &Sender<Job>,
        wjob_tx: &Sender<Job>,
        done_rx: &Receiver<LaneDone>,
        obs: bool,
        pack_ns: &mut u64,
    ) -> bool {
        let mut progressed = false;
        while let Ok(d) = done_rx.try_recv() {
            self.on_done(d);
            progressed = true;
        }
        while let Some((src, msg)) = comm.try_recv_any(TAG_TP_WIN) {
            // attribute the arrival to the window the consumer is waiting
            // on (+1 keeps it distinct from the header round's window 0):
            // whoever delivers last for the front window is the straggler
            // holding the pipeline back
            let front = self.queue.front().map_or(self.next_seq, |s| s.seq);
            health::window_mark(front + 1, src as u32);
            self.msgq_bytes += msg.len();
            self.planner.peers[src].msgq.push_back(msg);
            if obs {
                OBS_PEAK_BUFFERED.record_max(self.buffered_bytes());
            }
            progressed = true;
        }
        // Schedule while a window buffer is free (≤ depth exist, ever).
        while !self.planner_done {
            let buf = if let Some(b) = self.free_bufs.pop() {
                b
            } else if self.bufs_allocated < self.depth {
                self.bufs_allocated += 1;
                if obs {
                    OBS_PEAK_BUFFERED.record_max(self.buffered_bytes());
                }
                vec![0u8; self.planner.cb as usize]
            } else {
                break;
            };
            match self.planner.next_plan() {
                Some(plan) => {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    if obs {
                        OBS_WINDOWS.incr();
                    }
                    let len = (plan.io_hi - plan.io_lo) as usize;
                    if plan.dense || self.fatal.is_some() {
                        // no pre-read needed (or storage already failed)
                        self.queue.push_back(ScheduledWin {
                            seq,
                            plan,
                            buf: Some(buf),
                            ready: true,
                        });
                    } else {
                        let ok = rjob_tx
                            .send(Job {
                                seq,
                                off: plan.io_lo,
                                len,
                                buf,
                            })
                            .is_ok();
                        debug_assert!(ok, "read lane outlives the event loop");
                        self.reads_outstanding += 1;
                        self.queue.push_back(ScheduledWin {
                            seq,
                            plan,
                            buf: None,
                            ready: false,
                        });
                    }
                    if obs {
                        OBS_INFLIGHT_WINDOWS
                            .record_max((self.queue.len() + self.writes_outstanding) as u64);
                    }
                    progressed = true;
                }
                None => {
                    self.planner_done = true;
                    self.free_bufs.push(buf);
                }
            }
        }
        // Consume the front window when complete.
        while let Some(front) = self.queue.front() {
            if !front.ready {
                break;
            }
            let all_in = front
                .plan
                .takes
                .iter()
                .enumerate()
                .all(|(p, &t)| t == 0 || !self.planner.peers[p].msgq.is_empty());
            if !all_in {
                break;
            }
            let mut sched = self.queue.pop_front().expect("front exists");
            let buf = sched.buf.take().expect("ready window owns its buffer");
            self.consume_front(sched.seq, &sched.plan, buf, comm, wjob_tx, pack_ns);
            progressed = true;
        }
        progressed
    }

    #[allow(clippy::too_many_arguments)]
    fn consume_front(
        &mut self,
        seq: u64,
        plan: &WindowPlan,
        mut buf: Vec<u8>,
        comm: &Comm,
        wjob_tx: &Sender<Job>,
        pack_ns: &mut u64,
    ) {
        let len = (plan.io_hi - plan.io_lo) as usize;
        let navs = self.planner.navs;
        health::beat_window(HbPhase::Pack, seq);
        let _w = lio_obs::trace::span_ab("win", seq, plan.io_lo);
        lio_obs::profile::record_pipeline_window(len as u64);
        let t = lio_obs::now();
        let sp = lio_obs::trace::span_ab("pack.place", plan.io_lo, 0);
        for (p, &take) in plan.takes.iter().enumerate() {
            if take == 0 {
                continue;
            }
            let msg = self.planner.peers[p]
                .msgq
                .pop_front()
                .expect("front window message present");
            debug_assert_eq!(msg.len() as u64, take);
            self.msgq_bytes -= msg.len();
            if self.fatal.is_none() {
                self.planner.peers[p].place(navs.map(|n| &n[p]), &msg, &mut buf[..len], plan.io_lo);
            } else {
                self.planner.peers[p].skip(take);
            }
            // one credit per consumed message keeps the AP producing
            comm.send(p, TAG_TP_CREDIT, &[]);
        }
        drop(sp);
        *pack_ns += lio_obs::elapsed_ns(t);
        if self.fatal.is_none() {
            let ok = wjob_tx
                .send(Job {
                    seq,
                    off: plan.io_lo,
                    len,
                    buf,
                })
                .is_ok();
            debug_assert!(ok, "write lane outlives the event loop");
            self.writes_outstanding += 1;
        } else {
            self.free_bufs.push(buf);
        }
    }
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Pipelined collective write (see module docs for the schedule).
#[allow(clippy::too_many_arguments)]
pub(crate) fn write_at_all(
    storage: &dyn StorageFile,
    comm: &Comm,
    state: &CollState,
    nav: &ViewNav,
    packer: &MemPacker,
    user: &[u8],
    stream_start: u64,
    total: u64,
    hints: &Hints,
    tuner: Option<&FileTuner>,
) -> Result<u64> {
    let engine = match nav {
        ViewNav::List(_) => Engine::ListBased,
        ViewNav::Ff(_) => Engine::Listless,
    };
    let obs = lio_obs::enabled();
    if obs {
        OBS_W_CALLS.incr();
    }
    let t_all = lio_obs::now();
    let mut pack_ns = 0u64;
    let mut io_wait_ns = 0u64;
    let my_range = access_range(nav, stream_start, total);
    let (domains, _ranges) = file_domains(comm, my_range, hints);
    let stream_end = stream_start + total;
    let naggr = domains.len();
    let me = comm.rank();
    let cb = hints.cb_buffer_size as u64;
    let depth = hints.effective_pipeline_depth();

    // ----- announcement phase: headers (and ol-lists) to every IOP -----
    // Every send is nonblocking, so all ranks finish this phase before
    // anyone blocks — the pipeline loops below can then never starve.
    let mut aps: Vec<Option<ApSend>> = (0..naggr).map(|_| None).collect();
    for (i, &dom) in domains.iter().enumerate() {
        if dom.1 <= dom.0 {
            continue;
        }
        let (s_lo, s_hi) = if my_range.is_some() {
            stream_intersection(nav, stream_start, stream_end, dom)
        } else {
            (stream_start, stream_start)
        };
        if engine == Engine::ListBased {
            let list = build_access_list(nav, s_lo, s_hi, dom);
            if obs {
                OBS_EXCH_LIST_BYTES.add(list.len() as u64);
            }
            comm.send_vec(i, TAG_TP_LIST, list);
        }
        let mut hdr = Vec::with_capacity(16);
        hdr.extend_from_slice(&s_lo.to_le_bytes());
        hdr.extend_from_slice(&s_hi.to_le_bytes());
        comm.send_vec(i, TAG_TP_DATA, hdr);
        if s_hi > s_lo {
            aps[i] = Some(ApSend {
                iop: i,
                dom,
                s_hi,
                s_cursor: s_lo,
                in_flight: 0,
            });
        }
    }

    let planner = if me < naggr && domains[me].1 > domains[me].0 {
        Planner::collect(
            comm,
            domains[me],
            cb,
            engine,
            state,
            hints.detect_dense_writes,
        )?
    } else {
        None
    };
    let mut iop = planner.map(|p| IopWrite::new(p, depth));

    // ----- pipeline loop: AP production, credits, IOP consumption ------
    let io_lane_ns = AtomicU64::new(0);
    let mut fatal: Option<IoError> = None;
    std::thread::scope(|scope| {
        let (rjob_tx, rjob_rx) = mpsc::channel::<Job>();
        let (wjob_tx, wjob_rx) = mpsc::channel::<Job>();
        let (done_tx, done_rx) = mpsc::channel::<LaneDone>();
        if iop.is_some() {
            spawn_read_lane(scope, storage, rjob_rx, done_tx.clone(), &io_lane_ns);
            spawn_write_lane(scope, storage, wjob_rx, done_tx.clone(), &io_lane_ns);
        }
        drop(done_tx);
        loop {
            let mut progressed = ap_pump(
                &mut aps,
                nav,
                comm,
                packer,
                user,
                stream_start,
                depth,
                cb,
                obs,
                &mut pack_ns,
            );
            while let Some((src, _)) = comm.try_recv_any(TAG_TP_CREDIT) {
                aps[src]
                    .as_mut()
                    .expect("credit from an IOP we sent to")
                    .in_flight -= 1;
                progressed = true;
            }
            if let Some(st) = iop.as_mut() {
                progressed |= st.pump(comm, &rjob_tx, &wjob_tx, &done_rx, obs, &mut pack_ns);
            }
            let aps_done = aps.iter().flatten().all(|a| a.finished());
            if aps_done && iop.as_ref().is_none_or(|s| s.done()) {
                break;
            }
            if progressed {
                continue;
            }
            if iop.as_ref().is_some_and(|s| s.storage_pending()) {
                // Blocked solely on storage: wait on the done channel (a
                // completion wakes us immediately) and book the stall as
                // I/O wait, not exchange. The storage lanes heartbeat per
                // completed job, so no beat is needed here.
                let t = lio_obs::now();
                let sp = lio_obs::trace::span("io.wait");
                let got = done_rx.recv_timeout(IO_WAIT_SLICE);
                drop(sp);
                io_wait_ns += lio_obs::elapsed_ns(t);
                if let Ok(d) = got {
                    iop.as_mut()
                        .expect("storage pending implies IOP")
                        .on_done(d);
                }
            } else {
                // Waiting on peers (credits or window messages): a wait
                // phase, so the watchdog blames whoever we wait for.
                health::beat(HbPhase::ExchangeWait);
                std::thread::yield_now();
            }
        }
        fatal = iop.take().and_then(|s| s.fatal);
    });
    health::window_flush();

    // Tuner outcome: before the closing barrier, so every rank's report
    // is merged before the next op's decision runs.
    if let Some(tu) = tuner {
        match &fatal {
            Some(_) => tu.abort_op(),
            None => {
                let wall = lio_obs::elapsed_ns(t_all);
                let io_ns = io_lane_ns.load(Ordering::Relaxed);
                let exch_ns = wall.saturating_sub(pack_ns + io_wait_ns);
                tu.finish_op(OpOutcome {
                    write: true,
                    wall_ns: wall,
                    exchange_ns: exch_ns,
                    io_ns,
                    pack_ns,
                    overlap_ns: (exch_ns + pack_ns + io_ns).saturating_sub(wall),
                    bytes: total,
                    span: domains.iter().map(|d| d.1.saturating_sub(d.0)).sum(),
                });
            }
        }
    }
    comm.barrier();
    if obs {
        let wall = lio_obs::elapsed_ns(t_all);
        let io_ns = io_lane_ns.load(Ordering::Relaxed);
        let exch_ns = wall.saturating_sub(pack_ns + io_wait_ns);
        OBS_W_EXCH_NS.add(exch_ns);
        OBS_W_PACK_NS.add(pack_ns);
        OBS_W_IO_NS.add(io_ns);
        OBS_W_OVERLAP_NS.add((exch_ns + pack_ns + io_ns).saturating_sub(wall));
    }
    match fatal {
        Some(e) => {
            OBS_FAULT_ABORTS.incr();
            lio_obs::trace::flight_dump("pipelined collective write aborted on a storage fault");
            Err(e)
        }
        None => Ok(total),
    }
}

/// Pipelined collective read. The flow is one-directional (storage →
/// IOP → AP), so no credits are needed: the IOP keeps `pipeline_depth`
/// window pre-reads in flight and ships each AP its share of a window as
/// soon as the pre-read lands, while later pre-reads are already queued.
#[allow(clippy::too_many_arguments)]
pub(crate) fn read_at_all(
    storage: &dyn StorageFile,
    comm: &Comm,
    state: &CollState,
    nav: &ViewNav,
    packer: &MemPacker,
    user: &mut [u8],
    stream_start: u64,
    total: u64,
    hints: &Hints,
    tuner: Option<&FileTuner>,
) -> Result<u64> {
    let engine = match nav {
        ViewNav::List(_) => Engine::ListBased,
        ViewNav::Ff(_) => Engine::Listless,
    };
    let obs = lio_obs::enabled();
    if obs {
        OBS_R_CALLS.incr();
    }
    let t_all = lio_obs::now();
    let mut pack_ns = 0u64;
    let mut io_wait_ns = 0u64;
    let my_range = access_range(nav, stream_start, total);
    let (domains, _ranges) = file_domains(comm, my_range, hints);
    let stream_end = stream_start + total;
    let naggr = domains.len();
    let me = comm.rank();
    let cb = hints.cb_buffer_size as u64;
    let depth = hints.effective_pipeline_depth();

    // ----- announcement phase ------------------------------------------
    let mut my_intersections = vec![(stream_start, stream_start); naggr];
    for (i, &dom) in domains.iter().enumerate() {
        if dom.1 <= dom.0 {
            continue;
        }
        let (s_lo, s_hi) = if my_range.is_some() {
            stream_intersection(nav, stream_start, stream_end, dom)
        } else {
            (stream_start, stream_start)
        };
        my_intersections[i] = (s_lo, s_hi);
        if engine == Engine::ListBased {
            let list = build_access_list(nav, s_lo, s_hi, dom);
            if obs {
                OBS_EXCH_LIST_BYTES.add(list.len() as u64);
            }
            comm.send_vec(i, TAG_TP_LIST, list);
        }
        let mut hdr = Vec::with_capacity(16);
        hdr.extend_from_slice(&s_lo.to_le_bytes());
        hdr.extend_from_slice(&s_hi.to_le_bytes());
        comm.send_vec(i, TAG_TP_DATA, hdr);
    }

    // ----- IOP pipeline: pre-read depth windows ahead, ship shares -----
    let io_lane_ns = AtomicU64::new(0);
    let mut fatal: Option<IoError> = None;
    if me < naggr && domains[me].1 > domains[me].0 {
        if let Some(mut planner) = Planner::collect(comm, domains[me], cb, engine, state, false)? {
            std::thread::scope(|scope| {
                let (rjob_tx, rjob_rx) = mpsc::channel::<Job>();
                let (done_tx, done_rx) = mpsc::channel::<LaneDone>();
                spawn_read_lane(scope, storage, rjob_rx, done_tx, &io_lane_ns);
                let mut queue: VecDeque<WindowPlan> = VecDeque::new();
                let mut free_bufs: Vec<Vec<u8>> = Vec::new();
                let mut bufs_allocated = 0usize;
                let mut next_seq = 0u64;
                let mut front_seq = 0u64;
                let mut pending: HashMap<u64, (Vec<u8>, Result<()>)> = HashMap::new();
                let mut planner_done = false;
                loop {
                    while !planner_done && queue.len() < depth {
                        let buf = if let Some(b) = free_bufs.pop() {
                            b
                        } else if bufs_allocated < depth {
                            bufs_allocated += 1;
                            if obs {
                                OBS_PEAK_BUFFERED.record_max((bufs_allocated * cb as usize) as u64);
                            }
                            vec![0u8; cb as usize]
                        } else {
                            break;
                        };
                        match planner.next_plan() {
                            Some(plan) => {
                                if obs {
                                    OBS_WINDOWS.incr();
                                }
                                let ok = rjob_tx
                                    .send(Job {
                                        seq: next_seq,
                                        off: plan.io_lo,
                                        len: (plan.io_hi - plan.io_lo) as usize,
                                        buf,
                                    })
                                    .is_ok();
                                debug_assert!(ok, "read lane outlives the loop");
                                next_seq += 1;
                                queue.push_back(plan);
                                if obs {
                                    OBS_INFLIGHT_WINDOWS.record_max(queue.len() as u64);
                                }
                            }
                            None => {
                                planner_done = true;
                                free_bufs.push(buf);
                            }
                        }
                    }
                    let Some(plan) = queue.pop_front() else {
                        break;
                    };
                    // Plans were submitted in seq order, but the lane may
                    // complete them out of order (the submission-queue
                    // backend harvests in device order): buffer strays
                    // until the front window's own completion lands.
                    let seq = front_seq;
                    front_seq += 1;
                    let (buf, res) = loop {
                        if let Some(hit) = pending.remove(&seq) {
                            break hit;
                        }
                        let t = lio_obs::now();
                        let sp = lio_obs::trace::span("io.wait");
                        let done = done_rx.recv().expect("read lane alive");
                        drop(sp);
                        io_wait_ns += lio_obs::elapsed_ns(t);
                        let LaneDone::Read { seq: got, buf, res } = done else {
                            unreachable!("read pipeline has no write lane");
                        };
                        pending.insert(got, (buf, res));
                    };
                    if let Err(e) = res {
                        fatal.get_or_insert(e);
                    }
                    let len = (plan.io_hi - plan.io_lo) as usize;
                    let navs = planner.navs;
                    health::beat_window(HbPhase::Pack, seq);
                    let _w = lio_obs::trace::span_ab("win", plan.io_lo, plan.io_hi - plan.io_lo);
                    lio_obs::profile::record_pipeline_window(len as u64);
                    let t = lio_obs::now();
                    let sp = lio_obs::trace::span_ab("pack.place", plan.io_lo, 0);
                    for (p, &take) in plan.takes.iter().enumerate() {
                        if take == 0 {
                            continue;
                        }
                        let mut out = Vec::with_capacity(take as usize);
                        if fatal.is_none() {
                            planner.peers[p].extract(
                                navs.map(|n| &n[p]),
                                &buf[..len],
                                plan.io_lo,
                                take,
                                &mut out,
                            );
                        } else {
                            // unblock the AP with zeros; the error is
                            // reported from this rank's return value
                            out.resize(take as usize, 0);
                            planner.peers[p].skip(take);
                        }
                        if obs {
                            OBS_EXCH_DATA_BYTES.add(take);
                        }
                        health::beat_bytes(HbPhase::Exchange, take);
                        comm.send_vec(p, TAG_TP_RDATA, out);
                    }
                    drop(sp);
                    pack_ns += lio_obs::elapsed_ns(t);
                    free_bufs.push(buf);
                }
            });
        }
    }

    // ----- AP phase: receive window shares in arrival order ------------
    let mut pend: Vec<(usize, u64, u64)> = Vec::new();
    for (i, &(s_lo, s_hi)) in my_intersections.iter().enumerate() {
        if s_hi > s_lo {
            pend.push((i, s_lo, s_hi));
        }
    }
    let mut reqs: Vec<lio_mpi::Request> = pend
        .iter()
        .map(|&(i, _, _)| comm.irecv(i, TAG_TP_RDATA))
        .collect();
    let mut remaining = pend.len();
    while remaining > 0 {
        let sp = lio_obs::trace::span("exch.wait");
        let (idx, src, chunk) = comm.wait_any(&mut reqs);
        drop(sp);
        debug_assert_eq!(src, pend[idx].0);
        health::beat(HbPhase::Pack);
        let t = lio_obs::now();
        let sp = lio_obs::trace::span_ab("unpack", chunk.len() as u64, 0);
        let put = packer.unpack(&chunk, user, pend[idx].1 - stream_start);
        drop(sp);
        pack_ns += lio_obs::elapsed_ns(t);
        debug_assert_eq!(put, chunk.len());
        pend[idx].1 += chunk.len() as u64;
        if pend[idx].1 < pend[idx].2 {
            reqs[idx] = comm.irecv(src, TAG_TP_RDATA);
        } else {
            remaining -= 1;
        }
    }
    if obs {
        let wall = lio_obs::elapsed_ns(t_all);
        let io_ns = io_lane_ns.load(Ordering::Relaxed);
        let exch_ns = wall.saturating_sub(pack_ns + io_wait_ns);
        OBS_R_EXCH_NS.add(exch_ns);
        OBS_R_PACK_NS.add(pack_ns);
        OBS_R_IO_NS.add(io_ns);
        OBS_R_OVERLAP_NS.add((exch_ns + pack_ns + io_ns).saturating_sub(wall));
    }
    // Tuner outcome (reads have no closing barrier: straggler reports
    // are dropped as stale by the tuner).
    if let Some(tu) = tuner {
        match &fatal {
            Some(_) => tu.abort_op(),
            None => {
                let wall = lio_obs::elapsed_ns(t_all);
                let io_ns = io_lane_ns.load(Ordering::Relaxed);
                let exch_ns = wall.saturating_sub(pack_ns + io_wait_ns);
                tu.finish_op(OpOutcome {
                    write: false,
                    wall_ns: wall,
                    exchange_ns: exch_ns,
                    io_ns,
                    pack_ns,
                    overlap_ns: (exch_ns + pack_ns + io_ns).saturating_sub(wall),
                    bytes: total,
                    span: domains.iter().map(|d| d.1.saturating_sub(d.0)).sum(),
                });
            }
        }
    }
    match fatal {
        Some(e) => {
            OBS_FAULT_ABORTS.incr();
            lio_obs::trace::flight_dump("pipelined collective read aborted on a storage fault");
            Err(e)
        }
        None => Ok(total),
    }
}
