//! # lio-core — MPI-IO-style non-contiguous file access
//!
//! The reproduction of the SC'03 paper's MPI-IO layer (MPI/SX's
//! ROMIO-derived implementation), with both datatype-handling engines:
//!
//! * **list-based** ([`Hints::list_based`]) — the conventional technique
//!   of paper Section 2: explicit flattening into ol-lists, linear-list
//!   navigation, per-access memtype flattening, ol-list exchange for
//!   two-phase collective access, and the `O(Σ Nblock)` list merge for
//!   the collective-write optimization;
//! * **listless** ([`Hints::listless`]) — the paper's contribution
//!   (Section 3): flattening-on-the-fly pack/unpack and navigation,
//!   fileview caching (compact datatype exchange once per `set_view`),
//!   and the mergeview covered-window test.
//!
//! Both engines share the same data sieving and two-phase skeletons, so
//! measured differences isolate exactly the non-contiguous datatype
//! handling — the paper's experimental design.
//!
//! ## Quick example
//!
//! ```
//! use lio_core::{File, Hints, SharedFile};
//! use lio_datatype::Datatype;
//! use lio_mpi::World;
//! use lio_pfs::MemFile;
//!
//! let shared = SharedFile::new(MemFile::new());
//! World::run(2, |comm| {
//!     let mut f = File::open(comm, shared.clone(), Hints::listless()).unwrap();
//!     // each rank views every second double, interleaved
//!     let ft = Datatype::vector(4, 1, 2, &Datatype::double()).unwrap();
//!     let disp = comm.rank() as u64 * 8;
//!     f.set_view(disp, Datatype::double(), ft).unwrap();
//!     let data = vec![comm.rank() as u8; 32];
//!     f.write_at_all(0, &data, 32, &Datatype::byte()).unwrap();
//! });
//! assert_eq!(shared.len(), 64);
//! ```

pub mod autotune;
pub mod error;
pub mod file;
pub mod hints;
pub mod packer;
pub mod pipeline;
pub mod sieve;
pub mod twophase;
pub mod view;

pub use autotune::{TuneDecision, TuneOp, TuneReport, Tuner};
pub use error::{IoError, Result};
pub use file::{File, SharedFile};
pub use hints::{BackendKind, Engine, HintError, Hints, PackKernel, SievingMode};
pub use view::FileView;
