//! Collective file access: the two-phase method.
//!
//! Collective reads/writes are performed by **io-processes** (IOPs) that
//! touch the file, on behalf of all **access-processes** (APs) — paper
//! Section 2.3. The file range touched by the collective call is split
//! evenly among the IOPs (*file domains*); each AP ships the part of its
//! access falling into each IOP's domain; each IOP loops over its domain
//! in `cb_buffer_size` windows, sieving data in or out of a window buffer.
//!
//! The two engines share this skeleton and differ in exactly the ways the
//! paper describes:
//!
//! * **list-based**: every AP builds an **ol-list of absolute
//!   `⟨offset, length⟩` tuples covering each IOP's domain** — size
//!   `O(Saccess/Sextent · Nblock)`, i.e. proportional to the access, not
//!   the filetype — and sends it with the data (16 bytes of metadata per
//!   tuple). For writes, the IOP merges all received lists
//!   (`O(Σ_p Nblock(p))`) to detect fully-covered windows.
//! * **listless**: fileview caching means the IOP already has every AP's
//!   `(disp, filetype)` (exchanged compactly at `set_view`), so messages
//!   carry *only data*; placement uses flattening-on-the-fly, and the
//!   covered-window test is one `O(depth)` mergeview evaluation.
//!
//! Two exchange schedules share this file's skeleton. The default
//! (monolithic) schedule ships data for a whole file domain in one
//! message per (AP, IOP) pair — communication volume and list-handling
//! costs (the quantities the paper measures) are preserved at the price
//! of a larger transient memory footprint and strictly additive
//! exchange/storage phases. The **pipelined** schedule
//! ([`crate::pipeline`], selected by the `two_phase_pipeline` hint or
//! the `LIO_PIPELINE` environment variable) ships the same bytes window
//! by window with credit-based flow control, bounding IOP memory at
//! `O(pipeline_depth · cb_buffer_size · nprocs)` and overlapping storage
//! I/O with the exchange.

use lio_datatype::{bytes_below_tiled, serialize, Datatype, Field};
use lio_mpi::Comm;
use lio_obs::LazyCounter;
use lio_pfs::StorageFile;

use crate::autotune::{FileTuner, OpOutcome};
use crate::error::{IoError, Result};
use crate::hints::{Engine, Hints};
use crate::packer::MemPacker;
use crate::sieve::{read_window, write_window};
use crate::view::{FfNav, FileView, ViewNav};
use lio_obs::health::{self, HbPhase};

// Two-phase breakdown metrics. The `_ns` counters accumulate wall time per
// phase across all rounds on this process: `exchange_ns` covers AP↔IOP
// message traffic (sends, receives, the closing barrier), `io_ns` covers
// storage reads/writes of window buffers, and `pack_ns` covers all
// pack/unpack/place/extract memory movement. `exchange.list_bytes` counts
// ol-list metadata shipped (list-based engine only; always 0 for listless —
// the paper's "16 bytes per tuple" overhead), `exchange.data_bytes` the
// payload proper.
pub(crate) static OBS_W_CALLS: LazyCounter = LazyCounter::new("core.coll.write.calls");
pub(crate) static OBS_W_EXCH_NS: LazyCounter = LazyCounter::new("core.coll.write.exchange_ns");
pub(crate) static OBS_W_IO_NS: LazyCounter = LazyCounter::new("core.coll.write.io_ns");
pub(crate) static OBS_W_PACK_NS: LazyCounter = LazyCounter::new("core.coll.write.pack_ns");
pub(crate) static OBS_R_CALLS: LazyCounter = LazyCounter::new("core.coll.read.calls");
pub(crate) static OBS_R_EXCH_NS: LazyCounter = LazyCounter::new("core.coll.read.exchange_ns");
pub(crate) static OBS_R_IO_NS: LazyCounter = LazyCounter::new("core.coll.read.io_ns");
pub(crate) static OBS_R_PACK_NS: LazyCounter = LazyCounter::new("core.coll.read.pack_ns");
pub(crate) static OBS_EXCH_LIST_BYTES: LazyCounter =
    LazyCounter::new("core.coll.exchange.list_bytes");
pub(crate) static OBS_EXCH_DATA_BYTES: LazyCounter =
    LazyCounter::new("core.coll.exchange.data_bytes");
pub(crate) static OBS_WINDOWS: LazyCounter = LazyCounter::new("core.coll.windows");
/// Collective calls that aborted on a permanent storage fault — counted
/// after the closing rank-sync, so an abort is always a clean abort.
pub(crate) static OBS_FAULT_ABORTS: LazyCounter = LazyCounter::new("core.coll.fault_aborts");

/// Tag for the ol-list message (list-based engine only).
pub(crate) const TAG_TP_LIST: u64 = 101;
/// Tag for AP→IOP write data / access headers.
pub(crate) const TAG_TP_DATA: u64 = 102;
/// Tag for IOP→AP read data.
pub(crate) const TAG_TP_RDATA: u64 = 103;
/// Tag for one window's worth of AP→IOP write data (pipelined path).
pub(crate) const TAG_TP_WIN: u64 = 104;
/// Tag for IOP→AP flow-control credits (pipelined path).
pub(crate) const TAG_TP_CREDIT: u64 = 105;

/// Collective state established at `set_view` time.
pub(crate) struct CollState {
    /// Listless: every rank's cached fileview (fileview caching).
    pub remote_navs: Option<Vec<FfNav>>,
    /// Listless: the mergeview, when all ranks share disp and extent.
    pub merge: Option<MergeView>,
}

/// The overlay of all ranks' filetypes (Section 3.2.3): a struct type
/// whose coverage test answers "does this collective write cover the
/// window completely?" in `O(depth)`.
pub(crate) struct MergeView {
    dtype: Datatype,
    disp: u64,
}

impl MergeView {
    /// Whether file range `[lo, hi)` is fully covered by the union of all
    /// fileviews.
    pub fn covered(&self, lo: u64, hi: u64) -> bool {
        if hi <= lo {
            return true;
        }
        if lo < self.disp {
            return false;
        }
        let a = (lo - self.disp) as i64;
        let b = (hi - self.disp) as i64;
        bytes_below_tiled(&self.dtype, b) - bytes_below_tiled(&self.dtype, a) == hi - lo
    }
}

/// Establish the collective state for a new fileview. Collective: every
/// rank calls this with its own view.
pub(crate) fn establish_view(comm: &Comm, view: &FileView, engine: Engine) -> Result<CollState> {
    match engine {
        Engine::ListBased => {
            // ROMIO exchanges nothing at view time; ol-lists travel with
            // every collective access instead.
            Ok(CollState {
                remote_navs: None,
                merge: None,
            })
        }
        Engine::Listless => {
            // fileview caching: one compact exchange per set_view
            let mut msg = Vec::with_capacity(64);
            msg.extend_from_slice(&view.disp.to_le_bytes());
            serialize::encode_into(&view.filetype, &mut msg);
            let all = comm.allgather(msg);
            let mut views = Vec::with_capacity(all.len());
            for buf in &all {
                let disp = u64::from_le_bytes(buf[0..8].try_into().expect("disp"));
                let ftype = serialize::decode(&buf[8..])?;
                views.push(FileView {
                    disp,
                    etype: Datatype::byte(),
                    filetype: ftype,
                });
            }
            let merge = build_mergeview(&views)?;
            let remote_navs = Some(views.into_iter().map(FfNav::new).collect());
            Ok(CollState { remote_navs, merge })
        }
    }
}

/// Build the mergeview when all ranks share the displacement and filetype
/// extent (the paper's stated applicability condition).
fn build_mergeview(views: &[FileView]) -> Result<Option<MergeView>> {
    let disp = views[0].disp;
    let ext = views[0].filetype.extent();
    if !views
        .iter()
        .all(|v| v.disp == disp && v.filetype.extent() == ext)
    {
        return Ok(None);
    }
    let fields: Vec<Field> = views
        .iter()
        .map(|v| Field {
            disp: 0,
            count: 1,
            child: v.filetype.clone(),
        })
        .collect();
    let merged = Datatype::struct_type(fields)?;
    let merged = Datatype::resized(&merged, 0, ext)?;
    // tiled counting requires instance-confined data
    if merged.data_ub() - merged.data_lb() > merged.extent() as i64 || merged.data_lb() < 0 {
        return Ok(None);
    }
    Ok(Some(MergeView {
        dtype: merged,
        disp,
    }))
}

/// This rank's absolute access range for `total` stream bytes from
/// `stream_start`; `None` when empty.
pub(crate) fn access_range(nav: &ViewNav, stream_start: u64, total: u64) -> Option<(u64, u64)> {
    if total == 0 {
        return None;
    }
    let lo = nav.stream_to_abs(stream_start);
    let hi = nav.stream_to_abs(stream_start + total - 1) + 1;
    Some((lo, hi))
}

/// Per-IOP file domains plus each rank's access range.
pub(crate) type Domains = (Vec<(u64, u64)>, Vec<Option<(u64, u64)>>);

/// Exchange access ranges and compute the per-IOP file domains.
pub(crate) fn file_domains(comm: &Comm, range: Option<(u64, u64)>, hints: &Hints) -> Domains {
    let mut msg = [0u8; 16];
    let (lo, hi) = range.unwrap_or((u64::MAX, 0));
    msg[0..8].copy_from_slice(&lo.to_le_bytes());
    msg[8..16].copy_from_slice(&hi.to_le_bytes());
    let all = comm.allgather(msg.to_vec());
    let ranges: Vec<Option<(u64, u64)>> = all
        .iter()
        .map(|b| {
            let lo = u64::from_le_bytes(b[0..8].try_into().expect("lo"));
            let hi = u64::from_le_bytes(b[8..16].try_into().expect("hi"));
            (hi > lo && lo != u64::MAX).then_some((lo, hi))
        })
        .collect();
    let min_st = ranges.iter().flatten().map(|r| r.0).min();
    let max_end = ranges.iter().flatten().map(|r| r.1).max();
    let naggr = hints.effective_io_nodes(comm.size());
    let mut domains = vec![(0u64, 0u64); naggr];
    if let (Some(lo), Some(hi)) = (min_st, max_end) {
        let span = hi - lo;
        let chunk = span.div_ceil(naggr as u64).max(1);
        for (i, d) in domains.iter_mut().enumerate() {
            let a = lo + (i as u64 * chunk).min(span);
            let b = lo + ((i as u64 + 1) * chunk).min(span);
            *d = (a, b);
        }
    }
    // Every rank sees the same allgathered ranges; rank 0 records the
    // collective's domain geometry once per op so the profile is not
    // multiplied by the communicator size.
    if lio_obs::profile::enabled() && comm.rank() == 0 {
        profile_domains(&ranges, min_st, max_end);
    }
    (domains, ranges)
}

/// Profile the file-domain geometry of one collective op: overall span,
/// union coverage of the per-rank access envelopes, and how much those
/// envelopes overlap each other (interleaved views overlap heavily; the
/// paper's Figure 4 pattern is the extreme case).
fn profile_domains(ranges: &[Option<(u64, u64)>], min_st: Option<u64>, max_end: Option<u64>) {
    let (Some(lo), Some(hi)) = (min_st, max_end) else {
        return;
    };
    let mut sorted: Vec<(u64, u64)> = ranges.iter().flatten().copied().collect();
    sorted.sort_unstable();
    let mut union = 0u64;
    let mut sum = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for &(a, b) in &sorted {
        sum += b - a;
        cur = Some(match cur {
            Some((cs, ce)) if a <= ce => (cs, ce.max(b)),
            Some((cs, ce)) => {
                union += ce - cs;
                (a, b)
            }
            None => (a, b),
        });
    }
    if let Some((cs, ce)) = cur {
        union += ce - cs;
    }
    lio_obs::profile::record_domains(hi - lo, union, sum - union);
    for (r, span) in ranges.iter().enumerate() {
        if let Some((a, b)) = span {
            lio_obs::profile::record_rank_access(r as u32, b - a);
        }
    }
}

/// The intersection of this rank's stream interval with an IOP domain,
/// expressed in stream positions.
pub(crate) fn stream_intersection(
    nav: &ViewNav,
    stream_start: u64,
    stream_end: u64,
    dom: (u64, u64),
) -> (u64, u64) {
    let a = nav.abs_to_stream(dom.0).clamp(stream_start, stream_end);
    let b = nav.abs_to_stream(dom.1).clamp(stream_start, stream_end);
    (a, b)
}

/// Serialize this rank's access runs within `dom` as an absolute ol-list
/// (the list the list-based AP must build and ship for every collective
/// access).
pub(crate) fn build_access_list(nav: &ViewNav, s_lo: u64, s_hi: u64, dom: (u64, u64)) -> Vec<u8> {
    let mut out = Vec::new();
    if s_hi <= s_lo {
        return out;
    }
    let ViewNav::List(list_nav) = nav else {
        unreachable!("access lists are a list-based concept");
    };
    let mut remaining = s_hi - s_lo;
    for run in list_nav.runs_from(s_lo) {
        if remaining == 0 {
            break;
        }
        let take = run.len.min(remaining);
        let abs = run.disp as u64;
        debug_assert!(
            abs >= dom.0 && abs + take <= dom.1,
            "run escapes the domain"
        );
        out.extend_from_slice(&abs.to_le_bytes());
        out.extend_from_slice(&take.to_le_bytes());
        remaining -= take;
    }
    out
}

/// An ol-list received from an AP, with its data, consumed window by
/// window through a cursor (the IOP-side list walking of Section 2.3).
struct RecvList {
    /// Absolute `(offset, len)` pairs.
    segs: Vec<(u64, u64)>,
    data: Vec<u8>,
    seg_i: usize,
    seg_off: u64,
    data_pos: usize,
}

/// Decode serialized `(offset, len)` pairs (the wire form of
/// [`build_access_list`]).
pub(crate) fn parse_ol_list(list_bytes: &[u8]) -> Result<Vec<(u64, u64)>> {
    if !list_bytes.len().is_multiple_of(16) {
        return Err(IoError::Usage("malformed access list".into()));
    }
    Ok(list_bytes
        .chunks_exact(16)
        .map(|c| {
            (
                u64::from_le_bytes(c[0..8].try_into().expect("offset")),
                u64::from_le_bytes(c[8..16].try_into().expect("len")),
            )
        })
        .collect())
}

impl RecvList {
    /// Parse a received list and adopt the data message as-is; `base` is
    /// where the payload starts inside `data` (the 16-byte header is
    /// skipped by offset rather than copied out — zero-copy receive).
    fn parse(list_bytes: &[u8], data: Vec<u8>, base: usize) -> Result<RecvList> {
        let segs = parse_ol_list(list_bytes)?;
        Ok(RecvList {
            segs,
            data,
            seg_i: 0,
            seg_off: 0,
            data_pos: base,
        })
    }

    /// Copy this AP's bytes falling inside `[win_start, win_end)` from its
    /// data buffer into the window.
    fn place_into(&mut self, fb: &mut [u8], win_start: u64, win_end: u64) {
        while self.seg_i < self.segs.len() {
            let (off, len) = self.segs[self.seg_i];
            let cur = off + self.seg_off;
            if cur >= win_end {
                break;
            }
            debug_assert!(cur >= win_start, "cursor fell behind the window");
            let avail = len - self.seg_off;
            let take = avail.min(win_end - cur);
            let o = (cur - win_start) as usize;
            fb[o..o + take as usize]
                .copy_from_slice(&self.data[self.data_pos..self.data_pos + take as usize]);
            self.data_pos += take as usize;
            if take == avail {
                self.seg_i += 1;
                self.seg_off = 0;
            } else {
                self.seg_off += take;
                break;
            }
        }
    }

    /// Copy this AP's bytes falling inside `[win_start, win_end)` out of
    /// the window, appending to `out`.
    fn extract_from(&mut self, fb: &[u8], win_start: u64, win_end: u64, out: &mut Vec<u8>) {
        while self.seg_i < self.segs.len() {
            let (off, len) = self.segs[self.seg_i];
            let cur = off + self.seg_off;
            if cur >= win_end {
                break;
            }
            debug_assert!(cur >= win_start);
            let avail = len - self.seg_off;
            let take = avail.min(win_end - cur);
            let o = (cur - win_start) as usize;
            out.extend_from_slice(&fb[o..o + take as usize]);
            if take == avail {
                self.seg_i += 1;
                self.seg_off = 0;
            } else {
                self.seg_off += take;
                break;
            }
        }
    }

    /// First uncopied absolute offset, if any.
    fn next_offset(&self) -> Option<u64> {
        self.segs.get(self.seg_i).map(|(o, _)| o + self.seg_off)
    }

    /// Last absolute offset + 1 across all segments.
    fn end_offset(&self) -> Option<u64> {
        self.segs.last().map(|(o, l)| o + l)
    }
}

/// Cursor over a merged ol-list for covered-window tests (the list-based
/// collective-write optimization).
pub(crate) struct Coverage {
    segs: Vec<(u64, u64)>,
    i: usize,
}

impl Coverage {
    /// Merge per-AP lists (`O(Σ_p N(p))` as the paper notes).
    pub(crate) fn merge_segs(lists: &[&[(u64, u64)]]) -> Coverage {
        let mut all: Vec<(u64, u64)> = Vec::new();
        let mut cursors = vec![0usize; lists.len()];
        loop {
            let mut best: Option<(usize, u64)> = None;
            for (li, l) in lists.iter().enumerate() {
                if let Some(&(off, _)) = l.get(cursors[li]) {
                    if best.is_none_or(|(_, o)| off < o) {
                        best = Some((li, off));
                    }
                }
            }
            let Some((li, _)) = best else { break };
            let (off, len) = lists[li][cursors[li]];
            cursors[li] += 1;
            if let Some(last) = all.last_mut() {
                if off <= last.0 + last.1 {
                    let end = (off + len).max(last.0 + last.1);
                    last.1 = end - last.0;
                    continue;
                }
            }
            all.push((off, len));
        }
        Coverage { segs: all, i: 0 }
    }

    fn merge(lists: &[&RecvList]) -> Coverage {
        let segs: Vec<&[(u64, u64)]> = lists.iter().map(|l| l.segs.as_slice()).collect();
        Coverage::merge_segs(&segs)
    }

    /// Whether `[lo, hi)` is fully inside one merged segment. Windows are
    /// probed in increasing order, so a cursor suffices.
    pub(crate) fn covered(&mut self, lo: u64, hi: u64) -> bool {
        // skip segments that end at or before the window: they can never
        // cover this or any later window
        while self.i < self.segs.len() && self.segs[self.i].0 + self.segs[self.i].1 <= lo {
            self.i += 1;
        }
        match self.segs.get(self.i) {
            Some(&(o, l)) => o <= lo && o + l >= hi,
            None => false,
        }
    }
}

/// Listless placement bookkeeping for one AP at one IOP. Adopts the
/// received message wholesale; `base` marks where the payload starts
/// (past the 16-byte header) so no re-allocating copy is made.
struct FfPlacement<'a> {
    nav: &'a FfNav,
    msg: Vec<u8>,
    base: usize,
    s_lo: u64,
    s_hi: u64,
}

impl FfPlacement<'_> {
    fn data(&self) -> &[u8] {
        &self.msg[self.base..]
    }
}

/// Collective write. Every rank calls this; returns bytes written by this
/// rank's access.
#[allow(clippy::too_many_arguments)]
pub(crate) fn write_at_all(
    storage: &dyn StorageFile,
    comm: &Comm,
    state: &CollState,
    nav: &ViewNav,
    packer: &MemPacker,
    user: &[u8],
    stream_start: u64,
    total: u64,
    hints: &Hints,
    tuner: Option<&FileTuner>,
) -> Result<u64> {
    // the root trace span delimiting this collective op (both schedules):
    // the critical-path analyzer keys on its tag
    let _root = lio_obs::trace::span_ab("coll.write", total, 0);
    if hints.pipeline_enabled() {
        return crate::pipeline::write_at_all(
            storage,
            comm,
            state,
            nav,
            packer,
            user,
            stream_start,
            total,
            hints,
            tuner,
        );
    }
    let t_op = lio_obs::now();
    let engine = match nav {
        ViewNav::List(_) => Engine::ListBased,
        ViewNav::Ff(_) => Engine::Listless,
    };
    let obs = lio_obs::enabled();
    if obs {
        OBS_W_CALLS.incr();
    }
    let mut exch_ns = 0u64;
    let mut pack_ns = 0u64;
    let my_range = access_range(nav, stream_start, total);
    let t = lio_obs::now();
    let (domains, _ranges) = file_domains(comm, my_range, hints);
    exch_ns += lio_obs::elapsed_ns(t);
    let stream_end = stream_start + total;
    let naggr = domains.len();
    let me = comm.rank();

    // ----- AP phase: ship lists (list-based) and data ------------------
    for (i, &dom) in domains.iter().enumerate() {
        if dom.1 <= dom.0 {
            continue;
        }
        let (s_lo, s_hi) = if my_range.is_some() {
            stream_intersection(nav, stream_start, stream_end, dom)
        } else {
            (stream_start, stream_start)
        };
        let n = s_hi - s_lo;
        if engine == Engine::ListBased {
            let list = build_access_list(nav, s_lo, s_hi, dom);
            if obs {
                OBS_EXCH_LIST_BYTES.add(list.len() as u64);
            }
            let t = lio_obs::now();
            let sp = lio_obs::trace::span_ab("exch.send", i as u64, 0);
            comm.send_vec(i, TAG_TP_LIST, list);
            drop(sp);
            exch_ns += lio_obs::elapsed_ns(t);
        }
        let mut msg = Vec::with_capacity(16 + n as usize);
        msg.extend_from_slice(&s_lo.to_le_bytes());
        msg.extend_from_slice(&s_hi.to_le_bytes());
        if n > 0 {
            health::beat(HbPhase::Pack);
            let t = lio_obs::now();
            let sp = lio_obs::trace::span_ab("pack", n, 0);
            // zero-copy fast path: contiguous memtypes append the user
            // bytes directly instead of zero-filling and re-packing
            if let Some(s) = packer.contig_slice(user, s_lo - stream_start, n) {
                msg.extend_from_slice(s);
            } else {
                let base = msg.len();
                msg.resize(base + n as usize, 0);
                let got = packer.pack(user, s_lo - stream_start, &mut msg[base..]);
                debug_assert_eq!(got as u64, n);
            }
            drop(sp);
            pack_ns += lio_obs::elapsed_ns(t);
        }
        if obs {
            OBS_EXCH_DATA_BYTES.add(n);
        }
        health::beat_bytes(HbPhase::Exchange, n);
        let t = lio_obs::now();
        let sp = lio_obs::trace::span_ab("exch.send", i as u64, n);
        comm.send_vec(i, TAG_TP_DATA, msg);
        drop(sp);
        exch_ns += lio_obs::elapsed_ns(t);
    }

    // ----- IOP phase ----------------------------------------------------
    // A storage fault on an IOP must not strand the other ranks at the
    // closing barrier, so IOP errors are captured, every rank reaches the
    // barrier, and the error surfaces only after the world is in sync.
    // (All AP→IOP messages were received above the window loop, so an
    // aborted IOP leaves nothing in flight.)
    let mut fatal: Option<IoError> = None;
    let mut iop_io = 0u64;
    let mut iop_pack = 0u64;
    if me < naggr && domains[me].1 > domains[me].0 {
        let dom = domains[me];
        let res: Result<(u64, u64)> = (|| {
            match engine {
                Engine::ListBased => {
                    // Complete receives in arrival order (no head-of-line
                    // blocking on rank 0), then assemble in rank order.
                    let p_n = comm.size();
                    let mut lists: Vec<Option<Vec<u8>>> = (0..p_n).map(|_| None).collect();
                    let mut datas: Vec<Option<Vec<u8>>> = (0..p_n).map(|_| None).collect();
                    let t = lio_obs::now();
                    let sp = lio_obs::trace::span("exch.wait");
                    let mut reqs: Vec<lio_mpi::Request> = Vec::with_capacity(2 * p_n);
                    for p in 0..p_n {
                        reqs.push(comm.irecv(p, TAG_TP_LIST));
                        reqs.push(comm.irecv(p, TAG_TP_DATA));
                    }
                    for _ in 0..2 * p_n {
                        let (i, src, payload) = comm.wait_any(&mut reqs);
                        if i % 2 == 0 {
                            lists[src] = Some(payload);
                        } else {
                            // one contribution per AP: its arrival time
                            // feeds the per-op rank-skew histogram
                            health::window_mark(0, src as u32);
                            datas[src] = Some(payload);
                        }
                    }
                    drop(sp);
                    health::window_flush();
                    exch_ns += lio_obs::elapsed_ns(t);
                    let mut recv: Vec<RecvList> = Vec::with_capacity(p_n);
                    for (list_bytes, msg) in lists.iter().zip(datas) {
                        let list_bytes = list_bytes.as_ref().expect("all lists received");
                        let msg = msg.expect("all data messages received");
                        recv.push(RecvList::parse(list_bytes, msg, 16)?);
                    }
                    iop_write_listbased(storage, dom, &mut recv, hints)
                }
                Engine::Listless => {
                    let navs = state
                        .remote_navs
                        .as_ref()
                        .expect("listless collective requires cached fileviews");
                    let p_n = comm.size();
                    let mut msgs: Vec<Option<Vec<u8>>> = (0..p_n).map(|_| None).collect();
                    let t = lio_obs::now();
                    let sp = lio_obs::trace::span("exch.wait");
                    let mut reqs: Vec<lio_mpi::Request> =
                        (0..p_n).map(|p| comm.irecv(p, TAG_TP_DATA)).collect();
                    for _ in 0..p_n {
                        let (_, src, payload) = comm.wait_any(&mut reqs);
                        health::window_mark(0, src as u32);
                        msgs[src] = Some(payload);
                    }
                    drop(sp);
                    health::window_flush();
                    exch_ns += lio_obs::elapsed_ns(t);
                    let mut placements: Vec<FfPlacement> = Vec::with_capacity(p_n);
                    for (nav_p, msg) in navs.iter().zip(msgs) {
                        let msg = msg.expect("all data messages received");
                        let s_lo = u64::from_le_bytes(msg[0..8].try_into().expect("s_lo"));
                        let s_hi = u64::from_le_bytes(msg[8..16].try_into().expect("s_hi"));
                        placements.push(FfPlacement {
                            nav: nav_p,
                            msg,
                            base: 16,
                            s_lo,
                            s_hi,
                        });
                    }
                    iop_write_listless(storage, dom, &mut placements, state, hints)
                }
            }
        })();
        match res {
            Ok((io, p)) => {
                iop_io = io;
                iop_pack = p;
            }
            Err(e) => fatal = Some(e),
        }
    }

    // Tuner outcome: reported *before* the closing barrier, so when the
    // decision for the next op runs, every rank's report for this op has
    // already been merged (writes always aggregate completely).
    if let Some(tu) = tuner {
        match &fatal {
            Some(_) => tu.abort_op(),
            None => tu.finish_op(OpOutcome {
                write: true,
                wall_ns: lio_obs::elapsed_ns(t_op),
                exchange_ns: exch_ns,
                io_ns: iop_io,
                pack_ns: pack_ns + iop_pack,
                overlap_ns: 0,
                bytes: total,
                span: domains.iter().map(|d| d.1.saturating_sub(d.0)).sum(),
            }),
        }
    }

    let t = lio_obs::now();
    let sp = lio_obs::trace::span("exch.barrier");
    comm.barrier();
    drop(sp);
    exch_ns += lio_obs::elapsed_ns(t);
    if obs {
        OBS_W_EXCH_NS.add(exch_ns);
        OBS_W_PACK_NS.add(pack_ns);
    }
    match fatal {
        Some(e) => {
            OBS_FAULT_ABORTS.incr();
            lio_obs::trace::flight_dump("collective write aborted on a storage fault");
            Err(e)
        }
        None => Ok(total),
    }
}

/// IOP write loop, list-based placement.
fn iop_write_listbased(
    storage: &dyn StorageFile,
    dom: (u64, u64),
    recv: &mut [RecvList],
    hints: &Hints,
) -> Result<(u64, u64)> {
    // clip the domain to where data actually lands
    let lo = recv.iter().filter_map(|r| r.next_offset()).min();
    let hi = recv.iter().filter_map(|r| r.end_offset()).max();
    let (Some(lo), Some(hi)) = (lo, hi) else {
        return Ok((0, 0));
    };
    let lo = lo.max(dom.0);
    let hi = hi.min(dom.1);

    // the merge of all lists, for the covered-window optimization
    let mut coverage = hints.detect_dense_writes.then(|| {
        let refs: Vec<&RecvList> = recv.iter().collect();
        Coverage::merge(&refs)
    });

    let obs = lio_obs::enabled();
    let mut io_ns = 0u64;
    let mut pack_ns = 0u64;
    let mut windows = 0u64;
    let cb = hints.cb_buffer_size as u64;
    let mut filebuf = vec![0u8; hints.cb_buffer_size];
    let mut win = lo;
    while win < hi {
        let win_end = (win + cb).min(hi);
        let fb = &mut filebuf[..(win_end - win) as usize];
        let has_data = recv
            .iter()
            .any(|r| r.next_offset().is_some_and(|o| o < win_end));
        if has_data {
            windows += 1;
            health::beat_window(HbPhase::Io, windows - 1);
            let _w = lio_obs::trace::span_ab("win", windows - 1, win);
            let dense = coverage.as_mut().is_some_and(|c| c.covered(win, win_end));
            if !dense {
                let t = lio_obs::now();
                let sp = lio_obs::trace::span_ab("io.read", win, fb.len() as u64);
                read_window(storage, win, fb)?;
                drop(sp);
                io_ns += lio_obs::elapsed_ns(t);
            }
            health::beat(HbPhase::Pack);
            let t = lio_obs::now();
            let sp = lio_obs::trace::span_ab("pack.place", win, 0);
            for r in recv.iter_mut() {
                r.place_into(fb, win, win_end);
            }
            drop(sp);
            pack_ns += lio_obs::elapsed_ns(t);
            let t = lio_obs::now();
            let sp = lio_obs::trace::span_ab("io.write", win, fb.len() as u64);
            write_window(storage, win, fb)?;
            drop(sp);
            io_ns += lio_obs::elapsed_ns(t);
            health::beat_bytes(HbPhase::Io, fb.len() as u64);
        }
        win = win_end;
    }
    if obs {
        OBS_W_IO_NS.add(io_ns);
        OBS_W_PACK_NS.add(pack_ns);
        OBS_WINDOWS.add(windows);
    }
    Ok((io_ns, pack_ns))
}

/// IOP write loop, listless placement via cached fileviews. Returns the
/// `(io_ns, pack_ns)` phase breakdown for the tuner.
fn iop_write_listless(
    storage: &dyn StorageFile,
    dom: (u64, u64),
    placements: &mut [FfPlacement],
    state: &CollState,
    hints: &Hints,
) -> Result<(u64, u64)> {
    // clip the domain to where data actually lands
    let lo = placements
        .iter()
        .filter(|p| p.s_hi > p.s_lo)
        .map(|p| p.nav.stream_to_abs(p.s_lo))
        .min();
    let hi = placements
        .iter()
        .filter(|p| p.s_hi > p.s_lo)
        .map(|p| p.nav.stream_to_abs(p.s_hi - 1) + 1)
        .max();
    let (Some(lo), Some(hi)) = (lo, hi) else {
        return Ok((0, 0));
    };
    let lo = lo.max(dom.0);
    let hi = hi.min(dom.1);

    let obs = lio_obs::enabled();
    let mut io_ns = 0u64;
    let mut pack_ns = 0u64;
    let mut windows = 0u64;
    let cb = hints.cb_buffer_size as u64;
    let mut filebuf = vec![0u8; hints.cb_buffer_size];
    // per-AP stream cursor (how far each AP's data has been consumed)
    let mut cursors: Vec<u64> = placements.iter().map(|p| p.s_lo).collect();
    let mut win = lo;
    while win < hi {
        let win_end = (win + cb).min(hi);
        let fb = &mut filebuf[..(win_end - win) as usize];
        // per-AP byte counts in this window (cheap: O(depth) each)
        let mut any = false;
        let mut takes = vec![0u64; placements.len()];
        for (k, p) in placements.iter().enumerate() {
            if p.s_hi <= p.s_lo || cursors[k] >= p.s_hi {
                continue;
            }
            let b = p.nav.abs_to_stream(win_end).min(p.s_hi);
            if b > cursors[k] {
                takes[k] = b - cursors[k];
                any = true;
            }
        }
        if any {
            windows += 1;
            health::beat_window(HbPhase::Io, windows - 1);
            let _w = lio_obs::trace::span_ab("win", windows - 1, win);
            let dense = hints.detect_dense_writes
                && state
                    .merge
                    .as_ref()
                    .is_some_and(|m| m.covered(win, win_end));
            if !dense {
                let t = lio_obs::now();
                let sp = lio_obs::trace::span_ab("io.read", win, fb.len() as u64);
                read_window(storage, win, fb)?;
                drop(sp);
                io_ns += lio_obs::elapsed_ns(t);
            }
            health::beat(HbPhase::Pack);
            let t = lio_obs::now();
            let sp = lio_obs::trace::span_ab("pack.place", win, 0);
            for (k, p) in placements.iter().enumerate() {
                if takes[k] == 0 {
                    continue;
                }
                let a = cursors[k];
                let off = (a - p.s_lo) as usize;
                let placed =
                    p.nav
                        .place_window(&p.data()[off..off + takes[k] as usize], a, fb, win);
                debug_assert_eq!(placed as u64, takes[k]);
                cursors[k] += takes[k];
            }
            drop(sp);
            pack_ns += lio_obs::elapsed_ns(t);
            let t = lio_obs::now();
            let sp = lio_obs::trace::span_ab("io.write", win, fb.len() as u64);
            write_window(storage, win, fb)?;
            drop(sp);
            io_ns += lio_obs::elapsed_ns(t);
            health::beat_bytes(HbPhase::Io, fb.len() as u64);
        }
        win = win_end;
    }
    if obs {
        OBS_W_IO_NS.add(io_ns);
        OBS_W_PACK_NS.add(pack_ns);
        OBS_WINDOWS.add(windows);
    }
    Ok((io_ns, pack_ns))
}

/// Collective read. Every rank calls this; fills `user` and returns bytes
/// read by this rank's access.
#[allow(clippy::too_many_arguments)]
pub(crate) fn read_at_all(
    storage: &dyn StorageFile,
    comm: &Comm,
    state: &CollState,
    nav: &ViewNav,
    packer: &MemPacker,
    user: &mut [u8],
    stream_start: u64,
    total: u64,
    hints: &Hints,
    tuner: Option<&FileTuner>,
) -> Result<u64> {
    // root trace span delimiting this collective op (both schedules)
    let _root = lio_obs::trace::span_ab("coll.read", total, 0);
    if hints.pipeline_enabled() {
        return crate::pipeline::read_at_all(
            storage,
            comm,
            state,
            nav,
            packer,
            user,
            stream_start,
            total,
            hints,
            tuner,
        );
    }
    let t_op = lio_obs::now();
    let engine = match nav {
        ViewNav::List(_) => Engine::ListBased,
        ViewNav::Ff(_) => Engine::Listless,
    };
    let obs = lio_obs::enabled();
    if obs {
        OBS_R_CALLS.incr();
    }
    let mut exch_ns = 0u64;
    let mut io_ns = 0u64;
    let mut pack_ns = 0u64;
    let my_range = access_range(nav, stream_start, total);
    let t = lio_obs::now();
    let (domains, _ranges) = file_domains(comm, my_range, hints);
    exch_ns += lio_obs::elapsed_ns(t);
    let stream_end = stream_start + total;
    let naggr = domains.len();
    let me = comm.rank();

    // ----- AP phase: announce (and, list-based, ship the lists) --------
    let mut my_intersections = vec![(stream_start, stream_start); naggr];
    for (i, &dom) in domains.iter().enumerate() {
        if dom.1 <= dom.0 {
            continue;
        }
        let (s_lo, s_hi) = if my_range.is_some() {
            stream_intersection(nav, stream_start, stream_end, dom)
        } else {
            (stream_start, stream_start)
        };
        my_intersections[i] = (s_lo, s_hi);
        if engine == Engine::ListBased {
            let list = build_access_list(nav, s_lo, s_hi, dom);
            if obs {
                OBS_EXCH_LIST_BYTES.add(list.len() as u64);
            }
            let t = lio_obs::now();
            let sp = lio_obs::trace::span_ab("exch.send", i as u64, 0);
            comm.send_vec(i, TAG_TP_LIST, list);
            drop(sp);
            exch_ns += lio_obs::elapsed_ns(t);
        }
        let mut msg = Vec::with_capacity(16);
        msg.extend_from_slice(&s_lo.to_le_bytes());
        msg.extend_from_slice(&s_hi.to_le_bytes());
        health::beat(HbPhase::Exchange);
        let t = lio_obs::now();
        let sp = lio_obs::trace::span_ab("exch.send", i as u64, 0);
        comm.send_vec(i, TAG_TP_DATA, msg);
        drop(sp);
        exch_ns += lio_obs::elapsed_ns(t);
    }

    // ----- IOP phase: read windows and ship each AP its bytes ----------
    // A storage fault on an IOP must not strand APs waiting for their
    // reply: errors are captured, every AP still receives a buffer of the
    // exact promised length (zero-padded past the failure point), and the
    // error surfaces on this rank after the exchange completes.
    let mut fatal: Option<IoError> = None;
    if me < naggr && domains[me].1 > domains[me].0 {
        let dom = domains[me];
        match engine {
            Engine::ListBased => {
                let mut recv: Vec<RecvList> = Vec::with_capacity(comm.size());
                let mut outs: Vec<Vec<u8>> = Vec::with_capacity(comm.size());
                // bytes promised to each AP, from the announce header
                let mut promised: Vec<u64> = Vec::with_capacity(comm.size());
                let t = lio_obs::now();
                let sp = lio_obs::trace::span("exch.wait");
                for p in 0..comm.size() {
                    health::beat(HbPhase::ExchangeWait);
                    let list_bytes = comm.recv(p, TAG_TP_LIST);
                    let hdr = comm.recv(p, TAG_TP_DATA);
                    health::window_mark(0, p as u32);
                    let s_lo = u64::from_le_bytes(hdr[0..8].try_into().expect("s_lo"));
                    let s_hi = u64::from_le_bytes(hdr[8..16].try_into().expect("s_hi"));
                    promised.push(s_hi - s_lo);
                    match RecvList::parse(&list_bytes, Vec::new(), 0) {
                        Ok(r) => recv.push(r),
                        Err(e) => {
                            fatal.get_or_insert(e);
                            recv.push(RecvList::parse(&[], Vec::new(), 0).expect("empty list"));
                        }
                    }
                    outs.push(Vec::new());
                }
                drop(sp);
                health::window_flush();
                exch_ns += lio_obs::elapsed_ns(t);
                let lo = recv.iter().filter_map(|r| r.next_offset()).min();
                let hi = recv.iter().filter_map(|r| r.end_offset()).max();
                if let (Some(lo), Some(hi)) = (lo, hi) {
                    let lo = lo.max(dom.0);
                    let hi = hi.min(dom.1);
                    let cb = hints.cb_buffer_size as u64;
                    let mut filebuf = vec![0u8; hints.cb_buffer_size];
                    let mut win = lo;
                    while win < hi && fatal.is_none() {
                        let win_end = (win + cb).min(hi);
                        let fb = &mut filebuf[..(win_end - win) as usize];
                        let wanted = recv
                            .iter()
                            .any(|r| r.next_offset().is_some_and(|o| o < win_end));
                        if wanted {
                            if obs {
                                OBS_WINDOWS.incr();
                            }
                            health::beat_bytes(HbPhase::Io, fb.len() as u64);
                            let _w = lio_obs::trace::span_ab("win", win, win_end - win);
                            let t = lio_obs::now();
                            let sp = lio_obs::trace::span_ab("io.read", win, fb.len() as u64);
                            if let Err(e) = read_window(storage, win, fb) {
                                fatal = Some(e);
                                break;
                            }
                            drop(sp);
                            io_ns += lio_obs::elapsed_ns(t);
                            health::beat(HbPhase::Pack);
                            let t = lio_obs::now();
                            let sp = lio_obs::trace::span_ab("pack.place", win, 0);
                            for (r, out) in recv.iter_mut().zip(outs.iter_mut()) {
                                r.extract_from(fb, win, win_end, out);
                            }
                            drop(sp);
                            pack_ns += lio_obs::elapsed_ns(t);
                        }
                        win = win_end;
                    }
                }
                let t = lio_obs::now();
                for (p, mut out) in outs.into_iter().enumerate() {
                    if fatal.is_some() {
                        out.resize(promised[p] as usize, 0);
                    }
                    if obs {
                        OBS_EXCH_DATA_BYTES.add(out.len() as u64);
                    }
                    health::beat_bytes(HbPhase::Exchange, out.len() as u64);
                    comm.send_vec(p, TAG_TP_RDATA, out);
                }
                exch_ns += lio_obs::elapsed_ns(t);
            }
            Engine::Listless => {
                let navs = state
                    .remote_navs
                    .as_ref()
                    .expect("listless collective requires cached fileviews");
                let mut spans: Vec<(u64, u64)> = Vec::with_capacity(comm.size());
                let t = lio_obs::now();
                let sp = lio_obs::trace::span("exch.wait");
                for p in 0..comm.size() {
                    health::beat(HbPhase::ExchangeWait);
                    let msg = comm.recv(p, TAG_TP_DATA);
                    health::window_mark(0, p as u32);
                    let s_lo = u64::from_le_bytes(msg[0..8].try_into().expect("s_lo"));
                    let s_hi = u64::from_le_bytes(msg[8..16].try_into().expect("s_hi"));
                    spans.push((s_lo, s_hi));
                }
                drop(sp);
                health::window_flush();
                exch_ns += lio_obs::elapsed_ns(t);
                let lo = spans
                    .iter()
                    .zip(navs)
                    .filter(|(s, _)| s.1 > s.0)
                    .map(|(s, n)| n.stream_to_abs(s.0))
                    .min();
                let hi = spans
                    .iter()
                    .zip(navs)
                    .filter(|(s, _)| s.1 > s.0)
                    .map(|(s, n)| n.stream_to_abs(s.1 - 1) + 1)
                    .max();
                let mut outs: Vec<Vec<u8>> = spans
                    .iter()
                    .map(|s| Vec::with_capacity((s.1 - s.0) as usize))
                    .collect();
                if let (Some(lo), Some(hi)) = (lo, hi) {
                    let lo = lo.max(dom.0);
                    let hi = hi.min(dom.1);
                    let cb = hints.cb_buffer_size as u64;
                    let mut filebuf = vec![0u8; hints.cb_buffer_size];
                    let mut cursors: Vec<u64> = spans.iter().map(|s| s.0).collect();
                    let mut win = lo;
                    while win < hi {
                        let win_end = (win + cb).min(hi);
                        let fb = &mut filebuf[..(win_end - win) as usize];
                        let mut takes = vec![0u64; spans.len()];
                        let mut any = false;
                        for (k, nav_p) in navs.iter().enumerate() {
                            if spans[k].1 <= spans[k].0 || cursors[k] >= spans[k].1 {
                                continue;
                            }
                            let b = nav_p.abs_to_stream(win_end).min(spans[k].1);
                            if b > cursors[k] {
                                takes[k] = b - cursors[k];
                                any = true;
                            }
                        }
                        if any {
                            if obs {
                                OBS_WINDOWS.incr();
                            }
                            health::beat_bytes(HbPhase::Io, fb.len() as u64);
                            let _w = lio_obs::trace::span_ab("win", win, win_end - win);
                            let t = lio_obs::now();
                            let sp = lio_obs::trace::span_ab("io.read", win, fb.len() as u64);
                            if let Err(e) = read_window(storage, win, fb) {
                                fatal = Some(e);
                                break;
                            }
                            drop(sp);
                            io_ns += lio_obs::elapsed_ns(t);
                            health::beat(HbPhase::Pack);
                            let t = lio_obs::now();
                            let sp = lio_obs::trace::span_ab("pack.place", win, 0);
                            for (k, nav_p) in navs.iter().enumerate() {
                                if takes[k] == 0 {
                                    continue;
                                }
                                let start = outs[k].len();
                                outs[k].resize(start + takes[k] as usize, 0);
                                let got = nav_p.extract_window(
                                    fb,
                                    win,
                                    cursors[k],
                                    &mut outs[k][start..],
                                );
                                debug_assert_eq!(got as u64, takes[k]);
                                cursors[k] += takes[k];
                            }
                            drop(sp);
                            pack_ns += lio_obs::elapsed_ns(t);
                        }
                        win = win_end;
                    }
                }
                let t = lio_obs::now();
                for (p, mut out) in outs.into_iter().enumerate() {
                    if fatal.is_some() {
                        out.resize((spans[p].1 - spans[p].0) as usize, 0);
                    }
                    if obs {
                        OBS_EXCH_DATA_BYTES.add(out.len() as u64);
                    }
                    health::beat_bytes(HbPhase::Exchange, out.len() as u64);
                    comm.send_vec(p, TAG_TP_RDATA, out);
                }
                exch_ns += lio_obs::elapsed_ns(t);
            }
        }
    }

    // ----- AP phase 2: receive and unpack -------------------------------
    for (i, &dom) in domains.iter().enumerate() {
        if dom.1 <= dom.0 {
            continue;
        }
        health::beat(HbPhase::ExchangeWait);
        let t = lio_obs::now();
        let sp = lio_obs::trace::span_ab("exch.wait", i as u64, 0);
        let data = comm.recv(i, TAG_TP_RDATA);
        drop(sp);
        exch_ns += lio_obs::elapsed_ns(t);
        let (s_lo, s_hi) = my_intersections[i];
        debug_assert_eq!(data.len() as u64, s_hi - s_lo);
        if s_hi > s_lo {
            health::beat(HbPhase::Pack);
            let t = lio_obs::now();
            let sp = lio_obs::trace::span_ab("unpack", data.len() as u64, 0);
            let put = packer.unpack(&data, user, s_lo - stream_start);
            drop(sp);
            pack_ns += lio_obs::elapsed_ns(t);
            debug_assert_eq!(put, data.len());
        }
    }
    if obs {
        OBS_R_EXCH_NS.add(exch_ns);
        OBS_R_IO_NS.add(io_ns);
        OBS_R_PACK_NS.add(pack_ns);
    }
    // Tuner outcome. Reads have no closing barrier, so a rank may report
    // after the next op's decision already ran — such stragglers are
    // dropped as stale by the tuner (partial aggregation by design).
    if let Some(tu) = tuner {
        match &fatal {
            Some(_) => tu.abort_op(),
            None => tu.finish_op(OpOutcome {
                write: false,
                wall_ns: lio_obs::elapsed_ns(t_op),
                exchange_ns: exch_ns,
                io_ns,
                pack_ns,
                overlap_ns: 0,
                bytes: total,
                span: domains.iter().map(|d| d.1.saturating_sub(d.0)).sum(),
            }),
        }
    }
    match fatal {
        Some(e) => {
            OBS_FAULT_ABORTS.incr();
            lio_obs::trace::flight_dump("collective read aborted on a storage fault");
            Err(e)
        }
        None => Ok(total),
    }
}
