//! Trace-correctness tests (deterministic, 4 ranks): every span closes,
//! cross-rank send→recv edges are causally ordered after the merge, the
//! ring buffer drops oldest-first on wraparound without corrupting the
//! export, and the critical-path analyzer names a bounding phase for a
//! pipelined collective write.

mod common;

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use lio_core::{File, Hints, SharedFile};
use lio_datatype::{Datatype, Field};
use lio_mpi::World;
use lio_obs::trace;
use lio_pfs::{MemFile, Throttle, ThrottledFile};

/// Serialize tests touching the global trace state (cargo runs tests in
/// one process, many threads) and restore defaults afterwards.
fn with_trace<R>(f: impl FnOnce() -> R) -> R {
    static GATE: Mutex<()> = Mutex::new(());
    let _g = GATE.lock().unwrap();
    trace::set_capacity(trace::DEFAULT_CAPACITY);
    trace::set_enabled(true);
    let r = f();
    trace::set_enabled(false);
    trace::set_capacity(trace::DEFAULT_CAPACITY);
    r
}

/// The interleaved filetype every collective test writes through: rank r
/// owns block slot r of each stride.
fn interleaved_ft(sblock: u64, nblock: u64, slots: u64) -> Datatype {
    let block = Datatype::contiguous(sblock, &Datatype::byte()).unwrap();
    let v = Datatype::vector(nblock, 1, slots as i64, &block).unwrap();
    let extent = nblock * slots * sblock;
    Datatype::struct_type(vec![
        Field {
            disp: 0,
            count: 1,
            child: Datatype::lb_marker(),
        },
        Field {
            disp: 0,
            count: 1,
            child: v,
        },
        Field {
            disp: extent as i64,
            count: 1,
            child: Datatype::ub_marker(),
        },
    ])
    .unwrap()
}

/// Run one 4-rank collective write + read-back under `hints` against the
/// given storage, with tracing armed, and return the collected streams.
fn traced_collective(hints: Hints, shared: SharedFile) -> Vec<trace::RankStream> {
    trace::reset();
    let sh = shared;
    World::run(4, move |comm| {
        let me = comm.rank() as u64;
        let ft = interleaved_ft(32, 8, comm.size() as u64 + 1);
        let mut f = File::open(comm, sh.clone(), hints).unwrap();
        f.set_view(me * 32, Datatype::byte(), ft).unwrap();
        let n = 8 * 32u64;
        let data: Vec<u8> = (0..n).map(|i| (me * 31 + i) as u8).collect();
        f.write_at_all(0, &data, n, &Datatype::byte()).unwrap();
        let mut back = vec![0u8; n as usize];
        f.read_at_all(0, &mut back, n, &Datatype::byte()).unwrap();
        assert_eq!(back, data, "rank {me} read back foreign bytes");
    });
    trace::collect()
}

#[test]
fn every_span_closes() {
    with_trace(|| {
        let streams = traced_collective(Hints::default(), SharedFile::new(MemFile::new()));
        assert!(!streams.is_empty(), "no events recorded");
        for s in &streams {
            assert_eq!(s.dropped, 0, "rank {} overflowed its ring", s.rank);
            // per export track, Begin/End must pair up like brackets
            let mut open: HashMap<u32, Vec<u64>> = HashMap::new();
            for ev in &s.events {
                match ev.kind {
                    trace::Kind::SpanBegin => {
                        open.entry(ev.tid).or_default().push(ev.span_id);
                    }
                    trace::Kind::SpanEnd => {
                        let stack = open.get_mut(&ev.tid).unwrap_or_else(|| {
                            panic!("rank {} tid {}: end without begin", s.rank, ev.tid)
                        });
                        let top = stack.pop().expect("end without matching begin");
                        assert_eq!(
                            top, ev.span_id,
                            "rank {} tid {}: spans closed out of order",
                            s.rank, ev.tid
                        );
                    }
                    _ => {}
                }
            }
            for (tid, stack) in open {
                assert!(
                    stack.is_empty(),
                    "rank {} tid {tid}: {} spans never closed: {stack:?}",
                    s.rank,
                    stack.len()
                );
            }
        }
        // exporting must yield well-formed JSON
        let tl = trace::merge(&streams);
        lio_obs::json::validate(&trace::to_chrome_json(&tl)).expect("chrome export parses");
    });
}

#[test]
fn send_recv_edges_are_causal() {
    with_trace(|| {
        let streams = traced_collective(Hints::default(), SharedFile::new(MemFile::new()));
        let tl = trace::merge(&streams);
        assert!(!tl.edges.is_empty(), "collective produced no message edges");
        assert_eq!(tl.unmatched_sends, 0, "sends without a matching recv");
        assert_eq!(tl.unmatched_recvs, 0, "recvs without a matching send");
        assert_eq!(tl.causal_violations, 0, "recv timestamped before send");
        for e in &tl.edges {
            assert!(
                e.send_ts <= e.recv_ts,
                "edge {}→{} seq {} travels backwards in time",
                e.src_rank,
                e.dst_rank,
                e.seq
            );
        }
        // the merged event list is time-sorted
        assert!(
            tl.events.windows(2).all(|w| w[0].ts <= w[1].ts),
            "merged timeline is not time-ordered"
        );
    });
}

#[test]
fn ring_wraparound_drops_oldest_first() {
    with_trace(|| {
        trace::set_capacity(64);
        trace::set_thread_rank(0);
        let pushed = 200u64;
        for i in 0..pushed {
            trace::mark("test.mark", i, 0);
        }
        let streams = trace::collect();
        let s = streams.iter().find(|s| s.rank == 0).expect("rank 0 stream");
        assert_eq!(s.events.len(), 64, "export must hold exactly one ring");
        assert_eq!(s.dropped, pushed - 64, "drop count disagrees");
        // oldest-first: the survivors are the newest 64 marks, in order
        for (k, ev) in s.events.iter().enumerate() {
            assert_eq!(
                ev.a,
                pushed - 64 + k as u64,
                "slot {k} holds the wrong event after wraparound"
            );
        }
        assert!(
            s.events.windows(2).all(|w| w[0].ts <= w[1].ts),
            "wrapped export is not time-ordered"
        );
        // and it still exports cleanly
        let tl = trace::merge(&streams);
        assert_eq!(tl.dropped, pushed - 64);
        lio_obs::json::validate(&trace::to_chrome_json(&tl)).expect("wrapped export parses");
        // a truncated trace must announce itself in the report footer
        let report = trace::render_report(&trace::critical_path(&tl), &tl);
        assert!(report.contains("dropped=136"), "{report}");
        assert!(report.contains("WARNING"), "{report}");
    });
}

#[test]
fn critical_path_names_a_bounding_phase() {
    with_trace(|| {
        // a modelled-slow device makes the phase attribution non-trivial
        let slow = Throttle {
            read_bw: 500e6,
            write_bw: 500e6,
            latency: std::time::Duration::from_micros(200),
        };
        let shared = SharedFile::new(ThrottledFile::new(Arc::new(MemFile::new()), slow));
        let hints = Hints::default()
            .cb_buffer(1 << 10)
            .pipelined(true)
            .pipeline_depth(2);
        let streams = traced_collective(hints, shared);
        let tl = trace::merge(&streams);
        let reports = trace::critical_path(&tl);
        // one write + one read collective
        assert_eq!(reports.len(), 2, "expected two collective ops");
        assert_eq!(reports[0].tag, "coll.write");
        assert_eq!(reports[1].tag, "coll.read");
        for r in &reports {
            assert!(r.wall_ns > 0, "op {} has zero wall time", r.index);
            assert!((r.bound_rank as usize) < 4, "bounding rank out of range");
            let phase_total = r.exchange_ns + r.io_ns + r.pack_ns;
            assert!(phase_total > 0, "op {} attributed no phase time", r.index);
        }
        let table = trace::render_report(&reports, &tl);
        assert!(table.contains("coll.write"), "report table lacks the op");
        for r in &reports {
            assert!(
                table.contains(r.bounding.name()),
                "report table lacks the bounding phase"
            );
        }
        // the health footer must always state the truncation counters
        assert!(
            table.contains("trace health: dropped=0"),
            "report lacks the trace-health footer: {table}"
        );
        assert!(
            !table.contains("WARNING"),
            "clean trace must not warn: {table}"
        );
    });
}
