//! Independent (non-collective) I/O: both engines vs the naive reference,
//! across the paper's four access patterns (Figure 1), sieving modes,
//! buffer sizes, and etype-granular offsets.

mod common;

use common::{pattern, reference_read, reference_stream, reference_write};
use lio_core::{File, Hints, SharedFile, SievingMode};
use lio_datatype::{Datatype, Field, Order};
use lio_mpi::World;
use lio_pfs::MemFile;

fn engines() -> Vec<Hints> {
    vec![Hints::list_based(), Hints::listless()]
}

/// Run one write+readback scenario on a single rank and check against the
/// reference.
fn check_independent(
    hints: Hints,
    disp: u64,
    ftype: &Datatype,
    memtype: &Datatype,
    count: u64,
    offset_etypes: u64,
    etype: &Datatype,
) {
    let span = if count == 0 {
        0
    } else {
        ((count as i64 - 1) * memtype.extent() as i64 + memtype.data_ub()) as usize
    };
    let user = pattern(span.max(1), disp + count + offset_etypes);
    let stream = reference_stream(&user, memtype, count);
    let stream_start = offset_etypes * etype.size();

    // expected file contents
    let mut want = Vec::new();
    reference_write(&mut want, disp, ftype, stream_start, &stream);

    let shared = SharedFile::new(MemFile::new());
    let ftype2 = ftype.clone();
    let etype2 = etype.clone();
    let memtype2 = memtype.clone();
    let user2 = user.clone();
    let got_back = World::run(1, move |comm| {
        let mut f = File::open(comm, shared.clone(), hints).unwrap();
        f.set_view(disp, etype2.clone(), ftype2.clone()).unwrap();
        let n = f.write_at(offset_etypes, &user2, count, &memtype2).unwrap();
        assert_eq!(n, count * memtype2.size());

        // snapshot and compare inside (storage reachable via shared)
        let mut back = vec![0u8; user2.len()];
        let n = f
            .read_at(offset_etypes, &mut back, count, &memtype2)
            .unwrap();
        assert_eq!(n, count * memtype2.size());
        (shared.clone(), back)
    })
    .pop()
    .unwrap();

    let (shared, back) = got_back;
    // file contents match the reference
    let mut snap = vec![0u8; shared.len() as usize];
    shared.storage().read_at(0, &mut snap).unwrap();
    // compare padded to the longer
    let n = snap.len().max(want.len());
    snap.resize(n, 0);
    want.resize(n, 0);
    assert_eq!(snap, want, "file contents differ from reference");

    // read-back returns the stream, re-placed into the user layout
    let want_read = reference_read(&snap, disp, ftype, stream_start, stream.len() as u64);
    assert_eq!(want_read, stream, "reference read is self-consistent");
    // the read data must land at the memtype's positions
    let mut expect_user = vec![0u8; user.len()];
    lio_datatype::typemap::reference_unpack(&stream, &mut expect_user, memtype, count);
    for r in lio_datatype::typemap::expand(memtype, count) {
        let o = r.disp as usize;
        assert_eq!(
            &back[o..o + r.len as usize],
            &expect_user[o..o + r.len as usize],
            "read-back mismatch at run {r:?}"
        );
    }
}

fn noncontig_filetype(nblock: u64, sblock: u64, stride_blocks: u64) -> Datatype {
    let block = Datatype::contiguous(sblock, &Datatype::byte()).unwrap();
    Datatype::vector(nblock, 1, stride_blocks as i64, &block).unwrap()
}

#[test]
fn cc_contiguous_both() {
    for h in engines() {
        check_independent(
            h,
            0,
            &Datatype::contiguous(64, &Datatype::byte()).unwrap(),
            &Datatype::contiguous(128, &Datatype::byte()).unwrap(),
            1,
            0,
            &Datatype::byte(),
        );
    }
}

#[test]
fn c_nc_vector_view() {
    for h in engines() {
        let ft = noncontig_filetype(8, 8, 3);
        check_independent(
            h,
            0,
            &ft,
            &Datatype::contiguous(160, &Datatype::byte()).unwrap(),
            1,
            0,
            &Datatype::byte(),
        );
    }
}

#[test]
fn nc_c_memtype_only() {
    for h in engines() {
        let mt = Datatype::vector(10, 2, 5, &Datatype::int()).unwrap();
        check_independent(
            h,
            16,
            &Datatype::contiguous(256, &Datatype::byte()).unwrap(),
            &mt,
            2,
            3,
            &Datatype::byte(),
        );
    }
}

#[test]
fn nc_nc_both_sides() {
    for h in engines() {
        let ft = noncontig_filetype(6, 16, 2);
        let mt = Datatype::vector(12, 1, 2, &Datatype::double()).unwrap();
        check_independent(h, 8, &ft, &mt, 2, 0, &Datatype::byte());
    }
}

#[test]
fn offsets_inside_filetype() {
    // etype = double; offsets land in the middle of the filetype
    for h in engines() {
        let block = Datatype::contiguous(2, &Datatype::double()).unwrap();
        let ft = Datatype::vector(4, 1, 3, &block).unwrap(); // 8 doubles data, 24 extent
        for offset in [0u64, 1, 3, 7, 8, 13] {
            check_independent(
                h,
                0,
                &ft,
                &Datatype::contiguous(40, &Datatype::byte()).unwrap(),
                1,
                offset,
                &Datatype::double(),
            );
        }
    }
}

#[test]
fn tiny_sieve_buffer_forces_many_windows() {
    for h in engines() {
        let h = h.ind_buffer(32);
        let ft = noncontig_filetype(16, 4, 5);
        check_independent(
            h,
            4,
            &ft,
            &Datatype::contiguous(200, &Datatype::byte()).unwrap(),
            1,
            0,
            &Datatype::byte(),
        );
    }
}

#[test]
fn direct_mode_equals_sieve_mode() {
    for base in engines() {
        let ft = noncontig_filetype(10, 8, 3);
        for mode in [SievingMode::Sieve, SievingMode::Direct] {
            check_independent(
                base.sieving_mode(mode),
                0,
                &ft,
                &Datatype::contiguous(80, &Datatype::byte()).unwrap(),
                1,
                2,
                &Datatype::byte(),
            );
        }
    }
}

#[test]
fn subarray_fileview() {
    for h in engines() {
        let ft =
            Datatype::subarray(&[8, 10], &[4, 5], &[2, 3], Order::C, &Datatype::double()).unwrap();
        check_independent(
            h,
            0,
            &ft,
            &Datatype::contiguous(4 * 5 * 8 * 2, &Datatype::byte()).unwrap(),
            1,
            0,
            &Datatype::double(),
        );
    }
}

#[test]
fn struct_filetype_with_markers() {
    for h in engines() {
        let v = Datatype::vector(4, 2, 4, &Datatype::double()).unwrap();
        let ft = Datatype::struct_type(vec![
            Field {
                disp: 0,
                count: 1,
                child: Datatype::lb_marker(),
            },
            Field {
                disp: 16,
                count: 1,
                child: v,
            },
            Field {
                disp: 160,
                count: 1,
                child: Datatype::ub_marker(),
            },
        ])
        .unwrap();
        check_independent(
            h,
            0,
            &ft,
            &Datatype::contiguous(128, &Datatype::byte()).unwrap(),
            1,
            1,
            &Datatype::double(),
        );
    }
}

#[test]
fn two_ranks_disjoint_independent_writes() {
    // concurrent sieving writes to interleaved views must not clobber each
    // other (the range lock at work)
    for h in engines() {
        let h = h.ind_buffer(64);
        let shared = SharedFile::new(MemFile::new());
        let sblock = 8u64;
        let nblock = 32u64;
        let shared2 = shared.clone();
        World::run(2, move |comm| {
            let me = comm.rank() as u64;
            let block = Datatype::contiguous(sblock, &Datatype::byte()).unwrap();
            let ft_raw = Datatype::vector(nblock, 1, 2, &block).unwrap();
            let mut f = File::open(comm, shared2.clone(), h).unwrap();
            f.set_view(me * sblock, Datatype::byte(), ft_raw).unwrap();
            let data = vec![me as u8 + 1; (nblock * sblock) as usize];
            f.write_at(0, &data, data.len() as u64, &Datatype::byte())
                .unwrap();
        });
        let mut snap = vec![0u8; shared.len() as usize];
        shared.storage().read_at(0, &mut snap).unwrap();
        assert_eq!(snap.len() as u64, 2 * nblock * sblock);
        for (i, b) in snap.iter().enumerate() {
            let owner = (i as u64 / sblock) % 2;
            assert_eq!(*b, owner as u8 + 1, "byte {i}");
        }
    }
}

#[test]
fn read_past_eof_zero_fills() {
    for h in engines() {
        let shared = SharedFile::new(MemFile::with_data(vec![7u8; 10]));
        let shared2 = shared.clone();
        World::run(1, move |comm| {
            let f = File::open(comm, shared2.clone(), h).unwrap();
            let mut buf = vec![0xFFu8; 20];
            let n = f.read_bytes_at(0, &mut buf).unwrap();
            assert_eq!(n, 20);
            assert_eq!(&buf[..10], &[7u8; 10]);
            assert_eq!(&buf[10..], &[0u8; 10]);
        });
    }
}

#[test]
fn zero_length_access_is_noop() {
    for h in engines() {
        let shared = SharedFile::new(MemFile::new());
        let shared2 = shared.clone();
        World::run(1, move |comm| {
            let f = File::open(comm, shared2.clone(), h).unwrap();
            assert_eq!(f.write_bytes_at(5, &[]).unwrap(), 0);
            let mut empty: Vec<u8> = Vec::new();
            assert_eq!(f.read_bytes_at(5, &mut empty).unwrap(), 0);
        });
        assert_eq!(shared.len(), 0);
    }
}

#[test]
fn file_pointer_read_write() {
    for h in engines() {
        let shared = SharedFile::new(MemFile::new());
        let shared2 = shared.clone();
        World::run(1, move |comm| {
            let mut f = File::open(comm, shared2.clone(), h).unwrap();
            f.write(&[1, 2, 3, 4], 4, &Datatype::byte()).unwrap();
            assert_eq!(f.tell(), 4);
            f.write(&[5, 6], 2, &Datatype::byte()).unwrap();
            assert_eq!(f.tell(), 6);
            f.seek(2);
            let mut buf = [0u8; 4];
            f.read(&mut buf, 4, &Datatype::byte()).unwrap();
            assert_eq!(buf, [3, 4, 5, 6]);
            assert_eq!(f.tell(), 6);
        });
    }
}

#[test]
fn large_block_counts_both_engines() {
    // a filetype with many blocks (the regime where list-based costs blow
    // up; here we only check correctness)
    for h in engines() {
        let ft = noncontig_filetype(512, 8, 2);
        check_independent(
            h.ind_buffer(1024),
            0,
            &ft,
            &Datatype::contiguous(4096, &Datatype::byte()).unwrap(),
            1,
            0,
            &Datatype::byte(),
        );
    }
}

#[test]
fn auto_mode_matches_explicit_modes() {
    // Auto must produce the same file contents as either explicit mode,
    // in both the dense-small-block regime (chooses sieve) and the
    // sparse-large-block regime (chooses direct).
    for h in engines() {
        // dense, tiny blocks -> sieve territory
        let dense_ft = noncontig_filetype(64, 8, 2);
        check_independent(
            h.sieving_mode(SievingMode::Auto),
            0,
            &dense_ft,
            &Datatype::contiguous(64 * 8 * 2, &Datatype::byte()).unwrap(),
            1,
            0,
            &Datatype::byte(),
        );
        // sparse, large blocks -> direct territory
        let sparse_ft = noncontig_filetype(4, 16 * 1024, 8);
        check_independent(
            h.sieving_mode(SievingMode::Auto),
            0,
            &sparse_ft,
            &Datatype::contiguous(4 * 16 * 1024, &Datatype::byte()).unwrap(),
            1,
            0,
            &Datatype::byte(),
        );
    }
}

#[test]
fn auto_mode_decision_boundaries() {
    use lio_core::sieve::choose_mode;
    // dense views sieve regardless of block size
    assert_eq!(choose_mode(0.9, 100_000.0), SievingMode::Sieve);
    // sparse + small blocks sieve (per-block access would thrash)
    assert_eq!(choose_mode(0.1, 64.0), SievingMode::Sieve);
    // sparse + large blocks go direct
    assert_eq!(choose_mode(0.1, 64_000.0), SievingMode::Direct);
}
