#![allow(dead_code)] // each test binary uses a different subset

//! Shared test helpers: a deliberately naive reference implementation of
//! viewed file access, used to differentially test both engines.

use lio_core::{BackendKind, SharedFile};
use lio_datatype::typemap::{expand, reference_pack};
use lio_datatype::Datatype;
use lio_pfs::decorate::FaultyFile;
use lio_pfs::{MemFile, StorageFile};
use std::sync::Arc;

/// An injection-free handle on the raw device beneath whatever stack
/// [`test_storage`] built (fault decorator, submission queue, ...), for
/// byte-exact snapshots regardless of the selected backend.
pub struct SnapHandle(Arc<dyn StorageFile>);

impl SnapHandle {
    /// The entire current file contents.
    pub fn snapshot(&self) -> Vec<u8> {
        let len = self.0.len() as usize;
        let mut out = vec![0u8; len];
        if len > 0 {
            let n = lio_pfs::retry::read_full_at(&*self.0, 0, &mut out).expect("snapshot read");
            assert_eq!(n, len, "snapshot read must reach EOF");
        }
        out
    }
}

/// Empty test storage honoring the backend and fault environment:
///
/// * `LIO_BACKEND` selects the substrate — `mem` (default) builds over a
///   [`MemFile`], `os` over the real-file submission-queue backend
///   ([`lio_pfs::OsFile`] on an unlinked temp file), `throttled` over
///   the calibrated bandwidth model — so the whole differential corpus
///   reruns unchanged against real storage;
/// * `LIO_FAULT_SEED` injects that seed's storage fault schedule
///   ([`lio_testkit::fault_plan`]) *beneath* the backend stack (for the
///   `os` backend that means inside the worker threadpool's retry path).
///
/// The returned [`SnapHandle`] bypasses both for byte-exact snapshots.
pub fn test_storage() -> (SharedFile, SnapHandle) {
    test_storage_with(Vec::new())
}

/// [`test_storage`] over pre-existing file contents.
pub fn test_storage_with(data: Vec<u8>) -> (SharedFile, SnapHandle) {
    storage_stack(BackendKind::from_env(), data, lio_testkit::env_seed())
}

/// Build a fresh storage stack over an *explicitly chosen* backend (no
/// environment involved), for the cross-backend differential corpus.
pub fn storage_for_backend(kind: BackendKind) -> (SharedFile, SnapHandle) {
    storage_stack(kind, Vec::new(), None)
}

fn storage_stack(
    backend: BackendKind,
    data: Vec<u8>,
    fault_seed: Option<u64>,
) -> (SharedFile, SnapHandle) {
    let raw: Arc<dyn StorageFile> = match backend {
        BackendKind::Os => {
            Arc::new(lio_pfs::os::temp_unix().expect("temp file for the os backend"))
        }
        _ => Arc::new(MemFile::new()),
    };
    if !data.is_empty() {
        lio_pfs::retry::write_full_at(&*raw, 0, &data).expect("pre-populate storage");
    }
    let device: Arc<dyn StorageFile> = match fault_seed {
        Some(seed) => Arc::new(FaultyFile::new(
            Arc::clone(&raw),
            lio_testkit::fault_plan(seed),
        )),
        None => Arc::clone(&raw),
    };
    let shared = match backend {
        BackendKind::Os => SharedFile::new(lio_pfs::OsFile::over_arc(
            device,
            lio_pfs::OsConfig::from_env(),
        )),
        BackendKind::Throttled => SharedFile::new(lio_pfs::ThrottledFile::new(
            device,
            lio_pfs::Throttle::sx6_local_fs(),
        )),
        BackendKind::Mem => SharedFile::from_arc(device),
    };
    (shared, SnapHandle(raw))
}

/// Arm the rank-local communication fault schedule when `LIO_FAULT_SEED`
/// is set; a no-op otherwise. Call at the top of a `World::run` closure.
pub fn apply_comm_faults(comm: &lio_mpi::Comm) {
    if let Some(seed) = lio_testkit::env_seed() {
        comm.set_fault_plan(Some(lio_testkit::comm_fault_plan(seed, comm.rank())));
    }
}

/// The file bytes that a correct write must produce: walk the view's tiled
/// runs, skip `stream_start` data bytes, place `data` run by run.
pub fn reference_write(
    file: &mut Vec<u8>,
    disp: u64,
    ftype: &Datatype,
    stream_start: u64,
    data: &[u8],
) {
    let fsize = ftype.size();
    let fext = ftype.extent();
    assert!(fsize > 0);
    let instances = (stream_start + data.len() as u64) / fsize + 2;
    let mut remaining_skip = stream_start;
    let mut pos = 0usize;
    'outer: for inst in 0..instances {
        let base = disp as i64 + (inst * fext) as i64;
        for r in expand(ftype, 1) {
            let mut off = (base + r.disp) as u64;
            let mut len = r.len;
            if remaining_skip >= len {
                remaining_skip -= len;
                continue;
            }
            off += remaining_skip;
            len -= remaining_skip;
            remaining_skip = 0;
            let take = (len as usize).min(data.len() - pos);
            if file.len() < off as usize + take {
                file.resize(off as usize + take, 0);
            }
            file[off as usize..off as usize + take].copy_from_slice(&data[pos..pos + take]);
            pos += take;
            if pos == data.len() {
                break 'outer;
            }
        }
    }
    assert_eq!(pos, data.len(), "reference write consumed all data");
}

/// The bytes a correct read must return (zeros for holes/EOF).
pub fn reference_read(
    file: &[u8],
    disp: u64,
    ftype: &Datatype,
    stream_start: u64,
    total: u64,
) -> Vec<u8> {
    let fsize = ftype.size();
    let fext = ftype.extent();
    let instances = (stream_start + total) / fsize + 2;
    let mut out = Vec::with_capacity(total as usize);
    let mut remaining_skip = stream_start;
    'outer: for inst in 0..instances {
        let base = disp as i64 + (inst * fext) as i64;
        for r in expand(ftype, 1) {
            let mut off = (base + r.disp) as u64;
            let mut len = r.len;
            if remaining_skip >= len {
                remaining_skip -= len;
                continue;
            }
            off += remaining_skip;
            len -= remaining_skip;
            remaining_skip = 0;
            for k in 0..len {
                if out.len() as u64 == total {
                    break 'outer;
                }
                let i = (off + k) as usize;
                out.push(if i < file.len() { file[i] } else { 0 });
            }
            if out.len() as u64 == total {
                break 'outer;
            }
        }
    }
    assert_eq!(out.len() as u64, total);
    out
}

/// Pack a user buffer through a memtype: the stream a write must emit.
pub fn reference_stream(user: &[u8], memtype: &Datatype, count: u64) -> Vec<u8> {
    reference_pack(user, memtype, count)
}

/// A deterministic pseudorandom byte pattern.
pub fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect()
}
