#![allow(dead_code)] // each test binary uses a different subset

//! Shared test helpers: a deliberately naive reference implementation of
//! viewed file access, used to differentially test both engines.

use lio_core::SharedFile;
use lio_datatype::typemap::{expand, reference_pack};
use lio_datatype::Datatype;
use lio_pfs::decorate::FaultyFile;
use lio_pfs::MemFile;
use std::sync::Arc;

/// Empty test storage honoring `LIO_FAULT_SEED`: when the variable is
/// set, the shared handle injects that seed's storage fault schedule
/// ([`lio_testkit::fault_plan`]); either way the returned [`MemFile`] is
/// an injection-free handle for byte-exact snapshots.
pub fn test_storage() -> (SharedFile, Arc<MemFile>) {
    test_storage_with(Vec::new())
}

/// [`test_storage`] over pre-existing file contents.
pub fn test_storage_with(data: Vec<u8>) -> (SharedFile, Arc<MemFile>) {
    let mem = Arc::new(MemFile::with_data(data));
    let shared = match lio_testkit::env_seed() {
        Some(seed) => SharedFile::new(FaultyFile::new(
            Arc::clone(&mem),
            lio_testkit::fault_plan(seed),
        )),
        None => SharedFile::from_arc(Arc::clone(&mem) as Arc<dyn lio_pfs::StorageFile>),
    };
    (shared, mem)
}

/// Arm the rank-local communication fault schedule when `LIO_FAULT_SEED`
/// is set; a no-op otherwise. Call at the top of a `World::run` closure.
pub fn apply_comm_faults(comm: &lio_mpi::Comm) {
    if let Some(seed) = lio_testkit::env_seed() {
        comm.set_fault_plan(Some(lio_testkit::comm_fault_plan(seed, comm.rank())));
    }
}

/// The file bytes that a correct write must produce: walk the view's tiled
/// runs, skip `stream_start` data bytes, place `data` run by run.
pub fn reference_write(
    file: &mut Vec<u8>,
    disp: u64,
    ftype: &Datatype,
    stream_start: u64,
    data: &[u8],
) {
    let fsize = ftype.size();
    let fext = ftype.extent();
    assert!(fsize > 0);
    let instances = (stream_start + data.len() as u64) / fsize + 2;
    let mut remaining_skip = stream_start;
    let mut pos = 0usize;
    'outer: for inst in 0..instances {
        let base = disp as i64 + (inst * fext) as i64;
        for r in expand(ftype, 1) {
            let mut off = (base + r.disp) as u64;
            let mut len = r.len;
            if remaining_skip >= len {
                remaining_skip -= len;
                continue;
            }
            off += remaining_skip;
            len -= remaining_skip;
            remaining_skip = 0;
            let take = (len as usize).min(data.len() - pos);
            if file.len() < off as usize + take {
                file.resize(off as usize + take, 0);
            }
            file[off as usize..off as usize + take].copy_from_slice(&data[pos..pos + take]);
            pos += take;
            if pos == data.len() {
                break 'outer;
            }
        }
    }
    assert_eq!(pos, data.len(), "reference write consumed all data");
}

/// The bytes a correct read must return (zeros for holes/EOF).
pub fn reference_read(
    file: &[u8],
    disp: u64,
    ftype: &Datatype,
    stream_start: u64,
    total: u64,
) -> Vec<u8> {
    let fsize = ftype.size();
    let fext = ftype.extent();
    let instances = (stream_start + total) / fsize + 2;
    let mut out = Vec::with_capacity(total as usize);
    let mut remaining_skip = stream_start;
    'outer: for inst in 0..instances {
        let base = disp as i64 + (inst * fext) as i64;
        for r in expand(ftype, 1) {
            let mut off = (base + r.disp) as u64;
            let mut len = r.len;
            if remaining_skip >= len {
                remaining_skip -= len;
                continue;
            }
            off += remaining_skip;
            len -= remaining_skip;
            remaining_skip = 0;
            for k in 0..len {
                if out.len() as u64 == total {
                    break 'outer;
                }
                let i = (off + k) as usize;
                out.push(if i < file.len() { file[i] } else { 0 });
            }
            if out.len() as u64 == total {
                break 'outer;
            }
        }
    }
    assert_eq!(out.len() as u64, total);
    out
}

/// Pack a user buffer through a memtype: the stream a write must emit.
pub fn reference_stream(user: &[u8], memtype: &Datatype, count: u64) -> Vec<u8> {
    reference_pack(user, memtype, count)
}

/// A deterministic pseudorandom byte pattern.
pub fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect()
}
