//! Cross-backend differential corpus: the in-memory backend and the
//! real-file submission-queue backend must be *byte-identical* — same
//! final file contents, same collective read-backs — across engines,
//! world sizes, and the pipelined/monolithic paths.
//!
//! Every assertion carries a replay line (environment + command) so a
//! failing configuration reproduces from the message alone, the same
//! convention the fault corpus uses with `LIO_FAULT_SEED`.

mod common;

use common::{pattern, reference_write, storage_for_backend};
use lio_core::{BackendKind, Engine, File, Hints};
use lio_datatype::{Datatype, Field};
use lio_mpi::World;
use std::sync::{Arc, Mutex};

/// The noncontig benchmark's fileview for rank p of P: an LB/vector/UB
/// struct with disp = p·blocklen, stride = P·blocklen.
fn noncontig_view(p: u64, nprocs: u64, nblock: u64, sblock: u64) -> (u64, Datatype) {
    let block = Datatype::contiguous(sblock, &Datatype::byte()).unwrap();
    let v = Datatype::vector(nblock, 1, nprocs as i64, &block).unwrap();
    let extent = nblock * nprocs * sblock;
    let ft = Datatype::struct_type(vec![
        Field {
            disp: 0,
            count: 1,
            child: Datatype::lb_marker(),
        },
        Field {
            disp: 0,
            count: 1,
            child: v,
        },
        Field {
            disp: extent as i64,
            count: 1,
            child: Datatype::ub_marker(),
        },
    ])
    .unwrap();
    (p * sblock, ft)
}

#[derive(Clone, Copy)]
struct Config {
    engine: Engine,
    pipelined: bool,
    nprocs: u64,
    nblock: u64,
    sblock: u64,
    cb: usize,
}

impl Config {
    /// One line that reproduces this configuration from a shell.
    fn replay(&self, test: &str) -> String {
        format!(
            "replay: LIO_PIPELINE={} cargo test -q -p lio-core --test backend -- {test} \
             [engine={:?} ranks={} nblock={} sblock={} cb={}]",
            self.pipelined as u8, self.engine, self.nprocs, self.nblock, self.sblock, self.cb
        )
    }
}

/// Run the interleaved collective write + read-back on one backend.
/// Returns the final raw file bytes and each rank's read-back.
fn run_on(kind: BackendKind, cfg: Config) -> (Vec<u8>, Vec<Vec<u8>>) {
    let (shared, snap) = storage_for_backend(kind);
    let shared2 = shared.clone();
    let reads: Arc<Mutex<Vec<Vec<u8>>>> =
        Arc::new(Mutex::new(vec![Vec::new(); cfg.nprocs as usize]));
    let reads2 = Arc::clone(&reads);
    World::run(cfg.nprocs as usize, move |comm| {
        let me = comm.rank() as u64;
        let hints = Hints::with_engine(cfg.engine)
            .pipelined(cfg.pipelined)
            .cb_buffer(cfg.cb)
            .backend(kind);
        let (disp, ft) = noncontig_view(me, cfg.nprocs, cfg.nblock, cfg.sblock);
        let mut f = File::open(comm, shared2.clone(), hints).unwrap();
        f.set_view(disp, Datatype::byte(), ft).unwrap();
        let data = pattern((cfg.nblock * cfg.sblock) as usize, me + 1);
        let n = f
            .write_at_all(0, &data, data.len() as u64, &Datatype::byte())
            .unwrap();
        assert_eq!(n, cfg.nblock * cfg.sblock);
        let mut back = vec![0u8; data.len()];
        let blen = back.len() as u64;
        let n = f
            .read_at_all(0, &mut back, blen, &Datatype::byte())
            .unwrap();
        assert_eq!(n, cfg.nblock * cfg.sblock);
        reads2.lock().unwrap()[me as usize] = back;
    });
    let contents = snap.snapshot();
    let reads = Arc::try_unwrap(reads).unwrap().into_inner().unwrap();
    (contents, reads)
}

/// The ground truth the reference implementation predicts.
fn reference(cfg: Config) -> Vec<u8> {
    let mut want = Vec::new();
    for p in 0..cfg.nprocs {
        let (disp, ft) = noncontig_view(p, cfg.nprocs, cfg.nblock, cfg.sblock);
        let data = pattern((cfg.nblock * cfg.sblock) as usize, p + 1);
        reference_write(&mut want, disp, &ft, 0, &data);
    }
    want
}

/// The differential assertion: mem and os agree with each other *and*
/// with the reference, and every rank reads its own data back on both.
fn assert_equivalent(cfg: Config, test: &str) {
    let replay = cfg.replay(test);
    let (mem_file, mem_reads) = run_on(BackendKind::Mem, cfg);
    let (os_file, os_reads) = run_on(BackendKind::Os, cfg);
    let mut want = reference(cfg);
    let n = mem_file.len().max(os_file.len()).max(want.len());
    let pad = |mut v: Vec<u8>| {
        v.resize(n, 0);
        v
    };
    let (mem_file, os_file) = (pad(mem_file), pad(os_file));
    want = pad(want);
    assert_eq!(
        mem_file, want,
        "mem backend diverges from reference\n{replay}"
    );
    assert_eq!(
        os_file, want,
        "os backend diverges from reference\n{replay}"
    );
    assert_eq!(mem_file, os_file, "backends diverge\n{replay}");
    for p in 0..cfg.nprocs as usize {
        let data = pattern((cfg.nblock * cfg.sblock) as usize, p as u64 + 1);
        assert_eq!(mem_reads[p], data, "mem read-back, rank {p}\n{replay}");
        assert_eq!(os_reads[p], data, "os read-back, rank {p}\n{replay}");
    }
}

fn corpus(nprocs: u64, nblock: u64, sblock: u64, cb: usize, test: &str) {
    for engine in [Engine::ListBased, Engine::Listless] {
        for pipelined in [false, true] {
            assert_equivalent(
                Config {
                    engine,
                    pipelined,
                    nprocs,
                    nblock,
                    sblock,
                    cb,
                },
                test,
            );
        }
    }
}

#[test]
fn backends_agree_1_rank() {
    corpus(1, 16, 32, 1024, "backends_agree_1_rank");
}

#[test]
fn backends_agree_2_ranks() {
    corpus(2, 16, 16, 512, "backends_agree_2_ranks");
}

#[test]
fn backends_agree_4_ranks() {
    corpus(4, 24, 8, 512, "backends_agree_4_ranks");
}

#[test]
fn backends_agree_7_ranks() {
    corpus(7, 12, 16, 768, "backends_agree_7_ranks");
}

#[test]
fn backends_agree_unaligned_blocks() {
    // Odd block size and displacement: every submission-queue window has
    // unaligned head/tail fragments, exercising the staged-buffer path.
    corpus(4, 20, 7, 256, "backends_agree_unaligned_blocks");
}

#[test]
fn backends_agree_window_smaller_than_block() {
    // cb below one interleave stripe forces many tiny windows per IOP.
    corpus(2, 32, 24, 96, "backends_agree_window_smaller_than_block");
}
