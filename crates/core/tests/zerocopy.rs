//! Zero-copy audit: a *contiguous* memtype must never route through the
//! datatype pack machinery. Both the monolithic two-phase exchange and
//! the pipelined window pump lift the bytes straight out of the user
//! buffer via `contig_slice`, so `dt.pack.calls` / `dt.unpack.calls`
//! stay at zero for the whole collective — any regression that
//! reintroduces a pack on this path trips the counters.
//!
//! Runs as its own test binary so the process-global counters reflect
//! exactly the collectives issued here.

mod common;

use common::pattern;
use lio_core::{File, Hints, SharedFile};
use lio_datatype::{Datatype, Field};
use lio_mpi::World;
use lio_pfs::MemFile;

const NPROCS: usize = 4;
const PER_RANK: u64 = 64 * 1024;

/// Interleaved noncontig *fileview* with a contiguous byte memtype: the
/// file side is gappy (so two-phase really exchanges data) but the
/// memory side is one run.
fn run_collective(hints: Hints) {
    let shared = SharedFile::new(MemFile::new());
    let sh = shared.clone();
    World::run(NPROCS, move |comm| {
        let me = comm.rank() as u64;
        let p = comm.size() as u64;
        let sblock = 512u64;
        let nblock = PER_RANK / sblock;
        let block = Datatype::contiguous(sblock, &Datatype::byte()).unwrap();
        let v = Datatype::vector(nblock, 1, p as i64, &block).unwrap();
        let extent = nblock * p * sblock;
        let ft = Datatype::struct_type(vec![
            Field {
                disp: 0,
                count: 1,
                child: Datatype::lb_marker(),
            },
            Field {
                disp: 0,
                count: 1,
                child: v,
            },
            Field {
                disp: extent as i64,
                count: 1,
                child: Datatype::ub_marker(),
            },
        ])
        .unwrap();
        let mut f = File::open(comm, sh.clone(), hints).unwrap();
        f.set_view(me * sblock, Datatype::byte(), ft).unwrap();
        let data = pattern(PER_RANK as usize, me + 1);
        f.write_at_all(0, &data, PER_RANK, &Datatype::byte())
            .unwrap();
        let mut back = vec![0u8; PER_RANK as usize];
        f.read_at_all(0, &mut back, PER_RANK, &Datatype::byte())
            .unwrap();
        assert_eq!(back, data, "rank {me} read back foreign bytes");
    });
    assert_eq!(shared.len(), NPROCS as u64 * PER_RANK);
}

#[test]
fn contiguous_memtype_never_packs() {
    lio_obs::reset();
    lio_obs::set_enabled(true);
    for pipelined in [false, true] {
        run_collective(Hints::listless().cb_buffer(8192).pipelined(pipelined));
    }
    lio_obs::set_enabled(false);
    let snap = lio_obs::snapshot();
    assert_eq!(
        snap.counter("dt.pack.calls"),
        0,
        "contiguous memtype went through ff_pack instead of contig_slice"
    );
    assert_eq!(
        snap.counter("dt.unpack.calls"),
        0,
        "contiguous memtype went through ff_unpack instead of a direct copy"
    );
}

/// Sanity check the audit has teeth: a genuinely non-contiguous memtype
/// on the same collective *does* drive the pack counters.
#[test]
fn noncontig_memtype_does_pack() {
    let shared = SharedFile::new(MemFile::new());
    let sh = shared.clone();
    lio_obs::reset();
    lio_obs::set_enabled(true);
    World::run(2, move |comm| {
        let me = comm.rank() as u64;
        let mem = Datatype::vector(64, 8, 16, &Datatype::byte()).unwrap();
        let span = mem.extent() as usize;
        let user = pattern(span, me + 1);
        let mut f = File::open(comm, sh.clone(), Hints::listless()).unwrap();
        f.set_view(0, Datatype::byte(), Datatype::byte()).unwrap();
        f.write_at_all(me * 512, &user, 1, &mem).unwrap();
    });
    lio_obs::set_enabled(false);
    let snap = lio_obs::snapshot();
    assert!(
        snap.counter("dt.pack.calls") > 0,
        "non-contiguous memtype should exercise the pack path"
    );
    drop(shared);
}
