//! Access-pattern profiler integration tests: the same deterministic
//! workload produces a byte-identical profile (modulo the trailing
//! timing block), the `lio_profile` hint drives the global enable, the
//! export is well-formed JSON, and the advisor fires the expected rules
//! on a real collective run.

mod common;

use std::sync::Mutex;

use lio_core::{File, Hints, SharedFile};
use lio_datatype::{Datatype, Field};
use lio_mpi::World;
use lio_obs::profile;
use lio_pfs::{CountingFile, MemFile};

/// The Figure 4 interleaved filetype: rank `r` owns block slot `r` of
/// each `nprocs`-slot stride of `sblock`-byte blocks.
fn interleaved_ft(me: u64, nprocs: u64, nblock: u64, sblock: u64) -> Datatype {
    let block = Datatype::contiguous(sblock, &Datatype::byte()).unwrap();
    let v = Datatype::vector(nblock, 1, nprocs as i64, &block).unwrap();
    let extent = nblock * nprocs * sblock;
    Datatype::struct_type(vec![
        Field {
            disp: 0,
            count: 1,
            child: Datatype::lb_marker(),
        },
        Field {
            disp: (me * sblock) as i64,
            count: 1,
            child: v,
        },
        Field {
            disp: extent as i64,
            count: 1,
            child: Datatype::ub_marker(),
        },
    ])
    .unwrap()
}

/// Serialize tests touching the global profile state and restore the
/// disabled default afterwards.
fn with_profile<R>(f: impl FnOnce() -> R) -> R {
    static GATE: Mutex<()> = Mutex::new(());
    let _g = GATE.lock().unwrap();
    lio_obs::reset();
    lio_obs::set_enabled(true);
    profile::reset();
    profile::set_enabled(true);
    let r = f();
    profile::set_enabled(false);
    lio_obs::set_enabled(false);
    r
}

/// A 4-rank collective write + read-back through the Figure 4
/// interleaved filetype — fully deterministic (threads-as-ranks, MemFile).
fn run_workload() {
    let nprocs = 4usize;
    let (nblock, sblock) = (64u64, 16u64);
    let total = nblock * sblock;
    let shared = SharedFile::new(CountingFile::new(MemFile::new()));
    World::run(nprocs, move |comm| {
        let me = comm.rank() as u64;
        let mut f = File::open(comm, shared.clone(), Hints::listless()).expect("open");
        let ft = interleaved_ft(me, nprocs as u64, nblock, sblock);
        f.set_view(0, Datatype::byte(), ft).expect("set_view");
        let data = vec![me as u8 + 1; total as usize];
        f.write_at_all(0, &data, total, &Datatype::byte())
            .expect("write");
        let mut back = vec![0u8; total as usize];
        f.read_at_all(0, &mut back, total, &Datatype::byte())
            .expect("read");
        assert_eq!(back, data, "read-back mismatch");
    });
}

/// Everything before the trailing `"critical"` object is deterministic
/// by construction (see `ProfileSnapshot::to_json`); the timing block
/// after it is the only run-to-run variation allowed.
fn deterministic_prefix(json: &str) -> &str {
    json.split("\"critical\"").next().unwrap()
}

#[test]
fn same_workload_same_profile() {
    let (a, b) = with_profile(|| {
        run_workload();
        let a = profile::snapshot().to_json();
        lio_obs::reset();
        profile::reset();
        run_workload();
        let b = profile::snapshot().to_json();
        (a, b)
    });
    assert!(a.contains("\"critical\""), "profile must carry phase times");
    assert_eq!(
        deterministic_prefix(&a),
        deterministic_prefix(&b),
        "identical workloads must produce identical profiles"
    );
}

#[test]
fn profile_json_is_well_formed_and_advice_grounded() {
    let (json, recs) = with_profile(|| {
        run_workload();
        let p = profile::snapshot();
        (p.to_json(), profile::advise(&p))
    });
    lio_obs::json::validate(&json).expect("profile export must be well-formed JSON");
    let recs_json = profile::recommendations_json(&recs);
    lio_obs::json::validate(&recs_json).expect("advice export must be well-formed JSON");
    // a non-contiguous collective workload must at least decide the
    // engine, pipelining, and pack-threads questions, with reasons
    for rule in ["engine", "pipelining", "pack_threads"] {
        let r = recs
            .iter()
            .find(|r| r.rule == rule)
            .unwrap_or_else(|| panic!("missing recommendation from rule {rule}"));
        assert!(!r.reason.is_empty(), "{rule} must explain itself");
    }
    assert!(recs.iter().any(|r| r.setting.contains("engine=listless")));
}

#[test]
fn profile_hint_controls_recording() {
    // the gate must serialize against the other profile tests even
    // though this one toggles the enable through the hint path
    with_profile(|| {
        profile::set_enabled(false);
        let shared = SharedFile::new(MemFile::new());
        let hints = Hints::listless().profiling(true);
        World::run(2, move |comm| {
            let mut f = File::open(comm, shared.clone(), hints).expect("open");
            f.set_view(0, Datatype::byte(), Datatype::byte())
                .expect("set_view");
            let data = [7u8; 256];
            f.write_at_all(comm.rank() as u64 * 256, &data, 256, &Datatype::byte())
                .expect("write");
        });
        let p = profile::snapshot();
        assert!(
            p.op(profile::OpClass::CollWrite).requests >= 2,
            "lio_profile=enable must arm the profiler"
        );
        assert_eq!(p.op(profile::OpClass::CollWrite).bytes, 512);
    });
}

#[test]
fn disabled_profiler_records_nothing_across_layers() {
    with_profile(|| {
        profile::set_enabled(false);
        run_workload();
        let p = profile::snapshot();
        assert_eq!(p.op(profile::OpClass::CollWrite).requests, 0);
        assert_eq!(p.runs.total, 0);
        assert_eq!(p.view.views_set, 0);
        assert_eq!(p.domains.ops, 0);
    });
}
