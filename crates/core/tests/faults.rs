//! Differential fault-schedule corpus: collective writes and read-backs
//! under seeded storage + communication fault injection must produce
//! byte-for-byte the same file as the naive fault-free reference, for
//! both engines, monolithic and pipelined, across rank counts — the
//! retry/backoff and short-I/O resumption layers must make injected
//! faults invisible to correct programs.
//!
//! Every assertion message carries the seed's repro command
//! ([`lio_testkit::repro_hint`]); setting `LIO_FAULT_SEED` narrows the
//! corpus to that one seed for replay.
//!
//! The final test is crash-consistency: a fail-stop torn write mid-
//! collective must surface as an error on at least one rank, and the
//! file must never contain a byte that no serial schedule of the old
//! and new contents could produce.

mod common;

use common::{pattern, reference_write};
use lio_core::{File, Hints, SharedFile};
use lio_datatype::{Datatype, Field};
use lio_mpi::World;
use lio_pfs::decorate::{FaultPlan, FaultyFile};
use lio_pfs::MemFile;
use lio_testkit as tk;
use std::sync::Arc;

/// The cyclically interleaved filetype used throughout: `nblock` blocks
/// of `sblock` bytes, one block per stride of `slots` block slots.
fn interleaved_ft(sblock: u64, nblock: u64, slots: u64) -> Datatype {
    let block = Datatype::contiguous(sblock, &Datatype::byte()).unwrap();
    let v = Datatype::vector(nblock, 1, slots as i64, &block).unwrap();
    let extent = nblock * slots * sblock;
    Datatype::struct_type(vec![
        Field {
            disp: 0,
            count: 1,
            child: Datatype::lb_marker(),
        },
        Field {
            disp: 0,
            count: 1,
            child: v,
        },
        Field {
            disp: extent as i64,
            count: 1,
            child: Datatype::ub_marker(),
        },
    ])
    .unwrap()
}

/// One collective write + sync + full read-back with the seed's storage
/// and communication fault schedules armed; every rank asserts its
/// read-back in-world. Returns the injection-free file snapshot.
fn run_faulty_case(
    hints: Hints,
    seed: u64,
    nprocs: usize,
    sblock: u64,
    nblock: u64,
    holey: bool,
    steps: u64,
) -> Vec<u8> {
    let mem = Arc::new(MemFile::new());
    let shared = SharedFile::new(FaultyFile::new(Arc::clone(&mem), tk::fault_plan(seed)));
    World::run(nprocs, move |comm| {
        comm.set_fault_plan(Some(tk::comm_fault_plan(seed, comm.rank())));
        let me = comm.rank() as u64;
        let slots = comm.size() as u64 + holey as u64;
        let ft = interleaved_ft(sblock, nblock, slots);
        let mut f = File::open(comm, shared.clone(), hints).unwrap();
        f.set_view(me * sblock, Datatype::byte(), ft).unwrap();
        let step = nblock * sblock;
        for s in 0..steps {
            let data = pattern(step as usize, me * 1000 + s);
            f.write_at_all(s * step, &data, step, &Datatype::byte())
                .unwrap_or_else(|e| {
                    panic!("write under faults failed: {e}; {}", tk::repro_hint(seed))
                });
        }
        f.sync()
            .unwrap_or_else(|e| panic!("sync under faults failed: {e}; {}", tk::repro_hint(seed)));
        let total = steps * step;
        let mut back = vec![0u8; total as usize];
        f.read_at_all(0, &mut back, total, &Datatype::byte())
            .unwrap_or_else(|e| panic!("read under faults failed: {e}; {}", tk::repro_hint(seed)));
        for s in 0..steps {
            assert_eq!(
                &back[(s * step) as usize..((s + 1) * step) as usize],
                &pattern(step as usize, me * 1000 + s)[..],
                "rank {me} read back wrong bytes in step {s}; {}",
                tk::repro_hint(seed)
            );
        }
    });
    mem.snapshot()
}

/// The file every variant must produce, per the naive reference.
fn reference_file(nprocs: usize, sblock: u64, nblock: u64, holey: bool, steps: u64) -> Vec<u8> {
    let slots = nprocs as u64 + holey as u64;
    let ft = interleaved_ft(sblock, nblock, slots);
    let step = (nblock * sblock) as usize;
    let mut want = Vec::new();
    for me in 0..nprocs as u64 {
        let mut stream = Vec::with_capacity(step * steps as usize);
        for s in 0..steps {
            stream.extend_from_slice(&pattern(step, me * 1000 + s));
        }
        reference_write(&mut want, me * sblock, &ft, 0, &stream);
    }
    want
}

#[test]
fn fault_corpus_matches_reference() {
    let seeds = tk::corpus_seeds();
    let mut case = 0u64;
    for &nprocs in &[1usize, 2, 4, 7] {
        for &seed in &seeds {
            // 64 B: windows smaller than one block (every window is a
            // read-modify-write under faults); 4096 B: a few blocks per
            // window.
            for &cb in &[64usize, 4096] {
                case += 1;
                let mut rng = tk::Rng::new(seed ^ (case << 16));
                let sblock = 1 + rng.below(95);
                let nblock = 1 + rng.below(11);
                let holey = rng.below(2) == 1;
                let steps = 1 + rng.below(2);

                let variants = [
                    Hints::list_based().cb_buffer(cb),
                    Hints::list_based()
                        .cb_buffer(cb)
                        .pipelined(true)
                        .pipeline_depth(2),
                    Hints::listless().cb_buffer(cb),
                    Hints::listless()
                        .cb_buffer(cb)
                        .pipelined(true)
                        .pipeline_depth(2),
                ];
                let mut want = reference_file(nprocs, sblock, nblock, holey, steps);
                for (i, &h) in variants.iter().enumerate() {
                    let mut got = run_faulty_case(h, seed, nprocs, sblock, nblock, holey, steps);
                    let n = want.len().max(got.len());
                    want.resize(n, 0);
                    got.resize(n, 0);
                    assert_eq!(
                        got,
                        want,
                        "case {case} (p={nprocs} cb={cb} sblock={sblock} nblock={nblock} \
                         holey={holey} steps={steps}): variant {i} differs from the fault-free \
                         reference; {}",
                        tk::repro_hint(seed)
                    );
                }
            }
        }
    }
}

/// Crash consistency: a fail-stop torn write mid-collective surfaces as
/// `IoError::Storage` on at least one rank, every rank still reaches the
/// closing synchronization (no deadlock, no stranded peer), and the file
/// holds only bytes from the old contents or the would-be-complete new
/// contents — never garbage from a schedule no serial execution allows.
#[test]
fn torn_write_leaves_serially_explainable_bytes() {
    let nprocs = 4usize;
    let (sblock, nblock, steps) = (32u64, 6u64, 2u64);
    let want = reference_file(nprocs, sblock, nblock, false, steps);
    let old: Vec<u8> = (0..want.len()).map(|i| 0xC0 | (i as u8 & 0x0F)).collect();

    for (v, &hints) in [
        Hints::list_based().cb_buffer(256),
        Hints::list_based()
            .cb_buffer(256)
            .pipelined(true)
            .pipeline_depth(2),
        Hints::listless().cb_buffer(256),
        Hints::listless()
            .cb_buffer(256)
            .pipelined(true)
            .pipeline_depth(2),
    ]
    .iter()
    .enumerate()
    {
        let mem = Arc::new(MemFile::with_data(old.clone()));
        // Pure fail-stop: no probabilistic faults, the device dies after
        // half the payload volume has been submitted for writing.
        let plan = FaultPlan {
            torn_after: Some(want.len() as u64 / 2),
            ..FaultPlan::disabled()
        };
        let shared = SharedFile::new(FaultyFile::new(Arc::clone(&mem), plan));
        let results = World::run(nprocs, move |comm| {
            let me = comm.rank() as u64;
            let ft = interleaved_ft(sblock, nblock, nprocs as u64);
            let mut f = File::open(comm, shared.clone(), hints).unwrap();
            f.set_view(me * sblock, Datatype::byte(), ft).unwrap();
            let step = nblock * sblock;
            let mut out: Result<(), String> = Ok(());
            for s in 0..steps {
                let data = pattern(step as usize, me * 1000 + s);
                if let Err(e) = f.write_at_all(s * step, &data, step, &Datatype::byte()) {
                    out = Err(e.to_string());
                }
            }
            out
        });
        let errs = results.iter().filter(|r| r.is_err()).count();
        assert!(
            errs >= 1,
            "variant {v}: a torn write at half volume must fail at least one rank"
        );
        for e in results.iter().filter_map(|r| r.as_ref().err()) {
            assert!(
                e.contains("storage"),
                "variant {v}: torn write must surface as a storage error, got: {e}"
            );
        }
        let snap = mem.snapshot();
        for (i, &b) in snap.iter().enumerate() {
            let was = if i < old.len() { old[i] } else { 0 };
            let new = if i < want.len() { want[i] } else { 0 };
            assert!(
                b == was || b == new,
                "variant {v}: byte {i} is {b:#04x}, which is neither the old contents \
                 ({was:#04x}) nor the completed write ({new:#04x}) — no serial schedule \
                 produces it"
            );
        }
    }
}
