//! Self-tuning collective engine, end to end:
//!
//! 1. **Determinism** — the tuner is a pure function of its outcome
//!    sequence: replaying the same seeded synthetic workload twice must
//!    produce byte-identical decision logs (assert messages carry the
//!    seed's repro command).
//! 2. **Fault safety** — a file whose every collective aborts (fail-stop
//!    torn device) must leave the tuner untouched: every decision is a
//!    discard, no knob moves, and the `core.tune.discarded` counter
//!    accounts for the discarded ops.
//! 3. **Cold start == advisor** — the tuner's cold-start jump and the
//!    PR 6 advisor derive from one rule table: on the canned fig5/fig6
//!    profiles the derived knobs must match the advisor's settings
//!    exactly.
//! 4. **Differential corpus** — `Hints::autotune(true)` across ranks
//!    {1, 2, 4, 7} × backends {mem, os} is byte-for-byte the naive
//!    reference: the tuner changes performance knobs only.

mod common;

use common::{pattern, reference_read, reference_write, storage_for_backend};
use lio_core::autotune::{apply_settings, cold_start_knobs, Knobs, OpOutcome};
use lio_core::{BackendKind, File, Hints, SharedFile, Tuner};
use lio_datatype::{Datatype, Field};
use lio_mpi::World;
use lio_obs::profile::{advise, cb_target, fixtures};
use lio_pfs::decorate::{FaultPlan, FaultyFile};
use lio_pfs::MemFile;
use lio_testkit as tk;

/// Cyclically interleaved filetype: `nblock` blocks of `sblock` bytes,
/// one block per stride of `slots` block slots.
fn interleaved_ft(sblock: u64, nblock: u64, slots: u64) -> Datatype {
    let block = Datatype::contiguous(sblock, &Datatype::byte()).unwrap();
    let v = Datatype::vector(nblock, 1, slots as i64, &block).unwrap();
    let extent = nblock * slots * sblock;
    Datatype::struct_type(vec![
        Field {
            disp: 0,
            count: 1,
            child: Datatype::lb_marker(),
        },
        Field {
            disp: 0,
            count: 1,
            child: v,
        },
        Field {
            disp: extent as i64,
            count: 1,
            child: Datatype::ub_marker(),
        },
    ])
    .unwrap()
}

// ---------------------------------------------------------------------
// 1. Determinism
// ---------------------------------------------------------------------

/// A seeded synthetic outcome: plausible phase breakdowns with enough
/// variance to trip every signal class over a long enough run.
fn synthetic_outcome(rng: &mut tk::Rng, op: u64) -> OpOutcome {
    let span = 1u64 << (18 + rng.below(8)); // 256 KiB .. 32 MiB
    let wall = 200_000 + rng.below(2_000_000);
    // rotate which phase dominates, seed-dependently
    let hot = rng.below(3);
    let (exch, io, pk) = match hot {
        0 => (wall * 7 / 10, wall * 2 / 10, wall / 10),
        1 => (wall * 2 / 10, wall * 7 / 10, wall / 10),
        _ => (wall / 10, wall * 2 / 10, wall * 7 / 10),
    };
    OpOutcome {
        write: op % 3 != 2,
        wall_ns: wall,
        exchange_ns: exch,
        io_ns: io,
        pack_ns: pk,
        overlap_ns: 0,
        bytes: span / 4,
        span,
    }
}

/// Render a decision log to one comparable string.
fn render_decisions(t: &Tuner) -> String {
    t.report()
        .decisions
        .iter()
        .map(|d| format!("op {}: {} {} [{}]\n", d.op, d.action, d.knob, d.signal))
        .collect()
}

#[test]
fn decision_sequence_is_deterministic() {
    if std::env::var("LIO_PROFILE").is_ok() {
        // a live global profile feeds the cold-start jump: decision
        // sequences then depend on what other tests record concurrently
        return;
    }
    for &seed in &tk::corpus_seeds() {
        let run = |seed: u64| {
            let mut t = Tuner::new(&Hints::default());
            let mut rng = tk::Rng::new(seed);
            for op in 0..24u64 {
                t.plan_hints(op);
                t.record(op, synthetic_outcome(&mut rng, op));
            }
            t.plan_hints(24); // flush the last decision
            t
        };
        let a = run(seed);
        let b = run(seed);
        assert_eq!(
            render_decisions(&a),
            render_decisions(&b),
            "same seed must replay the same decision sequence; {}",
            tk::repro_hint(seed)
        );
        // and the sequence is non-trivial: the synthetic load rotates
        // dominance, so at least one decision fires
        assert!(
            !a.report().decisions.is_empty(),
            "synthetic workload produced no decisions; {}",
            tk::repro_hint(seed)
        );
    }
}

// ---------------------------------------------------------------------
// 2. Fault safety
// ---------------------------------------------------------------------

#[test]
fn aborted_ops_never_move_knobs() {
    let nprocs = 2usize;
    let (sblock, nblock) = (32u64, 8u64);
    // fail-stop immediately: every collective write aborts permanently
    let plan = FaultPlan {
        torn_after: Some(0),
        ..FaultPlan::disabled()
    };
    let shared = SharedFile::new(FaultyFile::new(MemFile::new(), plan));
    let sh = shared.clone();
    World::run(nprocs, move |comm| {
        let me = comm.rank() as u64;
        let ft = interleaved_ft(sblock, nblock, nprocs as u64);
        let mut f = File::open(comm, sh.clone(), Hints::listless().autotune(true)).unwrap();
        f.set_view(me * sblock, Datatype::byte(), ft).unwrap();
        let step = nblock * sblock;
        for s in 0..4u64 {
            let data = pattern(step as usize, me * 1000 + s);
            // every op fails on the IOP rank; the collective itself
            // stays deadlock-free
            let _ = f.write_at_all(s * step, &data, step, &Datatype::byte());
        }
    });
    let report = shared.tune_report().expect("tuner was armed");
    assert!(
        report.discarded >= 1,
        "aborted ops must be discarded: {report:?}"
    );
    for d in &report.decisions {
        assert_eq!(
            d.action, "discard",
            "a fault-poisoned op may only produce discards: {report:?}"
        );
    }
    assert_eq!(
        report.current, report.initial,
        "knobs must not move on discarded measurements: {report:?}"
    );
    // the obs gauge accounts for (at least) this file's discards
    assert!(
        lio_obs::snapshot().counter("core.tune.discarded") >= report.discarded,
        "core.tune.discarded must cover the report's discards"
    );
}

// ---------------------------------------------------------------------
// 3. Cold start == advisor (shared rule table)
// ---------------------------------------------------------------------

#[test]
fn cold_start_matches_advisor_on_canned_profiles() {
    let base = Hints::default();

    // fig6: exchange-bound collective with small non-contiguous runs —
    // the advisor recommends, and the tuner's cold start must adopt,
    // the same knob set via the one shared `apply_settings` path.
    let p = fixtures::fig6_collective_small_runs();
    let recs = advise(&p);
    assert!(
        !recs.is_empty(),
        "fig6 profile must trigger advisor rules (rule table regressed?)"
    );
    let k = cold_start_knobs(&base, &p);
    assert_eq!(
        k,
        Knobs::from_hints(&apply_settings(base, &recs)),
        "cold start must be exactly the advisor settings applied to base"
    );
    // pin the fig6 knob values so a silent rule-table change is caught:
    // exchange-bound => pipelined at depth 4; 4 MiB domain span => the
    // shared cb_target geometry rule
    assert!(k.pipelined, "fig6 is exchange-bound: pipeline must engage");
    assert_eq!(k.depth, 4, "exchange-bound pipeline depth");
    assert_eq!(k.cb as u64, cb_target(4 << 20), "cb from shared cb_target");

    // fig5: independent-only profile — no collective evidence, so the
    // collective knobs must stay at base (the tuner additionally gates
    // its jump on `has_collective`).
    let p5 = fixtures::fig5_independent_sparse_large();
    assert!(!p5.has_collective());
    let k5 = cold_start_knobs(&base, &p5);
    let b = Knobs::from_hints(&base);
    assert_eq!(
        (k5.engine, k5.pipelined, k5.depth),
        (b.engine, b.pipelined, b.depth),
        "independent-only profile must not retune collective knobs"
    );
}

// ---------------------------------------------------------------------
// 4. Differential corpus: bytes identical under autotune
// ---------------------------------------------------------------------

#[test]
fn autotuned_corpus_matches_reference() {
    let mut case = 0u64;
    for &backend in &[BackendKind::Mem, BackendKind::Os] {
        for &nprocs in &[1usize, 2, 4, 7] {
            for &seed in &tk::corpus_seeds() {
                case += 1;
                let mut rng = tk::Rng::new(seed ^ (case << 24));
                let sblock = 1 + rng.below(95);
                let nblock = 1 + rng.below(11);
                let holey = rng.below(2) == 1;
                let steps = 4 + rng.below(3); // enough ops to let knobs move
                let slots = nprocs as u64 + holey as u64;
                let step = nblock * sblock;

                // reference file from the naive model
                let ft_ref = interleaved_ft(sblock, nblock, slots);
                let mut want = Vec::new();
                for me in 0..nprocs as u64 {
                    let mut stream = Vec::with_capacity((step * steps) as usize);
                    for s in 0..steps {
                        stream.extend_from_slice(&pattern(step as usize, me * 1000 + s));
                    }
                    reference_write(&mut want, me * sblock, &ft_ref, 0, &stream);
                }

                let engine_hints = if rng.below(2) == 0 {
                    Hints::list_based()
                } else {
                    Hints::listless()
                };
                let hints = engine_hints.cb_buffer(4096).autotune(true);
                let (shared, snap) = storage_for_backend(backend);
                let sh = shared.clone();
                let want_ro = want.clone();
                World::run(nprocs, move |comm| {
                    let me = comm.rank() as u64;
                    let ft = interleaved_ft(sblock, nblock, slots);
                    let mut f = File::open(comm, sh.clone(), hints).unwrap();
                    f.set_view(me * sblock, Datatype::byte(), ft).unwrap();
                    for s in 0..steps {
                        let data = pattern(step as usize, me * 1000 + s);
                        f.write_at_all(s * step, &data, step, &Datatype::byte())
                            .unwrap();
                    }
                    f.sync().unwrap();
                    // collective read-back must match the reference view
                    let total = steps * step;
                    let mut back = vec![0u8; total as usize];
                    f.read_at_all(0, &mut back, total, &Datatype::byte())
                        .unwrap();
                    let ft2 = interleaved_ft(sblock, nblock, slots);
                    let expect = reference_read(&want_ro, me * sblock, &ft2, 0, total);
                    assert_eq!(
                        back,
                        expect,
                        "case {case} rank {me}: autotuned read-back differs; {}",
                        tk::repro_hint(seed)
                    );
                });
                let mut got = snap.snapshot();
                let n = want.len().max(got.len());
                want.resize(n, 0);
                got.resize(n, 0);
                assert_eq!(
                    got,
                    want,
                    "case {case} ({} p={nprocs} sblock={sblock} nblock={nblock} holey={holey} \
                     steps={steps}): autotuned file differs from the naive reference; {}",
                    backend.name(),
                    tk::repro_hint(seed)
                );
            }
        }
    }
}
