//! Shared-file-pointer and inquiry API tests.

use lio_core::{File, Hints, SharedFile};
use lio_datatype::Datatype;
use lio_mpi::World;
use lio_pfs::MemFile;
use std::collections::HashSet;

fn engines() -> Vec<Hints> {
    vec![Hints::list_based(), Hints::listless()]
}

#[test]
fn shared_writes_get_disjoint_ranges() {
    for h in engines() {
        let shared = SharedFile::new(MemFile::new());
        let shared2 = shared.clone();
        World::run(4, move |comm| {
            let f = File::open(comm, shared2.clone(), h).unwrap();
            // each rank appends 3 records of 16 bytes via the shared pointer
            for _ in 0..3 {
                let rec = vec![comm.rank() as u8 + 1; 16];
                f.write_shared(&rec, 16, &Datatype::byte()).unwrap();
            }
        });
        // 12 records landed, each wholly owned by one rank
        assert_eq!(shared.len(), 12 * 16);
        let mut snap = vec![0u8; shared.len() as usize];
        shared.storage().read_at(0, &mut snap).unwrap();
        let mut per_rank = [0usize; 4];
        for rec in snap.chunks(16) {
            let owner = rec[0];
            assert!((1..=4).contains(&owner), "unwritten record");
            assert!(rec.iter().all(|&b| b == owner), "torn record");
            per_rank[(owner - 1) as usize] += 1;
        }
        assert_eq!(per_rank, [3, 3, 3, 3]);
    }
}

#[test]
fn shared_pointer_advances_in_etypes() {
    let shared = SharedFile::new(MemFile::new());
    World::run(1, |comm| {
        let mut f = File::open(comm, shared.clone(), Hints::listless()).unwrap();
        f.set_view(0, Datatype::double(), Datatype::double())
            .unwrap();
        assert_eq!(f.tell_shared(), 0);
        f.write_shared(&[0u8; 24], 24, &Datatype::byte()).unwrap();
        assert_eq!(f.tell_shared(), 3); // three doubles
        f.seek_shared(10);
        assert_eq!(f.tell_shared(), 10);
        f.write_shared(&[1u8; 8], 8, &Datatype::byte()).unwrap();
        assert_eq!(f.tell_shared(), 11);
    });
    assert_eq!(shared.len(), 11 * 8);
}

#[test]
fn shared_reads_partition_a_work_queue() {
    // a classic use of the shared pointer: ranks pull work items in
    // whatever order, collectively consuming each item exactly once
    let items: Vec<u8> = (0..32).collect();
    let shared = SharedFile::new(MemFile::with_data(items.clone()));
    let got = World::run(4, |comm| {
        let f = File::open(comm, shared.clone(), Hints::listless()).unwrap();
        let mut mine = Vec::new();
        for _ in 0..8 {
            let mut b = [0u8; 1];
            f.read_shared(&mut b, 1, &Datatype::byte()).unwrap();
            mine.push(b[0]);
        }
        mine
    });
    let all: HashSet<u8> = got.into_iter().flatten().collect();
    assert_eq!(all.len(), 32, "every item consumed exactly once");
}

#[test]
fn byte_offset_inquiry() {
    for h in engines() {
        let shared = SharedFile::new(MemFile::new());
        let shared2 = shared.clone();
        World::run(1, move |comm| {
            let mut f = File::open(comm, shared2.clone(), h).unwrap();
            // blocks of one double every third double, displaced by 100
            let ft = Datatype::vector(4, 1, 3, &Datatype::double()).unwrap();
            f.set_view(100, Datatype::double(), ft).unwrap();
            assert_eq!(f.byte_offset(0), 100);
            assert_eq!(f.byte_offset(1), 124);
            assert_eq!(f.byte_offset(2), 148);
            // extent = (3·3+1)·8 = 80, so instance 1 starts at 100+80
            assert_eq!(f.byte_offset(4), 100 + 80);
            // inverse
            assert_eq!(f.offset_of_byte(100), 0);
            assert_eq!(f.offset_of_byte(124), 1);
            assert_eq!(f.offset_of_byte(125), 2); // mid-etype rounds up
            assert_eq!(f.offset_of_byte(0), 0);
        });
    }
}

#[test]
fn engines_agree_on_byte_offset() {
    let shared = SharedFile::new(MemFile::new());
    World::run(1, |comm| {
        let ft = Datatype::vector(7, 2, 5, &Datatype::int()).unwrap();
        let mut a = File::open(comm, shared.clone(), Hints::list_based()).unwrap();
        let mut b = File::open(comm, shared.clone(), Hints::listless()).unwrap();
        a.set_view(12, Datatype::int(), ft.clone()).unwrap();
        b.set_view(12, Datatype::int(), ft).unwrap();
        for off in 0..40 {
            assert_eq!(a.byte_offset(off), b.byte_offset(off), "offset {off}");
        }
    });
}
