//! Atomic-mode semantics: conflicting independent accesses serialize.

use lio_core::{File, Hints, SharedFile};
use lio_datatype::Datatype;
use lio_mpi::World;
use lio_pfs::MemFile;

fn engines() -> Vec<Hints> {
    vec![Hints::list_based(), Hints::listless()]
}

/// With atomicity on, two ranks writing the *same* strided region with
/// tiny sieving windows must not interleave: the final file holds one
/// rank's pattern in every block (whichever wrote last), never a mix
/// within one access.
#[test]
fn atomic_conflicting_writes_do_not_tear() {
    for h in engines() {
        // tiny windows maximize interleaving opportunities when not atomic
        let h = h.ind_buffer(64);
        for round in 0..5 {
            let shared = SharedFile::new(MemFile::new());
            let shared2 = shared.clone();
            World::run(2, move |comm| {
                let me = comm.rank() as u64;
                let ft = Datatype::vector(64, 1, 2, &Datatype::double()).unwrap();
                let mut f = File::open(comm, shared2.clone(), h).unwrap();
                f.set_view(0, Datatype::double(), ft).unwrap();
                f.set_atomicity(true);
                assert!(f.atomicity());
                // both ranks write the SAME region
                let data = vec![me as u8 + 1; 64 * 8];
                f.write_at(0, &data, 64 * 8, &Datatype::byte()).unwrap();
            });
            let mut snap = vec![0u8; shared.len() as usize];
            shared.storage().read_at(0, &mut snap).unwrap();
            // every data block must carry a single writer's value, and all
            // blocks the same writer (the whole access serialized)
            let mut writers = std::collections::HashSet::new();
            for blk in 0..64usize {
                let b = &snap[blk * 16..blk * 16 + 8];
                assert!(
                    b.iter().all(|&x| x == b[0]),
                    "torn block {blk} in round {round}: {b:?}"
                );
                writers.insert(b[0]);
            }
            assert_eq!(
                writers.len(),
                1,
                "interleaved writers in round {round}: {writers:?}"
            );
        }
    }
}

/// Atomic reads of a stable file return correct data (the lock must not
/// deadlock against the sieving windows).
#[test]
fn atomic_reads_work() {
    for h in engines() {
        let h = h.ind_buffer(32);
        let content: Vec<u8> = (0..=255).collect();
        let shared = SharedFile::new(MemFile::with_data(content.clone()));
        let shared2 = shared.clone();
        World::run(2, move |comm| {
            let ft = Datatype::vector(16, 1, 2, &Datatype::double()).unwrap();
            let mut f = File::open(comm, shared2.clone(), h).unwrap();
            f.set_view(0, Datatype::double(), ft).unwrap();
            f.set_atomicity(true);
            let mut buf = vec![0u8; 16 * 8];
            f.read_at(0, &mut buf, 16 * 8, &Datatype::byte()).unwrap();
            for blk in 0..16usize {
                let want = &content[blk * 16..blk * 16 + 8];
                assert_eq!(&buf[blk * 8..blk * 8 + 8], want, "block {blk}");
            }
        });
    }
}

/// Atomic writes with zero length are no-ops (no 0..0 lock trouble).
#[test]
fn atomic_zero_length() {
    let shared = SharedFile::new(MemFile::new());
    World::run(1, |comm| {
        let mut f = File::open(comm, shared.clone(), Hints::listless()).unwrap();
        f.set_atomicity(true);
        assert_eq!(f.write_bytes_at(0, &[]).unwrap(), 0);
    });
}

/// Non-overlapping atomic writes still run concurrently (lock ranges are
/// disjoint) and produce correct data.
#[test]
fn atomic_disjoint_writes() {
    for h in engines() {
        let shared = SharedFile::new(MemFile::new());
        let shared2 = shared.clone();
        World::run(4, move |comm| {
            let me = comm.rank() as u64;
            let mut f = File::open(comm, shared2.clone(), h).unwrap();
            f.set_atomicity(true);
            let data = vec![me as u8 + 1; 128];
            f.write_bytes_at(me * 128, &data).unwrap();
        });
        let mut snap = vec![0u8; shared.len() as usize];
        shared.storage().read_at(0, &mut snap).unwrap();
        assert_eq!(snap.len(), 512);
        for (i, b) in snap.iter().enumerate() {
            assert_eq!(*b as usize, i / 128 + 1);
        }
    }
}
