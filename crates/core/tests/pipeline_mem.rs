//! Assertion-backed verification of the pipeline's memory bound: with
//! credit-based flow control, the IOP buffers at most
//! `O(pipeline_depth · cb_buffer_size · nprocs)` bytes (window buffers
//! plus queued messages) regardless of the collective access size —
//! unlike the monolithic schedule, which holds every AP's whole
//! per-domain contribution at once.
//!
//! Runs as its own test binary so the process-global high-water gauge
//! reflects exactly the collectives issued here.
//!
//! Note: this binary intentionally relies on the `two_phase_pipeline`
//! *hint* and is not meaningful under a forcing `LIO_PIPELINE`
//! environment override; CI's pipeline matrix therefore targets the
//! `collective` and `pipeline` suites, not this one.

mod common;

use common::pattern;
use lio_core::{File, Hints, SharedFile};
use lio_datatype::{Datatype, Field};
use lio_mpi::World;
use lio_pfs::MemFile;

const NPROCS: usize = 4;
const CB: usize = 4096;
const DEPTH: usize = 2;
/// Per-rank bytes: 64 windows' worth of collective access per rank, so
/// the monolithic schedule would buffer ~1 MiB on the single IOP.
const PER_RANK: u64 = 256 * 1024;

fn run_write(hints: Hints) {
    let shared = SharedFile::new(MemFile::new());
    let sh = shared.clone();
    World::run(NPROCS, move |comm| {
        let me = comm.rank() as u64;
        let p = comm.size() as u64;
        let sblock = 256u64;
        let nblock = PER_RANK / sblock;
        let block = Datatype::contiguous(sblock, &Datatype::byte()).unwrap();
        let v = Datatype::vector(nblock, 1, p as i64, &block).unwrap();
        let extent = nblock * p * sblock;
        let ft = Datatype::struct_type(vec![
            Field {
                disp: 0,
                count: 1,
                child: Datatype::lb_marker(),
            },
            Field {
                disp: 0,
                count: 1,
                child: v,
            },
            Field {
                disp: extent as i64,
                count: 1,
                child: Datatype::ub_marker(),
            },
        ])
        .unwrap();
        let mut f = File::open(comm, sh.clone(), hints).unwrap();
        f.set_view(me * sblock, Datatype::byte(), ft).unwrap();
        let data = pattern(PER_RANK as usize, me);
        f.write_at_all(0, &data, PER_RANK, &Datatype::byte())
            .unwrap();
        let mut back = vec![0u8; PER_RANK as usize];
        f.read_at_all(0, &mut back, PER_RANK, &Datatype::byte())
            .unwrap();
        assert_eq!(back, data, "rank {me} read back foreign bytes");
    });
    assert_eq!(shared.len(), NPROCS as u64 * PER_RANK);
}

#[test]
fn iop_peak_buffering_is_bounded_by_depth_windows() {
    lio_obs::reset();
    lio_obs::set_enabled(true);
    for hints in [Hints::list_based(), Hints::listless()] {
        run_write(
            hints
                .cb_buffer(CB)
                .io_nodes(1) // one IOP owns the whole 1 MiB domain
                .pipelined(true)
                .pipeline_depth(DEPTH),
        );
    }
    lio_obs::set_enabled(false);
    let snap = lio_obs::snapshot();
    let peak = snap.gauge("core.coll.pipeline.peak_buffered_bytes");
    let inflight = snap.gauge("core.coll.pipeline.inflight_windows");
    let total = NPROCS as u64 * PER_RANK;
    // ≤ depth un-credited messages per AP + depth window buffers
    let bound = (DEPTH * CB * (NPROCS + 1)) as u64;
    assert!(peak > 0, "pipeline never recorded its buffering high-water");
    assert!(
        peak <= bound,
        "IOP buffered {peak} B, above the O(depth·cb·nprocs) bound {bound} B"
    );
    assert!(
        peak <= total / 8,
        "IOP buffered {peak} B of a {total} B access — not streaming"
    );
    assert!(
        (1..=(DEPTH as u64) * 2).contains(&inflight),
        "implausible in-flight window high-water {inflight}"
    );
}
