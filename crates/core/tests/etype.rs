//! Elementary-type (etype) semantics: offsets count in etype units, and
//! accesses may start anywhere inside the filetype — the "datatype
//! navigation" requirement of paper Section 3.2.1.

mod common;

use common::{pattern, reference_write};
use lio_core::{File, Hints, SharedFile};
use lio_datatype::Datatype;
use lio_mpi::World;
use lio_pfs::MemFile;

fn engines() -> Vec<Hints> {
    vec![Hints::list_based(), Hints::listless()]
}

/// With etype = 40-byte "points" (5 doubles, as BTIO uses), offsets are
/// point-granular.
#[test]
fn point_etype_offsets() {
    for h in engines() {
        let shared = SharedFile::new(MemFile::new());
        let shared2 = shared.clone();
        World::run(1, move |comm| {
            let point = Datatype::basic(40);
            let ft = Datatype::vector(8, 1, 2, &point).unwrap();
            let mut f = File::open(comm, shared2.clone(), h).unwrap();
            f.set_view(0, point.clone(), ft).unwrap();
            // write points 3..6 (offset three etypes in)
            let data = pattern(3 * 40, 99);
            f.write_at(3, &data, data.len() as u64, &Datatype::byte())
                .unwrap();
            let mut back = vec![0u8; data.len()];
            let blen = back.len() as u64;
            f.read_at(3, &mut back, blen, &Datatype::byte()).unwrap();
            assert_eq!(back, data);
        });
        // point k lives at file offset k*80 (stride 2 points)
        let mut snap = vec![0u8; shared.len() as usize];
        shared.storage().read_at(0, &mut snap).unwrap();
        let data = pattern(3 * 40, 99);
        for k in 0..3usize {
            let off = (3 + k) * 80;
            assert_eq!(
                &snap[off..off + 40],
                &data[k * 40..(k + 1) * 40],
                "point {k}"
            );
        }
    }
}

/// A write that is not a whole number of etypes leaves the file pointer
/// API unusable (error), but explicit-offset access still works at byte
/// granularity of the etype stream.
#[test]
fn non_integral_etype_advance_rejected() {
    for h in engines() {
        let shared = SharedFile::new(MemFile::new());
        let shared2 = shared.clone();
        World::run(1, move |comm| {
            let mut f = File::open(comm, shared2.clone(), h).unwrap();
            f.set_view(0, Datatype::double(), Datatype::double())
                .unwrap();
            // 5 bytes is not a whole double: write() must error on advance
            assert!(f.write(&[1, 2, 3, 4, 5], 5, &Datatype::byte()).is_err());
        });
    }
}

/// Offsets beyond the first filetype instance wrap into later instances
/// with the correct extent arithmetic — checked against the reference.
#[test]
fn deep_offsets_into_tiled_view() {
    for h in engines() {
        let ft = Datatype::vector(4, 1, 3, &Datatype::double()).unwrap();
        for offset_etypes in [0u64, 4, 5, 11, 100] {
            let shared = SharedFile::new(MemFile::new());
            let shared2 = shared.clone();
            let ft2 = ft.clone();
            let data = pattern(64, offset_etypes);
            let data2 = data.clone();
            World::run(1, move |comm| {
                let mut f = File::open(comm, shared2.clone(), h).unwrap();
                f.set_view(16, Datatype::double(), ft2.clone()).unwrap();
                f.write_at(offset_etypes, &data2, data2.len() as u64, &Datatype::byte())
                    .unwrap();
            });
            let mut want = Vec::new();
            reference_write(&mut want, 16, &ft, offset_etypes * 8, &data);
            let mut snap = vec![0u8; shared.len() as usize];
            shared.storage().read_at(0, &mut snap).unwrap();
            let m = snap.len().max(want.len());
            snap.resize(m, 0);
            want.resize(m, 0);
            assert_eq!(snap, want, "offset {offset_etypes}");
        }
    }
}

/// Re-establishing a view resets the file pointer, as MPI requires.
#[test]
fn set_view_resets_pointer() {
    let shared = SharedFile::new(MemFile::new());
    World::run(1, |comm| {
        let mut f = File::open(comm, shared.clone(), Hints::listless()).unwrap();
        f.write(&[1u8; 16], 16, &Datatype::byte()).unwrap();
        assert_eq!(f.tell(), 16);
        f.set_view(0, Datatype::double(), Datatype::double())
            .unwrap();
        assert_eq!(f.tell(), 0);
    });
}

/// Different ranks may use different etypes for the same file.
#[test]
fn heterogeneous_etypes_across_ranks() {
    for h in engines() {
        let shared = SharedFile::new(MemFile::new());
        let shared2 = shared.clone();
        World::run(2, move |comm| {
            let me = comm.rank() as u64;
            let mut f = File::open(comm, shared2.clone(), h).unwrap();
            if me == 0 {
                // doubles at even slots
                let ft = Datatype::vector(8, 1, 2, &Datatype::double()).unwrap();
                f.set_view(0, Datatype::double(), ft).unwrap();
            } else {
                // ints at odd double-slots (two ints per slot)
                let ft = Datatype::vector(16, 2, 4, &Datatype::int()).unwrap();
                f.set_view(8, Datatype::int(), ft).unwrap();
            }
            let data = vec![me as u8 + 1; 64];
            f.write_at_all(0, &data, 64, &Datatype::byte()).unwrap();
        });
        let mut snap = vec![0u8; shared.len() as usize];
        shared.storage().read_at(0, &mut snap).unwrap();
        for (i, b) in snap.iter().enumerate() {
            let owner = (i / 8) % 2;
            assert_eq!(*b as usize, owner + 1, "byte {i}");
        }
    }
}
