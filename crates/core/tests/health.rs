//! Runtime health layer, end to end:
//!
//! 1. **Seeded hang detection** — a `lio_testkit::stall_plan` wedges one
//!    rank inside one heartbeat phase; the watchdog must name that rank
//!    and phase, surface `IoError::Stalled` on the culprit only, and
//!    leave no peer stranded (every rank returns from the collective).
//! 2. **Non-aborted stalls are invisible** — a short hold that expires
//!    before the watchdog deadline must leave all ranks `Ok` and the
//!    file byte-identical to the naive reference.
//! 3. **Slow is not stuck** — the throttled bandwidth model and the real
//!    `os` backend run with a tight watchdog deadline and must register
//!    progress (lane/worker heartbeats), never a false positive.
//! 4. **Straggler attribution** — a fabricated last-arrival streak must
//!    surface through `health::straggler()`, the per-rank skew table,
//!    and the autotuner's under-performing-rank signal.
//!
//! Health state is process-global, so every test serializes through one
//! gate and resets the layer on entry and exit.

mod common;

use common::{pattern, reference_write, storage_for_backend, test_storage};
use lio_core::autotune::OpOutcome;
use lio_core::{BackendKind, File, Hints, IoError, Tuner};
use lio_datatype::{Datatype, Field};
use lio_mpi::World;
use lio_obs::health::{self, HbPhase, StallSpec};
use lio_testkit as tk;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Serialize the suite: the heartbeat slots, watchdog config, and stall
/// plan are process-global. Resets on entry and exit so a failing test
/// cannot poison its neighbours.
fn with_health<R>(f: impl FnOnce() -> R) -> R {
    static GATE: Mutex<()> = Mutex::new(());
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    // Consume the env knobs now so a later `File::open` inside the test
    // cannot override the programmatic config below.
    health::init_from_env();
    health::reset();
    health::set_enabled(true);
    let r = f();
    health::set_enabled(false);
    health::reset();
    r
}

/// One-line replay command for a failing seed.
fn replay(seed: u64) -> String {
    format!("replay with: LIO_FAULT_SEED={seed} cargo test -q -p lio-core --test health")
}

fn hb_phase(p: tk::StallPhase) -> HbPhase {
    match p {
        tk::StallPhase::Exchange => HbPhase::Exchange,
        tk::StallPhase::Io => HbPhase::Io,
    }
}

/// Cyclically interleaved filetype: every rank touches every IOP's
/// domain, so every rank beats both exchange and io heartbeats.
fn interleaved_ft(sblock: u64, nblock: u64, slots: u64) -> Datatype {
    let block = Datatype::contiguous(sblock, &Datatype::byte()).unwrap();
    let v = Datatype::vector(nblock, 1, slots as i64, &block).unwrap();
    let extent = nblock * slots * sblock;
    Datatype::struct_type(vec![
        Field {
            disp: 0,
            count: 1,
            child: Datatype::lb_marker(),
        },
        Field {
            disp: 0,
            count: 1,
            child: v,
        },
        Field {
            disp: extent as i64,
            count: 1,
            child: Datatype::ub_marker(),
        },
    ])
    .unwrap()
}

/// Per-rank collective results: `(rank, write result)`.
type RankResults = Vec<(u64, Result<u64, IoError>)>;

/// Run one collective write across `nprocs` ranks and collect each
/// rank's result. The closure never unwraps the write, so a stalled
/// culprit still reaches the closing sync with its peers.
fn collective_write_results(
    hints: Hints,
    nprocs: usize,
    sblock: u64,
    nblock: u64,
) -> (RankResults, Vec<u8>, Vec<u8>) {
    let (shared, snap) = test_storage();
    let sh = shared.clone();
    let results: Arc<Mutex<RankResults>> = Arc::new(Mutex::new(Vec::new()));
    let res2 = Arc::clone(&results);
    World::run(nprocs, move |comm| {
        let me = comm.rank() as u64;
        let ft = interleaved_ft(sblock, nblock, nprocs as u64);
        let mut f = File::open(comm, sh.clone(), hints).unwrap();
        f.set_view(me * sblock, Datatype::byte(), ft).unwrap();
        let step = nblock * sblock;
        let data = pattern(step as usize, me + 1);
        let r = f.write_at_all(0, &data, step, &Datatype::byte());
        res2.lock().unwrap().push((me, r));
    });
    // the naive reference for the same pattern
    let mut want = Vec::new();
    for me in 0..nprocs as u64 {
        let ft = interleaved_ft(sblock, nblock, nprocs as u64);
        let data = pattern((nblock * sblock) as usize, me + 1);
        reference_write(&mut want, me * sblock, &ft, 0, &data);
    }
    let mut got = snap.snapshot();
    let n = want.len().max(got.len());
    want.resize(n, 0);
    got.resize(n, 0);
    let r = Arc::try_unwrap(results).unwrap().into_inner().unwrap();
    (r, got, want)
}

// ---------------------------------------------------------------------
// 1. Seeded hang detection: watchdog names the wedged rank and phase
// ---------------------------------------------------------------------

#[test]
fn seeded_stall_is_named_and_aborted_without_stranding_peers() {
    let nprocs = 4usize;
    for &seed in &tk::corpus_seeds() {
        let plan = tk::stall_plan(seed, nprocs);
        // alternate engines across the corpus; both must detect the hang
        let hints = if seed % 2 == 0 {
            Hints::list_based()
        } else {
            Hints::listless()
        };
        with_health(|| {
            health::set_watchdog(200, true);
            health::set_stall_plan(Some(StallSpec {
                rank: plan.rank,
                phase: hb_phase(plan.phase),
                hold: Duration::from_millis(plan.hold_ms),
            }));
            let (results, _got, _want) = collective_write_results(hints, nprocs, 32, 16);
            // World::run returned: every rank reached the closing sync.
            assert_eq!(results.len(), nprocs, "{}", replay(seed));
            let mut stalled = 0;
            for (rank, r) in &results {
                match r {
                    Err(IoError::Stalled(info)) => {
                        stalled += 1;
                        assert_eq!(
                            info.rank,
                            plan.rank,
                            "watchdog must name the wedged rank ({plan:?}); {}",
                            replay(seed)
                        );
                        assert_eq!(
                            info.phase,
                            hb_phase(plan.phase).name(),
                            "watchdog must name the wedged phase ({plan:?}); {}",
                            replay(seed)
                        );
                        assert_eq!(*rank, plan.rank as u64, "{}", replay(seed));
                        assert!(info.stalled_ms >= 200, "{info:?}; {}", replay(seed));
                    }
                    Err(e) => panic!("unexpected error on rank {rank}: {e}; {}", replay(seed)),
                    Ok(_) => {}
                }
            }
            assert_eq!(
                stalled,
                1,
                "exactly the culprit rank gets IoError::Stalled ({plan:?}); {}",
                replay(seed)
            );
            let rep = health::report();
            assert!(rep.watchdog_fired >= 1, "{}", replay(seed));
            assert!(rep.stalls_aborted >= 1, "{}", replay(seed));
        });
    }
}

#[test]
fn seeded_stall_detected_in_pipelined_engine() {
    let nprocs = 4usize;
    let seed = tk::FIXED_SEEDS[0];
    let plan = tk::stall_plan(seed, nprocs);
    with_health(|| {
        health::set_watchdog(200, true);
        health::set_stall_plan(Some(StallSpec {
            rank: plan.rank,
            phase: hb_phase(plan.phase),
            hold: Duration::from_millis(plan.hold_ms),
        }));
        let hints = Hints::listless().pipelined(true).cb_buffer(1024);
        let (results, _got, _want) = collective_write_results(hints, nprocs, 32, 16);
        assert_eq!(results.len(), nprocs, "{}", replay(seed));
        let stalled: Vec<_> = results
            .iter()
            .filter_map(|(rank, r)| match r {
                Err(IoError::Stalled(info)) => Some((*rank, info.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            stalled.len(),
            1,
            "pipelined engine: exactly one stalled rank ({plan:?}): {results:?}; {}",
            replay(seed)
        );
        assert_eq!(stalled[0].1.rank, plan.rank, "{}", replay(seed));
    });
}

// ---------------------------------------------------------------------
// 2. A stall that resolves before the deadline stays invisible
// ---------------------------------------------------------------------

#[test]
fn short_hold_run_is_clean_and_byte_identical() {
    let nprocs = 4usize;
    let seed = tk::FIXED_SEEDS[1];
    let plan = tk::stall_plan(seed, nprocs);
    for hints in [Hints::list_based(), Hints::listless()] {
        with_health(|| {
            // deadline far beyond the hold: the hang resolves on its own
            health::set_watchdog(10_000, true);
            health::set_stall_plan(Some(StallSpec {
                rank: plan.rank,
                phase: hb_phase(plan.phase),
                hold: Duration::from_millis(40),
            }));
            let (results, got, want) = collective_write_results(hints, nprocs, 32, 16);
            assert_eq!(results.len(), nprocs, "{}", replay(seed));
            for (rank, r) in &results {
                assert!(
                    r.is_ok(),
                    "rank {rank} failed on a sub-deadline stall: {r:?}; {}",
                    replay(seed)
                );
            }
            assert_eq!(
                got,
                want,
                "non-aborted run must be byte-identical to the reference; {}",
                replay(seed)
            );
            assert_eq!(
                health::report().watchdog_fired,
                0,
                "watchdog must not fire on a sub-deadline stall; {}",
                replay(seed)
            );
        });
    }
}

// ---------------------------------------------------------------------
// 3. Slow backends register progress: no false positives
// ---------------------------------------------------------------------

#[test]
fn slow_backends_heartbeat_instead_of_tripping_the_watchdog() {
    let nprocs = 4usize;
    for backend in [BackendKind::Throttled, BackendKind::Os] {
        for hints in [
            Hints::list_based().cb_buffer(8192),
            Hints::listless().pipelined(true).cb_buffer(8192),
        ] {
            with_health(|| {
                // tight deadline: only per-window/per-job heartbeats from
                // the storage lanes and workers keep this from firing
                health::set_watchdog(300, true);
                let (shared, _snap) = storage_for_backend(backend);
                let sh = shared.clone();
                World::run(nprocs, move |comm| {
                    let me = comm.rank() as u64;
                    let ft = interleaved_ft(64, 32, nprocs as u64);
                    let mut f = File::open(comm, sh.clone(), hints).unwrap();
                    f.set_view(me * 64, Datatype::byte(), ft).unwrap();
                    let step = 64 * 32u64;
                    for s in 0..3u64 {
                        let data = pattern(step as usize, me * 100 + s);
                        let n = f
                            .write_at_all(s * step, &data, step, &Datatype::byte())
                            .unwrap_or_else(|e| {
                                panic!("rank {me} step {s}: slow backend errored: {e}")
                            });
                        assert_eq!(n, step);
                    }
                });
                let rep = health::report();
                assert_eq!(
                    rep.watchdog_fired,
                    0,
                    "slow {} backend must read as slow, not stuck: {}",
                    backend.name(),
                    rep.render()
                );
                assert!(rep.watchdog_checks > 0 || !rep.ranks.is_empty());
            });
        }
    }
}

// ---------------------------------------------------------------------
// 4. Straggler attribution reaches the report and the autotuner
// ---------------------------------------------------------------------

#[test]
fn straggler_streak_feeds_report_and_autotuner() {
    if [
        "LIO_PIPELINE",
        "LIO_PACK_THREADS",
        "LIO_PROFILE",
        "LIO_AUTOTUNE",
    ]
    .iter()
    .any(|k| std::env::var(k).is_ok())
    {
        // pinned knobs freeze the tuner's moves; skip under corpus reruns
        return;
    }
    with_health(|| {
        // fabricate a last-arrival streak: rank 3 closes every window
        // with a spread comfortably above STRAGGLER_MIN_SKEW_NS
        for w in 0..6u64 {
            health::window_mark(w, 0);
            health::window_mark(w, 1);
            std::thread::sleep(Duration::from_micros(120));
            health::window_mark(w, 3);
        }
        health::window_flush();

        let s = health::straggler().expect("a 6-window streak must flag a straggler");
        assert_eq!(s.rank, 3);
        assert!(s.windows >= health::STRAGGLER_K);
        assert!(s.skew_ns >= health::STRAGGLER_MIN_SKEW_NS);

        // per-rank skew attribution (the critical-path report column)
        let skews = health::rank_skews();
        let r3 = skews
            .iter()
            .find(|r| r.rank == 3)
            .expect("rank 3 must appear in the per-rank skew table");
        assert!(r3.windows_last >= 4, "{skews:?}");
        assert!(r3.skew_ns >= 4 * health::STRAGGLER_MIN_SKEW_NS, "{skews:?}");
        assert!(
            !skews.iter().any(|r| r.rank == 0),
            "first arrivals must not be charged: {skews:?}"
        );

        // the health report carries the same straggler
        let rep = health::report();
        assert_eq!(rep.straggler, Some(s));
        assert!(rep.straggler_flags >= 1);

        // and the autotuner classifies it as an under-performing-rank
        // signal: with the pipeline off, it trials pipelining to shrink
        // the per-window exposure to the slow rank
        let mut t = Tuner::new(&Hints::listless());
        let outcome = OpOutcome {
            write: true,
            wall_ns: 1_000_000,
            exchange_ns: 300_000,
            io_ns: 500_000,
            pack_ns: 100_000,
            overlap_ns: 0,
            bytes: 1 << 20,
            span: 1 << 22,
        };
        let mut engaged = false;
        for op in 0..10u64 {
            if t.plan_hints(op).two_phase_pipeline {
                engaged = true;
                break;
            }
            t.record(op, outcome);
        }
        assert!(
            engaged,
            "a persistent straggler must drive a pipeline trial: {:?}",
            t.report().decisions
        );
        assert!(
            t.report()
                .decisions
                .iter()
                .any(|d| d.signal.contains("arrives last")),
            "decision log must carry the straggler signal: {:?}",
            t.report().decisions
        );
    });
}

// ---------------------------------------------------------------------
// Introspection surfaces
// ---------------------------------------------------------------------

#[test]
fn health_report_renders_and_serializes_after_a_run() {
    let nprocs = 2usize;
    with_health(|| {
        health::set_watchdog(5_000, false);
        let (shared, _snap) = test_storage();
        let sh = shared.clone();
        let rendered: Arc<Mutex<String>> = Arc::new(Mutex::new(String::new()));
        let rendered2 = Arc::clone(&rendered);
        World::run(nprocs, move |comm| {
            let me = comm.rank() as u64;
            let ft = interleaved_ft(16, 8, nprocs as u64);
            let mut f = File::open(comm, sh.clone(), Hints::list_based()).unwrap();
            f.set_view(me * 16, Datatype::byte(), ft).unwrap();
            let step = 16 * 8u64;
            let data = pattern(step as usize, me + 1);
            f.write_at_all(0, &data, step, &Datatype::byte()).unwrap();
            if me == 0 {
                // live introspection from inside the world
                *rendered2.lock().unwrap() = f.shared().health_report().render();
            }
        });
        let txt = rendered.lock().unwrap().clone();
        assert!(txt.contains("rank"), "render must tabulate ranks: {txt}");
        assert!(txt.contains("watchdog:"), "{txt}");
        // the JSON twin round-trips through the obs parser
        let rep = health::report();
        assert!(!rep.ranks.is_empty(), "both ranks heartbeat during the op");
        for r in &rep.ranks {
            assert!(r.beats > 0, "{r:?}");
            assert!(r.bytes > 0, "every rank moved bytes: {r:?}");
        }
        let json = rep.to_json();
        lio_obs::json::validate(&json).expect("health JSON must parse");
        assert!(json.contains(health::REPORT_SCHEMA));
    });
}
