//! Differential tests for the pipelined two-phase schedule: for a corpus
//! of interleaved collective accesses, the pipelined and monolithic
//! schedules must produce bit-identical files and read-backs, for both
//! engines, across rank counts and window sizes — including windows
//! smaller than one filetype block, where a single contiguous block
//! spans several exchange windows.
//!
//! Every variant is also compared against the naive reference
//! implementation, so the test keeps its teeth when `LIO_PIPELINE` in the
//! environment forces both "on" and "off" variants onto the same
//! schedule (as CI does).

mod common;

use common::{pattern, reference_write};
use lio_core::{File, Hints, SharedFile};
use lio_datatype::{Datatype, Field};
use lio_mpi::World;
use lio_pfs::MemFile;

/// xorshift64* — deterministic, dependency-free case generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }
}

/// The cyclically interleaved filetype used throughout: `nblock` blocks
/// of `sblock` bytes, one block per stride of `slots` block slots. With
/// `slots > nprocs` one slot per stride stays unwritten, forcing
/// read-modify-write windows.
fn interleaved_ft(sblock: u64, nblock: u64, slots: u64) -> Datatype {
    let block = Datatype::contiguous(sblock, &Datatype::byte()).unwrap();
    let v = Datatype::vector(nblock, 1, slots as i64, &block).unwrap();
    let extent = nblock * slots * sblock;
    Datatype::struct_type(vec![
        Field {
            disp: 0,
            count: 1,
            child: Datatype::lb_marker(),
        },
        Field {
            disp: 0,
            count: 1,
            child: v,
        },
        Field {
            disp: extent as i64,
            count: 1,
            child: Datatype::ub_marker(),
        },
    ])
    .unwrap()
}

/// Run a multi-step collective write + full read-back under `hints`;
/// every rank asserts its read-back in-world. Returns the file snapshot.
fn run_case(
    hints: Hints,
    nprocs: usize,
    sblock: u64,
    nblock: u64,
    holey: bool,
    steps: u64,
) -> Vec<u8> {
    let shared = SharedFile::new(MemFile::new());
    let sh = shared.clone();
    World::run(nprocs, move |comm| {
        let me = comm.rank() as u64;
        let slots = comm.size() as u64 + holey as u64;
        let ft = interleaved_ft(sblock, nblock, slots);
        let mut f = File::open(comm, sh.clone(), hints).unwrap();
        f.set_view(me * sblock, Datatype::byte(), ft).unwrap();
        let step = nblock * sblock;
        for s in 0..steps {
            let data = pattern(step as usize, me * 1000 + s);
            f.write_at_all(s * step, &data, step, &Datatype::byte())
                .unwrap();
        }
        let total = steps * step;
        let mut back = vec![0u8; total as usize];
        f.read_at_all(0, &mut back, total, &Datatype::byte())
            .unwrap();
        for s in 0..steps {
            assert_eq!(
                &back[(s * step) as usize..((s + 1) * step) as usize],
                &pattern(step as usize, me * 1000 + s)[..],
                "rank {me} read back foreign bytes in step {s}"
            );
        }
    });
    let mut snap = vec![0u8; shared.len() as usize];
    shared.storage().read_at(0, &mut snap).unwrap();
    snap
}

/// The file every variant must produce, per the naive reference.
fn reference_file(nprocs: usize, sblock: u64, nblock: u64, holey: bool, steps: u64) -> Vec<u8> {
    let slots = nprocs as u64 + holey as u64;
    let ft = interleaved_ft(sblock, nblock, slots);
    let step = (nblock * sblock) as usize;
    let mut want = Vec::new();
    for me in 0..nprocs as u64 {
        let mut stream = Vec::with_capacity(step * steps as usize);
        for s in 0..steps {
            stream.extend_from_slice(&pattern(step, me * 1000 + s));
        }
        reference_write(&mut want, me * sblock, &ft, 0, &stream);
    }
    want
}

#[test]
fn pipelined_matches_monolithic_and_reference() {
    let mut case = 0u64;
    for &nprocs in &[1usize, 2, 4, 7] {
        // 64 B: windows much smaller than one filetype block;
        // 4096 B: a few blocks per window; 4 MiB: the default-sized
        // window swallowing the whole domain (single-window pipeline).
        for &cb in &[64usize, 4096, 4 << 20] {
            for &depth in &[1usize, 2, 4] {
                case += 1;
                let mut rng = Rng::new(0x11FE ^ (case << 8));
                // sblock up to 96 so cb=64 splits single blocks
                let sblock = rng.range(1, 96);
                let nblock = rng.range(1, 12);
                let holey = rng.range(0, 2) == 1;
                let steps = rng.range(1, 3);

                let variants = [
                    Hints::list_based().cb_buffer(cb),
                    Hints::list_based()
                        .cb_buffer(cb)
                        .pipelined(true)
                        .pipeline_depth(depth),
                    Hints::listless().cb_buffer(cb),
                    Hints::listless()
                        .cb_buffer(cb)
                        .pipelined(true)
                        .pipeline_depth(depth),
                ];
                let snaps: Vec<Vec<u8>> = variants
                    .iter()
                    .map(|&h| run_case(h, nprocs, sblock, nblock, holey, steps))
                    .collect();
                for (i, snap) in snaps.iter().enumerate().skip(1) {
                    assert_eq!(
                        &snaps[0], snap,
                        "case {case} (p={nprocs} cb={cb} depth={depth} sblock={sblock} \
                         nblock={nblock} holey={holey}): variant {i} file differs"
                    );
                }
                let mut want = reference_file(nprocs, sblock, nblock, holey, steps);
                let mut got = snaps[0].clone();
                let n = want.len().max(got.len());
                want.resize(n, 0);
                got.resize(n, 0);
                assert_eq!(
                    got, want,
                    "case {case} (p={nprocs} cb={cb} depth={depth}): file differs from reference"
                );
            }
        }
    }
}
