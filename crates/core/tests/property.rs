//! Property tests: for random fileviews, memtypes, offsets, and buffer
//! sizes, the list-based and listless engines must produce bit-identical
//! files and read-backs — independently and collectively.

mod common;

use common::{pattern, reference_write};
use lio_core::{File, Hints, SharedFile};
use lio_datatype::{Datatype, Field};
use lio_mpi::World;
use lio_pfs::MemFile;
use proptest::prelude::*;

/// A random monotone filetype suitable as a fileview, with modest sizes.
fn arb_filetype() -> BoxedStrategy<Datatype> {
    prop_oneof![
        // plain strided vector of byte blocks
        (1u64..24, 1u64..16, 0u64..16).prop_map(|(n, len, gap)| {
            let block = Datatype::contiguous(len, &Datatype::byte()).unwrap();
            Datatype::vector(n, 1, (len + gap) as i64 / len.max(1) as i64 + 1, &block)
                .unwrap_or(block)
        }),
        // indexed with increasing gaps
        (1u64..6, 1u64..8).prop_map(|(n, len)| {
            let disps: Vec<i64> = (0..n as i64).map(|i| i * (len as i64 + i)).collect();
            let lens: Vec<u64> = (0..n).map(|_| len).collect();
            let block = Datatype::contiguous(1, &Datatype::byte()).unwrap();
            let child = Datatype::contiguous(1, &block).unwrap();
            Datatype::indexed(&lens, &disps, &child).unwrap()
        }),
        // struct with an UB marker creating a trailing gap
        (1u64..8, 1u64..8, 0u64..32).prop_map(|(n, len, pad)| {
            let v = Datatype::vector(n, len, (len + 1) as i64, &Datatype::byte()).unwrap();
            let ub = v.data_ub() + pad as i64;
            Datatype::struct_type(vec![
                Field { disp: 0, count: 1, child: v },
                Field { disp: ub, count: 1, child: Datatype::ub_marker() },
            ])
            .unwrap()
        }),
    ]
    .prop_filter("monotone with data", |d| d.is_monotone() && d.size() > 0)
    .boxed()
}

/// A random memtype (not necessarily monotone).
fn arb_memtype() -> BoxedStrategy<Datatype> {
    prop_oneof![
        (1u64..64).prop_map(|n| Datatype::contiguous(n, &Datatype::byte()).unwrap()),
        (1u64..8, 1u64..8, 0i64..4).prop_map(|(c, b, extra)| {
            Datatype::vector(c, b, b as i64 + extra, &Datatype::byte()).unwrap()
        }),
    ]
    .prop_filter("has data and non-negative", |d| d.size() > 0 && d.data_lb() >= 0)
    .boxed()
}

fn write_with_engine(
    hints: Hints,
    disp: u64,
    ft: &Datatype,
    mt: &Datatype,
    count: u64,
    offset: u64,
    user: &[u8],
) -> (Vec<u8>, Vec<u8>) {
    let shared = SharedFile::new(MemFile::new());
    let shared2 = shared.clone();
    let (ft, mt, user) = (ft.clone(), mt.clone(), user.to_vec());
    let back = World::run(1, move |comm| {
        let mut f = File::open(comm, shared2.clone(), hints).unwrap();
        f.set_view(disp, Datatype::byte(), ft.clone()).unwrap();
        f.write_at(offset, &user, count, &mt).unwrap();
        let mut back = vec![0u8; user.len()];
        f.read_at(offset, &mut back, count, &mt).unwrap();
        back
    })
    .pop()
    .unwrap();
    let mut snap = vec![0u8; shared.len() as usize];
    shared.storage().read_at(0, &mut snap).unwrap();
    (snap, back)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engines_agree_independent(
        ft in arb_filetype(),
        mt in arb_memtype(),
        count in 1u64..4,
        offset in 0u64..64,
        disp in 0u64..32,
        small_buf in prop_oneof![Just(64usize), Just(4096)],
    ) {
        let span = ((count as i64 - 1) * mt.extent() as i64 + mt.data_ub()) as usize;
        let user = pattern(span.max(1), offset + disp);
        let (fa, ba) = write_with_engine(
            Hints::list_based().ind_buffer(small_buf), disp, &ft, &mt, count, offset, &user);
        let (fb, bb) = write_with_engine(
            Hints::listless().ind_buffer(small_buf), disp, &ft, &mt, count, offset, &user);
        prop_assert_eq!(&fa, &fb, "file contents differ between engines");
        prop_assert_eq!(&ba, &bb, "read-backs differ between engines");

        // and both match the reference
        let stream = lio_datatype::typemap::reference_pack(&user, &mt, count);
        let mut want = Vec::new();
        reference_write(&mut want, disp, &ft, offset, &stream);
        let n = want.len().max(fa.len());
        let mut fa2 = fa.clone();
        let mut want2 = want.clone();
        fa2.resize(n, 0);
        want2.resize(n, 0);
        prop_assert_eq!(fa2, want2, "engines differ from reference");
    }

    #[test]
    fn engines_agree_collective(
        nblock in 1u64..24,
        sblock in 1u64..24,
        nprocs in 1usize..5,
        cb in prop_oneof![Just(64usize), Just(1 << 20)],
        steps in 1u64..3,
    ) {
        let mut snaps = Vec::new();
        for hints in [Hints::list_based().cb_buffer(cb), Hints::listless().cb_buffer(cb)] {
            let shared = SharedFile::new(MemFile::new());
            let shared2 = shared.clone();
            World::run(nprocs, move |comm| {
                let me = comm.rank() as u64;
                let p = comm.size() as u64;
                let block = Datatype::contiguous(sblock, &Datatype::byte()).unwrap();
                let v = Datatype::vector(nblock, 1, p as i64, &block).unwrap();
                let extent = nblock * p * sblock;
                let ft = Datatype::struct_type(vec![
                    Field { disp: 0, count: 1, child: Datatype::lb_marker() },
                    Field { disp: 0, count: 1, child: v },
                    Field { disp: extent as i64, count: 1, child: Datatype::ub_marker() },
                ]).unwrap();
                let mut f = File::open(comm, shared2.clone(), hints).unwrap();
                f.set_view(me * sblock, Datatype::byte(), ft).unwrap();
                let step_bytes = nblock * sblock;
                for s in 0..steps {
                    let data = pattern(step_bytes as usize, me * 1000 + s);
                    f.write_at_all(s * step_bytes, &data, step_bytes, &Datatype::byte()).unwrap();
                }
                // read back the first step collectively and verify
                let mut back = vec![0u8; step_bytes as usize];
                f.read_at_all(0, &mut back, step_bytes, &Datatype::byte()).unwrap();
                assert_eq!(back, pattern(step_bytes as usize, me * 1000));
            });
            let mut snap = vec![0u8; shared.len() as usize];
            shared.storage().read_at(0, &mut snap).unwrap();
            snaps.push(snap);
        }
        prop_assert_eq!(&snaps[0], &snaps[1], "collective file contents differ");
    }
}
