//! Randomized tests: for random fileviews, memtypes, offsets, and buffer
//! sizes, the list-based and listless engines must produce bit-identical
//! files and read-backs — independently and collectively.
//!
//! Cases come from a deterministic xorshift PRNG, so every run exercises
//! the same corpus and failures reproduce from the case number.

mod common;

use common::{pattern, reference_write};
use lio_core::{File, Hints, SharedFile};
use lio_datatype::{Datatype, Field};
use lio_mpi::World;
use lio_pfs::MemFile;

/// xorshift64* — deterministic, dependency-free case generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }
}

/// A random monotone filetype suitable as a fileview, with modest sizes.
fn arb_filetype(rng: &mut Rng) -> Datatype {
    loop {
        let d = match rng.range(0, 3) {
            // plain strided vector of byte blocks
            0 => {
                let (n, len, gap) = (rng.range(1, 24), rng.range(1, 16), rng.range(0, 16));
                let block = Datatype::contiguous(len, &Datatype::byte()).unwrap();
                Datatype::vector(n, 1, (len + gap) as i64 / len.max(1) as i64 + 1, &block)
                    .unwrap_or(block)
            }
            // indexed with increasing gaps
            1 => {
                let (n, len) = (rng.range(1, 6), rng.range(1, 8));
                let disps: Vec<i64> = (0..n as i64).map(|i| i * (len as i64 + i)).collect();
                let lens: Vec<u64> = (0..n).map(|_| len).collect();
                let block = Datatype::contiguous(1, &Datatype::byte()).unwrap();
                let child = Datatype::contiguous(1, &block).unwrap();
                Datatype::indexed(&lens, &disps, &child).unwrap()
            }
            // struct with an UB marker creating a trailing gap
            _ => {
                let (n, len, pad) = (rng.range(1, 8), rng.range(1, 8), rng.range(0, 32));
                let v = Datatype::vector(n, len, (len + 1) as i64, &Datatype::byte()).unwrap();
                let ub = v.data_ub() + pad as i64;
                Datatype::struct_type(vec![
                    Field {
                        disp: 0,
                        count: 1,
                        child: v,
                    },
                    Field {
                        disp: ub,
                        count: 1,
                        child: Datatype::ub_marker(),
                    },
                ])
                .unwrap()
            }
        };
        if d.is_monotone() && d.size() > 0 {
            return d;
        }
    }
}

/// A random memtype (not necessarily monotone).
fn arb_memtype(rng: &mut Rng) -> Datatype {
    loop {
        let d = match rng.range(0, 2) {
            0 => Datatype::contiguous(rng.range(1, 64), &Datatype::byte()).unwrap(),
            _ => {
                let (c, b, extra) = (rng.range(1, 8), rng.range(1, 8), rng.range(0, 4) as i64);
                Datatype::vector(c, b, b as i64 + extra, &Datatype::byte()).unwrap()
            }
        };
        if d.size() > 0 && d.data_lb() >= 0 {
            return d;
        }
    }
}

fn write_with_engine(
    hints: Hints,
    disp: u64,
    ft: &Datatype,
    mt: &Datatype,
    count: u64,
    offset: u64,
    user: &[u8],
) -> (Vec<u8>, Vec<u8>) {
    let shared = SharedFile::new(MemFile::new());
    let shared2 = shared.clone();
    let (ft, mt, user) = (ft.clone(), mt.clone(), user.to_vec());
    let back = World::run(1, move |comm| {
        let mut f = File::open(comm, shared2.clone(), hints).unwrap();
        f.set_view(disp, Datatype::byte(), ft.clone()).unwrap();
        f.write_at(offset, &user, count, &mt).unwrap();
        let mut back = vec![0u8; user.len()];
        f.read_at(offset, &mut back, count, &mt).unwrap();
        back
    })
    .pop()
    .unwrap();
    let mut snap = vec![0u8; shared.len() as usize];
    shared.storage().read_at(0, &mut snap).unwrap();
    (snap, back)
}

#[test]
fn engines_agree_independent() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0xD1 ^ case);
        let ft = arb_filetype(&mut rng);
        let mt = arb_memtype(&mut rng);
        let count = rng.range(1, 4);
        let offset = rng.range(0, 64);
        let disp = rng.range(0, 32);
        let small_buf = if rng.range(0, 2) == 0 { 64usize } else { 4096 };

        let span = ((count as i64 - 1) * mt.extent() as i64 + mt.data_ub()) as usize;
        let user = pattern(span.max(1), offset + disp);
        let (fa, ba) = write_with_engine(
            Hints::list_based().ind_buffer(small_buf),
            disp,
            &ft,
            &mt,
            count,
            offset,
            &user,
        );
        let (fb, bb) = write_with_engine(
            Hints::listless().ind_buffer(small_buf),
            disp,
            &ft,
            &mt,
            count,
            offset,
            &user,
        );
        assert_eq!(
            &fa, &fb,
            "case {case}: file contents differ between engines"
        );
        assert_eq!(&ba, &bb, "case {case}: read-backs differ between engines");

        // and both match the reference
        let stream = lio_datatype::typemap::reference_pack(&user, &mt, count);
        let mut want = Vec::new();
        reference_write(&mut want, disp, &ft, offset, &stream);
        let n = want.len().max(fa.len());
        let mut fa2 = fa.clone();
        let mut want2 = want.clone();
        fa2.resize(n, 0);
        want2.resize(n, 0);
        assert_eq!(fa2, want2, "case {case}: engines differ from reference");
    }
}

#[test]
fn engines_agree_collective() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0xD2 ^ case);
        let nblock = rng.range(1, 24);
        let sblock = rng.range(1, 24);
        let nprocs = rng.range(1, 5) as usize;
        let cb = if rng.range(0, 2) == 0 {
            64usize
        } else {
            1 << 20
        };
        let steps = rng.range(1, 3);

        let mut snaps = Vec::new();
        for hints in [
            Hints::list_based().cb_buffer(cb),
            Hints::listless().cb_buffer(cb),
        ] {
            let shared = SharedFile::new(MemFile::new());
            let shared2 = shared.clone();
            World::run(nprocs, move |comm| {
                let me = comm.rank() as u64;
                let p = comm.size() as u64;
                let block = Datatype::contiguous(sblock, &Datatype::byte()).unwrap();
                let v = Datatype::vector(nblock, 1, p as i64, &block).unwrap();
                let extent = nblock * p * sblock;
                let ft = Datatype::struct_type(vec![
                    Field {
                        disp: 0,
                        count: 1,
                        child: Datatype::lb_marker(),
                    },
                    Field {
                        disp: 0,
                        count: 1,
                        child: v,
                    },
                    Field {
                        disp: extent as i64,
                        count: 1,
                        child: Datatype::ub_marker(),
                    },
                ])
                .unwrap();
                let mut f = File::open(comm, shared2.clone(), hints).unwrap();
                f.set_view(me * sblock, Datatype::byte(), ft).unwrap();
                let step_bytes = nblock * sblock;
                for s in 0..steps {
                    let data = pattern(step_bytes as usize, me * 1000 + s);
                    f.write_at_all(s * step_bytes, &data, step_bytes, &Datatype::byte())
                        .unwrap();
                }
                // read back the first step collectively and verify
                let mut back = vec![0u8; step_bytes as usize];
                f.read_at_all(0, &mut back, step_bytes, &Datatype::byte())
                    .unwrap();
                assert_eq!(back, pattern(step_bytes as usize, me * 1000));
            });
            let mut snap = vec![0u8; shared.len() as usize];
            shared.storage().read_at(0, &mut snap).unwrap();
            snaps.push(snap);
        }
        assert_eq!(
            &snaps[0], &snaps[1],
            "case {case}: collective file contents differ"
        );
    }
}
