//! Collective (two-phase) I/O: both engines vs the reference, across
//! process counts, IOP counts, buffer sizes, and view shapes — including
//! the noncontig benchmark's interleaved pattern and BTIO-style subarrays.

mod common;

use common::{apply_comm_faults, pattern, reference_write, test_storage, test_storage_with};
use lio_core::{File, Hints};
use lio_datatype::{Datatype, Field, Order};
use lio_mpi::World;

fn engines() -> Vec<Hints> {
    vec![Hints::list_based(), Hints::listless()]
}

/// The noncontig benchmark's fileview for rank p of P (Figure 4): an
/// LB/vector/UB struct with disp = p·blocklen, stride = P·blocklen.
fn noncontig_view(p: u64, nprocs: u64, nblock: u64, sblock: u64) -> (u64, Datatype) {
    let block = Datatype::contiguous(sblock, &Datatype::byte()).unwrap();
    let v = Datatype::vector(nblock, 1, nprocs as i64, &block).unwrap();
    let extent = nblock * nprocs * sblock;
    let ft = Datatype::struct_type(vec![
        Field {
            disp: 0,
            count: 1,
            child: Datatype::lb_marker(),
        },
        Field {
            disp: 0,
            count: 1,
            child: v,
        },
        Field {
            disp: extent as i64,
            count: 1,
            child: Datatype::ub_marker(),
        },
    ])
    .unwrap();
    (p * sblock, ft)
}

/// Every rank writes its interleaved stripe collectively; the file must
/// contain the perfectly interleaved pattern, and collective read-back
/// must return each rank its own data.
fn run_noncontig_collective(hints: Hints, nprocs: u64, nblock: u64, sblock: u64) {
    let (shared, mem) = test_storage();
    let shared2 = shared.clone();
    World::run(nprocs as usize, move |comm| {
        apply_comm_faults(comm);
        let me = comm.rank() as u64;
        let (disp, ft) = noncontig_view(me, nprocs, nblock, sblock);
        let mut f = File::open(comm, shared2.clone(), hints).unwrap();
        f.set_view(disp, Datatype::byte(), ft).unwrap();
        let data = pattern((nblock * sblock) as usize, me + 1);
        let n = f
            .write_at_all(0, &data, data.len() as u64, &Datatype::byte())
            .unwrap();
        assert_eq!(n, nblock * sblock);

        // collective read-back
        let mut back = vec![0u8; data.len()];
        let blen = back.len() as u64;
        let n = f
            .read_at_all(0, &mut back, blen, &Datatype::byte())
            .unwrap();
        assert_eq!(n, nblock * sblock);
        assert_eq!(back, data, "rank {me} read back wrong data");
    });

    // verify the interleaving against the reference
    let mut want: Vec<u8> = Vec::new();
    for p in 0..nprocs {
        let (disp, ft) = noncontig_view(p, nprocs, nblock, sblock);
        let data = pattern((nblock * sblock) as usize, p + 1);
        reference_write(&mut want, disp, &ft, 0, &data);
    }
    let mut snap = mem.snapshot();
    let n = snap.len().max(want.len());
    snap.resize(n, 0);
    want.resize(n, 0);
    assert_eq!(snap, want, "collective file contents differ from reference");
}

#[test]
fn collective_interleaved_2_ranks() {
    for h in engines() {
        run_noncontig_collective(h, 2, 16, 8);
    }
}

#[test]
fn collective_interleaved_4_ranks() {
    for h in engines() {
        run_noncontig_collective(h, 4, 32, 8);
    }
}

#[test]
fn collective_interleaved_odd_ranks() {
    for h in engines() {
        run_noncontig_collective(h, 3, 10, 24);
    }
}

#[test]
fn collective_single_rank() {
    for h in engines() {
        run_noncontig_collective(h, 1, 8, 16);
    }
}

#[test]
fn collective_tiny_cb_buffer() {
    // force many IOP windows
    for h in engines() {
        run_noncontig_collective(h.cb_buffer(64), 4, 16, 8);
    }
}

#[test]
fn collective_single_iop() {
    for h in engines() {
        run_noncontig_collective(h.io_nodes(1), 4, 16, 8);
    }
}

#[test]
fn collective_two_iops_of_four() {
    for h in engines() {
        run_noncontig_collective(h.io_nodes(2), 4, 16, 8);
    }
}

#[test]
fn collective_without_dense_detection() {
    for h in engines() {
        let mut h = h;
        h.detect_dense_writes = false;
        run_noncontig_collective(h, 4, 16, 8);
    }
}

#[test]
fn collective_tiny_blocks() {
    // Sblock = 1: metadata dwarfs data in the list-based engine
    for h in engines() {
        run_noncontig_collective(h, 4, 64, 1);
    }
}

#[test]
fn both_engines_produce_identical_files() {
    let mut snaps = Vec::new();
    for h in engines() {
        let (shared, mem) = test_storage();
        let shared2 = shared.clone();
        World::run(4, move |comm| {
            apply_comm_faults(comm);
            let me = comm.rank() as u64;
            let (disp, ft) = noncontig_view(me, 4, 24, 8);
            let mut f = File::open(comm, shared2.clone(), h).unwrap();
            f.set_view(disp, Datatype::byte(), ft).unwrap();
            let data = pattern(24 * 8, me * 31 + 7);
            f.write_at_all(0, &data, data.len() as u64, &Datatype::byte())
                .unwrap();
        });
        snaps.push(mem.snapshot());
    }
    assert_eq!(snaps[0], snaps[1], "engines disagree on file contents");
}

#[test]
fn collective_subarray_2d_tiles() {
    // a 2D array partitioned into quadrant tiles, BTIO-style
    let rows = 16u64;
    let cols = 16u64;
    let esz = 8u64;
    for h in engines() {
        let (shared, mem) = test_storage();
        let shared2 = shared.clone();
        World::run(4, move |comm| {
            apply_comm_faults(comm);
            let me = comm.rank() as u64;
            let (r0, c0) = ((me / 2) * rows / 2, (me % 2) * cols / 2);
            let ft = Datatype::subarray(
                &[rows, cols],
                &[rows / 2, cols / 2],
                &[r0, c0],
                Order::C,
                &Datatype::double(),
            )
            .unwrap();
            let mut f = File::open(comm, shared2.clone(), h).unwrap();
            f.set_view(0, Datatype::double(), ft).unwrap();
            let tile_bytes = (rows / 2) * (cols / 2) * esz;
            let data = pattern(tile_bytes as usize, me + 11);
            f.write_at_all(0, &data, tile_bytes, &Datatype::byte())
                .unwrap();
            let mut back = vec![0u8; tile_bytes as usize];
            f.read_at_all(0, &mut back, tile_bytes, &Datatype::byte())
                .unwrap();
            assert_eq!(back, data);
        });
        // whole file must be written (tiles partition the array)
        assert_eq!(shared.len(), rows * cols * esz);
        // spot-check the placement of rank 3's tile (bottom-right)
        let snap = mem.snapshot();
        let d3 = pattern((rows / 2 * cols / 2 * esz) as usize, 3 + 11);
        let row = rows / 2; // first row of the tile
        let off = ((row * cols + cols / 2) * esz) as usize;
        assert_eq!(
            &snap[off..off + (cols / 2 * esz) as usize],
            &d3[..(cols / 2 * esz) as usize]
        );
    }
}

#[test]
fn collective_with_noncontig_memtype() {
    // nc-nc collectively: memtype is a strided vector
    for h in engines() {
        let (shared, _mem) = test_storage();
        let shared2 = shared.clone();
        World::run(2, move |comm| {
            apply_comm_faults(comm);
            let me = comm.rank() as u64;
            let (disp, ft) = noncontig_view(me, 2, 8, 16);
            let mt = Datatype::vector(16, 1, 2, &Datatype::double()).unwrap();
            let mut f = File::open(comm, shared2.clone(), h).unwrap();
            f.set_view(disp, Datatype::byte(), ft).unwrap();
            let user = pattern(mt.extent() as usize, me + 5);
            f.write_at_all(0, &user, 1, &mt).unwrap();
            let mut back = vec![0u8; user.len()];
            f.read_at_all(0, &mut back, 1, &mt).unwrap();
            // only the memtype's data positions are defined
            for r in lio_datatype::typemap::expand(&mt, 1) {
                let o = r.disp as usize;
                assert_eq!(&back[o..o + r.len as usize], &user[o..o + r.len as usize]);
            }
        });
    }
}

#[test]
fn collective_ranks_at_different_offsets() {
    // each rank writes a different offset of the same shared byte view
    for h in engines() {
        let (shared, mem) = test_storage();
        let shared2 = shared.clone();
        World::run(4, move |comm| {
            apply_comm_faults(comm);
            let me = comm.rank() as u64;
            let f = File::open(comm, shared2.clone(), h).unwrap();
            let data = vec![me as u8 + 1; 100];
            f.write_at_all(me * 100, &data, 100, &Datatype::byte())
                .unwrap();
        });
        let snap = mem.snapshot();
        assert_eq!(snap.len(), 400);
        for (i, b) in snap.iter().enumerate() {
            assert_eq!(*b as usize, i / 100 + 1);
        }
    }
}

#[test]
fn collective_some_ranks_empty() {
    // ranks 2 and 3 contribute nothing but still participate
    for h in engines() {
        let (shared, _mem) = test_storage();
        let shared2 = shared.clone();
        World::run(4, move |comm| {
            apply_comm_faults(comm);
            let me = comm.rank() as u64;
            let f = File::open(comm, shared2.clone(), h).unwrap();
            if me < 2 {
                let data = vec![me as u8 + 1; 64];
                f.write_at_all(me * 64, &data, 64, &Datatype::byte())
                    .unwrap();
            } else {
                f.write_at_all(0, &[], 0, &Datatype::byte()).unwrap();
            }
        });
        assert_eq!(shared.len(), 128);
    }
}

#[test]
fn collective_all_ranks_empty() {
    for h in engines() {
        let (shared, _mem) = test_storage();
        let shared2 = shared.clone();
        World::run(3, move |comm| {
            apply_comm_faults(comm);
            let f = File::open(comm, shared2.clone(), h).unwrap();
            f.write_at_all(0, &[], 0, &Datatype::byte()).unwrap();
            let mut nothing: Vec<u8> = Vec::new();
            f.read_at_all(0, &mut nothing, 0, &Datatype::byte())
                .unwrap();
        });
        assert_eq!(shared.len(), 0);
    }
}

#[test]
fn repeated_collectives_on_same_view() {
    // BTIO writes the array every step: many collectives on one view
    for h in engines() {
        let (shared2, _mem) = test_storage();
        World::run(2, move |comm| {
            apply_comm_faults(comm);
            let me = comm.rank() as u64;
            let (disp, ft) = noncontig_view(me, 2, 8, 8);
            let mut f = File::open(comm, shared2.clone(), h).unwrap();
            f.set_view(disp, Datatype::byte(), ft).unwrap();
            let step_bytes = 8 * 8;
            for step in 0..5u64 {
                let data = pattern(step_bytes, me * 100 + step);
                f.write_at_all(
                    step * step_bytes as u64,
                    &data,
                    step_bytes as u64,
                    &Datatype::byte(),
                )
                .unwrap();
            }
            // read back step 3
            let mut back = vec![0u8; step_bytes];
            f.read_at_all(
                3 * step_bytes as u64,
                &mut back,
                step_bytes as u64,
                &Datatype::byte(),
            )
            .unwrap();
            assert_eq!(back, pattern(step_bytes, me * 100 + 3));
        });
    }
}

#[test]
fn collective_read_of_preexisting_file() {
    // reads from a file written externally
    for h in engines() {
        let content = pattern(1024, 42);
        let (shared2, _mem) = test_storage_with(content.clone());
        let content2 = content.clone();
        World::run(4, move |comm| {
            apply_comm_faults(comm);
            let me = comm.rank() as u64;
            let (disp, ft) = noncontig_view(me, 4, 16, 8);
            let mut f = File::open(comm, shared2.clone(), h).unwrap();
            f.set_view(disp, Datatype::byte(), ft).unwrap();
            let mut back = vec![0u8; 16 * 8];
            f.read_at_all(0, &mut back, 16 * 8, &Datatype::byte())
                .unwrap();
            // rank me owns bytes disp + k*32 .. +8 of the file
            for blk in 0..16usize {
                let fo = me as usize * 8 + blk * 32;
                assert_eq!(
                    &back[blk * 8..blk * 8 + 8],
                    &content2[fo..fo + 8],
                    "rank {me} block {blk}"
                );
            }
        });
    }
}

#[test]
fn mixed_engines_independent_of_each_other() {
    // two separate files, one per engine, interleaved in the same world
    let (shared_a, mem_a) = test_storage();
    let (shared_b, mem_b) = test_storage();
    let (sa, sb) = (shared_a.clone(), shared_b.clone());
    World::run(2, move |comm| {
        apply_comm_faults(comm);
        let me = comm.rank() as u64;
        let (disp, ft) = noncontig_view(me, 2, 4, 8);
        let mut fa = File::open(comm, sa.clone(), Hints::list_based()).unwrap();
        let mut fb = File::open(comm, sb.clone(), Hints::listless()).unwrap();
        fa.set_view(disp, Datatype::byte(), ft.clone()).unwrap();
        fb.set_view(disp, Datatype::byte(), ft).unwrap();
        let data = pattern(32, me);
        fa.write_at_all(0, &data, 32, &Datatype::byte()).unwrap();
        fb.write_at_all(0, &data, 32, &Datatype::byte()).unwrap();
    });
    assert_eq!(mem_a.snapshot(), mem_b.snapshot());
}
