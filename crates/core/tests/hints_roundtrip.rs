//! Hint serialization round-trips: `base.apply_info(h.to_info())` must
//! reconstruct `h` for every recognized key, malformed values must
//! surface as typed [`HintError`]s naming the failing pair, and the
//! `LIO_PIPELINE` environment override must win over the hint either way.

use lio_core::{Engine, Hints, SievingMode};

/// `to_info` emits borrowed pairs for `apply_info`.
fn pairs(h: &Hints) -> Vec<(String, String)> {
    h.to_info()
}

fn roundtrip(h: Hints) -> Hints {
    // Base with a minimal independent buffer: the ind_*_buffer_size keys
    // are larger-wins, so any base at or below `h`'s value reconstructs
    // it exactly.
    let base = Hints::with_engine(h.engine).ind_buffer(1);
    let p = pairs(&h);
    base.apply_info(p.iter().map(|(k, v)| (k.as_str(), v.as_str())))
        .unwrap()
}

#[test]
fn roundtrip_reconstructs_every_field() {
    let cases = [
        Hints::default(),
        Hints::list_based(),
        Hints::listless()
            .ind_buffer(8192)
            .cb_buffer(65536)
            .io_nodes(3)
            .sieving_mode(SievingMode::Direct)
            .pipelined(true)
            .pipeline_depth(5),
        Hints::list_based()
            .sieving_mode(SievingMode::Auto)
            .observability(true),
        Hints::listless().observability(false),
        Hints {
            detect_dense_writes: false,
            ..Hints::list_based()
        },
    ];
    for h in cases {
        assert_eq!(
            roundtrip(h),
            h,
            "to_info/apply_info round-trip lost a field"
        );
    }
}

#[test]
fn roundtrip_is_stable_under_reserialization() {
    let h = Hints::listless()
        .cb_buffer(4096)
        .pipelined(true)
        .observability(true);
    let once = roundtrip(h);
    assert_eq!(pairs(&once), pairs(&h), "serialization must be a fixpoint");
}

#[test]
fn obs_key_only_present_when_forced() {
    let neutral = pairs(&Hints::default());
    assert!(
        neutral.iter().all(|(k, _)| k != "lio_obs"),
        "unforced observability must not serialize"
    );
    let forced = pairs(&Hints::default().observability(false));
    assert!(forced.iter().any(|(k, v)| k == "lio_obs" && v == "disable"));
}

#[test]
fn malformed_values_name_the_failing_pair() {
    let cases = [
        ("engine", "quantum", "list_based or listless"),
        ("ind_rd_buffer_size", "big", "byte count"),
        ("ind_wr_buffer_size", "-1", "byte count"),
        ("cb_buffer_size", "4k", "byte count"),
        ("cb_nodes", "all", "process count"),
        ("romio_ds_write", "sometimes", "automatic"),
        ("romio_ds_read", "yes", "automatic"),
        ("detect_dense_writes", "enable", "true or false"),
        ("two_phase_pipeline", "deep", "enable or disable"),
        ("pipeline_depth", "two", "window count"),
        ("lio_obs", "loud", "enable or disable"),
    ];
    for (key, value, reason_part) in cases {
        let err = Hints::default().apply_info([(key, value)]).unwrap_err();
        assert_eq!(err.key, key);
        assert_eq!(err.value, value);
        assert!(
            err.reason.contains(reason_part),
            "reason for {key}: {}",
            err.reason
        );
        let msg = err.to_string();
        assert!(
            msg.contains(key) && msg.contains(value),
            "display must name the pair: {msg}"
        );
    }
}

#[test]
fn first_malformed_pair_wins_and_unknown_keys_pass() {
    let err = Hints::default()
        .apply_info([
            ("utterly_unknown", "ignored"),
            ("cb_nodes", "many"),
            ("engine", "also_bad"),
        ])
        .unwrap_err();
    assert_eq!(err.key, "cb_nodes", "errors surface in pair order");
}

/// `LIO_PIPELINE` overrides the serialized hint in both directions.
/// Kept in one test so the save/restore of the process-global variable
/// cannot race a sibling (Rust runs tests in threads).
#[test]
fn env_override_beats_roundtripped_hint() {
    let saved = std::env::var("LIO_PIPELINE").ok();

    let on = roundtrip(Hints::default().pipelined(true));
    let off = roundtrip(Hints::default().pipelined(false));
    assert!(on.two_phase_pipeline && !off.two_phase_pipeline);

    std::env::set_var("LIO_PIPELINE", "0");
    assert!(!on.pipeline_enabled(), "LIO_PIPELINE=0 must force off");
    std::env::set_var("LIO_PIPELINE", "1");
    assert!(off.pipeline_enabled(), "LIO_PIPELINE=1 must force on");
    std::env::set_var("LIO_PIPELINE", "mumble");
    assert!(on.pipeline_enabled() && !off.pipeline_enabled());

    match saved {
        Some(v) => std::env::set_var("LIO_PIPELINE", v),
        None => std::env::remove_var("LIO_PIPELINE"),
    }
}

#[test]
fn engine_key_accepts_both_spellings() {
    let h = Hints::listless()
        .apply_info([("engine", "list-based")])
        .unwrap();
    assert_eq!(h.engine, Engine::ListBased);
}
