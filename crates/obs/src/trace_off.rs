//! No-op stand-in for [`crate::trace`] when `lio-obs` is built without
//! the default `trace` feature: the same public surface, every call a
//! compile-time no-op, so instrumentation sites need no cfg of their own.

pub const MAX_RANKS: usize = 64;
pub const NO_RANK: u32 = u32::MAX;
pub const DEFAULT_CAPACITY: usize = 1 << 16;
pub const FLIGHT_EVENTS: usize = 32;

#[inline(always)]
pub fn enabled() -> bool {
    false
}

pub fn set_enabled(_on: bool) {}

pub fn init_from_env() {}

#[inline]
pub fn now_ns() -> u64 {
    0
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    SpanBegin,
    SpanEnd,
    Send,
    Recv,
    Mark,
}

#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub ts: u64,
    pub span_id: u64,
    pub parent: u64,
    pub a: u64,
    pub b: u64,
    pub c: u64,
    pub kind: Kind,
    pub rank: u32,
    pub tid: u32,
    pub tag: &'static str,
}

pub fn set_capacity(_cap: usize) {}

pub fn reset() {}

pub fn set_thread_rank(_rank: u32) {}

pub fn current_rank() -> u32 {
    NO_RANK
}

#[derive(Clone, Copy, Debug)]
pub struct ThreadHandle;

pub fn thread_handle() -> ThreadHandle {
    ThreadHandle
}

pub fn adopt(_h: ThreadHandle) {}

pub struct Span;

impl Span {
    pub fn id(&self) -> u64 {
        0
    }

    pub fn is_active(&self) -> bool {
        false
    }

    pub fn set_payload(&mut self, _a: u64, _b: u64, _c: u64) {}
}

#[inline(always)]
pub fn span(_tag: &'static str) -> Span {
    Span
}

#[inline(always)]
pub fn span_ab(_tag: &'static str, _a: u64, _b: u64) -> Span {
    Span
}

#[inline(always)]
pub fn mark(_tag: &'static str, _a: u64, _b: u64) {}

#[inline(always)]
pub fn msg_send(_peer: u32, _seq: u64, _bytes: u64) {}

#[inline(always)]
pub fn msg_recv(_peer: u32, _seq: u64, _bytes: u64) {}

#[derive(Clone, Debug)]
pub struct RankStream {
    pub rank: u32,
    pub dropped: u64,
    pub events: Vec<Event>,
}

pub fn collect() -> Vec<RankStream> {
    Vec::new()
}

#[derive(Clone, Copy, Debug, Default)]
pub struct Edge {
    pub src_rank: u32,
    pub dst_rank: u32,
    pub src_tid: u32,
    pub dst_tid: u32,
    pub seq: u64,
    pub bytes: u64,
    pub send_ts: u64,
    pub recv_ts: u64,
}

#[derive(Clone, Debug, Default)]
pub struct Timeline {
    pub events: Vec<Event>,
    pub edges: Vec<Edge>,
    pub dropped: u64,
    pub unmatched_sends: u64,
    pub unmatched_recvs: u64,
    pub causal_violations: u64,
}

pub fn merge(_streams: &[RankStream]) -> Timeline {
    Timeline::default()
}

pub fn to_chrome_json(_t: &Timeline) -> String {
    "{\"traceEvents\":[]}\n".to_string()
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    Exchange,
    Io,
    Pack,
}

impl Phase {
    pub fn name(self) -> &'static str {
        match self {
            Phase::Exchange => "exchange",
            Phase::Io => "io",
            Phase::Pack => "pack",
        }
    }
}

pub fn phase_of(_tag: &str) -> Option<Phase> {
    None
}

#[derive(Clone, Debug)]
pub struct OpReport {
    pub index: usize,
    pub tag: &'static str,
    pub wall_ns: u64,
    pub bound_rank: u32,
    pub exchange_ns: u64,
    pub io_ns: u64,
    pub pack_ns: u64,
    pub bounding: Phase,
}

pub fn critical_path(_t: &Timeline) -> Vec<OpReport> {
    Vec::new()
}

pub fn render_report(_reports: &[OpReport], _tl: &Timeline) -> String {
    "critical path: tracing compiled out (lio-obs feature \"trace\")\n".to_string()
}

pub fn flight_dump(_reason: &str) {}
