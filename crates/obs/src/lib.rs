//! `lio-obs`: zero-dependency observability for the listless-io stack.
//!
//! A process-global metrics registry with three instrument kinds:
//!
//! * [`Counter`] — monotonically increasing, sharded across cache lines so
//!   concurrent ranks (threads) never contend on one atomic;
//! * [`Gauge`] — a single last-written / maximum value;
//! * [`Histogram`] — log2-bucketed distribution (sizes in bytes, latencies
//!   in nanoseconds) with count/sum/min/max.
//!
//! Instrumentation sites declare a `static` handle ([`LazyCounter`],
//! [`LazyGauge`], [`LazyHistogram`]) naming the metric; the handle registers
//! itself in the global [`Registry`] on first use. Every recording method is
//! gated on the global [`enabled`] flag, so the **disabled cost is one
//! relaxed atomic load and a predictable branch** — verified by the
//! `obs_overhead` bench in `lio-bench`.
//!
//! Enable programmatically with [`set_enabled`], via the `LIO_OBS`
//! environment variable (checked by [`init_from_env`]), or through the
//! `lio_obs` hint key in `lio-core`. [`snapshot`] serializes every
//! registered metric to JSON (hand-rolled; no serde).
//!
//! Metric name convention: `layer.object.what`, e.g. `pfs.read.bytes`,
//! `mpi.p2p.msgs`, `dt.pack.blocks`, `core.coll.write.exchange_ns`.
//!
//! The [`trace`] module adds per-rank *event* recording on top of the
//! aggregate metrics (spans, message edges, Perfetto export,
//! critical-path analysis); [`health`] adds runtime liveness on top of
//! both (progress heartbeats, a hang watchdog, straggler attribution,
//! live status reports); [`json`] is the tiny parser the tooling uses
//! to check emitted artifacts.

pub mod health;
pub mod json;
pub mod profile;
#[cfg(feature = "trace")]
pub mod trace;
#[cfg(not(feature = "trace"))]
#[path = "trace_off.rs"]
pub mod trace;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Global enable flag
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is instrumentation currently recording? One relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Turn recording on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// Read the `LIO_OBS` environment variable once per process and enable
/// recording unless it is `0`, `false`, or `off`. Absent means "leave the
/// current setting alone". Call sites that open files or run benchmarks
/// invoke this; repeated calls are free.
pub fn init_from_env() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        if let Ok(v) = std::env::var("LIO_OBS") {
            let v = v.to_ascii_lowercase();
            set_enabled(!matches!(v.as_str(), "0" | "false" | "off" | ""));
        }
    });
}

// ---------------------------------------------------------------------------
// Counter: sharded, cache-line padded
// ---------------------------------------------------------------------------

const SHARDS: usize = 8;

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Assign each thread a shard slot round-robin so ranks spawned by
/// `World::run` land on distinct cache lines.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Relaxed) % SHARDS;
    }
    SLOT.with(|s| *s)
}

/// A monotonically increasing counter, sharded across cache lines.
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    fn new() -> Self {
        Counter {
            shards: std::array::from_fn(|_| PaddedU64::default()),
        }
    }

    /// Add `n`. Not gated: callers go through [`LazyCounter::add`].
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Relaxed);
    }

    /// Sum over all shards. Concurrent adds may or may not be included.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Relaxed)).sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A single value: last set, or running maximum.
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Relaxed);
    }

    /// Keep the maximum of the current value and `v`.
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.value.fetch_max(v, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Histogram: log2 buckets
// ---------------------------------------------------------------------------

/// Number of buckets: index 0 holds the value 0, index `i >= 1` holds
/// values in `[2^(i-1), 2^i - 1]`. u64::MAX lands in bucket 64.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index for a value: `0 -> 0`, else `64 - leading_zeros(v)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `(lo, hi)` value range covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        _ => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

/// A log2-bucketed distribution with count, sum, min, and max.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Not gated: callers go through
    /// [`LazyHistogram::record`].
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of the same value with one set of atomic
    /// ops (e.g. "this strided pack copied 4096 runs of 64 bytes").
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Relaxed);
        self.count.fetch_add(n, Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    pub fn min(&self) -> Option<u64> {
        let m = self.min.load(Relaxed);
        (m != u64::MAX || self.count() > 0).then_some(m)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Raw bucket counts, index as per [`bucket_index`].
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Relaxed))
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum Instrument {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// The process-global metric registry. Instruments are registered by name
/// on first use and live for the rest of the process (leaked), so hot
/// paths hold plain `&'static` references and never lock.
pub struct Registry {
    metrics: Mutex<BTreeMap<&'static str, Instrument>>,
}

fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        metrics: Mutex::new(BTreeMap::new()),
    })
}

impl Registry {
    fn counter(&self, name: &'static str) -> &'static Counter {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name)
            .or_insert_with(|| Instrument::Counter(Box::leak(Box::new(Counter::new()))))
        {
            Instrument::Counter(c) => c,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name)
            .or_insert_with(|| Instrument::Gauge(Box::leak(Box::new(Gauge::new()))))
        {
            Instrument::Gauge(g) => g,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name)
            .or_insert_with(|| Instrument::Histogram(Box::leak(Box::new(Histogram::new()))))
        {
            Instrument::Histogram(h) => h,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }
}

/// Zero every registered metric. Registered names stay registered.
pub fn reset() {
    let m = global().metrics.lock().unwrap();
    for inst in m.values() {
        match inst {
            Instrument::Counter(c) => c.reset(),
            Instrument::Gauge(g) => g.reset(),
            Instrument::Histogram(h) => h.reset(),
        }
    }
}

// ---------------------------------------------------------------------------
// Static instrumentation-site handles
// ---------------------------------------------------------------------------

/// A `static`-friendly counter handle: registers in the global registry on
/// first use, and gates every `add` on [`enabled`].
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    fn force(&self) -> &'static Counter {
        self.cell.get_or_init(|| global().counter(self.name))
    }

    /// Add `n` if recording is enabled; otherwise a relaxed load + branch.
    #[inline(always)]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.force().add(n);
        }
    }

    #[inline(always)]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total (registers the metric if it never fired).
    pub fn get(&self) -> u64 {
        self.force().get()
    }
}

/// A `static`-friendly gauge handle; see [`LazyCounter`].
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<&'static Gauge>,
}

impl LazyGauge {
    pub const fn new(name: &'static str) -> Self {
        LazyGauge {
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    fn force(&self) -> &'static Gauge {
        self.cell.get_or_init(|| global().gauge(self.name))
    }

    #[inline(always)]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.force().set(v);
        }
    }

    #[inline(always)]
    pub fn record_max(&self, v: u64) {
        if enabled() {
            self.force().record_max(v);
        }
    }

    pub fn get(&self) -> u64 {
        self.force().get()
    }
}

/// A `static`-friendly histogram handle; see [`LazyCounter`].
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    fn force(&self) -> &'static Histogram {
        self.cell.get_or_init(|| global().histogram(self.name))
    }

    #[inline(always)]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.force().record(v);
        }
    }

    /// Record `n` observations of `v`; see [`Histogram::record_n`].
    #[inline(always)]
    pub fn record_n(&self, v: u64, n: u64) {
        if enabled() {
            self.force().record_n(v, n);
        }
    }

    /// Start a span whose elapsed nanoseconds are recorded into this
    /// histogram when the guard drops. Costs nothing when disabled.
    #[inline]
    pub fn span(&'static self) -> Span {
        Span {
            inner: enabled().then(|| (Instant::now(), self)),
        }
    }

    pub fn histogram(&self) -> &'static Histogram {
        self.force()
    }
}

/// RAII timer: records elapsed ns into its histogram on drop.
pub struct Span {
    inner: Option<(Instant, &'static LazyHistogram)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((start, hist)) = self.inner.take() {
            hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// `Some(Instant::now())` when recording, `None` otherwise. Pairs with
/// [`elapsed_ns`] for manual phase accumulation (the two-phase breakdown
/// in `lio-core` accumulates per-round phase times this way).
#[inline]
pub fn now() -> Option<Instant> {
    enabled().then(Instant::now)
}

/// Nanoseconds since `start`, or 0 when `start` is `None`.
#[inline]
pub fn elapsed_ns(start: Option<Instant>) -> u64 {
    start.map_or(0, |s| s.elapsed().as_nanos() as u64)
}

// ---------------------------------------------------------------------------
// Snapshot + JSON export
// ---------------------------------------------------------------------------

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Non-empty buckets only: `(lo, hi, count)` with inclusive bounds.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the log2 bucket holding the target rank. Exact for
    /// single-value buckets; within a factor of two otherwise — the same
    /// resolution the buckets themselves offer. Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for &(lo, hi, c) in &self.buckets {
            let next = cum + c;
            if (next as f64) >= target {
                let frac = (target - cum as f64) / c as f64;
                let est = lo as f64 + frac * (hi.saturating_sub(lo)) as f64;
                return (est as u64).clamp(self.min, self.max);
            }
            cum = next;
        }
        self.max
    }

    /// Median estimate (see [`Self::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate (see [`Self::quantile`]).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate (see [`Self::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Point-in-time copy of every registered metric, sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Take a snapshot of the global registry. Safe to call while other
/// threads are recording; values are relaxed reads.
pub fn snapshot() -> Snapshot {
    let m = global().metrics.lock().unwrap();
    let mut snap = Snapshot::default();
    for (name, inst) in m.iter() {
        match inst {
            Instrument::Counter(c) => snap.counters.push((name.to_string(), c.get())),
            Instrument::Gauge(g) => snap.gauges.push((name.to_string(), g.get())),
            Instrument::Histogram(h) => {
                let counts = h.bucket_counts();
                let buckets = counts
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| {
                        let (lo, hi) = bucket_bounds(i);
                        (lo, hi, c)
                    })
                    .collect();
                snap.histograms.push((
                    name.to_string(),
                    HistogramSnapshot {
                        count: h.count(),
                        sum: h.sum(),
                        min: h.min().unwrap_or(0),
                        max: h.max(),
                        buckets,
                    },
                ));
            }
        }
    }
    snap
}

impl Snapshot {
    /// Look up a counter by name; 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Look up a gauge by name; 0 if absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Serialize to a JSON object string (pretty, two-space indent).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        write_map(&mut out, &self.counters, |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\n  \"gauges\": {");
        write_map(&mut out, &self.gauges, |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\n  \"histograms\": {");
        write_map(&mut out, &self.histograms, |out, h| {
            out.push_str(&format!(
                "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50(),
                h.p95(),
                h.p99()
            ));
            for (i, (lo, hi, c)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{lo}, {hi}, {c}]"));
            }
            out.push_str("]}");
        });
        out.push_str("}\n}\n");
        out
    }
}

fn write_map<T>(out: &mut String, entries: &[(String, T)], mut val: impl FnMut(&mut String, &T)) {
    for (i, (name, v)) in entries.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    ");
        json_string(out, name);
        out.push_str(": ");
        val(out, v);
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
}

/// Append `s` as a JSON string literal (quotes + escapes).
pub fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize access to the global enabled flag + registry across tests
    /// (cargo runs tests in one process, many threads).
    fn with_enabled<R>(f: impl FnOnce() -> R) -> R {
        static GATE: Mutex<()> = Mutex::new(());
        let _g = GATE.lock().unwrap();
        reset();
        set_enabled(true);
        let r = f();
        set_enabled(false);
        r
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lo bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi bound of bucket {i}");
            if hi < u64::MAX {
                assert_eq!(bucket_index(hi + 1), i + 1);
            }
        }
    }

    #[test]
    fn histogram_quantiles() {
        with_enabled(|| {
            static H: LazyHistogram = LazyHistogram::new("test.hist.quant");
            for _ in 0..90 {
                H.record(100);
            }
            for _ in 0..10 {
                H.record(1 << 20);
            }
            let snap = snapshot();
            let h = snap.histogram("test.hist.quant").unwrap();
            // 90% of mass at 100: the median interpolates inside the
            // 64..127 bucket and clamps up to the observed min
            assert_eq!(h.p50(), 100);
            // the tail bucket holds the top 10%: p95/p99 land there and
            // clamp down to the observed max
            assert_eq!(h.p95(), 1 << 20);
            assert_eq!(h.p99(), 1 << 20);
            let empty = HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                buckets: Vec::new(),
            };
            assert_eq!(empty.quantile(0.5), 0);
            let json = snap.to_json();
            assert!(json.contains("\"p50\""), "quantiles missing from JSON");
        });
    }

    #[test]
    fn counter_disabled_is_noop() {
        with_enabled(|| {
            static C: LazyCounter = LazyCounter::new("test.noop.counter");
            set_enabled(false);
            C.add(41);
            C.incr();
            assert_eq!(C.get(), 0);
            set_enabled(true);
            C.add(41);
            C.incr();
            assert_eq!(C.get(), 42);
        });
    }

    #[test]
    fn histogram_stats() {
        with_enabled(|| {
            static H: LazyHistogram = LazyHistogram::new("test.hist.stats");
            for v in [0u64, 1, 3, 8, 1024] {
                H.record(v);
            }
            let h = H.histogram();
            assert_eq!(h.count(), 5);
            assert_eq!(h.sum(), 1036);
            assert_eq!(h.min(), Some(0));
            assert_eq!(h.max(), 1024);
            let counts = h.bucket_counts();
            assert_eq!(counts[0], 1); // 0
            assert_eq!(counts[1], 1); // 1
            assert_eq!(counts[2], 1); // 3
            assert_eq!(counts[4], 1); // 8
            assert_eq!(counts[11], 1); // 1024
        });
    }

    #[test]
    fn snapshot_and_json() {
        with_enabled(|| {
            static C: LazyCounter = LazyCounter::new("test.snap.counter");
            static G: LazyGauge = LazyGauge::new("test.snap.gauge");
            static H: LazyHistogram = LazyHistogram::new("test.snap.hist");
            C.add(7);
            G.record_max(3);
            G.record_max(2);
            H.record(100);
            let s = snapshot();
            assert_eq!(s.counter("test.snap.counter"), 7);
            assert!(s.gauges.contains(&("test.snap.gauge".into(), 3)));
            let h = s.histogram("test.snap.hist").unwrap();
            assert_eq!((h.count, h.sum, h.min, h.max), (1, 100, 100, 100));
            assert_eq!(h.buckets, vec![(64, 127, 1)]);
            let json = s.to_json();
            assert!(json.contains("\"test.snap.counter\": 7"));
            assert!(json.contains("\"buckets\": [[64, 127, 1]]"));
        });
    }

    #[test]
    fn concurrent_counter_adds() {
        with_enabled(|| {
            static C: LazyCounter = LazyCounter::new("test.concurrent.counter");
            std::thread::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        for _ in 0..10_000 {
                            C.incr();
                        }
                    });
                }
            });
            assert_eq!(C.get(), 80_000);
        });
    }

    #[test]
    fn snapshot_while_writing_races() {
        with_enabled(|| {
            static C: LazyCounter = LazyCounter::new("test.race.counter");
            static H: LazyHistogram = LazyHistogram::new("test.race.hist");
            std::thread::scope(|s| {
                let writer = s.spawn(|| {
                    for i in 0..20_000u64 {
                        C.incr();
                        H.record(i);
                    }
                });
                // Snapshots taken mid-write must be internally sane:
                // monotone counters, histogram count never exceeds what
                // the writer could have recorded so far.
                let mut last = 0;
                while !writer.is_finished() {
                    let s = snapshot();
                    let c = s.counter("test.race.counter");
                    assert!(c >= last, "counter went backwards: {last} -> {c}");
                    last = c;
                    if let Some(h) = s.histogram("test.race.hist") {
                        assert!(h.count <= 20_000);
                        let bucket_total: u64 = h.buckets.iter().map(|(_, _, c)| *c).sum();
                        assert!(bucket_total <= 20_000);
                    }
                }
                writer.join().unwrap();
            });
            assert_eq!(C.get(), 20_000);
        });
    }

    #[test]
    fn reset_zeroes_everything() {
        with_enabled(|| {
            static C: LazyCounter = LazyCounter::new("test.reset.counter");
            static H: LazyHistogram = LazyHistogram::new("test.reset.hist");
            C.add(5);
            H.record(9);
            reset();
            assert_eq!(C.get(), 0);
            assert_eq!(H.histogram().count(), 0);
            assert_eq!(H.histogram().min(), None);
        });
    }

    #[test]
    fn span_records_elapsed() {
        with_enabled(|| {
            static H: LazyHistogram = LazyHistogram::new("test.span.hist");
            {
                let _s = H.span();
                std::hint::black_box(0u64);
            }
            assert_eq!(H.histogram().count(), 1);
        });
    }
}
