//! `lio-trace`: lock-light per-rank event tracing with causal merging,
//! Chrome/Perfetto export, and collective critical-path analysis.
//!
//! Each rank owns a fixed-capacity ring buffer of [`Event`]s guarded by
//! its own mutex — ranks never contend with each other, and within a
//! rank the only contenders are its own short-lived worker threads
//! (storage lanes, pack shards), so the lock is effectively uncontended.
//! The disabled hot path is one relaxed atomic load ([`enabled`]), the
//! enabled hot path is clock read + ring store: no allocation after the
//! buffer's one-time reservation. The whole module compiles out when
//! `lio-obs` is built without the default `trace` feature.
//!
//! Cross-rank causality rides on the per-channel message sequence
//! numbers `lio-mpi` already maintains for duplicate suppression: every
//! send and every accepted receive records `(peer, seq, bytes)`, and
//! [`merge`] stitches the per-rank streams into one timeline whose
//! send→recv edges are checked (and exported as Perfetto flow events).
//!
//! Enable with [`set_enabled`], the `LIO_TRACE` environment variable
//! ([`init_from_env`]), or the `lio_trace` hint key in `lio-core`.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

use crate::LazyCounter;

/// Ranks above this index record nothing (worlds in this repo top out
/// at 25 ranks).
pub const MAX_RANKS: usize = 64;

/// Sentinel: the current thread belongs to no rank; events are dropped.
pub const NO_RANK: u32 = u32::MAX;

/// Default per-rank ring capacity, in events.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Events shown per rank by the flight recorder.
pub const FLIGHT_EVENTS: usize = 32;

// ---------------------------------------------------------------------------
// Enable flag + clock
// ---------------------------------------------------------------------------

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Is tracing currently recording? One relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    TRACE_ENABLED.load(Relaxed)
}

/// Turn tracing on or off globally.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    TRACE_ENABLED.store(on, Relaxed);
}

/// Read the `LIO_TRACE` environment variable once per process and enable
/// tracing unless it is `0`, `false`, or `off`. Absent means "leave the
/// current setting alone"; repeated calls are free.
pub fn init_from_env() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        if let Ok(v) = std::env::var("LIO_TRACE") {
            let v = v.to_ascii_lowercase();
            set_enabled(!matches!(v.as_str(), "0" | "false" | "off" | ""));
        }
    });
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch. All ranks are threads
/// of one process, so one monotonic clock is globally comparable.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------------

/// What an [`Event`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A span opened; `span_id` identifies it, `parent` its enclosing span.
    SpanBegin,
    /// The matching close; carries the span's final payload.
    SpanEnd,
    /// A message left this rank: `a` = destination, `b` = channel seq,
    /// `c` = bytes.
    Send,
    /// A message was accepted: `a` = source, `b` = channel seq, `c` = bytes.
    Recv,
    /// An instant annotation (e.g. a retry).
    Mark,
}

/// One fixed-size trace record. `a`/`b`/`c` are tag-specific payload
/// words (see [`arg_names`] for how the exporter labels them).
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub ts: u64,
    pub span_id: u64,
    pub parent: u64,
    pub a: u64,
    pub b: u64,
    pub c: u64,
    pub kind: Kind,
    pub rank: u32,
    /// Export track: the rank's main thread uses `tid == rank`; adopted
    /// worker threads (lanes, shards) get unique tids past [`MAX_RANKS`].
    pub tid: u32,
    pub tag: &'static str,
}

// ---------------------------------------------------------------------------
// Per-rank ring buffers
// ---------------------------------------------------------------------------

static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

struct Ring {
    /// Total events ever pushed; `next - buf.len()` were dropped.
    next: u64,
    buf: Vec<Event>,
}

impl Ring {
    const fn new() -> Self {
        Ring {
            next: 0,
            buf: Vec::new(),
        }
    }

    fn push(&mut self, ev: Event) {
        let cap = CAPACITY.load(Relaxed).max(1);
        if self.buf.len() < cap {
            if self.buf.is_empty() {
                self.buf.reserve_exact(cap);
            }
            self.buf.push(ev);
        } else {
            // full: overwrite the oldest slot
            self.buf[(self.next % cap as u64) as usize] = ev;
        }
        self.next += 1;
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const RING_INIT: Mutex<Ring> = Mutex::new(Ring::new());
static BUFS: [Mutex<Ring>; MAX_RANKS] = [RING_INIT; MAX_RANKS];

#[inline]
fn push(ev: Event) {
    let r = ev.rank as usize;
    if r < MAX_RANKS {
        BUFS[r].lock().unwrap().push(ev);
    }
}

/// Set the per-rank ring capacity (in events) and clear all buffers.
/// Intended for tests exercising wraparound; the default is
/// [`DEFAULT_CAPACITY`].
pub fn set_capacity(cap: usize) {
    CAPACITY.store(cap.max(1), Relaxed);
    reset();
}

/// Clear every ring buffer and restart span-id allocation.
pub fn reset() {
    for b in BUFS.iter() {
        let mut ring = b.lock().unwrap();
        ring.buf.clear();
        ring.next = 0;
    }
    NEXT_SPAN.store(1, Relaxed);
}

// ---------------------------------------------------------------------------
// Thread identity: rank, current parent span, export track
// ---------------------------------------------------------------------------

thread_local! {
    static RANK: Cell<u32> = const { Cell::new(NO_RANK) };
    static PARENT: Cell<u64> = const { Cell::new(0) };
    static TID: Cell<u32> = const { Cell::new(NO_RANK) };
}

static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU32 = AtomicU32::new(MAX_RANKS as u32);

/// Declare the current thread to be rank `rank`'s main thread.
/// `World::run` calls this before entering the rank closure.
pub fn set_thread_rank(rank: u32) {
    RANK.with(|r| r.set(rank));
    TID.with(|t| t.set(rank));
    PARENT.with(|p| p.set(0));
}

/// The rank the current thread records into, or [`NO_RANK`].
pub fn current_rank() -> u32 {
    RANK.with(|r| r.get())
}

/// A copyable capture of the current thread's trace context, for handing
/// to spawned worker threads (storage lanes, pack shards).
#[derive(Clone, Copy, Debug)]
pub struct ThreadHandle {
    rank: u32,
    parent: u64,
}

/// Capture the current thread's rank and open span for [`adopt`] by a
/// worker thread.
pub fn thread_handle() -> ThreadHandle {
    ThreadHandle {
        rank: current_rank(),
        parent: PARENT.with(|p| p.get()),
    }
}

/// Join the rank of the captured handle from a freshly spawned worker
/// thread: events parent under the span that was open at capture time,
/// on a worker track of their own.
pub fn adopt(h: ThreadHandle) {
    RANK.with(|r| r.set(h.rank));
    PARENT.with(|p| p.set(h.parent));
    if h.rank != NO_RANK {
        TID.with(|t| t.set(NEXT_TID.fetch_add(1, Relaxed)));
    }
}

// ---------------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------------

/// RAII span: records a `SpanBegin` now and the matching `SpanEnd` on
/// drop. Inert (zero further cost) when tracing is disabled or the
/// thread has no rank.
pub struct Span {
    id: u64,
    rank: u32,
    tid: u32,
    prev_parent: u64,
    payload: (u64, u64, u64),
    tag: &'static str,
    active: bool,
}

impl Span {
    fn inert() -> Span {
        Span {
            id: 0,
            rank: NO_RANK,
            tid: NO_RANK,
            prev_parent: 0,
            payload: (0, 0, 0),
            tag: "",
            active: false,
        }
    }

    /// The span's id (0 when inert), for explicit parenting.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Is this span actually recording?
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Attach payload words to the closing event (e.g. bytes moved, the
    /// modelled device time of a throttled storage op).
    pub fn set_payload(&mut self, a: u64, b: u64, c: u64) {
        self.payload = (a, b, c);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        PARENT.with(|p| p.set(self.prev_parent));
        let (a, b, c) = self.payload;
        push(Event {
            ts: now_ns(),
            span_id: self.id,
            parent: self.prev_parent,
            a,
            b,
            c,
            kind: Kind::SpanEnd,
            rank: self.rank,
            tid: self.tid,
            tag: self.tag,
        });
    }
}

/// Open a span named `tag` on the current thread.
#[inline]
pub fn span(tag: &'static str) -> Span {
    span_ab(tag, 0, 0)
}

/// Open a span with payload words on the opening event (e.g. a window
/// index and its byte count).
#[inline]
pub fn span_ab(tag: &'static str, a: u64, b: u64) -> Span {
    if !enabled() {
        return Span::inert();
    }
    let rank = current_rank();
    if rank == NO_RANK {
        return Span::inert();
    }
    let id = NEXT_SPAN.fetch_add(1, Relaxed);
    let parent = PARENT.with(|p| {
        let v = p.get();
        p.set(id);
        v
    });
    let tid = TID.with(|t| t.get());
    push(Event {
        ts: now_ns(),
        span_id: id,
        parent,
        a,
        b,
        c: 0,
        kind: Kind::SpanBegin,
        rank,
        tid,
        tag,
    });
    Span {
        id,
        rank,
        tid,
        prev_parent: parent,
        payload: (0, 0, 0),
        tag,
        active: true,
    }
}

/// Record an instant event.
#[inline]
pub fn mark(tag: &'static str, a: u64, b: u64) {
    if !enabled() {
        return;
    }
    let rank = current_rank();
    if rank == NO_RANK {
        return;
    }
    push(Event {
        ts: now_ns(),
        span_id: 0,
        parent: PARENT.with(|p| p.get()),
        a,
        b,
        c: 0,
        kind: Kind::Mark,
        rank,
        tid: TID.with(|t| t.get()),
        tag,
    });
}

/// Record a message leaving this rank for `peer` with the channel
/// sequence number `seq` (the dup-suppression counter `lio-mpi` already
/// maintains — it is the causal edge key).
#[inline]
pub fn msg_send(peer: u32, seq: u64, bytes: u64) {
    msg_event(Kind::Send, "msg.send", peer, seq, bytes);
}

/// Record a message from `peer` being accepted on this rank.
#[inline]
pub fn msg_recv(peer: u32, seq: u64, bytes: u64) {
    msg_event(Kind::Recv, "msg.recv", peer, seq, bytes);
}

#[inline]
fn msg_event(kind: Kind, tag: &'static str, peer: u32, seq: u64, bytes: u64) {
    if !enabled() {
        return;
    }
    let rank = current_rank();
    if rank == NO_RANK {
        return;
    }
    push(Event {
        ts: now_ns(),
        span_id: 0,
        parent: PARENT.with(|p| p.get()),
        a: peer as u64,
        b: seq,
        c: bytes,
        kind,
        rank,
        tid: TID.with(|t| t.get()),
        tag,
    });
}

// ---------------------------------------------------------------------------
// Collection + causal merge
// ---------------------------------------------------------------------------

/// One rank's drained ring, oldest event first.
#[derive(Clone, Debug)]
pub struct RankStream {
    pub rank: u32,
    /// Events lost to wraparound (oldest-first).
    pub dropped: u64,
    pub events: Vec<Event>,
}

/// Drain a copy of every non-empty rank buffer, oldest event first.
/// The buffers themselves are left intact (call [`reset`] to clear).
pub fn collect() -> Vec<RankStream> {
    let mut out = Vec::new();
    for (r, b) in BUFS.iter().enumerate() {
        let ring = b.lock().unwrap();
        if ring.next == 0 {
            continue;
        }
        let n = ring.buf.len();
        let mut events = Vec::with_capacity(n);
        if ring.next as usize <= n {
            events.extend_from_slice(&ring.buf[..ring.next as usize]);
        } else {
            // wrapped: oldest surviving event sits at next % len
            let start = (ring.next % n as u64) as usize;
            events.extend_from_slice(&ring.buf[start..]);
            events.extend_from_slice(&ring.buf[..start]);
        }
        out.push(RankStream {
            rank: r as u32,
            dropped: ring.next.saturating_sub(n as u64),
            events,
        });
    }
    out
}

/// A matched send→recv pair.
#[derive(Clone, Copy, Debug, Default)]
pub struct Edge {
    pub src_rank: u32,
    pub dst_rank: u32,
    pub src_tid: u32,
    pub dst_tid: u32,
    pub seq: u64,
    pub bytes: u64,
    pub send_ts: u64,
    pub recv_ts: u64,
}

/// All ranks' events stitched into one timeline.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// Every event, sorted by timestamp (stable: per-rank order kept).
    pub events: Vec<Event>,
    /// Matched cross-rank send→recv edges.
    pub edges: Vec<Edge>,
    /// Total events lost to ring wraparound across all ranks.
    pub dropped: u64,
    /// Sends whose matching receive never appeared (in flight at
    /// collection, or its record was dropped).
    pub unmatched_sends: u64,
    /// Receives whose matching send record was dropped.
    pub unmatched_recvs: u64,
    /// Matched edges where the receive timestamp precedes the send —
    /// impossible under one monotonic clock, so nonzero means a
    /// corrupted stream.
    pub causal_violations: u64,
}

/// Merge per-rank streams into one causally-ordered timeline: sort by
/// the shared monotonic clock, then match sends to receives on the
/// `(src, dst, seq)` channel key and verify each edge points forward
/// in time.
pub fn merge(streams: &[RankStream]) -> Timeline {
    let mut events: Vec<Event> = streams
        .iter()
        .flat_map(|s| s.events.iter().copied())
        .collect();
    events.sort_by_key(|e| e.ts);
    let mut sends: HashMap<(u32, u32, u64), (u64, u32)> = HashMap::new();
    let mut t = Timeline {
        dropped: streams.iter().map(|s| s.dropped).sum(),
        ..Timeline::default()
    };
    for ev in &events {
        match ev.kind {
            Kind::Send => {
                sends.insert((ev.rank, ev.a as u32, ev.b), (ev.ts, ev.tid));
            }
            Kind::Recv => {
                let key = (ev.a as u32, ev.rank, ev.b);
                if let Some((send_ts, src_tid)) = sends.remove(&key) {
                    if ev.ts < send_ts {
                        t.causal_violations += 1;
                    }
                    t.edges.push(Edge {
                        src_rank: ev.a as u32,
                        dst_rank: ev.rank,
                        src_tid,
                        dst_tid: ev.tid,
                        seq: ev.b,
                        bytes: ev.c,
                        send_ts,
                        recv_ts: ev.ts,
                    });
                } else {
                    t.unmatched_recvs += 1;
                }
            }
            _ => {}
        }
    }
    t.unmatched_sends = sends.len() as u64;
    t.events = events;
    t
}

// ---------------------------------------------------------------------------
// Chrome/Perfetto export
// ---------------------------------------------------------------------------

/// Human-meaningful names for the `a`/`b`/`c` payload words of a tag.
fn arg_names(tag: &str) -> (&'static str, &'static str, &'static str) {
    match tag {
        "msg.send" | "msg.recv" => ("peer", "seq", "bytes"),
        "pfs.read" | "pfs.write" => ("bytes", "modelled_ns", "spin_ns"),
        "pfs.retry" => ("attempt", "backoff_ns", "c"),
        "win" => ("window", "bytes", "c"),
        "io.read" | "io.write" => ("window", "bytes", "c"),
        "dt.pack.shard" | "dt.unpack.shard" => ("bytes", "b", "c"),
        _ => ("a", "b", "c"),
    }
}

fn push_args(out: &mut String, tag: &str, a: u64, b: u64, c: u64, span_id: u64) {
    let (an, bn, cn) = arg_names(tag);
    out.push_str("\"args\":{");
    let mut first = true;
    let mut field = |out: &mut String, name: &str, v: u64| {
        if v != 0 {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{name}\":{v}"));
        }
    };
    field(out, an, a);
    field(out, bn, b);
    field(out, cn, c);
    field(out, "span", span_id);
    out.push('}');
}

fn ts_us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

/// Serialize a merged timeline to Chrome Trace Event JSON — loadable in
/// Perfetto (`ui.perfetto.dev`) or `chrome://tracing`. Spans become
/// `B`/`E` pairs on one track per thread, matched messages become flow
/// arrows from the sending to the receiving rank.
pub fn to_chrome_json(t: &Timeline) -> String {
    let mut out = String::with_capacity(t.events.len() * 96 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"listless-io\"}}",
    );
    // name every track that appears
    let mut tids: Vec<(u32, u32)> = t.events.iter().map(|e| (e.tid, e.rank)).collect();
    tids.sort_unstable();
    tids.dedup();
    for (tid, rank) in &tids {
        let name = if tid == rank {
            format!("rank {rank}")
        } else {
            format!("rank {rank} worker t{tid}")
        };
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}}"
        ));
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"sort_index\":{tid}}}}}"
        ));
    }
    for ev in &t.events {
        let ph = match ev.kind {
            Kind::SpanBegin => "B",
            Kind::SpanEnd => "E",
            Kind::Send | Kind::Recv | Kind::Mark => "i",
        };
        out.push_str(",\n{");
        out.push_str(&format!(
            "\"name\":\"{}\",\"ph\":\"{ph}\",\"pid\":0,\"tid\":{},\"ts\":{}",
            ev.tag,
            ev.tid,
            ts_us(ev.ts)
        ));
        if ph == "i" {
            out.push_str(",\"s\":\"t\"");
        }
        out.push(',');
        push_args(&mut out, ev.tag, ev.a, ev.b, ev.c, ev.span_id);
        out.push('}');
    }
    for (i, e) in t.edges.iter().enumerate() {
        out.push_str(&format!(
            ",\n{{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"s\",\"id\":{i},\"pid\":0,\"tid\":{},\"ts\":{}}}",
            e.src_tid,
            ts_us(e.send_ts)
        ));
        out.push_str(&format!(
            ",\n{{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{i},\"pid\":0,\"tid\":{},\"ts\":{}}}",
            e.dst_tid,
            ts_us(e.recv_ts)
        ));
    }
    out.push_str("\n]}\n");
    out
}

// ---------------------------------------------------------------------------
// Critical-path analysis
// ---------------------------------------------------------------------------

/// The three phase categories of a two-phase collective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    Exchange,
    Io,
    Pack,
}

impl Phase {
    pub fn name(self) -> &'static str {
        match self {
            Phase::Exchange => "exchange",
            Phase::Io => "io",
            Phase::Pack => "pack",
        }
    }
}

/// Which phase a span tag belongs to, if any.
pub fn phase_of(tag: &str) -> Option<Phase> {
    if tag.starts_with("exch") || tag == "mpi.wait" {
        Some(Phase::Exchange)
    } else if tag.starts_with("io.") || tag.starts_with("pfs.") {
        Some(Phase::Io)
    } else if tag.starts_with("pack") || tag.starts_with("unpack") || tag.starts_with("dt.") {
        Some(Phase::Pack)
    } else {
        None
    }
}

/// Per-collective-op verdict from [`critical_path`].
#[derive(Clone, Debug)]
pub struct OpReport {
    pub index: usize,
    /// `coll.write` or `coll.read`.
    pub tag: &'static str,
    /// Slowest rank's wall time for this op.
    pub wall_ns: u64,
    /// The rank that bounded the op.
    pub bound_rank: u32,
    /// Interval-union time the bounding rank spent in each phase.
    pub exchange_ns: u64,
    pub io_ns: u64,
    pub pack_ns: u64,
    /// The phase with the largest share on the bounding rank.
    pub bounding: Phase,
}

static CRIT_EXCH: LazyCounter = LazyCounter::new("core.coll.critical.exchange_ns");
static CRIT_IO: LazyCounter = LazyCounter::new("core.coll.critical.io_ns");
static CRIT_PACK: LazyCounter = LazyCounter::new("core.coll.critical.pack_ns");

/// Sum of a set of possibly-overlapping intervals, clipped to a window:
/// nested same-phase spans (a `pfs.write` inside an `io.write` lane op)
/// must not double-count.
fn union_ns(mut iv: Vec<(u64, u64)>, lo: u64, hi: u64) -> u64 {
    iv.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in iv {
        let (s, e) = (s.max(lo), e.min(hi));
        if s >= e {
            continue;
        }
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Walk the merged timeline and report, per collective op, which rank
/// bounded the wall time and how that rank's time divides into
/// exchange / storage / pack. Root spans are the `coll.write` /
/// `coll.read` spans every collective opens; the k-th root on each rank
/// is the k-th collective (collectives are, by construction, entered by
/// all ranks in the same order). Also accumulates the bounding rank's
/// phase times into `core.coll.critical.{exchange,io,pack}_ns`.
pub fn critical_path(t: &Timeline) -> Vec<OpReport> {
    // pair spans: id -> (begin event index, end ts)
    let mut begin: HashMap<u64, usize> = HashMap::new();
    let mut spans: Vec<(usize, u64)> = Vec::new(); // (begin idx, end ts)
    for (i, ev) in t.events.iter().enumerate() {
        match ev.kind {
            Kind::SpanBegin => {
                begin.insert(ev.span_id, i);
            }
            Kind::SpanEnd => {
                if let Some(b) = begin.remove(&ev.span_id) {
                    spans.push((b, ev.ts));
                }
            }
            _ => {}
        }
    }
    // per-rank root spans, in time order (events are ts-sorted already)
    let mut roots: HashMap<u32, Vec<(usize, u64)>> = HashMap::new();
    for &(b, end) in &spans {
        let ev = &t.events[b];
        if ev.tag == "coll.write" || ev.tag == "coll.read" {
            roots.entry(ev.rank).or_default().push((b, end));
        }
    }
    let nops = roots.values().map(|v| v.len()).max().unwrap_or(0);
    let mut reports = Vec::with_capacity(nops);
    for k in 0..nops {
        // slowest rank bounds the op
        let mut bound: Option<(u32, usize, u64, u64)> = None; // rank, begin idx, end, dur
        for (&rank, list) in &roots {
            if let Some(&(b, end)) = list.get(k) {
                let dur = end.saturating_sub(t.events[b].ts);
                if bound.is_none() || dur > bound.unwrap().3 {
                    bound = Some((rank, b, end, dur));
                }
            }
        }
        let Some((rank, b, end, dur)) = bound else {
            continue;
        };
        let (lo, hi) = (t.events[b].ts, end);
        let mut per_phase: [Vec<(u64, u64)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for &(sb, send) in &spans {
            let ev = &t.events[sb];
            if ev.rank != rank || sb == b {
                continue;
            }
            if ev.ts >= hi || send <= lo {
                continue;
            }
            if let Some(p) = phase_of(ev.tag) {
                per_phase[p as usize].push((ev.ts, send));
            }
        }
        let exch = union_ns(per_phase[Phase::Exchange as usize].clone(), lo, hi);
        let io = union_ns(per_phase[Phase::Io as usize].clone(), lo, hi);
        let pack = union_ns(per_phase[Phase::Pack as usize].clone(), lo, hi);
        let bounding = if exch >= io && exch >= pack {
            Phase::Exchange
        } else if io >= pack {
            Phase::Io
        } else {
            Phase::Pack
        };
        CRIT_EXCH.add(exch);
        CRIT_IO.add(io);
        CRIT_PACK.add(pack);
        reports.push(OpReport {
            index: k,
            tag: t.events[b].tag,
            wall_ns: dur,
            bound_rank: rank,
            exchange_ns: exch,
            io_ns: io,
            pack_ns: pack,
            bounding,
        });
    }
    reports
}

/// Render [`critical_path`] output as a human-readable table.
pub fn render_report(reports: &[OpReport], tl: &Timeline) -> String {
    let mut out = String::new();
    out.push_str("critical path (slowest rank per collective op):\n");
    out.push_str(&format!(
        "{:>4} {:<11} {:>10} {:>5} {:>10} {:>10} {:>10}  {}\n",
        "op", "kind", "wall ms", "rank", "exch ms", "io ms", "pack ms", "bounding"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:>4} {:<11} {:>10.3} {:>5} {:>10.3} {:>10.3} {:>10.3}  {}\n",
            r.index,
            r.tag,
            r.wall_ns as f64 / 1e6,
            r.bound_rank,
            r.exchange_ns as f64 / 1e6,
            r.io_ns as f64 / 1e6,
            r.pack_ns as f64 / 1e6,
            r.bounding.name()
        ));
    }
    if reports.is_empty() {
        out.push_str("  (no collective root spans in trace)\n");
    }
    out.push_str(&format!(
        "trace health: dropped={} unmatched_sends={} unmatched_recvs={} causal_violations={}\n",
        tl.dropped, tl.unmatched_sends, tl.unmatched_recvs, tl.causal_violations
    ));
    if tl.dropped > 0 || tl.unmatched_sends > 0 || tl.unmatched_recvs > 0 {
        out.push_str(
            "  WARNING: trace is truncated or has unmatched messages — \
             phase attributions above may be incomplete\n",
        );
    }
    // Per-rank skew column from the runtime health layer: which ranks
    // closed collective windows (arrived last) and how much spread they
    // cost. Only present when LIO_HEALTH armed the heartbeats.
    if crate::health::enabled() {
        let skews = crate::health::rank_skews();
        if !skews.is_empty() {
            out.push_str("rank skew (health): windows each rank arrived last in\n");
            out.push_str(&format!(
                "{:>4} {:>12} {:>14} {:>14}\n",
                "rank", "windows last", "total skew ms", "avg skew ms"
            ));
            for s in &skews {
                out.push_str(&format!(
                    "{:>4} {:>12} {:>14.3} {:>14.3}\n",
                    s.rank,
                    s.windows_last,
                    s.skew_ns as f64 / 1e6,
                    s.skew_ns as f64 / s.windows_last as f64 / 1e6,
                ));
            }
            match crate::health::straggler() {
                Some(st) => out.push_str(&format!(
                    "  straggler: rank {} ({} consecutive windows, last skew {:.3} ms)\n",
                    st.rank,
                    st.windows,
                    st.skew_ns as f64 / 1e6
                )),
                None => out.push_str("  straggler: none flagged\n"),
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

fn format_event(ev: &Event) -> String {
    format!(
        "[{:>14.3}us] t{:<3} {:<9} {:<16} id={} parent={} a={} b={} c={}",
        ev.ts as f64 / 1000.0,
        ev.tid,
        format!("{:?}", ev.kind),
        ev.tag,
        ev.span_id,
        ev.parent,
        ev.a,
        ev.b,
        ev.c
    )
}

/// Dump the last [`FLIGHT_EVENTS`] events of every rank to stderr,
/// with the fault-seed replay line when `LIO_FAULT_SEED` is set. Called
/// at collective abort sites; a no-op when tracing is disabled, and
/// suppressed after the first two dumps per process so a fault-corpus
/// run cannot flood the log.
pub fn flight_dump(reason: &str) {
    if !enabled() {
        return;
    }
    static DUMPS: AtomicU32 = AtomicU32::new(0);
    let n = DUMPS.fetch_add(1, Relaxed);
    if n >= 2 {
        if n == 2 {
            eprintln!("lio-trace: further flight-recorder dumps suppressed");
        }
        return;
    }
    let streams = collect();
    eprintln!("=== lio-trace flight recorder: {reason} ===");
    if let Ok(seed) = std::env::var("LIO_FAULT_SEED") {
        let pipe = std::env::var("LIO_PIPELINE").unwrap_or_else(|_| "1".into());
        eprintln!(
            "replay: LIO_FAULT_SEED={seed} LIO_PIPELINE={pipe} \
             cargo test -p lio-core --test collective --test pipeline --test faults"
        );
    }
    for s in &streams {
        let shown = s.events.len().min(FLIGHT_EVENTS);
        eprintln!(
            "-- rank {}: last {shown} of {} recorded events ({} dropped)",
            s.rank,
            s.events.len(),
            s.dropped
        );
        for ev in s.events.iter().skip(s.events.len() - shown) {
            eprintln!("   {}", format_event(ev));
        }
    }
    eprintln!("=== end flight recorder ===");
}
