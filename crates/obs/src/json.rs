//! A minimal hand-rolled JSON parser/validator (the workspace is
//! dependency-free by design). Used by the `repro` binary to check that
//! emitted artifacts (`results/trace.json`, `BENCH_*.json`) are
//! well-formed, and to read the committed bench baseline for the
//! regression comparison in `ci.sh`.
//!
//! Faithful to RFC 8259 for everything the repo emits; numbers are kept
//! as `f64`, which is lossless for the magnitudes we write.

/// A parsed JSON value. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Errors carry the byte offset.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

/// Validate well-formedness without keeping the tree.
pub fn validate(s: &str) -> Result<(), String> {
    parse(s).map(|_| ())
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err(format!("unexpected end of input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?,
                                16,
                            )
                            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // surrogate pairs are not emitted by this repo;
                            // map lone surrogates to the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control char in string at byte {}", self.pos));
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input is &str, so valid)
                    let rest = &self.b[self.pos..];
                    let ch_len = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8".to_string())?
                        .chars()
                        .next()
                        .map(|c| c.len_utf8())
                        .unwrap_or(1);
                    out.push_str(std::str::from_utf8(&rest[..ch_len]).unwrap());
                    self.pos += ch_len;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shapes_we_emit() {
        let v = parse(
            r#"{"schema_version": 1, "entries": [{"bench": "p", "value": -1.5e3, "ok": true, "n": null}]}"#,
        )
        .unwrap();
        assert_eq!(v.get("schema_version").unwrap().as_f64(), Some(1.0));
        let e = &v.get("entries").unwrap().as_arr().unwrap()[0];
        assert_eq!(e.get("bench").unwrap().as_str(), Some("p"));
        assert_eq!(e.get("value").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(e.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(e.get("n"), Some(&Value::Null));
    }

    #[test]
    fn escapes_round_trip() {
        let mut s = String::new();
        crate::json_string(&mut s, "a\"b\\c\nd\te\u{1}");
        let v = parse(&s).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(validate("{").is_err());
        assert!(validate("[1,]").is_err());
        assert!(validate("{\"a\" 1}").is_err());
        assert!(validate("\"unterminated").is_err());
        assert!(validate("tru").is_err());
    }

    #[test]
    fn rejects_trailing_content() {
        assert!(validate("{} x").is_err());
        assert!(validate("1 2").is_err());
    }
}
