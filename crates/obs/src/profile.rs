//! `lio-profile`: per-open, per-op access-pattern characterization and a
//! rule-based hint advisor — the observability substrate the self-tuning
//! collective engine (ROADMAP item 4) will consume.
//!
//! The profiler aggregates, with zero allocation on the hot path and the
//! same enable discipline as [`crate::trace`] (one relaxed atomic load
//! when disabled, `LIO_PROFILE` / `lio_profile` hint to arm):
//!
//! * per-op-class request counts and bytes (independent/collective ×
//!   read/write);
//! * flattened-run size and stride-gap log2 histograms with a contiguity
//!   ratio (fed by the shared run chokepoints in `lio-core::view`, the
//!   sieving paths, and the two-phase access lists);
//! * fileview shape (size, extent, leaf runs → density and mean block);
//! * compiled run-program shape from `lio-datatype` (frame kinds, block
//!   size range, normalization status);
//! * file-domain span/coverage/overlap and per-rank access-byte skew
//!   from the two-phase engine, plus per-rank exchange-byte skew from
//!   `lio-mpi`;
//! * storage-level request-size histograms from `lio-pfs` and pipelined
//!   window counts from `lio-core::pipeline`;
//! * the existing `core.coll.critical.*`-style phase breakdown, read
//!   from the metric registry at snapshot time.
//!
//! [`snapshot`] freezes everything into a [`ProfileSnapshot`] (plain
//! data, JSON-serializable), and [`advise`] maps a snapshot to explained
//! hint recommendations through the inspectable [`RULES`] table. The
//! rules are grounded in the measured BENCH_pipeline/BENCH_pack results:
//! they recommend exactly the static configurations those benches show
//! to be fastest for the corresponding access shapes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Once, OnceLock};

use crate::{Histogram, HistogramSnapshot};

/// Fixed per-rank slots for skew accounting, mirroring `trace::MAX_RANKS`.
pub const MAX_RANKS: usize = 64;

// ---------------------------------------------------------------------------
// Enable flag (same discipline as trace)
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is profiling currently recording? One relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Turn profiling on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// Read the `LIO_PROFILE` environment variable once per process and
/// enable profiling unless it is `0`, `false`, or `off`. Absent means
/// "leave the current setting alone".
pub fn init_from_env() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        if let Ok(v) = std::env::var("LIO_PROFILE") {
            let v = v.to_ascii_lowercase();
            set_enabled(!matches!(v.as_str(), "0" | "false" | "off" | ""));
        }
    });
}

// ---------------------------------------------------------------------------
// Aggregation state
// ---------------------------------------------------------------------------

/// The four op classes a request can belong to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    IndWrite,
    IndRead,
    CollWrite,
    CollRead,
}

impl OpClass {
    const COUNT: usize = 4;

    fn index(self) -> usize {
        match self {
            OpClass::IndWrite => 0,
            OpClass::IndRead => 1,
            OpClass::CollWrite => 2,
            OpClass::CollRead => 3,
        }
    }

    /// Stable snake_case name used in JSON and reports.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::IndWrite => "ind_write",
            OpClass::IndRead => "ind_read",
            OpClass::CollWrite => "coll_write",
            OpClass::CollRead => "coll_read",
        }
    }

    fn all() -> [OpClass; Self::COUNT] {
        [
            OpClass::IndWrite,
            OpClass::IndRead,
            OpClass::CollWrite,
            OpClass::CollRead,
        ]
    }
}

#[derive(Default)]
struct PerClass {
    requests: AtomicU64,
    bytes: AtomicU64,
}

struct State {
    classes: [PerClass; OpClass::COUNT],
    // flattened-run shape (all classes; per-workload via reset())
    runs: AtomicU64,
    contig_runs: AtomicU64,
    run_sizes: Histogram,
    run_gaps: Histogram,
    // last-established fileview shape
    views_set: AtomicU64,
    view_size: AtomicU64,
    view_extent: AtomicU64,
    view_leaf_runs: AtomicU64,
    view_contiguous: AtomicU64,
    // compiled run-program shape
    programs: AtomicU64,
    programs_normalized: AtomicU64,
    programs_rewritten: AtomicU64,
    programs_born_strided: AtomicU64,
    frames: AtomicU64,
    loop_frames: AtomicU64,
    tail_frames: AtomicU64,
    min_block: AtomicU64,
    max_block: AtomicU64,
    program_blocks: Histogram,
    // file domains (recorded by rank 0 of each collective)
    domain_ops: AtomicU64,
    domain_span: AtomicU64,
    domain_covered: AtomicU64,
    domain_overlap: AtomicU64,
    rank_access_bytes: [AtomicU64; MAX_RANKS],
    // exchange skew (recorded at each send site)
    rank_exchange_bytes: [AtomicU64; MAX_RANKS],
    // storage-level request shapes
    pfs_read_sizes: Histogram,
    pfs_write_sizes: Histogram,
    // pipelined engine windows
    pipe_windows: AtomicU64,
    pipe_window_bytes: AtomicU64,
}

impl State {
    fn new() -> State {
        State {
            classes: Default::default(),
            runs: AtomicU64::new(0),
            contig_runs: AtomicU64::new(0),
            run_sizes: Histogram::new(),
            run_gaps: Histogram::new(),
            views_set: AtomicU64::new(0),
            view_size: AtomicU64::new(0),
            view_extent: AtomicU64::new(0),
            view_leaf_runs: AtomicU64::new(0),
            view_contiguous: AtomicU64::new(0),
            programs: AtomicU64::new(0),
            programs_normalized: AtomicU64::new(0),
            programs_rewritten: AtomicU64::new(0),
            programs_born_strided: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            loop_frames: AtomicU64::new(0),
            tail_frames: AtomicU64::new(0),
            min_block: AtomicU64::new(u64::MAX),
            max_block: AtomicU64::new(0),
            program_blocks: Histogram::new(),
            domain_ops: AtomicU64::new(0),
            domain_span: AtomicU64::new(0),
            domain_covered: AtomicU64::new(0),
            domain_overlap: AtomicU64::new(0),
            rank_access_bytes: std::array::from_fn(|_| AtomicU64::new(0)),
            rank_exchange_bytes: std::array::from_fn(|_| AtomicU64::new(0)),
            pfs_read_sizes: Histogram::new(),
            pfs_write_sizes: Histogram::new(),
            pipe_windows: AtomicU64::new(0),
            pipe_window_bytes: AtomicU64::new(0),
        }
    }
}

fn state() -> &'static State {
    static STATE: OnceLock<State> = OnceLock::new();
    STATE.get_or_init(State::new)
}

/// Zero all profile aggregates (the enable flag is left alone).
pub fn reset() {
    let s = state();
    for c in &s.classes {
        c.requests.store(0, Relaxed);
        c.bytes.store(0, Relaxed);
    }
    s.runs.store(0, Relaxed);
    s.contig_runs.store(0, Relaxed);
    s.run_sizes.reset();
    s.run_gaps.reset();
    s.views_set.store(0, Relaxed);
    s.view_size.store(0, Relaxed);
    s.view_extent.store(0, Relaxed);
    s.view_leaf_runs.store(0, Relaxed);
    s.view_contiguous.store(0, Relaxed);
    s.programs.store(0, Relaxed);
    s.programs_normalized.store(0, Relaxed);
    s.programs_rewritten.store(0, Relaxed);
    s.programs_born_strided.store(0, Relaxed);
    s.frames.store(0, Relaxed);
    s.loop_frames.store(0, Relaxed);
    s.tail_frames.store(0, Relaxed);
    s.min_block.store(u64::MAX, Relaxed);
    s.max_block.store(0, Relaxed);
    s.program_blocks.reset();
    s.domain_ops.store(0, Relaxed);
    s.domain_span.store(0, Relaxed);
    s.domain_covered.store(0, Relaxed);
    s.domain_overlap.store(0, Relaxed);
    for a in &s.rank_access_bytes {
        a.store(0, Relaxed);
    }
    for a in &s.rank_exchange_bytes {
        a.store(0, Relaxed);
    }
    s.pfs_read_sizes.reset();
    s.pfs_write_sizes.reset();
    s.pipe_windows.store(0, Relaxed);
    s.pipe_window_bytes.store(0, Relaxed);
}

// ---------------------------------------------------------------------------
// Recording API (every fn early-returns on one relaxed load when disabled)
// ---------------------------------------------------------------------------

/// One user-level request of `bytes` entering class `class`.
#[inline(always)]
pub fn record_op(class: OpClass, bytes: u64) {
    if !enabled() {
        return;
    }
    let c = &state().classes[class.index()];
    c.requests.fetch_add(1, Relaxed);
    c.bytes.fetch_add(bytes, Relaxed);
}

/// One flattened file run of `len` bytes, `gap` bytes after the previous
/// run's end (`contiguous` when it directly extends the previous run).
#[inline(always)]
pub fn record_run(len: u64, gap: u64, contiguous: bool) {
    if !enabled() {
        return;
    }
    let s = state();
    s.runs.fetch_add(1, Relaxed);
    if contiguous {
        s.contig_runs.fetch_add(1, Relaxed);
    } else if gap > 0 {
        s.run_gaps.record(gap);
    }
    s.run_sizes.record(len);
}

/// `count` identical runs of `block` bytes separated by `stride` bytes —
/// the regular-stride fast path that never materializes individual runs.
#[inline(always)]
pub fn record_strided(block: u64, stride: u64, count: u64) {
    if !enabled() || count == 0 {
        return;
    }
    let s = state();
    s.runs.fetch_add(count, Relaxed);
    s.run_sizes.record_n(block, count);
    if stride > block {
        s.run_gaps.record_n(stride - block, count.saturating_sub(1));
    } else {
        s.contig_runs.fetch_add(count, Relaxed);
    }
}

/// A fileview was established: filetype `size`/`extent`/`leaf_runs` and
/// whether the view is contiguous. Last writer wins (one view per open
/// in the repro workloads).
#[inline(always)]
pub fn record_view(size: u64, extent: u64, leaf_runs: u64, contiguous: bool) {
    if !enabled() {
        return;
    }
    let s = state();
    s.views_set.fetch_add(1, Relaxed);
    s.view_size.store(size, Relaxed);
    s.view_extent.store(extent, Relaxed);
    s.view_leaf_runs.store(leaf_runs, Relaxed);
    s.view_contiguous.store(contiguous as u64, Relaxed);
}

/// A datatype run-program was compiled: its frame mix, block-size range,
/// whether it reached the fully strided single-`Blocks` form
/// (`normalized`), how many rewrites the normalization pass applied to
/// get there (`rewrites` — 0 means the program was *born* strided), and
/// the block size of every `Blocks` frame (feeds the block-size
/// histogram the kernel-eligibility advisor reads).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub fn record_program(
    frames: u32,
    loops: u32,
    tails: u32,
    min_block: u64,
    max_block: u64,
    normalized: bool,
    rewrites: u32,
    block_sizes: &[u64],
) {
    if !enabled() {
        return;
    }
    let s = state();
    s.programs.fetch_add(1, Relaxed);
    if normalized {
        s.programs_normalized.fetch_add(1, Relaxed);
    }
    if rewrites > 0 {
        s.programs_rewritten.fetch_add(1, Relaxed);
    } else if normalized {
        s.programs_born_strided.fetch_add(1, Relaxed);
    }
    s.frames.fetch_add(frames as u64, Relaxed);
    s.loop_frames.fetch_add(loops as u64, Relaxed);
    s.tail_frames.fetch_add(tails as u64, Relaxed);
    if min_block != u64::MAX {
        s.min_block.fetch_min(min_block, Relaxed);
    }
    s.max_block.fetch_max(max_block, Relaxed);
    for &b in block_sizes {
        s.program_blocks.record(b);
    }
}

/// File-domain geometry of one collective op (record on one rank only):
/// overall `span` (hi − lo), `covered` union bytes, pairwise `overlap`.
#[inline(always)]
pub fn record_domains(span: u64, covered: u64, overlap: u64) {
    if !enabled() {
        return;
    }
    let s = state();
    s.domain_ops.fetch_add(1, Relaxed);
    s.domain_span.fetch_add(span, Relaxed);
    s.domain_covered.fetch_add(covered, Relaxed);
    s.domain_overlap.fetch_add(overlap, Relaxed);
}

/// `rank` accessed `bytes` within its span this collective op.
#[inline(always)]
pub fn record_rank_access(rank: u32, bytes: u64) {
    if !enabled() {
        return;
    }
    let i = rank as usize;
    if i < MAX_RANKS {
        state().rank_access_bytes[i].fetch_add(bytes, Relaxed);
    }
}

/// `rank` sent `bytes` point-to-point (exchange skew).
#[inline(always)]
pub fn record_rank_exchange(rank: u32, bytes: u64) {
    if !enabled() {
        return;
    }
    let i = rank as usize;
    if i < MAX_RANKS {
        state().rank_exchange_bytes[i].fetch_add(bytes, Relaxed);
    }
}

/// One storage-level request of `bytes` (after sieving/two-phase
/// coalescing — the access granularity the file system actually sees).
#[inline(always)]
pub fn record_pfs(write: bool, bytes: u64) {
    if !enabled() {
        return;
    }
    let s = state();
    if write {
        s.pfs_write_sizes.record(bytes);
    } else {
        s.pfs_read_sizes.record(bytes);
    }
}

/// One pipelined collective-buffer window of `bytes`.
#[inline(always)]
pub fn record_pipeline_window(bytes: u64) {
    if !enabled() {
        return;
    }
    let s = state();
    s.pipe_windows.fetch_add(1, Relaxed);
    s.pipe_window_bytes.fetch_add(bytes, Relaxed);
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Per-op-class request totals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpStats {
    pub requests: u64,
    pub bytes: u64,
}

/// Flattened-run shape over the whole profile window.
#[derive(Clone, Debug, PartialEq)]
pub struct RunStats {
    pub total: u64,
    pub contiguous: u64,
    pub sizes: HistogramSnapshot,
    pub gaps: HistogramSnapshot,
}

impl RunStats {
    /// Fraction of runs that directly extend their predecessor.
    pub fn contiguity(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.contiguous as f64 / self.total as f64
        }
    }
}

/// Shape of the last-established fileview.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ViewStats {
    pub views_set: u64,
    pub size: u64,
    pub extent: u64,
    pub leaf_runs: u64,
    pub contiguous: bool,
}

impl ViewStats {
    /// Data density within the filetype extent (1.0 = fully dense).
    pub fn density(&self) -> f64 {
        if self.extent == 0 {
            0.0
        } else {
            self.size as f64 / self.extent as f64
        }
    }

    /// Mean contiguous block size of the filetype, bytes.
    pub fn mean_block(&self) -> f64 {
        if self.leaf_runs == 0 {
            0.0
        } else {
            self.size as f64 / self.leaf_runs as f64
        }
    }
}

/// Compiled run-program shape totals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShapeStats {
    pub programs: u64,
    /// Programs that reached the fully strided single-`Blocks` form.
    pub normalized: u64,
    /// Programs the normalization pass actually rewrote (≥ 1 rewrite);
    /// `normalized` programs with no rewrites were *born* strided.
    pub rewritten: u64,
    /// Programs already canonical before the pass (strided with zero
    /// rewrites).
    pub born_strided: u64,
    pub frames: u64,
    pub loop_frames: u64,
    pub tail_frames: u64,
    /// Smallest contiguous block any program moves; 0 when none compiled.
    pub min_block: u64,
    pub max_block: u64,
    /// Block size of every compiled `Blocks` frame — what the pack
    /// kernels would operate on.
    pub block_sizes: HistogramSnapshot,
}

/// File-domain geometry and per-rank skew.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DomainStats {
    pub ops: u64,
    pub span_bytes: u64,
    pub covered_bytes: u64,
    pub overlap_bytes: u64,
    /// Access bytes per rank (trailing all-zero ranks trimmed).
    pub rank_access_bytes: Vec<u64>,
    /// Exchange bytes sent per rank (trailing all-zero ranks trimmed).
    pub rank_exchange_bytes: Vec<u64>,
}

impl DomainStats {
    /// Fraction of the overall span actually covered by data (1.0 =
    /// dense — the covered-window write optimization applies).
    pub fn coverage(&self) -> f64 {
        if self.span_bytes == 0 {
            0.0
        } else {
            self.covered_bytes as f64 / self.span_bytes as f64
        }
    }

    /// max/mean ratio over participating ranks (1.0 = perfectly
    /// balanced); 0 when nothing was recorded.
    pub fn access_skew(&self) -> f64 {
        skew(&self.rank_access_bytes)
    }

    /// max/mean exchange-byte ratio over participating ranks.
    pub fn exchange_skew(&self) -> f64 {
        skew(&self.rank_exchange_bytes)
    }
}

fn skew(per_rank: &[u64]) -> f64 {
    let active: Vec<u64> = per_rank.iter().copied().filter(|&b| b > 0).collect();
    if active.is_empty() {
        return 0.0;
    }
    let max = *active.iter().max().unwrap() as f64;
    let mean = active.iter().sum::<u64>() as f64 / active.len() as f64;
    max / mean
}

/// Storage-level request-size distributions.
#[derive(Clone, Debug, PartialEq)]
pub struct StorageStats {
    pub read_sizes: HistogramSnapshot,
    pub write_sizes: HistogramSnapshot,
}

/// Pipelined-engine window totals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PipelineStats {
    pub windows: u64,
    pub window_bytes: u64,
}

/// Critical-phase nanoseconds from the `core.coll.*` metric counters,
/// read from the registry at snapshot time (requires `lio_obs` enabled
/// during the run; zeros otherwise).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseNs {
    pub exchange_ns: u64,
    pub io_ns: u64,
    pub pack_ns: u64,
}

impl PhaseNs {
    pub fn total(&self) -> u64 {
        self.exchange_ns + self.io_ns + self.pack_ns
    }

    /// The dominant phase name and its fraction of the total.
    pub fn bounding(&self) -> (&'static str, f64) {
        let t = self.total();
        if t == 0 {
            return ("none", 0.0);
        }
        let (name, v) = [
            ("exchange", self.exchange_ns),
            ("io", self.io_ns),
            ("pack", self.pack_ns),
        ]
        .into_iter()
        .max_by_key(|&(_, v)| v)
        .unwrap();
        (name, v as f64 / t as f64)
    }
}

/// Everything the profiler knows, frozen at one point in time.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileSnapshot {
    /// Per-class totals, indexed like [`OpClass::all`]; use
    /// [`Self::op`] for lookup by class.
    pub ops: Vec<(&'static str, OpStats)>,
    pub runs: RunStats,
    pub view: ViewStats,
    pub shape: ShapeStats,
    pub domains: DomainStats,
    pub storage: StorageStats,
    pub pipeline: PipelineStats,
    pub coll_write: PhaseNs,
    pub coll_read: PhaseNs,
}

fn hist_snapshot(h: &Histogram) -> HistogramSnapshot {
    let counts = h.bucket_counts();
    let buckets = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| {
            let (lo, hi) = crate::bucket_bounds(i);
            (lo, hi, c)
        })
        .collect();
    HistogramSnapshot {
        count: h.count(),
        sum: h.sum(),
        min: h.min().unwrap_or(0),
        max: h.max(),
        buckets,
    }
}

fn trim_ranks(slots: &[AtomicU64]) -> Vec<u64> {
    let mut v: Vec<u64> = slots.iter().map(|a| a.load(Relaxed)).collect();
    while v.last() == Some(&0) {
        v.pop();
    }
    v
}

/// Freeze the profiler state into a [`ProfileSnapshot`].
pub fn snapshot() -> ProfileSnapshot {
    let s = state();
    let metrics = crate::snapshot();
    let phase = |op: &str| PhaseNs {
        exchange_ns: metrics.counter(&format!("core.coll.{op}.exchange_ns")),
        io_ns: metrics.counter(&format!("core.coll.{op}.io_ns")),
        pack_ns: metrics.counter(&format!("core.coll.{op}.pack_ns")),
    };
    let min_block = s.min_block.load(Relaxed);
    ProfileSnapshot {
        ops: OpClass::all()
            .iter()
            .map(|c| {
                let pc = &s.classes[c.index()];
                (
                    c.name(),
                    OpStats {
                        requests: pc.requests.load(Relaxed),
                        bytes: pc.bytes.load(Relaxed),
                    },
                )
            })
            .collect(),
        runs: RunStats {
            total: s.runs.load(Relaxed),
            contiguous: s.contig_runs.load(Relaxed),
            sizes: hist_snapshot(&s.run_sizes),
            gaps: hist_snapshot(&s.run_gaps),
        },
        view: ViewStats {
            views_set: s.views_set.load(Relaxed),
            size: s.view_size.load(Relaxed),
            extent: s.view_extent.load(Relaxed),
            leaf_runs: s.view_leaf_runs.load(Relaxed),
            contiguous: s.view_contiguous.load(Relaxed) != 0,
        },
        shape: ShapeStats {
            programs: s.programs.load(Relaxed),
            normalized: s.programs_normalized.load(Relaxed),
            rewritten: s.programs_rewritten.load(Relaxed),
            born_strided: s.programs_born_strided.load(Relaxed),
            frames: s.frames.load(Relaxed),
            loop_frames: s.loop_frames.load(Relaxed),
            tail_frames: s.tail_frames.load(Relaxed),
            min_block: if min_block == u64::MAX { 0 } else { min_block },
            max_block: s.max_block.load(Relaxed),
            block_sizes: hist_snapshot(&s.program_blocks),
        },
        domains: DomainStats {
            ops: s.domain_ops.load(Relaxed),
            span_bytes: s.domain_span.load(Relaxed),
            covered_bytes: s.domain_covered.load(Relaxed),
            overlap_bytes: s.domain_overlap.load(Relaxed),
            rank_access_bytes: trim_ranks(&s.rank_access_bytes),
            rank_exchange_bytes: trim_ranks(&s.rank_exchange_bytes),
        },
        storage: StorageStats {
            read_sizes: hist_snapshot(&s.pfs_read_sizes),
            write_sizes: hist_snapshot(&s.pfs_write_sizes),
        },
        pipeline: PipelineStats {
            windows: s.pipe_windows.load(Relaxed),
            window_bytes: s.pipe_window_bytes.load(Relaxed),
        },
        coll_write: phase("write"),
        coll_read: phase("read"),
    }
}

impl ProfileSnapshot {
    /// Totals for one op class.
    pub fn op(&self, class: OpClass) -> &OpStats {
        &self.ops[class.index()].1
    }

    /// Combined collective phase breakdown (write + read).
    pub fn coll_phases(&self) -> PhaseNs {
        PhaseNs {
            exchange_ns: self.coll_write.exchange_ns + self.coll_read.exchange_ns,
            io_ns: self.coll_write.io_ns + self.coll_read.io_ns,
            pack_ns: self.coll_write.pack_ns + self.coll_read.pack_ns,
        }
    }

    /// Is any collective traffic present?
    pub fn has_collective(&self) -> bool {
        self.op(OpClass::CollWrite).requests + self.op(OpClass::CollRead).requests > 0
    }

    /// Is any independent traffic present?
    pub fn has_independent(&self) -> bool {
        self.op(OpClass::IndWrite).requests + self.op(OpClass::IndRead).requests > 0
    }

    /// One-line characterization for the report table, e.g.
    /// `"write-heavy, 87% contiguous, 4096 B median run, io-bound"`.
    pub fn characterize(&self) -> String {
        let wr = self.op(OpClass::IndWrite).bytes + self.op(OpClass::CollWrite).bytes;
        let rd = self.op(OpClass::IndRead).bytes + self.op(OpClass::CollRead).bytes;
        let dir = if wr > rd * 2 {
            "write-heavy"
        } else if rd > wr * 2 {
            "read-heavy"
        } else {
            "mixed r/w"
        };
        let contig = format!("{:.0}% contiguous", self.runs.contiguity() * 100.0);
        let median = format!("{} B median run", self.runs.sizes.p50());
        let (phase, frac) = self.coll_phases().bounding();
        let bound = if phase == "none" {
            "no phase breakdown".to_string()
        } else {
            format!("{phase}-bound ({:.0}%)", frac * 100.0)
        };
        let progs = if self.shape.programs == 0 {
            String::new()
        } else {
            // distinguish programs the normalization pass rewrote into
            // strided form from those that compiled strided to begin with
            format!(
                ", {} programs ({} rewritten, {} born strided)",
                self.shape.programs, self.shape.rewritten, self.shape.born_strided
            )
        };
        format!("{dir}, {contig}, {median}, {bound}{progs}")
    }

    /// Serialize to a JSON object string. Field order is fixed and all
    /// timing-dependent values (`*_ns`) sit in the trailing `"critical"`
    /// object, so everything before it is deterministic for a
    /// deterministic workload — the determinism test keys on that.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n  \"ops\": {");
        for (i, (name, st)) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{name}\": {{\"requests\": {}, \"bytes\": {}}}",
                st.requests, st.bytes
            ));
        }
        out.push_str("},\n  \"runs\": {");
        out.push_str(&format!(
            "\"total\": {}, \"contiguous\": {}, \"contiguity\": {:.4}, \"sizes\": ",
            self.runs.total,
            self.runs.contiguous,
            self.runs.contiguity()
        ));
        write_hist(&mut out, &self.runs.sizes);
        out.push_str(", \"gaps\": ");
        write_hist(&mut out, &self.runs.gaps);
        out.push_str("},\n  \"view\": {");
        out.push_str(&format!(
            "\"views_set\": {}, \"size\": {}, \"extent\": {}, \"leaf_runs\": {}, \
             \"contiguous\": {}, \"density\": {:.4}, \"mean_block\": {:.1}",
            self.view.views_set,
            self.view.size,
            self.view.extent,
            self.view.leaf_runs,
            self.view.contiguous,
            self.view.density(),
            self.view.mean_block()
        ));
        out.push_str("},\n  \"datatype\": {");
        out.push_str(&format!(
            "\"programs\": {}, \"normalized\": {}, \"rewritten\": {}, \"born_strided\": {}, \
             \"frames\": {}, \"loop_frames\": {}, \
             \"tail_frames\": {}, \"min_block\": {}, \"max_block\": {}, \"block_sizes\": ",
            self.shape.programs,
            self.shape.normalized,
            self.shape.rewritten,
            self.shape.born_strided,
            self.shape.frames,
            self.shape.loop_frames,
            self.shape.tail_frames,
            self.shape.min_block,
            self.shape.max_block
        ));
        write_hist(&mut out, &self.shape.block_sizes);
        out.push_str("},\n  \"domains\": {");
        out.push_str(&format!(
            "\"ops\": {}, \"span_bytes\": {}, \"covered_bytes\": {}, \"overlap_bytes\": {}, \
             \"coverage\": {:.4}, \"access_skew\": {:.4}, \"exchange_skew\": {:.4}, \
             \"rank_access_bytes\": ",
            self.domains.ops,
            self.domains.span_bytes,
            self.domains.covered_bytes,
            self.domains.overlap_bytes,
            self.domains.coverage(),
            self.domains.access_skew(),
            self.domains.exchange_skew()
        ));
        write_u64_array(&mut out, &self.domains.rank_access_bytes);
        out.push_str(", \"rank_exchange_bytes\": ");
        write_u64_array(&mut out, &self.domains.rank_exchange_bytes);
        out.push_str("},\n  \"storage\": {\"read_sizes\": ");
        write_hist(&mut out, &self.storage.read_sizes);
        out.push_str(", \"write_sizes\": ");
        write_hist(&mut out, &self.storage.write_sizes);
        out.push_str("},\n  \"pipeline\": {");
        out.push_str(&format!(
            "\"windows\": {}, \"window_bytes\": {}",
            self.pipeline.windows, self.pipeline.window_bytes
        ));
        out.push_str("},\n  \"critical\": {");
        for (i, (name, p)) in [("write", self.coll_write), ("read", self.coll_read)]
            .iter()
            .enumerate()
        {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{name}\": {{\"exchange_ns\": {}, \"io_ns\": {}, \"pack_ns\": {}}}",
                p.exchange_ns, p.io_ns, p.pack_ns
            ));
        }
        out.push_str("}\n}");
        out
    }
}

fn write_hist(out: &mut String, h: &HistogramSnapshot) {
    out.push_str(&format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
         \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
        h.count,
        h.sum,
        h.min,
        h.max,
        h.p50(),
        h.p95(),
        h.p99()
    ));
    for (i, (lo, hi, c)) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("[{lo}, {hi}, {c}]"));
    }
    out.push_str("]}");
}

fn write_u64_array(out: &mut String, vals: &[u64]) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

// ---------------------------------------------------------------------------
// Advisor
// ---------------------------------------------------------------------------

/// One concrete, explained hint recommendation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Recommendation {
    /// Name of the [`Rule`] that fired.
    pub rule: &'static str,
    /// The hint assignment, info-string style, e.g. `"pipeline_depth=4"`.
    pub setting: String,
    /// Why — stated in terms of the profile evidence.
    pub reason: String,
}

/// One row of the inspectable rule table: a named predicate over a
/// profile that may yield a recommendation.
pub struct Rule {
    pub name: &'static str,
    /// What the rule looks at and what it decides.
    pub description: &'static str,
    pub apply: fn(&ProfileSnapshot) -> Option<Recommendation>,
}

/// Sieving thresholds shared with `lio_core::sieve::choose_mode`: sieve
/// pays off when density ≥ 1/2 (most of the window is wanted anyway) or
/// blocks are small enough that per-access latency dominates.
pub const SIEVE_DENSITY_THRESHOLD: f64 = 0.5;
pub const SIEVE_SMALL_BLOCK: f64 = 8192.0;

/// Pack sharding only beats a single memcpy stream once per-run copies
/// are large; below this the shard handoff overhead dominates (measured:
/// BENCH_pack `sharded2/4` lose to single-thread at ≤ 64 KiB runs).
pub const PACK_SHARD_MIN_BLOCK: u64 = 64 * 1024;

fn rule_engine(p: &ProfileSnapshot) -> Option<Recommendation> {
    if p.view.views_set == 0 || p.view.contiguous {
        return None;
    }
    Some(Recommendation {
        rule: "engine",
        setting: "engine=listless".to_string(),
        reason: format!(
            "non-contiguous view with {} leaf runs per filetype: flattening on the fly \
             avoids materializing and exchanging per-run offset/length lists, and the \
             pipelined collective benches show listless at or ahead of list-based in \
             every measured configuration",
            p.view.leaf_runs
        ),
    })
}

fn rule_pipelining(p: &ProfileSnapshot) -> Option<Recommendation> {
    if !p.has_collective() {
        return None;
    }
    let phases = p.coll_phases();
    let (bound, frac) = phases.bounding();
    if p.pipeline.windows.max(p.domains.ops) < 1 || phases.total() == 0 {
        return None;
    }
    let windows_per_op = if p.domains.ops > 0 && p.pipeline.windows > 0 {
        p.pipeline.windows / p.domains.ops
    } else {
        // not pipelined this run: estimate windows from span vs written data
        let per_op_bytes =
            (p.op(OpClass::CollWrite).bytes + p.op(OpClass::CollRead).bytes) / p.domains.ops.max(1);
        per_op_bytes / (4 << 20)
    };
    if (bound == "io" || bound == "exchange") && frac >= 0.4 {
        let depth = if bound == "exchange" { 4 } else { 2 };
        Some(Recommendation {
            rule: "pipelining",
            setting: format!("two_phase_pipeline=enable, pipeline_depth={depth}"),
            reason: format!(
                "{bound}-bound collective ({:.0}% of phase time): windowed pipelining \
                 overlaps exchange with storage; depth {depth} keeps enough windows in \
                 flight to hide the {bound} phase (measured ~40% wall-time win on the \
                 throttled pipeline bench)",
                frac * 100.0
            ),
        })
    } else {
        Some(Recommendation {
            rule: "pipelining",
            setting: "two_phase_pipeline=disable".to_string(),
            reason: format!(
                "pack-bound or balanced phases ({bound} at {:.0}%) with ~{windows_per_op} \
                 window(s) per op: pipelining has nothing to overlap and only adds \
                 credit-protocol traffic",
                frac * 100.0
            ),
        })
    }
}

/// The collective-buffer size the advisor targets for a given per-op
/// file-domain span: ~4 windows per op — enough to pipeline, small
/// enough to keep the exchange lists per window bounded — clamped to
/// [64 KiB, 16 MiB]. Shared by [`rule_cb_buffer`] in `RULES` and the
/// online tuner (`lio_core::autotune`) so the threshold lives in exactly
/// one place.
pub fn cb_target(span_per_op: u64) -> u64 {
    (span_per_op / 4)
        .max(1)
        .next_power_of_two()
        .clamp(64 * 1024, 16 * 1024 * 1024)
}

fn rule_cb_buffer(p: &ProfileSnapshot) -> Option<Recommendation> {
    if !p.has_collective() || p.domains.ops == 0 {
        return None;
    }
    let span_per_op = p.domains.span_bytes / p.domains.ops;
    if span_per_op == 0 {
        return None;
    }
    let cb = cb_target(span_per_op);
    let coverage = p.domains.coverage();
    let dense = if coverage >= 0.9 {
        " (dense coverage: the covered-window write optimization skips the read-back)"
    } else {
        ""
    };
    Some(Recommendation {
        rule: "cb_buffer_size",
        setting: format!("cb_buffer_size={cb}"),
        reason: format!(
            "collective span {span_per_op} B/op with {:.0}% coverage: {cb} B windows \
             give ~4 windows per op{dense}",
            coverage * 100.0
        ),
    })
}

fn rule_pack_threads(p: &ProfileSnapshot) -> Option<Recommendation> {
    if p.runs.total == 0 && p.shape.programs == 0 {
        return None;
    }
    // What sharding splits is the pack copy stream, so the granularity
    // that matters is the compiled run-program's block size when a
    // datatype was packed; file-placement run sizes (window-sized for
    // dense views) are only a fallback when nothing was compiled.
    let (granularity, source) = if p.shape.programs > 0 && p.shape.max_block > 0 {
        (p.shape.max_block, "program block")
    } else {
        (p.runs.sizes.p95(), "p95 run")
    };
    if granularity >= PACK_SHARD_MIN_BLOCK {
        Some(Recommendation {
            rule: "pack_threads",
            setting: "pack_threads=0".to_string(),
            reason: format!(
                "{source} size {granularity} B ≥ {PACK_SHARD_MIN_BLOCK} B: copies are \
                 large enough that sharded packing amortizes its handoff cost — let \
                 the engine auto-size the shard pool"
            ),
        })
    } else {
        Some(Recommendation {
            rule: "pack_threads",
            setting: "pack_threads=1".to_string(),
            reason: format!(
                "{source} size {granularity} B < {PACK_SHARD_MIN_BLOCK} B: the pack \
                 bench shows sharded packing slower than a single stream at these \
                 copy sizes (shard handoff dominates), so keep packing single-threaded"
            ),
        })
    }
}

/// Largest block size the fixed-block pack kernels cover
/// (`lio-datatype::kernels` classes: 2/4/8/16/32 B).
pub const KERNEL_MAX_BLOCK: u64 = 32;

fn rule_pack_kernel(p: &ProfileSnapshot) -> Option<Recommendation> {
    if p.shape.programs == 0 || p.shape.block_sizes.count == 0 {
        return None;
    }
    let p50 = p.shape.block_sizes.p50();
    let mn = p.shape.min_block;
    if p50 <= KERNEL_MAX_BLOCK {
        Some(Recommendation {
            rule: "pack_kernel",
            setting: "pack_kernel=auto".to_string(),
            reason: format!(
                "run-program block-size histogram has median {p50} B (min {mn} B): most \
                 copies fall in the 2–{KERNEL_MAX_BLOCK} B fixed-block classes where the \
                 vector kernels measure ≥ 1.3× over the scalar interpreter (BENCH_pack), \
                 so keep pack_kernel=auto and let per-frame selection engage them"
            ),
        })
    } else {
        Some(Recommendation {
            rule: "pack_kernel",
            setting: "pack_kernel=auto".to_string(),
            reason: format!(
                "run-program block-size histogram has median {p50} B, above the \
                 {KERNEL_MAX_BLOCK} B kernel classes: blocks this large already copy at \
                 memcpy speed and the fixed-block kernels will not engage (auto costs \
                 nothing and still covers any small-block frames that appear)"
            ),
        })
    }
}

fn rule_sieving(p: &ProfileSnapshot) -> Option<Recommendation> {
    if !p.has_independent() || p.view.views_set == 0 || p.view.contiguous {
        return None;
    }
    let density = p.view.density();
    let mean_block = p.view.mean_block();
    if density >= SIEVE_DENSITY_THRESHOLD || mean_block < SIEVE_SMALL_BLOCK {
        Some(Recommendation {
            rule: "sieving",
            setting: "sieving=sieve".to_string(),
            reason: format!(
                "view density {density:.2} and mean block {mean_block:.0} B: sieving \
                 turns many small accesses into one buffered window \
                 (threshold: density ≥ {SIEVE_DENSITY_THRESHOLD} or block < \
                 {SIEVE_SMALL_BLOCK} B)"
            ),
        })
    } else {
        Some(Recommendation {
            rule: "sieving",
            setting: "sieving=direct".to_string(),
            reason: format!(
                "view density {density:.2} with mean block {mean_block:.0} B: blocks \
                 are large and sparse, direct access moves less data than a \
                 read-modify-write window"
            ),
        })
    }
}

/// The inspectable rule table, in evaluation order.
pub static RULES: &[Rule] = &[
    Rule {
        name: "engine",
        description: "non-contiguous views favor listless flattening over \
                      materialized offset/length lists",
        apply: rule_engine,
    },
    Rule {
        name: "pipelining",
        description: "io/exchange-bound collectives with multiple windows \
                      gain from windowed overlap; pack-bound ones do not",
        apply: rule_pipelining,
    },
    Rule {
        name: "cb_buffer_size",
        description: "size collective-buffer windows for ~4 windows per op, \
                      clamped to [64 KiB, 16 MiB]",
        apply: rule_cb_buffer,
    },
    Rule {
        name: "pack_threads",
        description: "shard packing only when the pack-copy granularity amortizes the \
                      handoff cost; otherwise single-threaded",
        apply: rule_pack_threads,
    },
    Rule {
        name: "pack_kernel",
        description: "small-block run programs (2–32 B blocks) engage the fixed-block \
                      vector pack kernels; larger blocks copy at memcpy speed anyway",
        apply: rule_pack_kernel,
    },
    Rule {
        name: "sieving",
        description: "sieve dense or small-block independent access; go \
                      direct for sparse large blocks",
        apply: rule_sieving,
    },
];

/// Evaluate every rule against `p`, in table order.
pub fn advise(p: &ProfileSnapshot) -> Vec<Recommendation> {
    RULES.iter().filter_map(|r| (r.apply)(p)).collect()
}

/// Serialize recommendations as a JSON array.
pub fn recommendations_json(recs: &[Recommendation]) -> String {
    let mut out = String::from("[");
    for (i, r) in recs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"rule\": ");
        crate::json_string(&mut out, r.rule);
        out.push_str(", \"setting\": ");
        crate::json_string(&mut out, &r.setting);
        out.push_str(", \"reason\": ");
        crate::json_string(&mut out, &r.reason);
        out.push('}');
    }
    out.push(']');
    out
}

/// Canned, pinned [`ProfileSnapshot`]s for the repro's fig5/fig6
/// workload shapes. These are the reference inputs for advisor tests
/// *and* for the tuner cold-start regression test in `lio-core` (which
/// pins advisor output == tuner cold-start choice), so they live in the
/// public API rather than behind `cfg(test)`.
pub mod fixtures {
    use super::*;

    fn empty_hist() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: Vec::new(),
        }
    }

    fn hist_of(v: u64, n: u64) -> HistogramSnapshot {
        let (lo, hi) = crate::bucket_bounds(crate::bucket_index(v));
        HistogramSnapshot {
            count: n,
            sum: v * n,
            min: v,
            max: v,
            buckets: vec![(lo, hi, n)],
        }
    }

    /// Fig6 shape: exchange-bound pipelinable collective write through a
    /// non-contiguous interleaved view with small runs.
    pub fn fig6_collective_small_runs() -> ProfileSnapshot {
        ProfileSnapshot {
            ops: vec![
                ("ind_write", OpStats::default()),
                ("ind_read", OpStats::default()),
                (
                    "coll_write",
                    OpStats {
                        requests: 4,
                        bytes: 4 << 20,
                    },
                ),
                ("coll_read", OpStats::default()),
            ],
            runs: RunStats {
                total: 4096,
                contiguous: 512,
                sizes: hist_of(1024, 4096),
                gaps: hist_of(3072, 3584),
            },
            view: ViewStats {
                views_set: 4,
                size: 1 << 20,
                extent: 4 << 20,
                leaf_runs: 1024,
                contiguous: false,
            },
            shape: ShapeStats {
                programs: 4,
                normalized: 4,
                rewritten: 0,
                born_strided: 4,
                frames: 4,
                loop_frames: 0,
                tail_frames: 0,
                min_block: 1024,
                max_block: 1024,
                block_sizes: hist_of(1024, 4),
            },
            domains: DomainStats {
                ops: 1,
                span_bytes: 4 << 20,
                covered_bytes: 4 << 20,
                overlap_bytes: 0,
                rank_access_bytes: vec![1 << 20; 4],
                rank_exchange_bytes: vec![1 << 20; 4],
            },
            storage: StorageStats {
                read_sizes: empty_hist(),
                write_sizes: hist_of(1 << 20, 4),
            },
            pipeline: PipelineStats {
                windows: 4,
                window_bytes: 4 << 20,
            },
            coll_write: PhaseNs {
                exchange_ns: 6_000_000,
                io_ns: 3_000_000,
                pack_ns: 1_000_000,
            },
            coll_read: PhaseNs::default(),
        }
    }

    /// Fig5 shape: sparse large-block independent access where direct
    /// I/O and large-copy sharding win.
    pub fn fig5_independent_sparse_large() -> ProfileSnapshot {
        ProfileSnapshot {
            ops: vec![
                (
                    "ind_write",
                    OpStats {
                        requests: 8,
                        bytes: 64 << 20,
                    },
                ),
                ("ind_read", OpStats::default()),
                ("coll_write", OpStats::default()),
                ("coll_read", OpStats::default()),
            ],
            runs: RunStats {
                total: 64,
                contiguous: 0,
                sizes: hist_of(1 << 20, 64),
                gaps: hist_of(7 << 20, 63),
            },
            view: ViewStats {
                views_set: 1,
                size: 64 << 20,
                extent: 512 << 20,
                leaf_runs: 64,
                contiguous: false,
            },
            shape: ShapeStats {
                programs: 1,
                normalized: 1,
                rewritten: 0,
                born_strided: 1,
                frames: 1,
                loop_frames: 0,
                tail_frames: 0,
                min_block: 1 << 20,
                max_block: 1 << 20,
                block_sizes: hist_of(1 << 20, 1),
            },
            domains: DomainStats::default(),
            storage: StorageStats {
                read_sizes: empty_hist(),
                write_sizes: hist_of(1 << 20, 64),
            },
            pipeline: PipelineStats::default(),
            coll_write: PhaseNs::default(),
            coll_read: PhaseNs::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::{
        fig5_independent_sparse_large as fixture_independent_sparse_large,
        fig6_collective_small_runs as fixture_collective_small_runs,
    };
    use super::*;
    use std::sync::Mutex;

    /// Serialize tests touching the global profile state.
    fn with_profile<R>(f: impl FnOnce() -> R) -> R {
        static GATE: Mutex<()> = Mutex::new(());
        let _g = GATE.lock().unwrap();
        reset();
        set_enabled(true);
        let r = f();
        set_enabled(false);
        reset();
        r
    }

    #[test]
    fn record_and_snapshot_roundtrip() {
        with_profile(|| {
            record_op(OpClass::CollWrite, 1 << 20);
            record_op(OpClass::CollWrite, 1 << 20);
            record_run(512, 0, false);
            record_run(512, 1536, false);
            record_run(512, 0, true);
            record_strided(256, 1024, 8);
            record_view(1 << 16, 1 << 18, 128, false);
            record_program(1, 0, 0, 256, 256, true, 0, &[256]);
            record_program(2, 1, 0, 8, 8, true, 3, &[8]);
            record_domains(1 << 20, 1 << 19, 0);
            record_rank_access(0, 1000);
            record_rank_access(1, 3000);
            record_rank_exchange(0, 500);
            record_pfs(true, 4096);
            record_pipeline_window(1 << 16);

            let p = snapshot();
            assert_eq!(p.op(OpClass::CollWrite).requests, 2);
            assert_eq!(p.op(OpClass::CollWrite).bytes, 2 << 20);
            assert_eq!(p.runs.total, 3 + 8);
            // only the explicit contiguous run counts: the strided batch
            // has stride > block, so its runs all carry gaps
            assert_eq!(p.runs.contiguous, 1);
            assert_eq!(p.view.leaf_runs, 128);
            assert!((p.view.density() - 0.25).abs() < 1e-9);
            assert_eq!(p.shape.normalized, 2);
            assert_eq!(p.shape.rewritten, 1);
            assert_eq!(p.shape.born_strided, 1);
            assert_eq!(p.shape.min_block, 8);
            assert_eq!(p.shape.block_sizes.count, 2);
            assert!((p.domains.coverage() - 0.5).abs() < 1e-9);
            assert_eq!(p.domains.rank_access_bytes, vec![1000, 3000]);
            assert!((p.domains.access_skew() - 1.5).abs() < 1e-9);
            assert_eq!(p.storage.write_sizes.count, 1);
            assert_eq!(p.pipeline.windows, 1);

            let json = p.to_json();
            crate::json::validate(&json).expect("profile JSON parses");
        });
    }

    #[test]
    fn strided_contiguity_accounting() {
        with_profile(|| {
            // stride == block: one contiguous sweep
            record_strided(1024, 1024, 16);
            // stride > block: gaps
            record_strided(256, 4096, 8);
            let p = snapshot();
            assert_eq!(p.runs.total, 24);
            assert_eq!(p.runs.contiguous, 16);
            assert_eq!(p.runs.gaps.count, 7); // count-1 gaps for the strided batch
        });
    }

    #[test]
    fn disabled_records_nothing() {
        with_profile(|| {
            set_enabled(false);
            record_op(OpClass::IndWrite, 999);
            record_run(999, 0, false);
            record_view(9, 9, 9, true);
            let p = snapshot();
            assert_eq!(p.op(OpClass::IndWrite).requests, 0);
            assert_eq!(p.runs.total, 0);
            assert_eq!(p.view.views_set, 0);
        });
    }

    #[test]
    fn advisor_pinned_collective_fixture() {
        let p = fixture_collective_small_runs();
        let recs = advise(&p);
        let by_rule = |name: &str| {
            recs.iter()
                .find(|r| r.rule == name)
                .unwrap_or_else(|| panic!("rule {name} did not fire"))
        };
        // exchange-bound (60%) → pipelined, depth 4
        let pipe = by_rule("pipelining");
        assert!(pipe.setting.contains("two_phase_pipeline=enable"));
        assert!(pipe.setting.contains("pipeline_depth=4"));
        assert!(pipe.reason.contains("exchange-bound"));
        // non-contiguous view → listless
        assert_eq!(by_rule("engine").setting, "engine=listless");
        // 1 KiB runs → single-threaded packing
        assert_eq!(by_rule("pack_threads").setting, "pack_threads=1");
        // span 4 MiB/op → 1 MiB windows
        assert!(by_rule("cb_buffer_size").setting.contains("1048576"));
        // 1 KiB blocks sit above the fixed-block kernel classes
        assert!(by_rule("pack_kernel").reason.contains("will not engage"));
        // every recommendation explains itself
        assert!(recs.iter().all(|r| !r.reason.is_empty()));
    }

    #[test]
    fn advisor_pinned_independent_fixture() {
        let p = fixture_independent_sparse_large();
        let recs = advise(&p);
        let by_rule = |name: &str| recs.iter().find(|r| r.rule == name);
        // density 0.125, 1 MiB blocks → direct access
        let sieve = by_rule("sieving").expect("sieving rule fires");
        assert_eq!(sieve.setting, "sieving=direct");
        // 1 MiB runs ≥ 64 KiB → auto shard pool
        assert_eq!(by_rule("pack_threads").unwrap().setting, "pack_threads=0");
        // no collective traffic → no pipelining or cb recommendation
        assert!(by_rule("pipelining").is_none());
        assert!(by_rule("cb_buffer_size").is_none());
    }

    #[test]
    fn advisor_is_deterministic_on_fixtures() {
        for fixture in [
            fixture_collective_small_runs(),
            fixture_independent_sparse_large(),
        ] {
            let a = advise(&fixture);
            let b = advise(&fixture);
            assert_eq!(a, b, "rule table must be a pure function of the profile");
        }
    }

    #[test]
    fn rules_table_is_inspectable() {
        assert!(RULES.len() >= 5);
        for r in RULES {
            assert!(!r.name.is_empty());
            assert!(!r.description.is_empty());
        }
        let names: Vec<_> = RULES.iter().map(|r| r.name).collect();
        for want in [
            "engine",
            "pipelining",
            "cb_buffer_size",
            "pack_threads",
            "pack_kernel",
            "sieving",
        ] {
            assert!(names.contains(&want), "rule {want} missing from table");
        }
    }

    #[test]
    fn recommendations_json_is_valid() {
        let recs = advise(&fixture_collective_small_runs());
        let json = recommendations_json(&recs);
        crate::json::validate(&json).expect("recommendations JSON parses");
    }

    #[test]
    fn characterize_names_direction_and_bound() {
        let p = fixture_collective_small_runs();
        let line = p.characterize();
        assert!(line.contains("write-heavy"), "{line}");
        assert!(line.contains("exchange-bound"), "{line}");
    }
}
