//! `lio-health`: runtime liveness, hang detection, and straggler
//! attribution for the listless-io stack.
//!
//! Two-phase collective I/O is synchronization-heavy by construction:
//! one wedged or slow rank stalls the whole world, and until now the
//! obs stack could only explain an op *after* it finished. This module
//! names the failure while it is happening:
//!
//! * **Heartbeats** — every rank publishes its progress (op id, phase,
//!   window index, bytes moved, monotonic timestamp) into a per-rank
//!   slot of plain atomics. Publishing is zero-alloc and lock-free; a
//!   reader (the watchdog, `SharedFile::health_report()`, `repro top`)
//!   scans the slots with relaxed loads and never blocks a writer.
//! * **Watchdog** — a lazily-spawned thread scans the slots and flags
//!   any in-flight op whose heartbeat is older than a deadline. It
//!   picks the *culprit* (a rank stuck in a non-wait phase beats a
//!   rank merely waiting on one), prints a diagnosis with the replay
//!   line, asks the flight recorder ([`crate::trace::flight_dump`])
//!   for the recent event history, and — when abort is configured —
//!   parks a typed [`StallInfo`] for the culprit rank that `lio-core`
//!   surfaces as `IoError::Stalled` once the closing sync is reached.
//! * **Straggler attribution** — IOPs mark each per-window
//!   contribution arrival; the spread between first and last arrival
//!   is recorded into the `core.health.skew_ns` histogram and the
//!   last-arriving rank feeds a persistence streak. A rank that
//!   arrives last [`STRAGGLER_K`] windows in a row with non-trivial
//!   skew is flagged as a straggler, which the autotuner consumes as
//!   an under-performing-rank signal.
//! * **Live introspection** — [`live_snapshot`] and [`report`] render
//!   the slots as structs / text / schema-versioned JSON, and the
//!   watchdog can periodically emit the JSON to `LIO_HEALTH_STATUS`
//!   for an external admission/fairness loop.
//!
//! Enablement follows the obs convention: `LIO_HEALTH` env (see
//! [`init_from_env`]), `Hints::health` / the `lio_health` info key in
//! `lio-core`, or [`set_enabled`]. Disabled cost is one relaxed atomic
//! load and a branch per heartbeat site (gated by the `health_overhead`
//! bench in `lio-bench`).
//!
//! Hang injection for tests goes through [`set_stall_plan`]: a seeded
//! `Stall` fault (see `lio-testkit`) wedges a chosen rank inside its
//! heartbeat in a chosen phase until the hold elapses *or* the watchdog
//! flags it — after release the rank completes the collective protocol
//! normally, so no peer is ever stranded before the closing sync.

use crate::{LazyCounter, LazyHistogram};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, Once, OnceLock};
use std::time::{Duration, Instant};

/// Maximum ranks with health slots (matches `trace::MAX_RANKS`).
pub const MAX_RANKS: usize = 64;

/// Rank value meaning "this thread has no health identity".
pub const NO_RANK: u32 = u32::MAX;

/// Consecutive last-arrival windows before a rank is flagged a straggler.
pub const STRAGGLER_K: u32 = 4;

/// Minimum first-to-last arrival spread for a window to count toward a
/// straggler streak — spreads below this are scheduler noise.
pub const STRAGGLER_MIN_SKEW_NS: u64 = 20_000;

// ---------------------------------------------------------------------------
// Enablement
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is the health layer recording heartbeats? One relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Turn the health layer on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// Read `LIO_HEALTH` once per process and enable the layer unless the
/// value is `0`, `false`, or `off`. Absent leaves the current setting
/// alone. Also reads the watchdog knobs: `LIO_HEALTH_DEADLINE_MS`
/// (no-progress deadline, default 5000), `LIO_HEALTH_ABORT`
/// (`1`/`on`/`true` parks a typed stall for the culprit rank instead of
/// diagnosing only), and `LIO_HEALTH_STATUS` (a path that receives a
/// periodic schema-versioned JSON status report).
pub fn init_from_env() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        if let Ok(v) = std::env::var("LIO_HEALTH") {
            let v = v.to_ascii_lowercase();
            set_enabled(!matches!(v.as_str(), "0" | "false" | "off" | ""));
        }
        if let Ok(v) = std::env::var("LIO_HEALTH_DEADLINE_MS") {
            if let Ok(ms) = v.trim().parse::<u64>() {
                set_watchdog(ms.max(1), abort_configured());
            }
        }
        if let Ok(v) = std::env::var("LIO_HEALTH_ABORT") {
            let on = matches!(
                v.to_ascii_lowercase().as_str(),
                "1" | "on" | "true" | "enable"
            );
            WD_ABORT.store(on, Relaxed);
        }
    });
}

// ---------------------------------------------------------------------------
// Monotonic clock (own epoch: the trace clock is feature-gated away in
// `trace_off` builds, health is always present)
// ---------------------------------------------------------------------------

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-local health epoch.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------------

/// The phase a rank last made progress in. `ExchangeWait` and `Barrier`
/// are *wait* phases: a rank parked there is a victim of someone else's
/// stall, not the culprit — the watchdog uses this to attribute hangs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum HbPhase {
    /// No collective in flight.
    Idle = 0,
    /// Building the access plan / flattening the view.
    Plan = 1,
    /// Actively sending or receiving exchange data.
    Exchange = 2,
    /// Blocked waiting for exchange messages to arrive.
    ExchangeWait = 3,
    /// Storage access (read/write/flush), including squeue service.
    Io = 4,
    /// Datatype pack/unpack.
    Pack = 5,
    /// Closing synchronization.
    Barrier = 6,
}

impl HbPhase {
    /// Stable lower-case name, used in diagnoses and JSON.
    pub fn name(self) -> &'static str {
        match self {
            HbPhase::Idle => "idle",
            HbPhase::Plan => "plan",
            HbPhase::Exchange => "exchange",
            HbPhase::ExchangeWait => "exchange.wait",
            HbPhase::Io => "io",
            HbPhase::Pack => "pack",
            HbPhase::Barrier => "barrier",
        }
    }

    /// Is a rank parked in this phase waiting on *other* ranks?
    pub fn is_wait(self) -> bool {
        matches!(self, HbPhase::ExchangeWait | HbPhase::Barrier)
    }

    fn from_u32(v: u32) -> HbPhase {
        match v {
            1 => HbPhase::Plan,
            2 => HbPhase::Exchange,
            3 => HbPhase::ExchangeWait,
            4 => HbPhase::Io,
            5 => HbPhase::Pack,
            6 => HbPhase::Barrier,
            _ => HbPhase::Idle,
        }
    }
}

// ---------------------------------------------------------------------------
// Heartbeat slots: one cache-line-ish struct of atomics per rank,
// single-writer (the rank), many lock-free readers
// ---------------------------------------------------------------------------

struct Slot {
    /// In-flight collective op id; 0 = idle.
    op: AtomicU64,
    /// 1 when the in-flight op is a write.
    write: AtomicU32,
    /// Last progress phase (`HbPhase` as u32).
    phase: AtomicU32,
    /// Last window index the rank contributed to / placed.
    window: AtomicU64,
    /// Bytes moved so far in this op.
    bytes: AtomicU64,
    /// Heartbeats published in this op.
    beats: AtomicU64,
    /// `now_ns()` of the last heartbeat.
    ts: AtomicU64,
    /// Last published submission-queue depth observed by this rank.
    qdepth: AtomicU64,
    /// Op id the watchdog already flagged (dedup: one diagnosis per op).
    flagged: AtomicU64,
}

impl Slot {
    const fn new() -> Slot {
        Slot {
            op: AtomicU64::new(0),
            write: AtomicU32::new(0),
            phase: AtomicU32::new(0),
            window: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            beats: AtomicU64::new(0),
            ts: AtomicU64::new(0),
            qdepth: AtomicU64::new(0),
            flagged: AtomicU64::new(0),
        }
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const SLOT_INIT: Slot = Slot::new();
static SLOTS: [Slot; MAX_RANKS] = [SLOT_INIT; MAX_RANKS];

// ---------------------------------------------------------------------------
// Thread identity (health keeps its own: trace's is feature-gated)
// ---------------------------------------------------------------------------

thread_local! {
    static RANK: Cell<u32> = const { Cell::new(NO_RANK) };
}

/// Bind the calling thread to `rank` for heartbeat publication.
/// `World::run` calls this for every rank thread.
pub fn set_thread_rank(rank: u32) {
    RANK.with(|r| r.set(rank));
}

/// The rank bound to the calling thread, or [`NO_RANK`].
#[inline]
pub fn current_rank() -> u32 {
    RANK.with(|r| r.get())
}

/// A capturable copy of the calling thread's health identity, for
/// worker threads (squeue pool, pipeline lanes) that service a rank's
/// I/O: capture on the submitting thread, [`adopt`] on the worker.
#[derive(Clone, Copy, Debug)]
pub struct Handle(u32);

/// Capture the calling thread's health identity.
pub fn thread_handle() -> Handle {
    Handle(current_rank())
}

/// Adopt a captured identity on the calling thread.
pub fn adopt(h: Handle) {
    RANK.with(|r| r.set(h.0));
}

// ---------------------------------------------------------------------------
// Instruments (aggregate surface; the raw atomics below stay readable
// even when the main obs registry is disabled)
// ---------------------------------------------------------------------------

static OBS_BEATS: LazyCounter = LazyCounter::new("core.health.beats");
static OBS_WD_FIRED: LazyCounter = LazyCounter::new("core.health.watchdog.fired");
static OBS_STALL_ABORTS: LazyCounter = LazyCounter::new("core.health.stalls.aborted");
static OBS_STRAGGLER_FLAGS: LazyCounter = LazyCounter::new("core.health.straggler.flags");
static OBS_SKEW: LazyHistogram = LazyHistogram::new("core.health.skew_ns");

static WD_CHECKS_RAW: AtomicU64 = AtomicU64::new(0);
static WD_FIRED_RAW: AtomicU64 = AtomicU64::new(0);
static STALL_ABORTS_RAW: AtomicU64 = AtomicU64::new(0);
static STRAGGLER_FLAGS_RAW: AtomicU64 = AtomicU64::new(0);

// ---------------------------------------------------------------------------
// Heartbeat publication
// ---------------------------------------------------------------------------

/// Mark the calling rank as entering collective op `op` (non-zero;
/// `lio-core` threads a per-file sequence number through so ids align
/// across ranks). Resets the per-op progress fields.
pub fn op_begin(op: u64, write: bool) {
    if !enabled() {
        return;
    }
    let rank = current_rank();
    if rank as usize >= MAX_RANKS {
        return;
    }
    let s = &SLOTS[rank as usize];
    s.write.store(write as u32, Relaxed);
    s.phase.store(HbPhase::Plan as u32, Relaxed);
    s.window.store(0, Relaxed);
    s.bytes.store(0, Relaxed);
    s.beats.store(1, Relaxed);
    s.ts.store(now_ns(), Relaxed);
    s.op.store(op, Relaxed);
}

/// Mark the calling rank's collective op as finished (the closing sync
/// was reached). Flushes any pending skew window.
pub fn op_end() {
    if !enabled() {
        return;
    }
    window_flush();
    let rank = current_rank();
    if rank as usize >= MAX_RANKS {
        return;
    }
    let s = &SLOTS[rank as usize];
    s.op.store(0, Relaxed);
    s.phase.store(HbPhase::Idle as u32, Relaxed);
    s.ts.store(now_ns(), Relaxed);
}

/// Publish a heartbeat: the calling rank made progress in `phase`.
#[inline(always)]
pub fn beat(phase: HbPhase) {
    if enabled() {
        beat_slow(phase, None, 0);
    }
}

/// Heartbeat plus bytes moved (storage service, exchange payloads).
#[inline(always)]
pub fn beat_bytes(phase: HbPhase, bytes: u64) {
    if enabled() {
        beat_slow(phase, None, bytes);
    }
}

/// Heartbeat plus the window index the rank just advanced to.
#[inline(always)]
pub fn beat_window(phase: HbPhase, window: u64) {
    if enabled() {
        beat_slow(phase, Some(window), 0);
    }
}

#[inline(never)]
fn beat_slow(phase: HbPhase, window: Option<u64>, bytes: u64) {
    let rank = current_rank();
    if rank as usize >= MAX_RANKS {
        return;
    }
    let s = &SLOTS[rank as usize];
    s.phase.store(phase as u32, Relaxed);
    if let Some(w) = window {
        s.window.store(w, Relaxed);
    }
    if bytes > 0 {
        s.bytes.fetch_add(bytes, Relaxed);
    }
    s.beats.fetch_add(1, Relaxed);
    s.ts.store(now_ns(), Relaxed);
    OBS_BEATS.incr();
    if STALL_ARMED.load(Relaxed) {
        maybe_wedge(rank, phase, s);
    }
}

/// Publish the submission-queue depth observed by the calling rank.
#[inline(always)]
pub fn queue_depth(depth: u64) {
    if !enabled() {
        return;
    }
    let rank = current_rank();
    if rank as usize >= MAX_RANKS {
        return;
    }
    SLOTS[rank as usize].qdepth.store(depth, Relaxed);
}

// ---------------------------------------------------------------------------
// Seeded stall injection (the testkit `Stall` fault kind lands here)
// ---------------------------------------------------------------------------

/// A deterministic hang: `rank` wedges inside its next heartbeat in
/// `phase` and stays wedged for `hold` — or until the watchdog flags
/// it, whichever comes first. After release the rank resumes the
/// protocol normally, so peers always reach the closing sync.
#[derive(Clone, Copy, Debug)]
pub struct StallSpec {
    pub rank: u32,
    pub phase: HbPhase,
    pub hold: Duration,
}

struct StallState {
    spec: StallSpec,
    fired: bool,
}

static STALL_ARMED: AtomicBool = AtomicBool::new(false);
static STALL: Mutex<Option<StallState>> = Mutex::new(None);

/// Arm (or clear) the one-shot stall plan. Each armed plan fires at
/// most once.
pub fn set_stall_plan(spec: Option<StallSpec>) {
    let mut st = STALL.lock().unwrap();
    STALL_ARMED.store(spec.is_some(), Relaxed);
    *st = spec.map(|spec| StallState { spec, fired: false });
}

fn maybe_wedge(rank: u32, phase: HbPhase, slot: &Slot) {
    let hold = {
        let mut st = STALL.lock().unwrap();
        match st.as_mut() {
            Some(state) if !state.fired && state.spec.rank == rank && state.spec.phase == phase => {
                state.fired = true;
                STALL_ARMED.store(false, Relaxed);
                state.spec.hold
            }
            _ => return,
        }
    };
    let op = slot.op.load(Relaxed);
    let released_at = Instant::now() + hold;
    // Wedge: no heartbeats, no progress. Release on hold expiry or on
    // the watchdog flagging this op (so aborts never wait out the hold).
    while Instant::now() < released_at {
        if op != 0 && slot.flagged.load(Relaxed) == op {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

static WD_DEADLINE_MS: AtomicU64 = AtomicU64::new(5000);
static WD_ABORT: AtomicBool = AtomicBool::new(false);
static WD_DIAGNOSES: AtomicU32 = AtomicU32::new(0);

fn abort_configured() -> bool {
    WD_ABORT.load(Relaxed)
}

/// Configure the watchdog: `deadline_ms` of no progress flags an op;
/// `abort` parks a [`StallInfo`] for the culprit rank (surfaced by
/// `lio-core` as `IoError::Stalled`) instead of diagnosing only.
/// Programmatic twin of `LIO_HEALTH_DEADLINE_MS` / `LIO_HEALTH_ABORT`
/// — tests use this because process env is racy under the parallel
/// test runner.
pub fn set_watchdog(deadline_ms: u64, abort: bool) {
    WD_DEADLINE_MS.store(deadline_ms.max(1), Relaxed);
    WD_ABORT.store(abort, Relaxed);
}

/// Spawn the watchdog thread if it is not already running. Called by
/// `File::open` when the health layer is armed; repeated calls are
/// free. The thread idles (cheaply) while the layer is disabled.
pub fn ensure_watchdog() {
    static STARTED: Once = Once::new();
    STARTED.call_once(|| {
        std::thread::Builder::new()
            .name("lio-health-watchdog".into())
            .spawn(watchdog_loop)
            .expect("spawn health watchdog");
    });
}

fn status_path() -> Option<&'static str> {
    static PATH: OnceLock<Option<String>> = OnceLock::new();
    PATH.get_or_init(|| {
        std::env::var("LIO_HEALTH_STATUS")
            .ok()
            .filter(|p| !p.is_empty())
    })
    .as_deref()
}

fn watchdog_loop() {
    loop {
        let deadline_ms = WD_DEADLINE_MS.load(Relaxed);
        // Poll a few times per deadline so detection latency stays a
        // fraction of the deadline itself.
        let poll = Duration::from_millis((deadline_ms / 4).clamp(5, 1000));
        std::thread::sleep(poll);
        if !enabled() {
            continue;
        }
        WD_CHECKS_RAW.fetch_add(1, Relaxed);
        check_once(deadline_ms);
        if let Some(path) = status_path() {
            let _ = std::fs::write(path, report().to_json());
        }
    }
}

/// One watchdog scan: flag the culprit among overdue ranks, if any.
/// Factored out of the loop so tests can drive it synchronously.
fn check_once(deadline_ms: u64) {
    let now = now_ns();
    let deadline_ns = deadline_ms.saturating_mul(1_000_000);
    // Collect overdue in-flight ops not yet flagged.
    let mut culprit: Option<(usize, u64, HbPhase, u64)> = None; // (rank, age, phase, op)
    for (rank, s) in SLOTS.iter().enumerate() {
        let op = s.op.load(Relaxed);
        if op == 0 || s.flagged.load(Relaxed) == op {
            continue;
        }
        let age = now.saturating_sub(s.ts.load(Relaxed));
        if age < deadline_ns {
            continue;
        }
        let phase = HbPhase::from_u32(s.phase.load(Relaxed));
        // A rank stuck in a non-wait phase outranks any waiter (the
        // waiters are its victims); among equals the oldest beat wins.
        let better = match culprit {
            None => true,
            Some((_, best_age, best_phase, _)) => {
                (!phase.is_wait() && best_phase.is_wait())
                    || (phase.is_wait() == best_phase.is_wait() && age > best_age)
            }
        };
        if better {
            culprit = Some((rank, age, phase, op));
        }
    }
    let Some((rank, age, phase, op)) = culprit else {
        return;
    };
    let s = &SLOTS[rank];
    let info = StallInfo {
        rank: rank as u32,
        phase: phase.name(),
        op,
        window: s.window.load(Relaxed),
        bytes: s.bytes.load(Relaxed),
        stalled_ms: age / 1_000_000,
    };
    s.flagged.store(op, Relaxed);
    WD_FIRED_RAW.fetch_add(1, Relaxed);
    OBS_WD_FIRED.incr();
    let abort = abort_configured();
    // Diagnose loudly the first couple of times, then stay quiet (the
    // same suppression discipline as the trace flight recorder).
    let n = WD_DIAGNOSES.fetch_add(1, Relaxed);
    if n < 2 {
        eprintln!(
            "lio-health watchdog: rank {} made no progress for {} ms — stuck in {} \
             (op {}, window {}, {} bytes moved); {}",
            info.rank,
            info.stalled_ms,
            info.phase,
            info.op,
            info.window,
            info.bytes,
            if abort {
                "aborting op with IoError::Stalled"
            } else {
                "diagnosing only (set LIO_HEALTH_ABORT=1 to abort)"
            }
        );
        eprintln!(
            "  replay: LIO_HEALTH=1 LIO_HEALTH_DEADLINE_MS={} cargo test -q -p lio-core --test health",
            deadline_ms
        );
        crate::trace::flight_dump(&format!(
            "health watchdog: rank {} stalled in {}",
            info.rank, info.phase
        ));
    }
    if abort {
        STALL_ABORTS_RAW.fetch_add(1, Relaxed);
        OBS_STALL_ABORTS.incr();
        *PENDING[rank].lock().unwrap() = Some(info);
    }
}

// ---------------------------------------------------------------------------
// Stall surfacing
// ---------------------------------------------------------------------------

/// What the watchdog knows about a flagged stall; carried by
/// `IoError::Stalled`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StallInfo {
    /// The culprit rank.
    pub rank: u32,
    /// Phase name the rank was stuck in (see [`HbPhase::name`]).
    pub phase: &'static str,
    /// Collective op id.
    pub op: u64,
    /// Last window index the rank reached.
    pub window: u64,
    /// Bytes it had moved before stalling.
    pub bytes: u64,
    /// How long it had made no progress when flagged.
    pub stalled_ms: u64,
}

impl std::fmt::Display for StallInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} stuck in {} (op {}, window {}, {} bytes moved, {} ms without progress)",
            self.rank, self.phase, self.op, self.window, self.bytes, self.stalled_ms
        )
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const PENDING_INIT: Mutex<Option<StallInfo>> = Mutex::new(None);
static PENDING: [Mutex<Option<StallInfo>>; MAX_RANKS] = [PENDING_INIT; MAX_RANKS];

/// Take the parked stall for `rank`, if the watchdog aborted its op.
/// `lio-core` calls this after the engine returns (i.e. after the
/// closing sync — no peer is stranded) and converts it to
/// `IoError::Stalled`.
pub fn take_stall(rank: u32) -> Option<StallInfo> {
    if rank as usize >= MAX_RANKS {
        return None;
    }
    PENDING[rank as usize].lock().unwrap().take()
}

// ---------------------------------------------------------------------------
// Per-window rank-skew tracking and straggler attribution
// ---------------------------------------------------------------------------

/// Thread-local accumulator for the window the calling IOP is
/// currently collecting. Plain `Copy` state in a `Cell`: zero alloc,
/// zero contention.
#[derive(Clone, Copy, Default)]
struct WindowAcc {
    window: u64,
    t_first: u64,
    t_last: u64,
    last_rank: u32,
    count: u32,
}

thread_local! {
    static ACC: Cell<Option<WindowAcc>> = const { Cell::new(None) };
}

static SLOW_RANK: AtomicU32 = AtomicU32::new(NO_RANK);
static SLOW_STREAK: AtomicU32 = AtomicU32::new(0);
static SLOW_SKEW_NS: AtomicU64 = AtomicU64::new(0);

// Per-rank last-arrival attribution: how many finished windows each rank
// closed and the total spread charged to it. Feeds the per-rank skew
// column of the critical-path report.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_U64: AtomicU64 = AtomicU64::new(0);
static LAST_COUNT: [AtomicU64; MAX_RANKS] = [ZERO_U64; MAX_RANKS];
static LAST_SKEW_SUM_NS: [AtomicU64; MAX_RANKS] = [ZERO_U64; MAX_RANKS];

/// An IOP received a per-window contribution from `src_rank` for
/// `window`. On window rollover the previous window's first-to-last
/// arrival spread is recorded (`core.health.skew_ns`) and attributed
/// to the last-arriving rank.
#[inline(always)]
pub fn window_mark(window: u64, src_rank: u32) {
    if !enabled() {
        return;
    }
    window_mark_slow(window, src_rank);
}

#[inline(never)]
fn window_mark_slow(window: u64, src_rank: u32) {
    let now = now_ns();
    ACC.with(|cell| {
        let acc = match cell.get() {
            Some(mut acc) if acc.window == window => {
                acc.t_last = now;
                acc.last_rank = src_rank;
                acc.count += 1;
                acc
            }
            prev => {
                if let Some(done) = prev {
                    finish_window(done);
                }
                WindowAcc {
                    window,
                    t_first: now,
                    t_last: now,
                    last_rank: src_rank,
                    count: 1,
                }
            }
        };
        cell.set(Some(acc));
    });
}

/// Flush the calling thread's in-progress skew window (end of the IOP
/// loop / end of op).
pub fn window_flush() {
    ACC.with(|cell| {
        if let Some(acc) = cell.take() {
            finish_window(acc);
        }
    });
}

fn finish_window(acc: WindowAcc) {
    if acc.count < 2 {
        return;
    }
    let skew = acc.t_last.saturating_sub(acc.t_first);
    OBS_SKEW.record(skew);
    SLOW_SKEW_NS.store(skew, Relaxed);
    if (acc.last_rank as usize) < MAX_RANKS {
        LAST_COUNT[acc.last_rank as usize].fetch_add(1, Relaxed);
        LAST_SKEW_SUM_NS[acc.last_rank as usize].fetch_add(skew, Relaxed);
    }
    if skew < STRAGGLER_MIN_SKEW_NS {
        // A tight window breaks any streak: the last arrival was noise.
        SLOW_STREAK.store(0, Relaxed);
        return;
    }
    if SLOW_RANK.swap(acc.last_rank, Relaxed) == acc.last_rank {
        let streak = SLOW_STREAK.fetch_add(1, Relaxed) + 1;
        if streak == STRAGGLER_K {
            STRAGGLER_FLAGS_RAW.fetch_add(1, Relaxed);
            OBS_STRAGGLER_FLAGS.incr();
        }
    } else {
        SLOW_STREAK.store(1, Relaxed);
    }
}

/// A rank persistently arriving last with non-trivial skew.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StragglerInfo {
    /// The under-performing rank.
    pub rank: u32,
    /// Consecutive windows it arrived last.
    pub windows: u32,
    /// The most recent window's first-to-last arrival spread.
    pub skew_ns: u64,
}

/// The current straggler, if any rank has arrived last for
/// [`STRAGGLER_K`] consecutive windows with skew above
/// [`STRAGGLER_MIN_SKEW_NS`]. Consumed by the autotuner as an
/// under-performing-rank signal.
pub fn straggler() -> Option<StragglerInfo> {
    let streak = SLOW_STREAK.load(Relaxed);
    if streak < STRAGGLER_K {
        return None;
    }
    let rank = SLOW_RANK.load(Relaxed);
    (rank != NO_RANK).then_some(StragglerInfo {
        rank,
        windows: streak,
        skew_ns: SLOW_SKEW_NS.load(Relaxed),
    })
}

/// One rank's cumulative last-arrival attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankSkew {
    pub rank: u32,
    /// Finished windows this rank closed (arrived last in).
    pub windows_last: u64,
    /// Total first-to-last spread across those windows.
    pub skew_ns: u64,
}

/// Per-rank last-arrival totals for every rank charged with at least one
/// finished window. Rendered as the per-rank skew column of the
/// critical-path report.
pub fn rank_skews() -> Vec<RankSkew> {
    (0..MAX_RANKS)
        .filter_map(|r| {
            let windows_last = LAST_COUNT[r].load(Relaxed);
            (windows_last > 0).then(|| RankSkew {
                rank: r as u32,
                windows_last,
                skew_ns: LAST_SKEW_SUM_NS[r].load(Relaxed),
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Workload-shift detection (consumed by the autotuner: a settled file
// un-settles when the dominant phase durably changes)
// ---------------------------------------------------------------------------

/// Detects a sustained shift in an op stream's phase distribution.
/// Deterministic and allocation-free: feed each op's phase breakdown
/// to [`ShiftDetector::observe`]; it returns `true` once the dominant
/// phase has differed from the established baseline for
/// [`ShiftDetector::PERSISTENCE`] consecutive ops (then re-baselines,
/// so one shift reports once).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShiftDetector {
    baseline: Option<u8>,
    candidate: u8,
    run: u32,
}

impl ShiftDetector {
    /// Consecutive differing-dominant ops before a shift is reported.
    pub const PERSISTENCE: u32 = 3;

    pub fn new() -> ShiftDetector {
        ShiftDetector::default()
    }

    fn dominant(exchange_ns: u64, io_ns: u64, pack_ns: u64) -> u8 {
        if io_ns >= exchange_ns && io_ns >= pack_ns {
            1
        } else if exchange_ns >= pack_ns {
            0
        } else {
            2
        }
    }

    /// Feed one op's phase breakdown; `true` means a sustained shift
    /// was just detected (and the detector re-baselined to the new
    /// distribution).
    pub fn observe(&mut self, exchange_ns: u64, io_ns: u64, pack_ns: u64) -> bool {
        let dom = Self::dominant(exchange_ns, io_ns, pack_ns);
        let Some(base) = self.baseline else {
            self.baseline = Some(dom);
            self.run = 0;
            return false;
        };
        if dom == base {
            self.run = 0;
            return false;
        }
        if dom == self.candidate {
            self.run += 1;
        } else {
            self.candidate = dom;
            self.run = 1;
        }
        if self.run >= Self::PERSISTENCE {
            self.baseline = Some(dom);
            self.run = 0;
            return true;
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Introspection: snapshots, reports, JSON
// ---------------------------------------------------------------------------

/// Point-in-time copy of one rank's heartbeat slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankHealth {
    pub rank: u32,
    /// In-flight op id; 0 = idle.
    pub op: u64,
    /// Is the in-flight op a write?
    pub write: bool,
    /// Last progress phase name.
    pub phase: &'static str,
    pub window: u64,
    pub bytes: u64,
    pub beats: u64,
    pub queue_depth: u64,
    /// Milliseconds since the last heartbeat.
    pub age_ms: u64,
}

/// Scan the heartbeat slots. Ranks that never published are skipped.
pub fn live_snapshot() -> Vec<RankHealth> {
    let now = now_ns();
    SLOTS
        .iter()
        .enumerate()
        .filter(|(_, s)| s.beats.load(Relaxed) > 0 || s.op.load(Relaxed) != 0)
        .map(|(rank, s)| RankHealth {
            rank: rank as u32,
            op: s.op.load(Relaxed),
            write: s.write.load(Relaxed) != 0,
            phase: HbPhase::from_u32(s.phase.load(Relaxed)).name(),
            window: s.window.load(Relaxed),
            bytes: s.bytes.load(Relaxed),
            beats: s.beats.load(Relaxed),
            queue_depth: s.qdepth.load(Relaxed),
            age_ms: now.saturating_sub(s.ts.load(Relaxed)) / 1_000_000,
        })
        .collect()
}

/// Schema version of [`HealthReport::to_json`] output.
pub const REPORT_SCHEMA: &str = "lio-health-v1";

/// A schema-versioned health status report: the live slots plus the
/// watchdog and straggler aggregates.
#[derive(Clone, Debug, Default)]
pub struct HealthReport {
    pub ranks: Vec<RankHealth>,
    pub watchdog_checks: u64,
    pub watchdog_fired: u64,
    pub stalls_aborted: u64,
    pub straggler_flags: u64,
    pub straggler: Option<StragglerInfo>,
}

/// Build a [`HealthReport`] from the current slots and aggregates.
pub fn report() -> HealthReport {
    HealthReport {
        ranks: live_snapshot(),
        watchdog_checks: WD_CHECKS_RAW.load(Relaxed),
        watchdog_fired: WD_FIRED_RAW.load(Relaxed),
        stalls_aborted: STALL_ABORTS_RAW.load(Relaxed),
        straggler_flags: STRAGGLER_FLAGS_RAW.load(Relaxed),
        straggler: straggler(),
    }
}

impl HealthReport {
    /// Serialize to a schema-versioned JSON object (hand-rolled, like
    /// the rest of lio-obs; parseable by [`crate::json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n  \"schema\": \"");
        out.push_str(REPORT_SCHEMA);
        out.push_str("\",\n  \"watchdog\": {\"checks\": ");
        out.push_str(&self.watchdog_checks.to_string());
        out.push_str(", \"fired\": ");
        out.push_str(&self.watchdog_fired.to_string());
        out.push_str(", \"stalls_aborted\": ");
        out.push_str(&self.stalls_aborted.to_string());
        out.push_str("},\n  \"straggler\": ");
        match &self.straggler {
            Some(s) => out.push_str(&format!(
                "{{\"rank\": {}, \"windows\": {}, \"skew_ns\": {}}}",
                s.rank, s.windows, s.skew_ns
            )),
            None => out.push_str("null"),
        }
        out.push_str(",\n  \"straggler_flags\": ");
        out.push_str(&self.straggler_flags.to_string());
        out.push_str(",\n  \"ranks\": [");
        for (i, r) in self.ranks.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"rank\": {}, \"op\": {}, \"write\": {}, \"phase\": \"{}\", \
                 \"window\": {}, \"bytes\": {}, \"beats\": {}, \"queue_depth\": {}, \
                 \"age_ms\": {}}}",
                r.rank, r.op, r.write, r.phase, r.window, r.bytes, r.beats, r.queue_depth, r.age_ms
            ));
        }
        if !self.ranks.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Render as a fixed-width text table (`repro top`,
    /// `SharedFile::health_report`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>4}  {:>4}  {:<2}  {:<13}  {:>7}  {:>12}  {:>8}  {:>6}  {:>7}\n",
            "rank", "op", "rw", "phase", "window", "bytes", "beats", "qdep", "age_ms"
        ));
        for r in &self.ranks {
            out.push_str(&format!(
                "{:>4}  {:>4}  {:<2}  {:<13}  {:>7}  {:>12}  {:>8}  {:>6}  {:>7}\n",
                r.rank,
                r.op,
                if r.op == 0 {
                    "-"
                } else if r.write {
                    "w"
                } else {
                    "r"
                },
                r.phase,
                r.window,
                r.bytes,
                r.beats,
                r.queue_depth,
                r.age_ms
            ));
        }
        out.push_str(&format!(
            "watchdog: {} checks, {} fired, {} aborted",
            self.watchdog_checks, self.watchdog_fired, self.stalls_aborted
        ));
        match &self.straggler {
            Some(s) => out.push_str(&format!(
                "; straggler: rank {} ({} windows, last skew {} ns)\n",
                s.rank, s.windows, s.skew_ns
            )),
            None => out.push_str("; straggler: none\n"),
        }
        out
    }
}

/// Clear every slot and aggregate (tests share one process).
pub fn reset() {
    for s in SLOTS.iter() {
        s.op.store(0, Relaxed);
        s.write.store(0, Relaxed);
        s.phase.store(0, Relaxed);
        s.window.store(0, Relaxed);
        s.bytes.store(0, Relaxed);
        s.beats.store(0, Relaxed);
        s.ts.store(0, Relaxed);
        s.qdepth.store(0, Relaxed);
        s.flagged.store(0, Relaxed);
    }
    for p in PENDING.iter() {
        *p.lock().unwrap() = None;
    }
    set_stall_plan(None);
    SLOW_RANK.store(NO_RANK, Relaxed);
    SLOW_STREAK.store(0, Relaxed);
    SLOW_SKEW_NS.store(0, Relaxed);
    for r in 0..MAX_RANKS {
        LAST_COUNT[r].store(0, Relaxed);
        LAST_SKEW_SUM_NS[r].store(0, Relaxed);
    }
    WD_CHECKS_RAW.store(0, Relaxed);
    WD_FIRED_RAW.store(0, Relaxed);
    STALL_ABORTS_RAW.store(0, Relaxed);
    STRAGGLER_FLAGS_RAW.store(0, Relaxed);
    WD_DIAGNOSES.store(0, Relaxed);
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize access to the global health state across tests.
    fn with_health<R>(f: impl FnOnce() -> R) -> R {
        static GATE: Mutex<()> = Mutex::new(());
        let _g = GATE.lock().unwrap();
        reset();
        set_enabled(true);
        let r = f();
        set_enabled(false);
        reset();
        r
    }

    #[test]
    fn beats_publish_to_slots() {
        with_health(|| {
            set_thread_rank(3);
            op_begin(7, true);
            beat_bytes(HbPhase::Io, 4096);
            beat_window(HbPhase::Exchange, 5);
            let snap = live_snapshot();
            let r = snap.iter().find(|r| r.rank == 3).unwrap();
            assert_eq!(r.op, 7);
            assert!(r.write);
            assert_eq!(r.phase, "exchange");
            assert_eq!(r.window, 5);
            assert_eq!(r.bytes, 4096);
            assert!(r.beats >= 3);
            op_end();
            let snap = live_snapshot();
            let r = snap.iter().find(|r| r.rank == 3).unwrap();
            assert_eq!(r.op, 0);
            assert_eq!(r.phase, "idle");
            set_thread_rank(NO_RANK);
        });
    }

    #[test]
    fn disabled_beats_are_noops() {
        with_health(|| {
            set_enabled(false);
            set_thread_rank(9);
            op_begin(1, false);
            beat(HbPhase::Io);
            assert!(live_snapshot().iter().all(|r| r.rank != 9));
            set_enabled(true);
            set_thread_rank(NO_RANK);
        });
    }

    #[test]
    fn watchdog_names_nonwait_culprit() {
        with_health(|| {
            set_watchdog(1, true);
            // Rank 0: wedged in io. Rank 1: waiting on it. Both overdue.
            set_thread_rank(0);
            op_begin(42, true);
            beat(HbPhase::Io);
            set_thread_rank(1);
            op_begin(42, true);
            beat(HbPhase::ExchangeWait);
            set_thread_rank(NO_RANK);
            std::thread::sleep(Duration::from_millis(5));
            check_once(1);
            let stall = take_stall(0).expect("culprit rank flagged");
            assert_eq!(stall.rank, 0);
            assert_eq!(stall.phase, "io");
            assert_eq!(stall.op, 42);
            assert!(take_stall(1).is_none(), "waiter is a victim, not flagged");
            // Dedup: a second scan of the same op flags nothing new
            // for rank 0, and names the waiting rank 1 next.
            check_once(1);
            assert!(take_stall(0).is_none());
            assert!(take_stall(1).is_some());
        });
    }

    #[test]
    fn fresh_beats_hold_off_watchdog() {
        with_health(|| {
            set_watchdog(10_000, true);
            set_thread_rank(2);
            op_begin(5, false);
            beat(HbPhase::Io);
            set_thread_rank(NO_RANK);
            check_once(10_000);
            assert!(take_stall(2).is_none(), "recent beat must not be flagged");
            assert_eq!(WD_FIRED_RAW.load(Relaxed), 0);
        });
    }

    #[test]
    fn stall_plan_wedges_until_hold() {
        with_health(|| {
            set_stall_plan(Some(StallSpec {
                rank: 4,
                phase: HbPhase::Exchange,
                hold: Duration::from_millis(30),
            }));
            set_thread_rank(4);
            op_begin(1, true);
            let t0 = Instant::now();
            beat(HbPhase::Io); // wrong phase: no wedge
            assert!(t0.elapsed() < Duration::from_millis(20));
            beat(HbPhase::Exchange); // wedges ~30ms
            assert!(t0.elapsed() >= Duration::from_millis(30));
            let t1 = Instant::now();
            beat(HbPhase::Exchange); // one-shot: no second wedge
            assert!(t1.elapsed() < Duration::from_millis(20));
            set_thread_rank(NO_RANK);
        });
    }

    #[test]
    fn skew_streak_flags_straggler() {
        with_health(|| {
            assert!(straggler().is_none());
            for w in 0..STRAGGLER_K as u64 {
                // rank 1 always arrives last, with a forced gap.
                window_mark(w, 0);
                std::thread::sleep(Duration::from_micros(60));
                window_mark(w, 1);
            }
            window_flush();
            let s = straggler().expect("persistent last-arriver flagged");
            assert_eq!(s.rank, 1);
            assert!(s.windows >= STRAGGLER_K);
            assert!(s.skew_ns >= STRAGGLER_MIN_SKEW_NS);
            assert_eq!(STRAGGLER_FLAGS_RAW.load(Relaxed), 1);
        });
    }

    #[test]
    fn alternating_last_arrivers_never_flag() {
        with_health(|| {
            for w in 0..(3 * STRAGGLER_K as u64) {
                window_mark(w, 0);
                std::thread::sleep(Duration::from_micros(40));
                window_mark(w, (1 + w % 2) as u32); // alternate 1, 2
            }
            window_flush();
            assert!(straggler().is_none());
        });
    }

    #[test]
    fn shift_detector_unsettles_once() {
        let mut d = ShiftDetector::new();
        // Establish an io-bound baseline.
        assert!(!d.observe(10, 100, 5));
        for _ in 0..5 {
            assert!(!d.observe(10, 100, 5));
        }
        // One-off blip does not shift.
        assert!(!d.observe(100, 10, 5));
        assert!(!d.observe(10, 100, 5));
        // Sustained exchange-bound stream shifts exactly once.
        assert!(!d.observe(100, 10, 5));
        assert!(!d.observe(100, 10, 5));
        assert!(d.observe(100, 10, 5));
        assert!(!d.observe(100, 10, 5));
    }

    #[test]
    fn report_json_is_valid() {
        with_health(|| {
            set_thread_rank(0);
            op_begin(9, true);
            beat_bytes(HbPhase::Pack, 128);
            let rep = report();
            let json = rep.to_json();
            crate::json::validate(&json).expect("health report JSON parses");
            assert!(json.contains(REPORT_SCHEMA));
            assert!(json.contains("\"phase\": \"pack\""));
            let text = rep.render();
            assert!(text.contains("pack"));
            assert!(text.contains("watchdog:"));
            op_end();
            set_thread_rank(NO_RANK);
        });
    }

    #[test]
    fn worker_adoption_carries_rank() {
        with_health(|| {
            set_thread_rank(6);
            op_begin(3, false);
            let h = thread_handle();
            std::thread::scope(|s| {
                s.spawn(move || {
                    adopt(h);
                    assert_eq!(current_rank(), 6);
                    beat_bytes(HbPhase::Io, 512);
                });
            });
            let snap = live_snapshot();
            let r = snap.iter().find(|r| r.rank == 6).unwrap();
            assert_eq!(r.bytes, 512);
            op_end();
            set_thread_rank(NO_RANK);
        });
    }
}
