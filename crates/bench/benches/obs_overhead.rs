//! Cost of instrumentation on the pack hot path.
//!
//! The acceptance bar for `lio-obs` is that *disabled* instrumentation is
//! within noise (< 2%) of the uninstrumented baseline. Since the hooks are
//! compiled in, the closest measurable baseline is the same path measured
//! twice with recording off: the run-to-run delta bounds the noise floor,
//! and the enabled run shows what recording actually costs.

use lio_bench::harness::Group;
use lio_datatype::{ff_pack, Datatype};
use std::hint::black_box;

fn main() {
    lio_obs::set_enabled(false);
    // Small blocks maximize per-block bookkeeping relative to memcpy work.
    let sblock = 64u64;
    let nblock = (1 << 20) / sblock;
    let d = Datatype::vector(nblock, 1, 2, &Datatype::basic(sblock as u32)).unwrap();
    let src = vec![0xA5u8; d.extent() as usize];
    let total = d.size() as usize;
    let mut out = vec![0u8; total];

    let mut g = Group::new("obs_overhead");
    g.sample_size(30).throughput_bytes(total as u64);

    let base_a = g.bench("pack_disabled_a", || {
        ff_pack(black_box(&src), 1, &d, 0, black_box(&mut out));
    });
    let base_b = g.bench("pack_disabled_b", || {
        ff_pack(black_box(&src), 1, &d, 0, black_box(&mut out));
    });

    lio_obs::set_enabled(true);
    let enabled = g.bench("pack_enabled", || {
        ff_pack(black_box(&src), 1, &d, 0, black_box(&mut out));
    });
    lio_obs::set_enabled(false);

    let base = base_a.median_ns.min(base_b.median_ns);
    let noise_pct = (base_a.median_ns - base_b.median_ns).abs() / base * 100.0;
    let enabled_pct = (enabled.median_ns - base) / base * 100.0;
    println!("disabled run-to-run delta: {noise_pct:.2}% (noise floor)");
    println!("enabled vs disabled:       {enabled_pct:+.2}%");
    let verdict = if noise_pct < 2.0 {
        "PASS"
    } else {
        "CHECK (noisy host)"
    };
    println!("disabled-cost-within-noise (<2%): {verdict}");
}
