//! End-to-end independent data sieving through both engines, plus the
//! sieving-buffer-size ablation (one of the design choices DESIGN.md
//! calls out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lio_core::{File, Hints, SharedFile};
use lio_datatype::Datatype;
use lio_mpi::World;
use lio_noncontig::figure4_filetype;
use lio_pfs::MemFile;

fn write_once(hints: Hints, nblock: u64, sblock: u64) {
    let shared = SharedFile::new(MemFile::with_capacity((2 * nblock * sblock) as usize));
    World::run(1, |comm| {
        let mut f = File::open(comm, shared.clone(), hints).unwrap();
        let ft = figure4_filetype(0, 2, nblock, sblock);
        f.set_view(0, Datatype::byte(), ft).unwrap();
        let data = vec![7u8; (nblock * sblock) as usize];
        f.write_at(0, &data, data.len() as u64, &Datatype::byte())
            .unwrap();
    });
}

fn bench_sieve_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("sieve_write");
    let total = 1u64 << 20;
    for sblock in [8u64, 512] {
        let nblock = total / sblock;
        g.throughput(Throughput::Bytes(total));
        g.bench_with_input(
            BenchmarkId::new("list_based", sblock),
            &sblock,
            |b, _| b.iter(|| write_once(Hints::list_based(), nblock, sblock)),
        );
        g.bench_with_input(BenchmarkId::new("listless", sblock), &sblock, |b, _| {
            b.iter(|| write_once(Hints::listless(), nblock, sblock))
        });
    }
    g.finish();
}

/// Ablation: how the sieving buffer size trades file accesses against
/// list-navigation work.
fn bench_sieve_buffer_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("sieve_buffer_size");
    let total = 1u64 << 20;
    let sblock = 64u64;
    let nblock = total / sblock;
    for bufsize in [16usize << 10, 128 << 10, 1 << 20, 8 << 20] {
        g.throughput(Throughput::Bytes(total));
        g.bench_with_input(
            BenchmarkId::new("listless", bufsize),
            &bufsize,
            |b, &bs| b.iter(|| write_once(Hints::listless().ind_buffer(bs), nblock, sblock)),
        );
        g.bench_with_input(
            BenchmarkId::new("list_based", bufsize),
            &bufsize,
            |b, &bs| b.iter(|| write_once(Hints::list_based().ind_buffer(bs), nblock, sblock)),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sieve_engines, bench_sieve_buffer_size
}
criterion_main!(benches);
