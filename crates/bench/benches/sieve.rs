//! End-to-end independent data sieving through both engines, plus the
//! sieving-buffer-size ablation (one of the design choices DESIGN.md
//! calls out).

use lio_bench::harness::Group;
use lio_core::{File, Hints, SharedFile};
use lio_datatype::Datatype;
use lio_mpi::World;
use lio_noncontig::figure4_filetype;
use lio_pfs::MemFile;

fn write_once(hints: Hints, nblock: u64, sblock: u64) {
    let shared = SharedFile::new(MemFile::with_capacity((2 * nblock * sblock) as usize));
    World::run(1, |comm| {
        let mut f = File::open(comm, shared.clone(), hints).unwrap();
        let ft = figure4_filetype(0, 2, nblock, sblock);
        f.set_view(0, Datatype::byte(), ft).unwrap();
        let data = vec![7u8; (nblock * sblock) as usize];
        f.write_at(0, &data, data.len() as u64, &Datatype::byte())
            .unwrap();
    });
}

fn bench_sieve_engines() {
    let mut g = Group::new("sieve_write");
    g.sample_size(10);
    let total = 1u64 << 20;
    for sblock in [8u64, 512] {
        let nblock = total / sblock;
        g.throughput_bytes(total);
        g.bench(format!("list_based/{sblock}"), || {
            write_once(Hints::list_based(), nblock, sblock)
        });
        g.bench(format!("listless/{sblock}"), || {
            write_once(Hints::listless(), nblock, sblock)
        });
    }
}

/// Ablation: how the sieving buffer size trades file accesses against
/// list-navigation work.
fn bench_sieve_buffer_size() {
    let mut g = Group::new("sieve_buffer_size");
    g.sample_size(10);
    let total = 1u64 << 20;
    let sblock = 64u64;
    let nblock = total / sblock;
    for bufsize in [16usize << 10, 128 << 10, 1 << 20, 8 << 20] {
        g.throughput_bytes(total);
        g.bench(format!("listless/{bufsize}"), || {
            write_once(Hints::listless().ind_buffer(bufsize), nblock, sblock)
        });
        g.bench(format!("list_based/{bufsize}"), || {
            write_once(Hints::list_based().ind_buffer(bufsize), nblock, sblock)
        });
    }
}

fn main() {
    bench_sieve_engines();
    bench_sieve_buffer_size();
}
