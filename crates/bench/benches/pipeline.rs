//! Pipelined vs monolithic two-phase collective writes. The measurement
//! lives in [`lio_bench::pipebench`] so `repro bench` regenerates the
//! identical `BENCH_pipeline.json` artifact (including the `os`
//! real-storage backend column); this target just runs it.

fn main() {
    lio_bench::pipebench::run();
}
