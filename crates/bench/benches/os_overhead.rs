//! Cost of the submission-queue backend on contiguous transfers.
//!
//! The acceptance bar for `OsFile` is that its machinery stays within 5%
//! of a direct `pread`/`pwrite` on the transfers where it adds nothing:
//! contiguous, page-aligned 4 MiB accesses. Those plan to a single
//! segment, which the facade executes inline on the caller thread (a
//! worker handoff buys no parallelism there), so the gate prices the
//! planning + dispatch layer itself. As in `fault_overhead`, the
//! baseline is the direct path measured twice — the run-to-run delta
//! bounds the noise floor — and the verdict allows for a noisy host. A
//! clean FAIL (overhead above both 5% and the noise floor) exits
//! non-zero so CI can gate on it.
//!
//! The genuinely queued path (forced multi-segment, through the worker
//! threadpool) is measured alongside for the record but not gated: its
//! cost is two scheduler wakes per segment, which on a single-core CI
//! host is real context-switch time, not a regression.

use lio_bench::harness::Group;
use lio_pfs::{os, OsConfig, OsFile, QueueConfig, StorageFile};
use std::hint::black_box;

const XFER: usize = 4 << 20;

/// Fixed configuration (not `from_env`) so the gate always measures the
/// same shape: align 4096 and `max_seg` ≥ `XFER` make a 4 MiB aligned
/// transfer plan to exactly one zero-copy segment — the inline path.
fn queued_file(max_seg: usize) -> OsFile {
    OsFile::over(
        os::temp_unix().expect("temp file"),
        OsConfig {
            queue: QueueConfig {
                workers: 2,
                depth: 64,
                shuffle_seed: None,
            },
            align: 4096,
            max_seg,
        },
    )
}

fn main() {
    lio_obs::set_enabled(false);
    let direct = os::temp_unix().expect("temp file");
    let queued = queued_file(XFER);
    let workers = queued_file(XFER / 2); // 2 segments: the worker path
    let data = vec![0xA5u8; XFER];
    direct.write_at(0, &data).unwrap();
    queued.write_at(0, &data).unwrap();
    workers.write_at(0, &data).unwrap();
    let mut buf = vec![0u8; XFER];

    let mut g = Group::new("os_overhead");
    g.sample_size(20).throughput_bytes(XFER as u64);

    let read_base_a = g.bench("read_direct_a", || {
        black_box(direct.read_at(0, black_box(&mut buf))).unwrap();
    });
    let read_base_b = g.bench("read_direct_b", || {
        black_box(direct.read_at(0, black_box(&mut buf))).unwrap();
    });
    let read_q = g.bench("read_os", || {
        black_box(queued.read_at(0, black_box(&mut buf))).unwrap();
    });
    let read_w = g.bench("read_os_workers", || {
        black_box(workers.read_at(0, black_box(&mut buf))).unwrap();
    });
    let write_base_a = g.bench("write_direct_a", || {
        black_box(direct.write_at(0, black_box(&data))).unwrap();
    });
    let write_base_b = g.bench("write_direct_b", || {
        black_box(direct.write_at(0, black_box(&data))).unwrap();
    });
    let write_q = g.bench("write_os", || {
        black_box(queued.write_at(0, black_box(&data))).unwrap();
    });
    let write_w = g.bench("write_os_workers", || {
        black_box(workers.write_at(0, black_box(&data))).unwrap();
    });

    let mut failed = false;
    for (op, a, b, q, w) in [
        ("read", read_base_a, read_base_b, read_q, read_w),
        ("write", write_base_a, write_base_b, write_q, write_w),
    ] {
        // Compare minima, not medians: page-cache transfers of this size
        // are interference-prone, and the best observed iteration is the
        // stable estimator of the path's intrinsic cost.
        let base = a.min_ns.min(b.min_ns);
        let noise_pct = (a.min_ns - b.min_ns).abs() / base * 100.0;
        let over_pct = (q.min_ns - base) / base * 100.0;
        let worker_pct = (w.min_ns - base) / base * 100.0;
        println!("{op}: direct run-to-run delta:  {noise_pct:.2}% (noise floor)");
        println!("{op}: os backend vs direct:     {over_pct:+.2}%");
        println!("{op}: worker path vs direct:    {worker_pct:+.2}% (informational)");
        let verdict = if over_pct < 5.0_f64.max(noise_pct) {
            "PASS"
        } else if noise_pct >= 5.0 {
            "CHECK (noisy host)"
        } else {
            failed = true;
            "FAIL"
        };
        println!("{op}: backend-overhead-within-5%: {verdict}");
    }
    if failed {
        std::process::exit(1);
    }
}
