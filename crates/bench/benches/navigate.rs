//! Datatype navigation: positioning inside a fileview.
//!
//! The paper's Section 2.2: list-based navigation traverses `Nblock/2`
//! list entries on average per access; flattening-on-the-fly navigation
//! (`ff_offset`/`ff_size`, Section 3.2.1) costs `O(depth)` regardless of
//! the block count. This is the crate's clearest asymptotic separation.

use lio_bench::harness::Group;
use lio_datatype::{bytes_below_tiled, ff_offset, ff_size, Datatype, OlList};
use std::hint::black_box;

fn bench_navigate() {
    let mut g = Group::new("navigate");
    g.sample_size(30);
    for nblock in [64u64, 1024, 16384, 262144] {
        let d = Datatype::vector(nblock, 1, 2, &Datatype::double()).unwrap();
        let ol = OlList::flatten(&d, 1);
        let mid = d.size() / 2;

        g.bench(format!("list_linear_offset/{nblock}"), || {
            black_box(ol.offset_of(black_box(mid)));
        });

        g.bench(format!("ff_offset/{nblock}"), || {
            black_box(ff_offset(black_box(&d), black_box(mid)));
        });

        let lo = 0i64;
        let hi = d.extent() as i64 / 2;
        g.bench(format!("list_size_in_window/{nblock}"), || {
            black_box(ol.size_in_window(black_box(lo), black_box(hi)));
        });

        g.bench(format!("ff_size/{nblock}"), || {
            black_box(ff_size(black_box(&d), 0, black_box(hi as u64)));
        });

        g.bench(format!("ff_bytes_below/{nblock}"), || {
            black_box(bytes_below_tiled(black_box(&d), black_box(hi)));
        });
    }
}

/// Navigation on a deep nested type (depth dominates).
fn bench_navigate_nested() {
    let mut g = Group::new("navigate_nested");
    g.sample_size(30);
    let mut d = Datatype::double();
    for _ in 0..8 {
        d = Datatype::vector(2, 1, 2, &d).unwrap();
    }
    // depth 9, 256 leaf blocks
    let ol = OlList::flatten(&d, 1);
    let mid = d.size() / 2;
    g.bench("list_linear_offset", || {
        black_box(ol.offset_of(black_box(mid)));
    });
    g.bench("ff_offset", || {
        black_box(ff_offset(black_box(&d), black_box(mid)));
    });
}

fn main() {
    bench_navigate();
    bench_navigate_nested();
}
