//! Datatype navigation: positioning inside a fileview.
//!
//! The paper's Section 2.2: list-based navigation traverses `Nblock/2`
//! list entries on average per access; flattening-on-the-fly navigation
//! (`ff_offset`/`ff_size`, Section 3.2.1) costs `O(depth)` regardless of
//! the block count. This is the crate's clearest asymptotic separation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lio_datatype::{bytes_below_tiled, ff_offset, ff_size, Datatype, OlList};
use std::hint::black_box;

fn bench_navigate(c: &mut Criterion) {
    let mut g = c.benchmark_group("navigate");
    for nblock in [64u64, 1024, 16384, 262144] {
        let d = Datatype::vector(nblock, 1, 2, &Datatype::double()).unwrap();
        let ol = OlList::flatten(&d, 1);
        let mid = d.size() / 2;

        g.bench_with_input(
            BenchmarkId::new("list_linear_offset", nblock),
            &nblock,
            |b, _| {
                b.iter(|| ol.offset_of(black_box(mid)));
            },
        );

        g.bench_with_input(BenchmarkId::new("ff_offset", nblock), &nblock, |b, _| {
            b.iter(|| ff_offset(black_box(&d), black_box(mid)));
        });

        let lo = 0i64;
        let hi = d.extent() as i64 / 2;
        g.bench_with_input(
            BenchmarkId::new("list_size_in_window", nblock),
            &nblock,
            |b, _| {
                b.iter(|| ol.size_in_window(black_box(lo), black_box(hi)));
            },
        );

        g.bench_with_input(BenchmarkId::new("ff_size", nblock), &nblock, |b, _| {
            b.iter(|| ff_size(black_box(&d), 0, black_box(hi as u64)));
        });

        g.bench_with_input(
            BenchmarkId::new("ff_bytes_below", nblock),
            &nblock,
            |b, _| {
                b.iter(|| bytes_below_tiled(black_box(&d), black_box(hi)));
            },
        );
    }
    g.finish();
}

/// Navigation on a deep nested type (depth dominates).
fn bench_navigate_nested(c: &mut Criterion) {
    let mut g = c.benchmark_group("navigate_nested");
    let mut d = Datatype::double();
    for _ in 0..8 {
        d = Datatype::vector(2, 1, 2, &d).unwrap();
    }
    // depth 9, 256 leaf blocks
    let ol = OlList::flatten(&d, 1);
    let mid = d.size() / 2;
    g.bench_function("list_linear_offset", |b| {
        b.iter(|| ol.offset_of(black_box(mid)));
    });
    g.bench_function("ff_offset", |b| {
        b.iter(|| ff_offset(black_box(&d), black_box(mid)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_navigate, bench_navigate_nested
}
criterion_main!(benches);
