//! Cost of access-pattern-profiler instrumentation on the collective
//! write path.
//!
//! Same acceptance bar as `obs_overhead` / `trace_overhead`: with
//! profiling *disabled* the hooks (one relaxed atomic load per record
//! site) must be within noise (< 2%) of the uninstrumented baseline.
//! The hooks are compiled in, so the closest measurable baseline is the
//! same collective measured twice with profiling off — the run-to-run
//! delta bounds the noise floor, and the enabled run shows what
//! recording (a handful of relaxed atomic adds per run) costs.
//!
//! The workload is a 4-rank collective write with a small window size on
//! in-memory storage: minimal real work per run, so the per-record cost
//! is maximally visible.

use lio_bench::harness::Group;
use lio_core::{File, Hints, SharedFile};
use lio_datatype::{Datatype, Field};
use lio_mpi::World;
use lio_pfs::MemFile;

const SBLOCK: u64 = 256;
const NBLOCK: u64 = 32;

fn interleaved_ft(slots: u64) -> Datatype {
    let block = Datatype::contiguous(SBLOCK, &Datatype::byte()).unwrap();
    let v = Datatype::vector(NBLOCK, 1, slots as i64, &block).unwrap();
    let extent = NBLOCK * slots * SBLOCK;
    Datatype::struct_type(vec![
        Field {
            disp: 0,
            count: 1,
            child: Datatype::lb_marker(),
        },
        Field {
            disp: 0,
            count: 1,
            child: v,
        },
        Field {
            disp: extent as i64,
            count: 1,
            child: Datatype::ub_marker(),
        },
    ])
    .unwrap()
}

/// One pipelined 4-rank collective write on memory storage with a small
/// window, maximizing profile-site executions per byte moved.
fn collective_write() {
    let nprocs = 4;
    let hints = Hints::default()
        .cb_buffer(2 << 10)
        .pipelined(true)
        .pipeline_depth(2);
    let shared = SharedFile::new(MemFile::new());
    World::run(nprocs, move |comm| {
        let me = comm.rank() as u64;
        let slots = comm.size() as u64 + 1;
        let mut f = File::open(comm, shared.clone(), hints).expect("open");
        f.set_view(me * SBLOCK, Datatype::byte(), interleaved_ft(slots))
            .expect("set_view");
        let total = NBLOCK * SBLOCK;
        let data = vec![me as u8 + 1; total as usize];
        f.write_at_all(0, &data, total, &Datatype::byte())
            .expect("write");
    });
}

fn main() {
    lio_obs::set_enabled(false);
    lio_obs::profile::set_enabled(false);
    let total = NBLOCK * SBLOCK * 4;

    let mut g = Group::new("profile_overhead");
    g.sample_size(10).throughput_bytes(total);

    let base_a = g.bench("coll_write_disabled_a", collective_write);
    let base_b = g.bench("coll_write_disabled_b", collective_write);

    lio_obs::profile::set_enabled(true);
    lio_obs::profile::reset();
    let enabled = g.bench("coll_write_enabled", collective_write);
    lio_obs::profile::set_enabled(false);
    lio_obs::profile::reset();

    let base = base_a.median_ns.min(base_b.median_ns);
    let noise_pct = (base_a.median_ns - base_b.median_ns).abs() / base * 100.0;
    let enabled_pct = (enabled.median_ns - base) / base * 100.0;
    println!("disabled run-to-run delta: {noise_pct:.2}% (noise floor)");
    println!("enabled vs disabled:       {enabled_pct:+.2}%");
    let verdict = if noise_pct < 2.0 {
        "PASS"
    } else {
        "CHECK (noisy host)"
    };
    println!("disabled-cost-within-noise (<2%): {verdict}");
}
