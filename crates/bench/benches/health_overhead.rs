//! Cost of the runtime health layer on the collective-write path.
//!
//! The acceptance bar mirrors `trace_overhead`: with the layer
//! *disabled* every heartbeat site is one relaxed atomic load, so the
//! instrumented binary must be within noise (< 2%) of itself measured
//! twice. The enabled run shows what heartbeating (a handful of relaxed
//! stores per window) and skew tracking cost on top.
//!
//! The workload is a 4-rank pipelined collective write with a small
//! window size on in-memory storage: minimal real work per window, so
//! the per-beat cost is maximally visible.

use lio_bench::harness::Group;
use lio_core::{File, Hints, SharedFile};
use lio_datatype::{Datatype, Field};
use lio_mpi::World;
use lio_pfs::MemFile;

const SBLOCK: u64 = 256;
const NBLOCK: u64 = 32;

fn interleaved_ft(slots: u64) -> Datatype {
    let block = Datatype::contiguous(SBLOCK, &Datatype::byte()).unwrap();
    let v = Datatype::vector(NBLOCK, 1, slots as i64, &block).unwrap();
    let extent = NBLOCK * slots * SBLOCK;
    Datatype::struct_type(vec![
        Field {
            disp: 0,
            count: 1,
            child: Datatype::lb_marker(),
        },
        Field {
            disp: 0,
            count: 1,
            child: v,
        },
        Field {
            disp: extent as i64,
            count: 1,
            child: Datatype::ub_marker(),
        },
    ])
    .unwrap()
}

/// One pipelined 4-rank collective write on memory storage with a small
/// window, maximizing heartbeat-site executions per byte moved.
fn collective_write() {
    let nprocs = 4;
    let hints = Hints::default()
        .cb_buffer(2 << 10)
        .pipelined(true)
        .pipeline_depth(2);
    let shared = SharedFile::new(MemFile::new());
    World::run(nprocs, move |comm| {
        let me = comm.rank() as u64;
        let slots = comm.size() as u64 + 1;
        let mut f = File::open(comm, shared.clone(), hints).expect("open");
        f.set_view(me * SBLOCK, Datatype::byte(), interleaved_ft(slots))
            .expect("set_view");
        let total = NBLOCK * SBLOCK;
        let data = vec![me as u8 + 1; total as usize];
        f.write_at_all(0, &data, total, &Datatype::byte())
            .expect("write");
    });
}

fn main() {
    lio_obs::set_enabled(false);
    lio_obs::trace::set_enabled(false);
    lio_obs::health::set_enabled(false);
    // a generous deadline so the watchdog (if some earlier arm spawned
    // it) never interferes with the measured runs
    lio_obs::health::set_watchdog(60_000, false);
    let total = NBLOCK * SBLOCK * 4;

    let mut g = Group::new("health_overhead");
    g.sample_size(10).throughput_bytes(total);

    let base_a = g.bench("coll_write_disabled_a", collective_write);
    let base_b = g.bench("coll_write_disabled_b", collective_write);

    lio_obs::health::set_enabled(true);
    lio_obs::health::reset();
    let enabled = g.bench("coll_write_enabled", collective_write);
    lio_obs::health::set_enabled(false);
    lio_obs::health::reset();

    let base = base_a.median_ns.min(base_b.median_ns);
    let noise_pct = (base_a.median_ns - base_b.median_ns).abs() / base * 100.0;
    let enabled_pct = (enabled.median_ns - base) / base * 100.0;
    println!("disabled run-to-run delta: {noise_pct:.2}% (noise floor)");
    println!("enabled vs disabled:       {enabled_pct:+.2}%");
    let verdict = if noise_pct < 2.0 {
        "PASS"
    } else {
        "CHECK (noisy host)"
    };
    println!("disabled-cost-within-noise (<2%): {verdict}");
}
