//! Pack/unpack micro-benchmarks: flattening-on-the-fly vs ol-list walking
//! vs the raw memcpy ceiling (the paper's copy-time overhead, Section 2.1).

use lio_bench::harness::Group;
use lio_datatype::{ff_pack, ff_unpack, Datatype, OlList};
use std::hint::black_box;

/// Pack 1 MiB of data through vectors of varying block size.
fn bench_pack() {
    let mut g = Group::new("pack");
    g.sample_size(20);
    for sblock in [8u64, 64, 512, 4096] {
        let nblock = (1 << 20) / sblock;
        let d = Datatype::vector(nblock, 1, 2, &Datatype::basic(sblock as u32)).unwrap();
        let src = vec![0xA5u8; d.extent() as usize];
        let total = d.size() as usize;
        let mut out = vec![0u8; total];
        g.throughput_bytes(total as u64);

        g.bench(format!("listless_ff/{sblock}"), || {
            ff_pack(black_box(&src), 1, &d, 0, black_box(&mut out));
        });

        let ol = OlList::flatten(&d, 1);
        g.bench(format!("list_based_ol/{sblock}"), || {
            ol.pack(black_box(&src), 0, black_box(&mut out));
        });

        // the per-access flattening the list-based engine performs for
        // memtypes (list creation + pack + drop)
        g.bench(format!("list_based_flatten_and_pack/{sblock}"), || {
            let ol = OlList::flatten(black_box(&d), 1);
            ol.pack(black_box(&src), 0, black_box(&mut out));
        });

        g.bench(format!("memcpy_ceiling/{sblock}"), || {
            out.copy_from_slice(black_box(&src[..total]));
        });
    }
}

/// Unpack mirror of the pack benchmark.
fn bench_unpack() {
    let mut g = Group::new("unpack");
    g.sample_size(20);
    for sblock in [8u64, 512] {
        let nblock = (1 << 20) / sblock;
        let d = Datatype::vector(nblock, 1, 2, &Datatype::basic(sblock as u32)).unwrap();
        let total = d.size() as usize;
        let packed = vec![0x5Au8; total];
        let mut dst = vec![0u8; d.extent() as usize];
        g.throughput_bytes(total as u64);

        g.bench(format!("listless_ff/{sblock}"), || {
            ff_unpack(black_box(&packed), black_box(&mut dst), 1, &d, 0);
        });

        let ol = OlList::flatten(&d, 1);
        g.bench(format!("list_based_ol/{sblock}"), || {
            ol.unpack(black_box(&packed), black_box(&mut dst), 0);
        });
    }
}

/// Pack through a deep nested type (no strided fast path): the generic
/// FlatIter path vs the ol-list.
fn bench_pack_nested() {
    let mut g = Group::new("pack_nested");
    g.sample_size(20);
    // 3D subarray: does not reduce to a single strided level
    let d = Datatype::subarray(
        &[64, 64, 64],
        &[32, 32, 32],
        &[16, 16, 16],
        lio_datatype::Order::C,
        &Datatype::double(),
    )
    .unwrap();
    let src = vec![1u8; d.extent() as usize];
    let total = d.size() as usize;
    let mut out = vec![0u8; total];
    g.throughput_bytes(total as u64);
    g.bench("listless_ff", || {
        ff_pack(black_box(&src), 1, &d, 0, black_box(&mut out));
    });
    let ol = OlList::flatten(&d, 1);
    g.bench("list_based_ol", || {
        ol.pack(black_box(&src), 0, black_box(&mut out));
    });
}

fn main() {
    bench_pack();
    bench_unpack();
    bench_pack_nested();
}
