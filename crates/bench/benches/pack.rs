//! Pack/unpack micro-benchmarks: flattening-on-the-fly vs ol-list walking
//! vs the raw memcpy ceiling (the paper's copy-time overhead, Section 2.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lio_datatype::{ff_pack, ff_unpack, Datatype, OlList};
use std::hint::black_box;

/// Pack 1 MiB of data through vectors of varying block size.
fn bench_pack(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack");
    for sblock in [8u64, 64, 512, 4096] {
        let nblock = (1 << 20) / sblock;
        let d = Datatype::vector(nblock, 1, 2, &Datatype::basic(sblock as u32)).unwrap();
        let src = vec![0xA5u8; d.extent() as usize];
        let total = d.size() as usize;
        let mut out = vec![0u8; total];
        g.throughput(Throughput::Bytes(total as u64));

        g.bench_with_input(BenchmarkId::new("listless_ff", sblock), &sblock, |b, _| {
            b.iter(|| ff_pack(black_box(&src), 1, &d, 0, black_box(&mut out)));
        });

        let ol = OlList::flatten(&d, 1);
        g.bench_with_input(BenchmarkId::new("list_based_ol", sblock), &sblock, |b, _| {
            b.iter(|| ol.pack(black_box(&src), 0, black_box(&mut out)));
        });

        // the per-access flattening the list-based engine performs for
        // memtypes (list creation + pack + drop)
        g.bench_with_input(
            BenchmarkId::new("list_based_flatten_and_pack", sblock),
            &sblock,
            |b, _| {
                b.iter(|| {
                    let ol = OlList::flatten(black_box(&d), 1);
                    ol.pack(black_box(&src), 0, black_box(&mut out))
                });
            },
        );

        g.bench_with_input(
            BenchmarkId::new("memcpy_ceiling", sblock),
            &sblock,
            |b, _| {
                b.iter(|| out.copy_from_slice(black_box(&src[..total])));
            },
        );
    }
    g.finish();
}

/// Unpack mirror of the pack benchmark.
fn bench_unpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("unpack");
    for sblock in [8u64, 512] {
        let nblock = (1 << 20) / sblock;
        let d = Datatype::vector(nblock, 1, 2, &Datatype::basic(sblock as u32)).unwrap();
        let total = d.size() as usize;
        let packed = vec![0x5Au8; total];
        let mut dst = vec![0u8; d.extent() as usize];
        g.throughput(Throughput::Bytes(total as u64));

        g.bench_with_input(BenchmarkId::new("listless_ff", sblock), &sblock, |b, _| {
            b.iter(|| ff_unpack(black_box(&packed), black_box(&mut dst), 1, &d, 0));
        });

        let ol = OlList::flatten(&d, 1);
        g.bench_with_input(BenchmarkId::new("list_based_ol", sblock), &sblock, |b, _| {
            b.iter(|| ol.unpack(black_box(&packed), black_box(&mut dst), 0));
        });
    }
    g.finish();
}

/// Pack through a deep nested type (no strided fast path): the generic
/// FlatIter path vs the ol-list.
fn bench_pack_nested(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack_nested");
    // 3D subarray: does not reduce to a single strided level
    let d = Datatype::subarray(
        &[64, 64, 64],
        &[32, 32, 32],
        &[16, 16, 16],
        lio_datatype::Order::C,
        &Datatype::double(),
    )
    .unwrap();
    let src = vec![1u8; d.extent() as usize];
    let total = d.size() as usize;
    let mut out = vec![0u8; total];
    g.throughput(Throughput::Bytes(total as u64));
    g.bench_function("listless_ff", |b| {
        b.iter(|| ff_pack(black_box(&src), 1, &d, 0, black_box(&mut out)));
    });
    let ol = OlList::flatten(&d, 1);
    g.bench_function("list_based_ol", |b| {
        b.iter(|| ol.pack(black_box(&src), 0, black_box(&mut out)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pack, bench_unpack, bench_pack_nested
}
criterion_main!(benches);
