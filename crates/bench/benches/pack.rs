//! Pack/unpack micro-benchmarks: flattening-on-the-fly vs ol-list walking
//! vs the raw memcpy ceiling (the paper's copy-time overhead, Section 2.1),
//! plus the compiled run-program interpreter vs the naive tree walk and
//! the sharded multi-threaded copy.
//!
//! Emits `BENCH_pack.json` at the workspace root in the versioned
//! [`lio_bench::schema`] format: the measured medians, the
//! tree-walk/compiled/sharded ratios, and the machine's core count
//! (sharded wall-clock gains require real parallelism; the ratios are
//! recorded honestly either way).

use lio_bench::harness::Group;
use lio_bench::schema;
use lio_datatype::kernels::{self, Mode};
use lio_datatype::{
    darray, ff_pack, ff_pack_shards, ff_unpack, Datatype, Distrib, Field, FlatIter, OlList, Order,
};
use std::hint::black_box;

/// The naive tree-walk baseline the compiled program replaces: descend
/// the type tree for every leaf run via `FlatIter`.
fn treewalk_pack(src: &[u8], count: u64, d: &Datatype, skip: u64, out: &mut [u8]) -> usize {
    let mut cursor = 0;
    for run in FlatIter::with_skip(d, count, skip) {
        if cursor == out.len() {
            break;
        }
        let n = (run.len as usize).min(out.len() - cursor);
        let s = run.disp as usize;
        out[cursor..cursor + n].copy_from_slice(&src[s..s + n]);
        cursor += n;
    }
    cursor
}

/// One emitted measurement: group/id plus median ns and bytes moved.
struct Entry {
    group: &'static str,
    id: String,
    median_ns: f64,
    bytes: u64,
}

/// Pack 1 MiB of data through vectors of varying block size.
fn bench_pack() {
    let mut g = Group::new("pack");
    g.sample_size(20);
    for sblock in [8u64, 64, 512, 4096] {
        let nblock = (1 << 20) / sblock;
        let d = Datatype::vector(nblock, 1, 2, &Datatype::basic(sblock as u32)).unwrap();
        let src = vec![0xA5u8; d.extent() as usize];
        let total = d.size() as usize;
        let mut out = vec![0u8; total];
        g.throughput_bytes(total as u64);

        g.bench(format!("listless_ff/{sblock}"), || {
            ff_pack(black_box(&src), 1, &d, 0, black_box(&mut out));
        });

        let ol = OlList::flatten(&d, 1);
        g.bench(format!("list_based_ol/{sblock}"), || {
            ol.pack(black_box(&src), 0, black_box(&mut out));
        });

        // the per-access flattening the list-based engine performs for
        // memtypes (list creation + pack + drop)
        g.bench(format!("list_based_flatten_and_pack/{sblock}"), || {
            let ol = OlList::flatten(black_box(&d), 1);
            ol.pack(black_box(&src), 0, black_box(&mut out));
        });

        g.bench(format!("memcpy_ceiling/{sblock}"), || {
            out.copy_from_slice(black_box(&src[..total]));
        });
    }
}

/// Unpack mirror of the pack benchmark.
fn bench_unpack() {
    let mut g = Group::new("unpack");
    g.sample_size(20);
    for sblock in [8u64, 512] {
        let nblock = (1 << 20) / sblock;
        let d = Datatype::vector(nblock, 1, 2, &Datatype::basic(sblock as u32)).unwrap();
        let total = d.size() as usize;
        let packed = vec![0x5Au8; total];
        let mut dst = vec![0u8; d.extent() as usize];
        g.throughput_bytes(total as u64);

        g.bench(format!("listless_ff/{sblock}"), || {
            ff_unpack(black_box(&packed), black_box(&mut dst), 1, &d, 0);
        });

        let ol = OlList::flatten(&d, 1);
        g.bench(format!("list_based_ol/{sblock}"), || {
            ol.unpack(black_box(&packed), black_box(&mut dst), 0);
        });
    }
}

/// Pack through a deep nested type (no strided fast path): the generic
/// FlatIter path vs the ol-list.
fn bench_pack_nested() {
    let mut g = Group::new("pack_nested");
    g.sample_size(20);
    // 3D subarray: does not reduce to a single strided level
    let d = Datatype::subarray(
        &[64, 64, 64],
        &[32, 32, 32],
        &[16, 16, 16],
        Order::C,
        &Datatype::double(),
    )
    .unwrap();
    let src = vec![1u8; d.extent() as usize];
    let total = d.size() as usize;
    let mut out = vec![0u8; total];
    g.throughput_bytes(total as u64);
    g.bench("listless_ff", || {
        ff_pack(black_box(&src), 1, &d, 0, black_box(&mut out));
    });
    let ol = OlList::flatten(&d, 1);
    g.bench("list_based_ol", || {
        ol.pack(black_box(&src), 0, black_box(&mut out));
    });
}

/// The benchmark shapes for the compiled-vs-treewalk-vs-sharded matrix:
/// a count scaling each shape's data volume to ≥ 4 MiB for the sharded
/// rows, and the datatype itself.
fn shapes() -> Vec<(&'static str, u64, Datatype)> {
    // flat strided: 8 KiB blocks at 2× stride (reduces to one frame)
    let flat = Datatype::vector(512, 1, 2, &Datatype::basic(8192)).unwrap();
    // nested vector-of-vector, small inner blocks: the case the
    // compiled program exists for (tree walk re-descends per 64 B run)
    let inner = Datatype::vector(16, 1, 2, &Datatype::basic(64)).unwrap();
    let nested = Datatype::vector(64, 1, 2, &inner).unwrap();
    // block-cyclic darray over a 2D grid
    let da = darray(
        4,
        1,
        &[1024, 1024],
        &[Distrib::Cyclic(8), Distrib::Block],
        &[2, 2],
        Order::C,
        &Datatype::byte(),
    )
    .unwrap();
    // BTIO-style 3D tile of doubles
    let btio = Datatype::subarray(
        &[128, 64, 64],
        &[64, 32, 32],
        &[32, 16, 16],
        Order::C,
        &Datatype::double(),
    )
    .unwrap();
    let target = 4u64 << 20;
    [
        ("flat_strided", flat),
        ("nested_vv", nested),
        ("darray_cyclic", da),
        ("btio_tile", btio),
    ]
    .into_iter()
    .map(|(name, d)| {
        let count = (target / d.size()).max(1);
        (name, count, d)
    })
    .collect()
}

/// A hand-rolled packer: the loop a scientist writes when they give up
/// on the datatype engine — every layout constant baked in, nothing but
/// nested loops and fixed-width copies. The honest baseline the
/// kernelized interpreter has to stay within ~10% of (Hunold et al.).
type ManualFn = Box<dyn Fn(&[u8], u64, &mut [u8])>;

/// Copy `B` bytes with a fixed-width load/store (what a typed manual
/// loop compiles to for 2/4/8-byte elements).
#[inline(always)]
fn copy_fixed<const B: usize>(src: &[u8], s: usize, out: &mut [u8], o: usize) {
    out[o..o + B].copy_from_slice(&src[s..s + B]);
}

/// The manual packer for a benchmark shape, if one is written.
fn manual_for(name: &str) -> Option<ManualFn> {
    match name {
        // vector(512, 1, 2, basic(8192)): 8 KiB blocks at 16 KiB pitch
        "flat_strided" => Some(Box::new(|src, count, out| {
            const EXT: usize = 1023 * 8192;
            let mut cur = 0;
            for inst in 0..count as usize {
                let base = inst * EXT;
                for b in 0..512 {
                    let s = base + b * 16384;
                    out[cur..cur + 8192].copy_from_slice(&src[s..s + 8192]);
                    cur += 8192;
                }
            }
        })),
        // vector(64, 1, 2, vector(16, 1, 2, basic(64))): 64 rows at
        // 3968-byte pitch, each 16 blocks of 64 B at 128-byte pitch
        "nested_vv" | "vv_ragged" => Some(Box::new(|src, count, out| {
            const EXT: usize = 127 * 1984;
            let mut cur = 0;
            for inst in 0..count as usize {
                let base = inst * EXT;
                for o in 0..64 {
                    let row = base + o * 3968;
                    for i in 0..16 {
                        let s = row + i * 128;
                        out[cur..cur + 64].copy_from_slice(&src[s..s + 64]);
                        cur += 64;
                    }
                }
            }
        })),
        // darray rank 1 of a 2×2 C grid over 1024×1024 bytes,
        // [Cyclic(8), Block]: row bands c*16..c*16+8, columns 512..1024
        "darray_cyclic" => Some(Box::new(|src, count, out| {
            const EXT: usize = 1024 * 1024;
            let mut cur = 0;
            for inst in 0..count as usize {
                let base = inst * EXT;
                for c in 0..64 {
                    for r in 0..8 {
                        let s = base + (c * 16 + r) * 1024 + 512;
                        out[cur..cur + 512].copy_from_slice(&src[s..s + 512]);
                        cur += 512;
                    }
                }
            }
        })),
        // subarray [64,32,32] of [128,64,64] doubles starting [32,16,16]:
        // 64×32 rows of 32 doubles (256 B) in the big C-order array
        "btio_tile" | "btio_ragged" => Some(Box::new(|src, count, out| {
            const EXT: usize = 128 * 64 * 64 * 8;
            let mut cur = 0;
            for inst in 0..count as usize {
                let base = inst * EXT;
                for i in 0..64 {
                    for j in 0..32 {
                        let s = base + ((32 + i) * 4096 + (16 + j) * 64 + 16) * 8;
                        out[cur..cur + 256].copy_from_slice(&src[s..s + 256]);
                        cur += 256;
                    }
                }
            }
        })),
        // fine strided shapes: N small blocks at 2× pitch
        "fine2" => Some(Box::new(|src, count, out| {
            const EXT: usize = (2 * (1 << 19) - 1) * 2;
            let mut cur = 0;
            for inst in 0..count as usize {
                let base = inst * EXT;
                for b in 0..1 << 19 {
                    copy_fixed::<2>(src, base + b * 4, out, cur);
                    cur += 2;
                }
            }
        })),
        "fine4" => Some(Box::new(|src, count, out| {
            const EXT: usize = (2 * (1 << 18) - 1) * 4;
            let mut cur = 0;
            for inst in 0..count as usize {
                let base = inst * EXT;
                for b in 0..1 << 18 {
                    copy_fixed::<4>(src, base + b * 8, out, cur);
                    cur += 4;
                }
            }
        })),
        "fine8" => Some(Box::new(|src, count, out| {
            const EXT: usize = (2 * (1 << 17) - 1) * 8;
            let mut cur = 0;
            for inst in 0..count as usize {
                let base = inst * EXT;
                for b in 0..1 << 17 {
                    copy_fixed::<8>(src, base + b * 16, out, cur);
                    cur += 8;
                }
            }
        })),
        _ => None,
    }
}

/// Shapes for the kernel matrix: the four base shapes, fine-grained
/// 2/4/8-byte-block vectors (the regime the fixed-block kernels exist
/// for), and ragged-built vector-of-vector / BTIO variants whose raw
/// compile is a literal tail — the normalization pass must rewrite them
/// into the same strided form the canonical constructors produce.
fn kernel_shapes() -> Vec<(&'static str, u64, Datatype)> {
    let fine2 = Datatype::vector(1 << 19, 1, 2, &Datatype::basic(2)).unwrap();
    let fine4 = Datatype::vector(1 << 18, 1, 2, &Datatype::basic(4)).unwrap();
    let fine8 = Datatype::vector(1 << 17, 1, 2, &Datatype::basic(8)).unwrap();
    // nested_vv built as hindexed rows: cross-row spacing breaks the
    // strided reduction, so only the normalization pass recovers
    // Loop{Blocks}
    let row = Datatype::vector(16, 1, 2, &Datatype::basic(64)).unwrap();
    let lens = [1u64; 64];
    let disps: Vec<i64> = (0..64).map(|i| i * 3968).collect();
    let vv_ragged = Datatype::hindexed(&lens, &disps, &row).unwrap();
    // btio_tile built as a struct of explicit planes of explicit rows
    let plane_lens = [1u64; 32];
    let plane_disps: Vec<i64> = (0..32).map(|j| (16 + j) * 64 * 8).collect();
    let plane = Datatype::hindexed(&plane_lens, &plane_disps, &Datatype::basic(256)).unwrap();
    let btio_struct = Datatype::struct_type(
        (0..64)
            .map(|i| Field {
                disp: ((32 + i) * 64 * 64 + 16) * 8,
                count: 1,
                child: plane.clone(),
            })
            .collect(),
    )
    .unwrap();
    // restore the full-array extent the subarray form carries, so count
    // instances tile exactly like btio_tile
    let btio_ragged = Datatype::resized(&btio_struct, 0, 128 * 64 * 64 * 8).unwrap();
    let target = 4u64 << 20;
    let mut all: Vec<(&'static str, u64, Datatype)> = shapes();
    for (name, d) in [
        ("fine2", fine2),
        ("fine4", fine4),
        ("fine8", fine8),
        ("vv_ragged", vv_ragged),
        ("btio_ragged", btio_ragged),
    ] {
        let count = (target / d.size()).max(1);
        all.push((name, count, d));
    }
    all
}

/// Scalar-compiled vs kernelized vs manual, across the kernel shapes.
/// The manual packer is verified byte-identical to `ff_pack` before it
/// is timed, and the ragged shapes assert the normalization pass
/// actually rewrote them.
fn bench_pack_kernels(entries: &mut Vec<Entry>) {
    let mut g = Group::new("pack_kernels");
    g.sample_size(20);
    for (name, count, d) in kernel_shapes() {
        let span = ((count as i64 - 1) * d.extent() as i64 + d.data_ub()) as usize;
        let src: Vec<u8> = (0..span).map(|i| (i % 251) as u8).collect();
        let total = (d.size() * count) as usize;
        let mut out = vec![0u8; total];
        g.throughput_bytes(total as u64);

        let prog = d.program();
        if name.ends_with("_ragged") {
            assert!(
                prog.rewrites() > 0,
                "{name}: normalization pass did not engage ({})",
                prog.describe()
            );
            entries.push(Entry {
                group: "pack_kernels",
                id: format!("normalize_rewrites/{name}"),
                median_ns: prog.rewrites() as f64,
                bytes: 0,
            });
        }

        kernels::force(Mode::Scalar);
        let s = g.bench(format!("compiled_scalar/{name}"), || {
            prog.pack_into(black_box(&src), 0, count, 0, black_box(&mut out));
        });
        entries.push(Entry {
            group: "pack_kernels",
            id: format!("compiled_scalar/{name}"),
            median_ns: s.median_ns,
            bytes: total as u64,
        });

        kernels::force(Mode::Auto);
        let s = g.bench(format!("kernelized/{name}"), || {
            prog.pack_into(black_box(&src), 0, count, 0, black_box(&mut out));
        });
        entries.push(Entry {
            group: "pack_kernels",
            id: format!("kernelized/{name}"),
            median_ns: s.median_ns,
            bytes: total as u64,
        });

        if let Some(manual) = manual_for(name) {
            // correctness first: a wrong manual packer is not a baseline
            let mut want = vec![0u8; total];
            ff_pack(&src, count, &d, 0, &mut want);
            let mut got = vec![0u8; total];
            manual(&src, count, &mut got);
            assert_eq!(got, want, "manual packer for {name} diverges from ff_pack");

            let s = g.bench(format!("manual/{name}"), || {
                manual(black_box(&src), count, black_box(&mut out));
            });
            entries.push(Entry {
                group: "pack_kernels",
                id: format!("manual/{name}"),
                median_ns: s.median_ns,
                bytes: total as u64,
            });
        }
    }
    kernels::force(Mode::Auto);
}

/// Tree walk vs compiled program vs sharded copy, across the four
/// shapes, on ≥ 4 MiB of data each.
fn bench_pack_compiled(entries: &mut Vec<Entry>) {
    let mut g = Group::new("pack_compiled");
    g.sample_size(20);
    for (name, count, d) in shapes() {
        let span = ((count as i64 - 1) * d.extent() as i64 + d.data_ub()) as usize;
        let src = vec![0xC3u8; span];
        let total = (d.size() * count) as usize;
        let mut out = vec![0u8; total];
        g.throughput_bytes(total as u64);

        let s = g.bench(format!("treewalk/{name}"), || {
            treewalk_pack(black_box(&src), count, &d, 0, black_box(&mut out));
        });
        entries.push(Entry {
            group: "pack_compiled",
            id: format!("treewalk/{name}"),
            median_ns: s.median_ns,
            bytes: total as u64,
        });

        // the compiled interpreter, bypassing the strided fast path so
        // flat shapes measure the program too
        let prog = d.program();
        let s = g.bench(format!("compiled/{name}"), || {
            prog.pack_into(black_box(&src), 0, count, 0, black_box(&mut out));
        });
        entries.push(Entry {
            group: "pack_compiled",
            id: format!("compiled/{name}"),
            median_ns: s.median_ns,
            bytes: total as u64,
        });

        // the shipped single-threaded entry (strided fast path or program)
        let s = g.bench(format!("ff_pack/{name}"), || {
            ff_pack(black_box(&src), count, &d, 0, black_box(&mut out));
        });
        entries.push(Entry {
            group: "pack_compiled",
            id: format!("ff_pack/{name}"),
            median_ns: s.median_ns,
            bytes: total as u64,
        });

        for threads in [2usize, 4] {
            let s = g.bench(format!("sharded{threads}/{name}"), || {
                ff_pack_shards(black_box(&src), count, &d, 0, black_box(&mut out), threads);
            });
            entries.push(Entry {
                group: "pack_compiled",
                id: format!("sharded{threads}/{name}"),
                median_ns: s.median_ns,
                bytes: total as u64,
            });
        }
    }
}

/// Render the measurements (plus derived ratios) as `BENCH_pack.json`
/// at the workspace root, in the versioned schema.
fn write_json(entries: &[Entry]) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows: Vec<schema::Entry> = Vec::new();
    for e in entries {
        if e.bytes == 0 {
            // not a timing: a recorded count (e.g. normalize_rewrites)
            rows.push(schema::Entry::new(
                e.group,
                e.id.clone(),
                "count",
                e.median_ns,
                "1",
            ));
            continue;
        }
        rows.push(schema::Entry::new(
            e.group,
            e.id.clone(),
            "median_ns",
            e.median_ns,
            "ns",
        ));
        rows.push(schema::Entry::new(
            e.group,
            e.id.clone(),
            "gbps",
            e.bytes as f64 / e.median_ns,
            "GB/s",
        ));
    }
    // derived ratios per shape: treewalk/compiled (>1 means the program
    // is faster) and treewalk/sharded{2,4}
    let med = |id: &str| {
        entries
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.median_ns)
            .unwrap_or(f64::NAN)
    };
    for name in ["flat_strided", "nested_vv", "darray_cyclic", "btio_tile"] {
        let tw = med(&format!("treewalk/{name}"));
        for variant in ["compiled", "sharded2", "sharded4"] {
            rows.push(schema::Entry::new(
                "pack_compiled_ratio",
                name,
                format!("{variant}_speedup"),
                tw / med(&format!("{variant}/{name}")),
                "x",
            ));
        }
    }
    // kernel ratios per shape: kernel_speedup = scalar-compiled over
    // kernelized (>1 means the kernels pay), vs_manual = manual over
    // kernelized (≥ ~0.9 means within ~10% of the hand-rolled packer)
    for name in [
        "flat_strided",
        "nested_vv",
        "darray_cyclic",
        "btio_tile",
        "fine2",
        "fine4",
        "fine8",
        "vv_ragged",
        "btio_ragged",
    ] {
        let auto = med(&format!("kernelized/{name}"));
        rows.push(schema::Entry::new(
            "pack_kernel_ratio",
            name,
            "kernel_speedup",
            med(&format!("compiled_scalar/{name}")) / auto,
            "x",
        ));
        let manual = med(&format!("manual/{name}"));
        if manual.is_finite() {
            rows.push(schema::Entry::new(
                "pack_kernel_ratio",
                name,
                "vs_manual",
                manual / auto,
                "x",
            ));
        }
    }
    schema::write_bench_json("BENCH_pack.json", &rows, &[("cores", cores.to_string())]);
}

fn main() {
    bench_pack();
    bench_unpack();
    bench_pack_nested();
    let mut entries = Vec::new();
    bench_pack_compiled(&mut entries);
    bench_pack_kernels(&mut entries);
    write_json(&entries);
}
